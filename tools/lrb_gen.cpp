// lrb_gen: generate load-rebalancing instances in the lrb text format.
//
//   lrb_gen --jobs 200 --procs 16 --dist zipf --placement hotspot
//           --cost-model proportional --seed 7 > instance.lrb
//
// Flags (defaults in parentheses):
//   --jobs N (100)         --procs M (10)
//   --dist uniform|bimodal|zipf|exponential|unit (uniform)
//   --min-size S (1)       --max-size S (100)      --zipf-alpha A (1.2)
//   --placement random|hotspot|zipf|balanced|single (random)
//   --hotspot-fraction F (0.2)  --hotspot-mass F (0.7)
//   --cost-model unit|uniform|proportional|inverse|two-valued (unit)
//   --min-cost C (1)  --max-cost C (10)  --p C (1)  --q C (10)
//   --seed S (1)
//   --tight-greedy M       emit Theorem 1's tight family instead
//   --tight-partition      emit Theorem 2's tight example instead

#include <algorithm>
#include <iostream>
#include <string>

#include "core/generators.h"
#include "core/io.h"
#include "util/flags.h"
#include "util/version.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_gen: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_gen");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {
        "jobs",        "procs",      "dist",       "min-size",
        "max-size",    "zipf-alpha", "placement",  "hotspot-fraction",
        "hotspot-mass", "cost-model", "min-cost",  "max-cost",
        "p",           "q",          "seed",       "tight-greedy",
        "tight-partition", "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  if (flags.has("tight-greedy")) {
    const std::int64_t m_raw = flags.get_int("tight-greedy", 4);
    if (m_raw < 2 || m_raw > 10'000) {
      return fail("--tight-greedy needs m in [2, 10000]");
    }
    const auto m = static_cast<ProcId>(m_raw);
    const auto family = greedy_tight_instance(m);
    std::cout << "# Theorem 1 tight family: k = " << family.k
              << ", OPT = " << family.opt << "\n";
    write_instance(std::cout, family.instance);
    return 0;
  }
  if (flags.has("tight-partition")) {
    const auto family = partition_tight_instance();
    std::cout << "# Theorem 2 tight example: k = " << family.k
              << ", OPT = " << family.opt << "\n";
    write_instance(std::cout, family.instance);
    return 0;
  }

  GeneratorOptions options;
  // Validate ranges BEFORE casting: "--jobs -5" through static_cast<size_t>
  // would wrap to ~2^64 and hang the generator instead of diagnosing.
  const std::int64_t jobs = flags.get_int("jobs", 100);
  const std::int64_t procs = flags.get_int("procs", 10);
  if (jobs <= 0 || jobs > 100'000'000) {
    return fail("--jobs must be in [1, 100000000]");
  }
  if (procs <= 0 || procs > 1'000'000) {
    return fail("--procs must be in [1, 1000000]");
  }
  options.num_jobs = static_cast<std::size_t>(jobs);
  options.num_procs = static_cast<ProcId>(procs);
  options.min_size = flags.get_int("min-size", 1);
  options.max_size = flags.get_int("max-size", 100);
  if (options.min_size < 0 || options.min_size > options.max_size) {
    return fail("need 0 <= --min-size <= --max-size");
  }
  options.zipf_alpha = flags.get_double("zipf-alpha", 1.2);
  options.hotspot_fraction = flags.get_double("hotspot-fraction", 0.2);
  options.hotspot_mass = flags.get_double("hotspot-mass", 0.7);
  options.min_cost = flags.get_int("min-cost", 1);
  options.max_cost = flags.get_int("max-cost", 10);
  options.two_value_p = flags.get_int("p", 1);
  options.two_value_q = flags.get_int("q", 10);

  const std::string dist = flags.get_or("dist", "uniform");
  if (dist == "uniform") {
    options.size_dist = SizeDistribution::kUniform;
  } else if (dist == "bimodal") {
    options.size_dist = SizeDistribution::kBimodal;
  } else if (dist == "zipf") {
    options.size_dist = SizeDistribution::kZipf;
  } else if (dist == "exponential") {
    options.size_dist = SizeDistribution::kExponential;
  } else if (dist == "unit") {
    options.size_dist = SizeDistribution::kUnit;
  } else {
    return fail("unknown --dist '" + dist + "'");
  }

  const std::string placement = flags.get_or("placement", "random");
  if (placement == "random") {
    options.placement = PlacementPolicy::kRandom;
  } else if (placement == "hotspot") {
    options.placement = PlacementPolicy::kHotspot;
  } else if (placement == "zipf") {
    options.placement = PlacementPolicy::kZipfProcs;
  } else if (placement == "balanced") {
    options.placement = PlacementPolicy::kBalanced;
  } else if (placement == "single") {
    options.placement = PlacementPolicy::kSingleProc;
  } else {
    return fail("unknown --placement '" + placement + "'");
  }

  const std::string cost_model = flags.get_or("cost-model", "unit");
  if (cost_model == "unit") {
    options.cost_model = CostModel::kUnit;
  } else if (cost_model == "uniform") {
    options.cost_model = CostModel::kUniform;
  } else if (cost_model == "proportional") {
    options.cost_model = CostModel::kProportional;
  } else if (cost_model == "inverse") {
    options.cost_model = CostModel::kInverse;
  } else if (cost_model == "two-valued") {
    options.cost_model = CostModel::kTwoValued;
  } else {
    return fail("unknown --cost-model '" + cost_model + "'");
  }

  if (options.min_cost < 0 || options.min_cost > options.max_cost) {
    return fail("need 0 <= --min-cost <= --max-cost");
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto instance = random_instance(options, seed);
  std::cout << "# generated by lrb_gen: jobs=" << options.num_jobs
            << " procs=" << options.num_procs << " dist=" << dist
            << " placement=" << placement << " cost-model=" << cost_model
            << " seed=" << seed << "\n";
  write_instance(std::cout, instance);
  return 0;
}
