// lrb_load: closed- and open-loop load generator for lrb_serve.
//
// Spawns --connections client threads, each sending --requests Solve
// requests drawn from the shared mixed corpus (core/generators.h). With
// --rate 0 (default) each connection runs closed-loop (next request as
// soon as the reply lands); with --rate R the connections collectively
// pace an open loop at R requests/second against an absolute schedule,
// so a slow server shows up as queueing delay instead of a lower offered
// rate.
//
//   lrb_load --unix /tmp/lrb.sock --connections 4 --requests 64 --check
//   lrb_load --tcp 127.0.0.1:7733 --rate 200 --duration-s 10 --json out.json
//   lrb_load --unix /tmp/lrb.sock --trace /tmp/s.lrbd --check
//
// With --trace FILE the generator drives the SESSION path instead
// (wire v2, docs/streaming.md): each connection opens one streaming
// session and replays FILE's delta log (.lrbd, e.g. recorded with
// lrb_stream --record) through svc::run_session_stream. --check then
// byte-compares every ack — open, each delta frame (including full plan
// contents), stats, close — against stream::replay_serial_reference's
// transcript; pair it with --cache when the server runs --cache-mb.
//
// Flags (defaults in parentheses):
//   --unix PATH            connect over a Unix-domain socket
//   --tcp HOST:PORT        connect over TCP
//   --connections N (4)    concurrent connections, one thread each
//   --requests N (64)      requests per connection (ignored with --duration-s)
//   --duration-s S (0)     run for S seconds instead of a fixed count
//   --rate R (0)           total open-loop request rate; 0 = closed loop
//   --pipeline D (1)       keep up to D requests in flight per connection
//                          (closed loop only): replies are matched by the
//                          echoed request id, so one generator thread can
//                          saturate a multi-reactor server without waiting
//                          a full round-trip per request
//   --algo NAME (best-of)  solver-registry backend (canonical name or
//                          alias, docs/solvers.md): greedy, m-partition,
//                          best-of, ptas, lpt, local-search
//   --k-frac F (0.25)      move budget as a fraction of num_jobs
//   --deadline-ms N (0)    per-request deadline sent to the server; 0 = none
//   --seed N (1)           corpus seed
//   --repeat N (0)         repeated-instance preset: draw every request from a
//                          pool of N unique instances instead of a fresh one
//                          per request (the workload a --cache-mb server turns
//                          into cache hits); 0 = all distinct
//   --trace FILE           session mode: stream FILE's delta log, one
//                          session per connection (ignores the solve-loop
//                          flags: --requests/--rate/--pipeline/...)
//   --frame N (16)         session mode: deltas per SessionDelta frame
//   --reconnect-every N (0) session mode: drop the connection every N
//                          frames to exercise cross-reactor forwarding
//   --check                verify every SolveOk payload is byte-identical to
//                          engine::solve_serial_reference on the same instance
//   --cache                the server runs with --cache-mb: --check compares
//                          against engine::cached_serial_reference instead
//                          (see docs/caching.md)
//   --smoke                CI preset: 2 connections x 24 requests, implies
//                          closed loop (other flags still override)
//   --min-throughput R (0) exit non-zero unless achieved ok-replies/s >= R
//   --json FILE            write a lrb-svc-bench-v1 report
//   --version              print version/schema info and exit
//
// Exit status is non-zero on transport errors, any --check mismatch, or a
// missed --min-throughput gate. Shed replies (Overloaded/DeadlineExceeded)
// are counted and reported but are not failures: they are the server's
// backpressure working as designed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "solver/registry.h"
#include "stream/delta_log.h"
#include "svc/client.h"
#include "svc/session_client.h"
#include "svc/wire.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/version.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LoadConfig {
  std::string unix_path;
  std::string tcp_host;
  int tcp_port = -1;
  std::size_t connections = 4;
  std::size_t requests = 64;
  double duration_s = 0.0;
  double rate = 0.0;
  lrb::solver::SolverSpec spec;
  double k_frac = 0.25;
  std::uint32_t deadline_ms = 0;
  std::uint64_t seed = 1;
  std::size_t repeat = 0;
  std::size_t pipeline = 1;
  bool check = false;
  bool cache = false;
};

struct WorkerStats {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t shed_overloaded = 0;
  std::size_t shed_deadline = 0;
  std::size_t other_errors = 0;
  std::size_t mismatches = 0;
  std::vector<double> latencies_ms;
  std::vector<std::string> messages;  ///< first few failure details
};

int fail(const std::string& message) {
  std::cerr << "lrb_load: " << message << "\n";
  return 1;
}

std::optional<lrb::svc::Client> connect(const LoadConfig& config,
                                        std::string* error) {
  if (!config.unix_path.empty()) {
    return lrb::svc::Client::connect_unix(config.unix_path, error);
  }
  return lrb::svc::Client::connect_tcp(config.tcp_host, config.tcp_port,
                                       error);
}

void note(WorkerStats& stats, std::string message) {
  if (stats.messages.size() < 5) stats.messages.push_back(std::move(message));
}

/// Instance-pool index for request number `i` on connection `conn`. With
/// --repeat the pool wraps: requests across all connections draw from
/// `repeat` distinct instances, so a cache-enabled server sees a hit-heavy
/// steady state. Still deterministic in (conn, i, seed).
std::size_t instance_index(const LoadConfig& config, std::size_t conn,
                           std::size_t i) {
  std::size_t index = conn * 1000003 + i;
  if (config.repeat > 0) index %= config.repeat;
  return index;
}

lrb::svc::SolveRequest make_request(const LoadConfig& config,
                                    std::size_t index) {
  lrb::svc::SolveRequest request;
  request.spec = config.spec;
  request.deadline_ms = config.deadline_ms;
  request.instance = lrb::mixed_corpus_instance(index, config.seed);
  request.k = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             config.k_frac *
             static_cast<double>(request.instance.num_jobs())));
  return request;
}

/// --check reference for the request at pool index `index`: against a
/// --cache-mb server every reply — cold miss or warm hit — must match the
/// canonical-solve reference (docs/caching.md).
bool reply_matches_reference(const LoadConfig& config, std::size_t index,
                             const std::string& raw_payload) {
  const lrb::svc::SolveRequest request = make_request(config, index);
  const auto reference =
      config.cache
          ? lrb::engine::cached_serial_reference(request.spec,
                                                 request.instance, request.k)
          : lrb::engine::solve_serial_reference(request.spec,
                                                request.instance, request.k);
  return raw_payload == lrb::svc::encode_solve_reply_payload(reference);
}

/// One connection's worth of load. Instance indices are globally unique and
/// deterministic in (conn, i, seed) so --check can regenerate them.
void run_worker(const LoadConfig& config, std::size_t conn, Clock::time_point
                start, WorkerStats& stats) {
  std::string error;
  auto client = connect(config, &error);
  if (!client) {
    note(stats, "connect failed: " + error);
    ++stats.other_errors;
    return;
  }
  const double per_conn_rate =
      config.rate > 0.0
          ? config.rate / static_cast<double>(config.connections)
          : 0.0;
  const auto deadline_end =
      config.duration_s > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(config.duration_s))
          : Clock::time_point::max();

  for (std::size_t i = 0;; ++i) {
    if (config.duration_s > 0.0) {
      if (Clock::now() >= deadline_end) break;
    } else if (i >= config.requests) {
      break;
    }
    if (per_conn_rate > 0.0) {
      // Open loop: request i fires at its absolute scheduled time even if
      // earlier replies were slow (lateness becomes measured latency).
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(i) / per_conn_rate));
      std::this_thread::sleep_until(due);
      if (config.duration_s > 0.0 && Clock::now() >= deadline_end) break;
    }

    const std::size_t index = instance_index(config, conn, i);
    const lrb::svc::SolveRequest request = make_request(config, index);

    const auto t0 = Clock::now();
    ++stats.sent;
    auto outcome = client->solve(request, index, &error);
    const auto t1 = Clock::now();
    if (!outcome) {
      note(stats, "request " + std::to_string(index) + ": " + error);
      ++stats.other_errors;
      return;  // transport broken; stop this connection
    }
    if (outcome->server_error) {
      switch (outcome->server_error->code) {
        case lrb::svc::ErrorCode::kOverloaded:
          ++stats.shed_overloaded;
          break;
        case lrb::svc::ErrorCode::kDeadlineExceeded:
          ++stats.shed_deadline;
          break;
        default:
          ++stats.other_errors;
          note(stats, "request " + std::to_string(index) + ": server error " +
                          lrb::svc::error_code_name(
                              outcome->server_error->code) +
                          ": " + outcome->server_error->text);
          break;
      }
      continue;
    }
    ++stats.ok;
    stats.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (config.check &&
        !reply_matches_reference(config, index, outcome->raw_payload)) {
      ++stats.mismatches;
      note(stats, "request " + std::to_string(index) +
                      ": reply differs from serial reference");
    }
  }
}

/// Windowed variant (--pipeline D > 1): keep up to D Solves in flight on
/// this connection and match replies by the echoed request id. The id is
/// the RAW (pre---repeat) request number, so ids stay unique inside the
/// window while the instance pool still wraps; the instance is regenerated
/// from the id for --check.
void run_worker_pipelined(const LoadConfig& config, std::size_t conn,
                          Clock::time_point start, WorkerStats& stats) {
  std::string error;
  auto client = connect(config, &error);
  if (!client) {
    note(stats, "connect failed: " + error);
    ++stats.other_errors;
    return;
  }
  const auto deadline_end =
      config.duration_s > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(config.duration_s))
          : Clock::time_point::max();
  const auto more_to_send = [&](std::size_t i) {
    return config.duration_s > 0.0 ? Clock::now() < deadline_end
                                   : i < config.requests;
  };

  std::map<std::uint64_t, Clock::time_point> inflight;  // id -> send time
  std::size_t next = 0;
  for (;;) {
    while (inflight.size() < config.pipeline && more_to_send(next)) {
      const std::uint64_t id = conn * 1000003 + next;
      const lrb::svc::SolveRequest request = make_request(
          config, instance_index(config, conn, next));
      ++stats.sent;
      if (!client->send_frame(lrb::svc::MsgType::kSolve, id,
                              lrb::svc::encode_solve_request(request),
                              &error)) {
        note(stats, "request " + std::to_string(id) + ": " + error);
        ++stats.other_errors;
        return;  // transport broken; stop this connection
      }
      inflight.emplace(id, Clock::now());
      ++next;
    }
    if (inflight.empty()) break;

    lrb::svc::FrameHeader header;
    std::string payload;
    if (!client->recv_frame(&header, &payload, &error)) {
      note(stats, "recv: " + error);
      ++stats.other_errors;
      return;
    }
    const auto t1 = Clock::now();
    const auto sent_at = inflight.find(header.request_id);
    if (sent_at == inflight.end()) {
      note(stats, "reply for unknown request id " +
                      std::to_string(header.request_id));
      ++stats.other_errors;
      return;
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(t1 - sent_at->second)
            .count();
    inflight.erase(sent_at);

    if (header.type == lrb::svc::MsgType::kError) {
      const auto reply = lrb::svc::decode_error_payload(payload);
      const auto code =
          reply ? reply->code : lrb::svc::ErrorCode::kInternal;
      switch (code) {
        case lrb::svc::ErrorCode::kOverloaded:
          ++stats.shed_overloaded;
          break;
        case lrb::svc::ErrorCode::kDeadlineExceeded:
          ++stats.shed_deadline;
          break;
        default:
          ++stats.other_errors;
          note(stats, "request " + std::to_string(header.request_id) +
                          ": server error " +
                          lrb::svc::error_code_name(code) +
                          (reply ? ": " + reply->text : std::string{}));
          break;
      }
      continue;
    }
    if (header.type != lrb::svc::MsgType::kSolveOk) {
      note(stats, "request " + std::to_string(header.request_id) +
                      ": unexpected reply type");
      ++stats.other_errors;
      return;
    }
    ++stats.ok;
    stats.latencies_ms.push_back(latency_ms);
    if (config.check) {
      std::size_t index = static_cast<std::size_t>(header.request_id);
      if (config.repeat > 0) index %= config.repeat;
      if (!reply_matches_reference(config, index, payload)) {
        ++stats.mismatches;
        note(stats, "request " + std::to_string(header.request_id) +
                        ": reply differs from serial reference");
      }
    }
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_load");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {
        "unix", "tcp",        "connections",    "requests", "duration-s",
        "rate", "algo",       "k-frac",         "deadline-ms", "seed",
        "repeat", "pipeline", "check",          "cache",    "smoke",
        "trace", "frame",     "reconnect-every",
        "min-throughput", "json", "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  LoadConfig config;
  const bool smoke = flags.has("smoke");
  if (smoke) {
    config.connections = 2;
    config.requests = 24;
  }
  config.unix_path = flags.get_or("unix", "");
  if (const auto tcp = flags.get("tcp")) {
    const auto colon = tcp->rfind(':');
    if (colon == std::string::npos) return fail("--tcp wants HOST:PORT");
    config.tcp_host = tcp->substr(0, colon);
    try {
      config.tcp_port = std::stoi(tcp->substr(colon + 1));
    } catch (...) {
      return fail("bad --tcp port");
    }
  }
  if (config.unix_path.empty() && config.tcp_port < 0) {
    return fail("need one of --unix PATH / --tcp HOST:PORT");
  }
  if (!config.unix_path.empty() && config.tcp_port >= 0) {
    return fail("--unix and --tcp are mutually exclusive");
  }
  config.connections = static_cast<std::size_t>(flags.get_int(
      "connections", static_cast<std::int64_t>(config.connections)));
  config.requests = static_cast<std::size_t>(
      flags.get_int("requests", static_cast<std::int64_t>(config.requests)));
  config.duration_s = flags.get_double("duration-s", 0.0);
  config.rate = flags.get_double("rate", 0.0);
  config.k_frac = flags.get_double("k-frac", 0.25);
  config.deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms", 0));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t repeat = flags.get_int("repeat", 0);
  if (repeat < 0) return fail("--repeat must be >= 0");
  config.repeat = static_cast<std::size_t>(repeat);
  const std::int64_t pipeline = flags.get_int("pipeline", 1);
  if (pipeline < 1) return fail("--pipeline must be >= 1");
  config.pipeline = static_cast<std::size_t>(pipeline);
  config.check = flags.has("check");
  config.cache = flags.has("cache");
  const double min_throughput = flags.get_double("min-throughput", 0.0);
  const std::string algo_text = flags.get_or("algo", "best-of");
  if (!solver::parse_backend(algo_text, &config.spec.backend)) {
    return fail("unknown --algo '" + algo_text + "' (want " +
                solver::backend_list() + ")");
  }
  if (config.connections < 1) return fail("--connections must be >= 1");
  if (config.rate < 0.0) return fail("--rate must be >= 0");
  if (config.pipeline > 1 && config.rate > 0.0) {
    return fail("--pipeline needs the closed loop (--rate 0)");
  }

  // Session mode: replay a recorded delta log through the wire-v2 session
  // path, one concurrent session per connection (distinct session ids over
  // the same transcript, so the determinism check covers concurrency too).
  if (const auto trace_path = flags.get("trace")) {
    const std::size_t frame =
        static_cast<std::size_t>(flags.get_int("frame", 16));
    const std::size_t reconnect_every =
        static_cast<std::size_t>(flags.get_int("reconnect-every", 0));
    if (frame < 1) return fail("--frame must be >= 1");
    std::ifstream in(*trace_path);
    if (!in) return fail("cannot read '" + *trace_path + "'");
    std::string log_error;
    const auto log = stream::read_delta_log(in, &log_error);
    if (!log) {
      return fail("bad delta log '" + *trace_path + "': " + log_error);
    }
    const svc::Endpoint endpoint =
        config.unix_path.empty()
            ? svc::Endpoint::tcp(config.tcp_host, config.tcp_port)
            : svc::Endpoint::unix_socket(config.unix_path);
    std::vector<svc::StreamRunResult> sessions(config.connections);
    std::vector<std::thread> session_threads;
    session_threads.reserve(config.connections);
    for (std::size_t c = 0; c < config.connections; ++c) {
      session_threads.emplace_back([&, c] {
        svc::StreamRunOptions run;
        run.endpoint = endpoint;
        run.session_id = config.seed * 1000003 + c + 1;
        run.frame_size = frame;
        run.reconnect_every = reconnect_every;
        run.check = config.check;
        run.cached = config.cache;
        run.retry.jitter_seed = config.seed + c;
        sessions[c] = svc::run_session_stream(*log, run);
      });
    }
    for (auto& t : session_threads) t.join();

    std::size_t ok = 0, frames = 0, mismatches = 0;
    std::uint64_t applied = 0, rejected = 0, plans = 0;
    for (std::size_t c = 0; c < sessions.size(); ++c) {
      const auto& r = sessions[c];
      if (r.ok) {
        ++ok;
      } else {
        std::cerr << "lrb_load: session " << c << " failed: " << r.error
                  << "\n";
      }
      frames += r.frames_sent;
      mismatches += r.mismatches;
      applied += r.deltas_applied;
      rejected += r.deltas_rejected;
      plans += r.plans_emitted;
    }
    std::cout << "lrb_load: " << ok << "/" << sessions.size()
              << " sessions ok, " << frames << " frames, " << applied
              << " deltas applied, " << rejected << " rejected, " << plans
              << " plans\n";
    if (config.check) {
      std::cout << "lrb_load: check "
                << (mismatches == 0 && ok == sessions.size() ? "OK" : "FAIL")
                << " (" << mismatches
                << " reply mismatches vs serial replay)\n";
    }
    return ok == sessions.size() && mismatches == 0 ? 0 : 1;
  }

  std::vector<WorkerStats> per_worker(config.connections);
  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  const auto start = Clock::now();
  for (std::size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back(config.pipeline > 1 ? run_worker_pipelined
                                             : run_worker,
                         std::cref(config), c, start,
                         std::ref(per_worker[c]));
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  for (const auto& w : per_worker) {
    total.sent += w.sent;
    total.ok += w.ok;
    total.shed_overloaded += w.shed_overloaded;
    total.shed_deadline += w.shed_deadline;
    total.other_errors += w.other_errors;
    total.mismatches += w.mismatches;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              w.latencies_ms.begin(), w.latencies_ms.end());
    for (const auto& m : w.messages) {
      if (total.messages.size() < 10) total.messages.push_back(m);
    }
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const auto pct = [&](double q) {
    return percentile_sorted(total.latencies_ms, q);
  };
  const double throughput =
      elapsed_s > 0.0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;

  std::cout << "lrb_load: " << total.sent << " sent, " << total.ok
            << " ok, " << total.shed_overloaded << " overloaded, "
            << total.shed_deadline << " deadline, " << total.other_errors
            << " errors in " << elapsed_s << " s (" << throughput
            << " ok/s)\n";
  if (!total.latencies_ms.empty()) {
    std::cout << "lrb_load: latency ms p50=" << pct(0.5)
              << " p90=" << pct(0.9) << " p99=" << pct(0.99)
              << " max=" << total.latencies_ms.back() << "\n";
  }
  if (config.check) {
    std::cout << "lrb_load: check " << (total.mismatches == 0 ? "OK" : "FAIL")
              << " (" << total.ok << " replies compared, " << total.mismatches
              << " mismatches)\n";
  }
  for (const auto& m : total.messages) std::cerr << "lrb_load: " << m << "\n";

  if (const auto path = flags.get("json")) {
    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"" << kSvcBenchSchema << "\",\n"
        << "  \"tool\": \"lrb_load\",\n"
        << "  \"config\": {\n"
        << "    \"transport\": \""
        << (config.unix_path.empty() ? "tcp" : "unix") << "\",\n"
        << "    \"connections\": " << config.connections << ",\n"
        << "    \"requests_per_connection\": " << config.requests << ",\n"
        << "    \"duration_s\": " << config.duration_s << ",\n"
        << "    \"rate\": " << config.rate << ",\n"
        << "    \"algo\": \"" << solver::backend_name(config.spec.backend)
        << "\",\n"
        << "    \"k_frac\": " << config.k_frac << ",\n"
        << "    \"deadline_ms\": " << config.deadline_ms << ",\n"
        << "    \"seed\": " << config.seed << ",\n"
        << "    \"repeat\": " << config.repeat << ",\n"
        << "    \"pipeline\": " << config.pipeline << ",\n"
        << "    \"cache\": " << (config.cache ? "true" : "false") << ",\n"
        << "    \"check\": " << (config.check ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"results\": {\n"
        << "    \"sent\": " << total.sent << ",\n"
        << "    \"ok\": " << total.ok << ",\n"
        << "    \"shed_overloaded\": " << total.shed_overloaded << ",\n"
        << "    \"shed_deadline\": " << total.shed_deadline << ",\n"
        << "    \"errors\": " << total.other_errors << ",\n"
        << "    \"mismatches\": " << total.mismatches << ",\n"
        << "    \"elapsed_s\": " << elapsed_s << ",\n"
        << "    \"throughput_ok_per_s\": " << throughput << ",\n"
        << "    \"latency_ms\": {\n"
        << "      \"p50\": " << pct(0.5) << ",\n"
        << "      \"p90\": " << pct(0.9) << ",\n"
        << "      \"p99\": " << pct(0.99) << ",\n"
        << "      \"max\": "
        << (total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back())
        << "\n"
        << "    }\n"
        << "  }\n"
        << "}\n";
    std::ofstream file(*path);
    if (!file) return fail("cannot write '" + json_escape(*path) + "'");
    file << out.str();
  }

  if (total.other_errors > 0) return 1;
  if (total.mismatches > 0) return 1;
  if (total.ok == 0) return fail("no successful replies");
  if (min_throughput > 0.0 && throughput < min_throughput) {
    return fail("throughput " + std::to_string(throughput) +
                " ok/s below gate " + std::to_string(min_throughput));
  }
  return 0;
}
