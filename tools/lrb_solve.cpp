// lrb_solve: run a rebalancing algorithm on an instance file.
//
//   lrb_solve instance.lrb --algo m-partition --k 10
//   lrb_solve instance.lrb --algo cost-partition --budget 500
//   lrb_solve instance.lrb --algo exact --k 4 --out assignment.lrb
//   lrb_solve instance.lrb --algo greedy --k 6 --plan      # print migrations
//
// Reads the instance from the positional path ("-" = stdin). Prints a
// before/after report to stderr and the assignment to --out (or stdout).
//
// Algorithms: none | greedy | m-partition | mp-ls | best-of | lpt-full |
//             cost-greedy | cost-partition | ptas | shmoys-tardos | exact
// Budgets: --k for unit-cost algorithms (default n), --budget for cost-aware
// ones (default: the k value), --eps for the PTAS (default 0.5).

#include <fstream>
#include <iostream>
#include <string>

#include "algo/cost_greedy.h"
#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/lpt.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "algo/rebalancer.h"
#include "core/analysis.h"
#include "core/plan.h"
#include "core/io.h"
#include "core/lower_bounds.h"
#include "lp/gap.h"
#include "util/flags.h"
#include "util/version.h"
#include "util/timer.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_solve: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_solve");
    return 0;
  }
  if (flags.positional().size() != 1) {
    return fail("usage: lrb_solve <instance.lrb|-> --algo NAME [--k K] "
                "[--budget B] [--eps E] [--out FILE]");
  }

  std::optional<Instance> instance;
  std::string error;
  if (flags.positional()[0] == "-") {
    instance = read_instance(std::cin, &error);
  } else {
    std::ifstream in(flags.positional()[0]);
    if (!in) return fail("cannot open " + flags.positional()[0]);
    instance = read_instance(in, &error);
  }
  if (!instance) return fail("parse error: " + error);

  const auto n = static_cast<std::int64_t>(instance->num_jobs());
  const std::int64_t k = flags.get_int("k", n);
  const Cost budget = flags.get_int("budget", k);
  const double eps = flags.get_double("eps", 0.5);
  const std::string algo = flags.get_or("algo", "m-partition");

  Timer timer;
  RebalanceResult result;
  if (algo == "none") {
    result = no_move_result(*instance);
  } else if (algo == "greedy") {
    result = greedy_rebalance(*instance, k);
  } else if (algo == "m-partition") {
    result = m_partition_rebalance(*instance, k);
  } else if (algo == "mp-ls") {
    result = m_partition_ls_rebalance(*instance, k);
  } else if (algo == "best-of") {
    result = best_of_rebalance(*instance, k);
  } else if (algo == "lpt-full") {
    result = lpt_schedule(*instance);
  } else if (algo == "cost-greedy") {
    result = cost_greedy_rebalance(*instance, budget);
  } else if (algo == "cost-partition") {
    CostPartitionOptions options;
    options.budget = budget;
    result = cost_partition_rebalance(*instance, options);
  } else if (algo == "ptas") {
    PtasOptions options;
    options.budget = budget;
    options.eps = eps;
    const auto ptas = ptas_rebalance(*instance, options);
    if (!ptas.success) {
      return fail("PTAS state limit exceeded; raise --eps or shrink the "
                  "instance");
    }
    result = ptas.result;
  } else if (algo == "shmoys-tardos") {
    result = st_rebalance(*instance, budget);
  } else if (algo == "exact") {
    ExactOptions options;
    options.max_moves = k;
    options.budget = flags.has("budget") ? budget : kInfCost;
    const auto exact = exact_rebalance(*instance, options);
    if (!exact.proven_optimal) {
      std::cerr << "lrb_solve: warning: node limit hit; result may be "
                   "suboptimal\n";
    }
    result = exact.best;
  } else {
    return fail("unknown --algo '" + algo + "'");
  }
  const double elapsed_ms = timer.millis();

  const auto before = analyze_initial(*instance);
  const auto after = analyze(*instance, result.assignment);
  std::cerr << "algorithm:    " << algo << "\n"
            << "jobs/procs:   " << instance->num_jobs() << " / "
            << instance->num_procs << "\n"
            << "makespan:     " << before.makespan << " -> " << after.makespan
            << "\n"
            << "imbalance:    " << before.imbalance << " -> "
            << after.imbalance << "\n"
            << "moves:        " << result.moves << " (k = " << k << ")\n"
            << "cost:         " << result.cost << " (budget = " << budget
            << ")\n"
            << "lower bound:  " << combined_lower_bound(*instance, k) << "\n"
            << "time:         " << elapsed_ms << " ms\n";

  if (flags.has("plan")) {
    // Print the executable migration plan (monotone order) to stderr.
    const auto plan = make_plan(*instance, result.assignment);
    std::cerr << "plan:         " << plan.steps.size()
              << " migrations, peak makespan " << plan.peak_makespan << "\n";
    for (const auto& mig : plan.steps) {
      std::cerr << "  move job " << mig.job << " (size " << mig.size
                << ", cost " << mig.cost << "): P" << mig.from << " -> P"
                << mig.to << "\n";
    }
  }

  if (const auto out_path = flags.get("out")) {
    std::ofstream out(*out_path);
    if (!out) return fail("cannot write " + *out_path);
    write_assignment(out, result.assignment);
  } else {
    write_assignment(std::cout, result.assignment);
  }
  return 0;
}
