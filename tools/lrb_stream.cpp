// lrb_stream: driver and determinism checker for streaming rebalance
// sessions (wire v2, docs/streaming.md).
//
// By default it spins up an IN-PROCESS multi-reactor server, converts
// seeded online traces (src/online/trace) into delta logs, streams them as
// concurrent sessions, and — with --check — byte-compares every server ack
// (open, each delta frame, stats, close) against the serial replay
// reference (stream::replay_serial_reference's solver on a mirrored
// session). --reconnect-every forces mid-session reconnects, so frames
// land on reactors that do not own the session and the cross-reactor
// forwarding path is exercised under the same byte-compare.
//
//   lrb_stream --smoke --check --reactors 4
//   lrb_stream --sessions 8 --deltas 500 --frame 16 --check --cache-mb 8
//   lrb_stream --record /tmp/s.lrbd --deltas 200 --seed 7
//   lrb_stream --replay /tmp/s.lrbd --check
//   lrb_stream --unix /tmp/lrb.sock --sessions 4 --check   # external server
//
// Flags (defaults in parentheses):
//   --sessions N (4)       concurrent sessions, one client thread each
//   --deltas N (200)       deltas per session (trace events)
//   --frame N (16)         deltas per SessionDelta frame
//   --algo NAME (best-of)  replan backend (solver registry, canonical name
//                          or alias, docs/solvers.md): greedy, m-partition,
//                          best-of, ptas, lpt, local-search
//   --move-frac F (0.25)   replan move budget as a fraction of live jobs
//   --imbalance R (1.5)    imbalance trigger ratio (0 disables)
//   --every N (32)         delta-count trigger (0 disables)
//   --depart-frac F (0.4)  departure fraction of the generated traces
//   --reconnect-every N (0) drop the connection every N frames (forwarding)
//   --seed N (1)           trace/corpus seed
//   --check                byte-compare every ack vs the serial reference
//   --record FILE          write session 0's delta log (.lrbd) and exit
//   --replay FILE          stream FILE's delta log as a single session
//   --unix PATH | --tcp HOST:PORT   target an external server (default:
//                          in-process); with an external --cache-mb server
//                          pass --cache so --check uses the cached reference
//   --reactors N (2)       in-process server: event-loop shards
//   --engine-workers N (2) in-process server: engine tick workers
//   --workers N (0)        in-process server: solver pool (0 = hw)
//   --cache-mb N (0)       in-process server: solution cache budget
//   --smoke                CI preset: 2 sessions x 60 deltas, frame 7,
//                          reconnect every 3 frames (flags still override)
//   --version              print version/schema info and exit
//
// Exit status is non-zero on transport give-up, any rejected lifecycle
// call, or any --check mismatch.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/generators.h"
#include "online/trace.h"
#include "solver/registry.h"
#include "stream/delta_log.h"
#include "stream/replay.h"
#include "svc/server.h"
#include "svc/session_client.h"
#include "util/flags.h"
#include "util/version.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_stream: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_stream");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {
        "sessions", "deltas",   "frame",     "algo",   "move-frac",
        "imbalance", "every",   "depart-frac", "reconnect-every", "seed",
        "check",    "record",   "replay",    "unix",   "tcp",
        "cache",    "reactors", "engine-workers", "workers", "cache-mb",
        "smoke",    "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  const bool smoke = flags.has("smoke");
  std::size_t sessions = static_cast<std::size_t>(
      flags.get_int("sessions", smoke ? 2 : 4));
  const std::size_t deltas = static_cast<std::size_t>(
      flags.get_int("deltas", smoke ? 60 : 200));
  const std::size_t frame = static_cast<std::size_t>(
      flags.get_int("frame", smoke ? 7 : 16));
  const std::size_t reconnect_every = static_cast<std::size_t>(
      flags.get_int("reconnect-every", smoke ? 3 : 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool check = flags.has("check");
  if (sessions < 1) return fail("--sessions must be >= 1");
  if (frame < 1) return fail("--frame must be >= 1");

  stream::TriggerConfig trigger;
  const std::string algo_text = flags.get_or("algo", "best-of");
  if (!solver::parse_backend(algo_text, &trigger.spec.backend)) {
    return fail("unknown --algo '" + algo_text + "' (want " +
                solver::backend_list() + ")");
  }
  trigger.move_frac = flags.get_double("move-frac", 0.25);
  trigger.imbalance_ratio = flags.get_double("imbalance", 1.5);
  trigger.delta_count =
      static_cast<std::uint32_t>(flags.get_int("every", 32));
  if (const auto invalid = stream::validate_trigger(trigger)) {
    return fail("invalid trigger: " + *invalid);
  }
  const double depart_frac = flags.get_double("depart-frac", 0.4);

  // One deterministic delta log per session index.
  const auto make_log = [&](std::size_t index) {
    online::TraceOptions trace_options;
    trace_options.num_events = deltas;
    trace_options.departure_fraction = depart_frac;
    const auto events = online::random_trace(trace_options, seed + index);
    return stream::delta_log_from_trace(
        mixed_corpus_instance(index, seed), events, trigger);
  };

  if (const auto path = flags.get("record")) {
    std::ofstream out(*path);
    if (!out) return fail("cannot write '" + *path + "'");
    stream::write_delta_log(out, make_log(0));
    std::cout << "lrb_stream: recorded " << deltas << " deltas to " << *path
              << "\n";
    return 0;
  }

  std::vector<stream::DeltaLog> logs;
  if (const auto path = flags.get("replay")) {
    std::ifstream in(*path);
    if (!in) return fail("cannot read '" + *path + "'");
    std::string error;
    auto log = stream::read_delta_log(in, &error);
    if (!log) return fail("bad delta log '" + *path + "': " + error);
    logs.push_back(std::move(*log));
    sessions = 1;
  } else {
    logs.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) logs.push_back(make_log(s));
  }

  // Target server: external when --unix/--tcp is given, else in-process.
  svc::Endpoint endpoint;
  bool cached = flags.has("cache");
  std::unique_ptr<svc::Server> server;
  std::thread server_thread;
  const std::string external_unix = flags.get_or("unix", "");
  const auto external_tcp = flags.get("tcp");
  if (!external_unix.empty() && external_tcp) {
    return fail("--unix and --tcp are mutually exclusive");
  }
  if (!external_unix.empty()) {
    endpoint = svc::Endpoint::unix_socket(external_unix);
  } else if (external_tcp) {
    const auto colon = external_tcp->rfind(':');
    if (colon == std::string::npos) return fail("--tcp wants HOST:PORT");
    int port = -1;
    try {
      port = std::stoi(external_tcp->substr(colon + 1));
    } catch (...) {
      return fail("bad --tcp port");
    }
    endpoint = svc::Endpoint::tcp(external_tcp->substr(0, colon), port);
  } else {
    svc::ServerOptions options;
    std::ostringstream path;
    path << "/tmp/lrb_stream." << getpid() << ".sock";
    options.unix_path = path.str();
    options.reactors =
        static_cast<std::size_t>(flags.get_int("reactors", 2));
    options.engine_workers =
        static_cast<std::size_t>(flags.get_int("engine-workers", 2));
    options.engine.workers =
        static_cast<std::size_t>(flags.get_int("workers", 0));
    options.cache_bytes =
        static_cast<std::size_t>(flags.get_int("cache-mb", 0)) << 20;
    cached = options.cache_bytes > 0;
    server = std::make_unique<svc::Server>(std::move(options));
    std::string error;
    if (!server->start(&error)) return fail("server start: " + error);
    endpoint = svc::Endpoint::unix_socket(server->options().unix_path);
    server_thread = std::thread([&server] { server->run(); });
  }

  std::vector<svc::StreamRunResult> results(logs.size());
  std::vector<std::thread> threads;
  threads.reserve(logs.size());
  for (std::size_t s = 0; s < logs.size(); ++s) {
    threads.emplace_back([&, s] {
      svc::StreamRunOptions run;
      run.endpoint = endpoint;
      run.session_id = seed * 1000003 + s + 1;
      run.frame_size = frame;
      run.reconnect_every = reconnect_every;
      run.check = check;
      run.cached = cached;
      run.retry.jitter_seed = seed + s;
      results[s] = svc::run_session_stream(logs[s], run);
    });
  }
  for (auto& t : threads) t.join();

  if (server) {
    server->notify_signal();
    server_thread.join();
  }

  std::size_t ok = 0, frames = 0, mismatches = 0;
  std::uint64_t applied = 0, rejected = 0, plans = 0, moves = 0;
  for (std::size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    if (r.ok) {
      ++ok;
    } else {
      std::cerr << "lrb_stream: session " << s << " failed: " << r.error
                << "\n";
    }
    frames += r.frames_sent;
    mismatches += r.mismatches;
    applied += r.deltas_applied;
    rejected += r.deltas_rejected;
    plans += r.plans_emitted;
    moves += r.moves_total;
  }
  std::cout << "lrb_stream: " << ok << "/" << results.size()
            << " sessions ok, " << frames << " frames, " << applied
            << " deltas applied, " << rejected << " rejected, " << plans
            << " plans, " << moves << " moves\n";
  if (check) {
    std::cout << "lrb_stream: check "
              << (mismatches == 0 && ok == results.size() ? "OK" : "FAIL")
              << " (" << mismatches << " reply mismatches vs serial replay)"
              << "\n";
  }
  return ok == results.size() && mismatches == 0 ? 0 : 1;
}
