// lrb_fuzz: seeded differential fuzzer over the generator families.
//
//   lrb_fuzz --seed 1 --iters 2000
//   lrb_fuzz --seed 7 --time-budget 30 --corpus fuzz-corpus
//   lrb_fuzz --seed 1 --iters 300 --mutant --expect-violation
//            --expect-max-jobs 6        # self-test: the mutant is caught
//
// Each iteration draws a random instance (mixing every size distribution,
// placement policy and cost model, plus the paper's tight families with
// their known optima), runs the differential harness (check/differential)
// over the whole algorithm roster, and certifies every result. On a
// violation the instance is minimized with the delta-debugging shrinker
// (check/shrink) and written to the corpus directory as a replayable .lrb
// file (see docs/testing.md). Exits nonzero iff any violation was found.
//
// Flags (defaults in parentheses):
//   --seed S (1)          base seed; iteration i uses splitmix64(seed, i)
//   --iters N (1000)      iterations (0 = until the time budget)
//   --time-budget SEC (0) stop after SEC seconds (0 = no limit)
//   --corpus DIR (lrb_fuzz_corpus)   where minimized repros are written
//   --max-jobs N (40)     medium-tier instance size cap
//   --max-procs M (8)     medium-tier processor cap
//   --mutant              add the intentionally broken test rebalancer
//   --expect-violation    invert the exit code: succeed iff a violation was
//                         found (and every repro obeyed --expect-max-jobs)
//   --expect-max-jobs N (0)  with --expect-violation: require every
//                         minimized repro to have at most N jobs
//   --verbose             print every violation in full

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/shrink.h"
#include "core/generators.h"
#include "core/io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace lrb;

int fail(const std::string& message) {
  std::cerr << "lrb_fuzz: " << message << "\n";
  return 2;
}

/// Intentionally broken GREEDY (enabled by --mutant): Step 1 removes the
/// largest job from the max-loaded processor as the paper prescribes, but
/// Step 2 reinserts onto the currently MAX-loaded processor instead of the
/// min-loaded one - breaking the (2 - 1/m) guarantee the certifier checks.
RebalanceResult mutant_greedy(const Instance& instance, std::int64_t k) {
  Assignment assignment = instance.initial;
  auto load = instance.initial_loads();
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] > instance.sizes[b];
      }
      return a < b;
    });
  }
  std::vector<std::size_t> next(instance.num_procs, 0);
  std::vector<JobId> removed;
  for (std::int64_t step = 0; step < k; ++step) {
    ProcId heaviest = 0;
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[heaviest]) heaviest = p;
    }
    if (next[heaviest] >= by_proc[heaviest].size()) break;
    const JobId victim = by_proc[heaviest][next[heaviest]++];
    load[heaviest] -= instance.sizes[victim];
    removed.push_back(victim);
  }
  for (const JobId job : removed) {
    ProcId target = 0;  // the bug: should be the MIN-loaded processor
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[target]) target = p;
    }
    assignment[job] = target;
    load[target] += instance.sizes[job];
  }
  return finalize_result(instance, std::move(assignment));
}

struct FuzzCase {
  Instance instance;
  DifferentialOptions options;
  std::string family;
};

FuzzCase draw_case(Rng& rng, std::int64_t max_jobs, std::int64_t max_procs) {
  FuzzCase out;
  const auto roll = rng.uniform_int(0, 99);

  if (roll < 4) {
    // Theorem 1's tight family: GREEDY sits exactly on its bound.
    const auto m = static_cast<ProcId>(rng.uniform_int(2, 5));
    auto family = greedy_tight_instance(m);
    out.instance = std::move(family.instance);
    out.options.k = family.k;
    out.options.known_opt = family.opt;
    out.options.run_cost_algorithms = false;
    out.family = "tight-greedy";
    return out;
  }
  if (roll < 6) {
    auto family = partition_tight_instance();
    out.instance = std::move(family.instance);
    out.options.k = family.k;
    out.options.known_opt = family.opt;
    out.options.run_cost_algorithms = false;
    out.family = "tight-partition";
    return out;
  }

  GeneratorOptions gen;
  const bool small = roll < 70;
  if (small) {
    gen.num_jobs = static_cast<std::size_t>(rng.uniform_int(0, 12));
    gen.num_procs = static_cast<ProcId>(rng.uniform_int(1, 4));
    gen.max_size = rng.uniform_int(1, 20);
  } else {
    gen.num_jobs =
        static_cast<std::size_t>(rng.uniform_int(13, std::max<std::int64_t>(
                                                         13, max_jobs)));
    gen.num_procs = static_cast<ProcId>(
        rng.uniform_int(2, std::max<std::int64_t>(2, max_procs)));
    const std::int64_t magnitudes[] = {10, 1000, 1'000'000,
                                       (std::int64_t{1} << 32)};
    gen.max_size = magnitudes[rng.uniform_int(0, 3)];
  }
  gen.min_size = rng.bernoulli(0.2) ? 0 : 1;
  gen.size_dist = static_cast<SizeDistribution>(rng.uniform_int(0, 4));
  gen.placement = static_cast<PlacementPolicy>(rng.uniform_int(0, 4));
  gen.cost_model = static_cast<CostModel>(rng.uniform_int(0, 4));
  gen.max_cost = rng.uniform_int(1, 12);

  const auto n = static_cast<std::int64_t>(gen.num_jobs);
  out.instance = random_instance(gen, rng());
  out.options.k = rng.uniform_int(0, n + 2);
  out.options.budget = rng.uniform_int(0, 2 * n + 4);
  out.family = small ? "small-random" : "medium-random";
  return out;
}

void write_repro(const std::filesystem::path& path, const Instance& instance,
                 const DifferentialOptions& options,
                 const DifferentialReport& report, std::uint64_t seed,
                 std::uint64_t iteration, const std::string& family) {
  std::ofstream out(path);
  out << "# lrb_fuzz minimized repro (replay: see docs/testing.md)\n"
      << "# seed=" << seed << " iteration=" << iteration << " family="
      << family << "\n"
      << "# k=" << options.k;
  if (options.budget != kInfCost) out << " budget=" << options.budget;
  if (options.known_opt > 0) out << " known-opt=" << options.known_opt;
  out << "\n";
  for (const auto& finding : report.findings) {
    for (const auto& violation : finding.certificate.violations) {
      out << "# violation: " << finding.algorithm << " ["
          << to_string(violation.kind) << "] " << violation.detail << "\n";
    }
  }
  write_instance(out, instance);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  for (const auto& key : flags.keys()) {
    static const char* known[] = {"seed",      "iters",           "time-budget",
                                  "corpus",    "max-jobs",        "max-procs",
                                  "mutant",    "expect-violation",
                                  "expect-max-jobs", "verbose"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t iters = flags.get_int("iters", 1000);
  const double time_budget = flags.get_double("time-budget", 0.0);
  const std::string corpus = flags.get_or("corpus", "lrb_fuzz_corpus");
  const std::int64_t max_jobs = flags.get_int("max-jobs", 40);
  const std::int64_t max_procs = flags.get_int("max-procs", 8);
  const bool with_mutant = flags.has("mutant");
  const bool expect_violation = flags.has("expect-violation");
  const std::int64_t expect_max_jobs = flags.get_int("expect-max-jobs", 0);
  const bool verbose = flags.has("verbose");
  if (iters <= 0 && time_budget <= 0.0) {
    return fail("need --iters > 0 or --time-budget > 0");
  }

  Timer timer;
  std::int64_t violations = 0;
  std::size_t largest_repro = 0;
  bool corpus_ready = false;
  std::uint64_t iteration = 0;

  for (;; ++iteration) {
    if (iters > 0 && iteration >= static_cast<std::uint64_t>(iters)) break;
    if (time_budget > 0.0 && timer.millis() >= time_budget * 1000.0) break;

    std::uint64_t stream = seed;
    (void)splitmix64(stream);
    Rng rng(stream ^ (iteration * 0x9e3779b97f4a7c15ULL));
    FuzzCase fuzz_case = draw_case(rng, max_jobs, max_procs);
    if (with_mutant) {
      fuzz_case.options.extra.push_back(CheckedRebalancer{
          NamedRebalancer{"mutant-greedy", mutant_greedy},
          [](const Instance& inst, std::int64_t k, const RebalanceResult& r) {
            return roster_certify_options("greedy", inst, k, r);
          }});
    }

    const auto report = differential_check(fuzz_case.instance,
                                           fuzz_case.options);
    if (report.ok()) continue;

    ++violations;
    std::cerr << "lrb_fuzz: violation at iteration " << iteration << " ("
              << fuzz_case.family << ", n=" << fuzz_case.instance.num_jobs()
              << ", m=" << fuzz_case.instance.num_procs
              << ", k=" << fuzz_case.options.k << ")\n";
    if (verbose) std::cerr << report.to_string() << "\n";

    // Minimize: any of the original (algorithm, kind) signatures counts as
    // the same failure.
    const auto signatures = report.signatures();
    const auto& shrink_options_ref = fuzz_case.options;
    const auto still_fails = [&](const Instance& candidate) {
      const auto candidate_report =
          differential_check(candidate, shrink_options_ref);
      for (const auto& sig : candidate_report.signatures()) {
        for (const auto& wanted : signatures) {
          if (sig == wanted) return true;
        }
      }
      return false;
    };
    ShrinkOptions shrink_options;
    shrink_options.max_evaluations = 2'000;
    const auto minimized =
        shrink_instance(fuzz_case.instance, still_fails, shrink_options);
    largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
    const auto minimized_report =
        differential_check(minimized.instance, fuzz_case.options);

    if (!corpus_ready) {
      std::error_code ec;
      std::filesystem::create_directories(corpus, ec);
      if (ec) return fail("cannot create corpus dir " + corpus);
      corpus_ready = true;
    }
    const auto path = std::filesystem::path(corpus) /
                      ("repro_" + std::to_string(iteration) + ".lrb");
    write_repro(path, minimized.instance, fuzz_case.options, minimized_report,
                seed, iteration, fuzz_case.family);
    std::cerr << "lrb_fuzz: minimized to n=" << minimized.instance.num_jobs()
              << ", m=" << minimized.instance.num_procs << " -> "
              << path.string() << "\n";
  }

  std::cout << "lrb_fuzz: " << iteration << " iterations, " << violations
            << " violation(s) in " << timer.millis() / 1000.0 << " s\n";

  if (expect_violation) {
    if (violations == 0) {
      std::cerr << "lrb_fuzz: expected a violation but found none\n";
      return 1;
    }
    if (expect_max_jobs > 0 &&
        largest_repro > static_cast<std::size_t>(expect_max_jobs)) {
      std::cerr << "lrb_fuzz: a minimized repro has " << largest_repro
                << " jobs, above the expected bound " << expect_max_jobs
                << "\n";
      return 1;
    }
    return 0;
  }
  return violations == 0 ? 0 : 1;
}
