// lrb_fuzz: seeded differential fuzzer over the generator families.
//
//   lrb_fuzz --seed 1 --iters 2000
//   lrb_fuzz --seed 7 --time-budget 30 --corpus fuzz-corpus
//   lrb_fuzz --seed 1 --iters 300 --mutant --expect-violation
//            --expect-max-jobs 6        # self-test: the mutant is caught
//
// Each iteration draws a random instance (mixing every size distribution,
// placement policy and cost model, plus the paper's tight families with
// their known optima), runs the differential harness (check/differential)
// over the whole algorithm roster, and certifies every result. On a
// violation the instance is minimized with the delta-debugging shrinker
// (check/shrink) and written to the corpus directory as a replayable .lrb
// file (see docs/testing.md). Exits nonzero iff any violation was found.
//
// Flags (defaults in parentheses):
//   --seed S (1)          base seed; iteration i uses splitmix64(seed, i)
//   --iters N (1000)      iterations (0 = until the time budget)
//   --time-budget SEC (0) stop after SEC seconds (0 = no limit)
//   --corpus DIR (lrb_fuzz_corpus)   where minimized repros are written
//   --max-jobs N (40)     medium-tier instance size cap
//   --max-procs M (8)     medium-tier processor cap
//   --mutant              add the intentionally broken test rebalancer
//   --expect-violation    invert the exit code: succeed iff a violation was
//                         found (and every repro obeyed --expect-max-jobs)
//   --expect-max-jobs N (0)  with --expect-violation: require every
//                         minimized repro to have at most N jobs
//   --jobs N (1)          run iterations in waves of N on a thread pool;
//                         also adds the engine's parallel M-PARTITION to
//                         the roster (certified like m-partition) and
//                         bit-compares it against the serial scan, so the
//                         concurrent path is differentially fuzzed too.
//                         Violations are still shrunk and written serially,
//                         in iteration order.
//   --algo NAME (roster)  "roster" is the default differential harness over
//                         every algorithm. "ptas" instead fuzzes the PTAS
//                         DP engine against the retained reference
//                         implementation (check/ptas_reference): every
//                         guess of the shared scan sequence must match on
//                         acceptance, cost, state count, and reconstructed
//                         assignment, and the full serial / scratch-reuse /
//                         wave-parallel solves must be bit-identical.
//                         A registry backend name ("lpt", "local-search")
//                         instead fuzzes that backend through the solver
//                         registry: the registry solve must be
//                         bit-identical to the direct algorithm entry
//                         point AND to the scratch/pool-context solve, and
//                         the result must pass its roster certificate
//                         (check/certify). Violations are shrunk and
//                         written to the corpus like every other mode.
//   --cache               cache differential mode: every drawn case is
//                         solved through one process-long cache-enabled
//                         BatchSolver twice (cold-ish, then warm) plus once
//                         more under a random job/processor relabeling, and
//                         each reply is byte-compared against
//                         engine::cached_serial_reference. Violations are
//                         shrunk (each shrink candidate gets a FRESH
//                         cache-enabled solver, so cold and warm paths are
//                         both replayed) and written to the corpus.
//   --verbose             print every violation in full

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algo/local_search.h"
#include "algo/lpt.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "check/certify.h"
#include "check/differential.h"
#include "check/ptas_reference.h"
#include "check/shrink.h"
#include "core/generators.h"
#include "core/io.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/version.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace lrb;

int fail(const std::string& message) {
  std::cerr << "lrb_fuzz: " << message << "\n";
  return 2;
}

/// Intentionally broken GREEDY (enabled by --mutant): Step 1 removes the
/// largest job from the max-loaded processor as the paper prescribes, but
/// Step 2 reinserts onto the currently MAX-loaded processor instead of the
/// min-loaded one - breaking the (2 - 1/m) guarantee the certifier checks.
RebalanceResult mutant_greedy(const Instance& instance, std::int64_t k) {
  Assignment assignment = instance.initial;
  auto load = instance.initial_loads();
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] > instance.sizes[b];
      }
      return a < b;
    });
  }
  std::vector<std::size_t> next(instance.num_procs, 0);
  std::vector<JobId> removed;
  for (std::int64_t step = 0; step < k; ++step) {
    ProcId heaviest = 0;
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[heaviest]) heaviest = p;
    }
    if (next[heaviest] >= by_proc[heaviest].size()) break;
    const JobId victim = by_proc[heaviest][next[heaviest]++];
    load[heaviest] -= instance.sizes[victim];
    removed.push_back(victim);
  }
  for (const JobId job : removed) {
    ProcId target = 0;  // the bug: should be the MIN-loaded processor
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[target]) target = p;
    }
    assignment[job] = target;
    load[target] += instance.sizes[job];
  }
  return finalize_result(instance, std::move(assignment));
}

struct FuzzCase {
  Instance instance;
  DifferentialOptions options;
  std::string family;
};

FuzzCase draw_case(Rng& rng, std::int64_t max_jobs, std::int64_t max_procs) {
  FuzzCase out;
  const auto roll = rng.uniform_int(0, 99);

  if (roll < 4) {
    // Theorem 1's tight family: GREEDY sits exactly on its bound.
    const auto m = static_cast<ProcId>(rng.uniform_int(2, 5));
    auto family = greedy_tight_instance(m);
    out.instance = std::move(family.instance);
    out.options.k = family.k;
    out.options.known_opt = family.opt;
    out.options.run_cost_algorithms = false;
    out.family = "tight-greedy";
    return out;
  }
  if (roll < 6) {
    auto family = partition_tight_instance();
    out.instance = std::move(family.instance);
    out.options.k = family.k;
    out.options.known_opt = family.opt;
    out.options.run_cost_algorithms = false;
    out.family = "tight-partition";
    return out;
  }

  GeneratorOptions gen;
  const bool small = roll < 70;
  if (small) {
    gen.num_jobs = static_cast<std::size_t>(rng.uniform_int(0, 12));
    gen.num_procs = static_cast<ProcId>(rng.uniform_int(1, 4));
    gen.max_size = rng.uniform_int(1, 20);
  } else {
    gen.num_jobs =
        static_cast<std::size_t>(rng.uniform_int(13, std::max<std::int64_t>(
                                                         13, max_jobs)));
    gen.num_procs = static_cast<ProcId>(
        rng.uniform_int(2, std::max<std::int64_t>(2, max_procs)));
    const std::int64_t magnitudes[] = {10, 1000, 1'000'000,
                                       (std::int64_t{1} << 32)};
    gen.max_size = magnitudes[rng.uniform_int(0, 3)];
  }
  gen.min_size = rng.bernoulli(0.2) ? 0 : 1;
  gen.size_dist = static_cast<SizeDistribution>(rng.uniform_int(0, 4));
  gen.placement = static_cast<PlacementPolicy>(rng.uniform_int(0, 4));
  gen.cost_model = static_cast<CostModel>(rng.uniform_int(0, 4));
  gen.max_cost = rng.uniform_int(1, 12);

  const auto n = static_cast<std::int64_t>(gen.num_jobs);
  out.instance = random_instance(gen, rng());
  out.options.k = rng.uniform_int(0, n + 2);
  out.options.budget = rng.uniform_int(0, 2 * n + 4);
  out.family = small ? "small-random" : "medium-random";
  return out;
}

/// True iff the engine's chunked parallel scan reproduces the serial scan
/// bit-for-bit (results and stats) on this instance — the engine's core
/// determinism contract, checked here under real pool contention.
bool engine_matches_serial(const Instance& instance, std::int64_t k,
                           ThreadPool& pool) {
  MPartitionStats serial_stats;
  MPartitionStats parallel_stats;
  const auto serial = m_partition_rebalance(instance, k, &serial_stats);
  const auto parallel =
      m_partition_rebalance_parallel(instance, k, pool, &parallel_stats, 2);
  return serial.assignment == parallel.assignment &&
         serial.makespan == parallel.makespan &&
         serial.moves == parallel.moves && serial.cost == parallel.cost &&
         serial.threshold == parallel.threshold &&
         serial_stats.accepted_threshold == parallel_stats.accepted_threshold &&
         serial_stats.start_threshold == parallel_stats.start_threshold &&
         serial_stats.removals == parallel_stats.removals &&
         serial_stats.guesses_evaluated == parallel_stats.guesses_evaluated;
}

bool ensure_corpus_dir(const std::string& corpus, bool& ready) {
  if (ready) return true;
  std::error_code ec;
  std::filesystem::create_directories(corpus, ec);
  if (ec) return false;
  ready = true;
  return true;
}

// ---- PTAS differential mode (--algo ptas) ---------------------------------

struct PtasCase {
  Instance instance;
  double eps = 1.0;
  Cost budget = kInfCost;
  std::size_t state_limit = 200'000;
  std::string family;
};

PtasCase draw_ptas_case(Rng& rng, std::int64_t max_jobs,
                        std::int64_t max_procs) {
  PtasCase out;
  GeneratorOptions gen;
  const auto roll = rng.uniform_int(0, 99);
  const bool small = roll < 70;
  // The DP is exponential in 1/eps, so the PTAS tier stays below the roster
  // tier's caps; the interesting structure (class boundaries, budget edge,
  // state-limit aborts) shows up at tiny n already.
  const std::int64_t job_cap = std::min<std::int64_t>(max_jobs, 14);
  if (small) {
    gen.num_jobs = static_cast<std::size_t>(rng.uniform_int(0, 8));
    gen.num_procs = static_cast<ProcId>(rng.uniform_int(1, 3));
    gen.max_size = rng.uniform_int(1, 20);
  } else {
    gen.num_jobs = static_cast<std::size_t>(
        rng.uniform_int(9, std::max<std::int64_t>(9, job_cap)));
    gen.num_procs = static_cast<ProcId>(
        rng.uniform_int(2, std::max<std::int64_t>(2, std::min<std::int64_t>(
                                                         max_procs, 4))));
    const std::int64_t magnitudes[] = {10, 1000, 1'000'000};
    gen.max_size = magnitudes[rng.uniform_int(0, 2)];
  }
  gen.min_size = rng.bernoulli(0.2) ? 0 : 1;
  gen.size_dist = static_cast<SizeDistribution>(rng.uniform_int(0, 4));
  gen.placement = static_cast<PlacementPolicy>(rng.uniform_int(0, 4));
  gen.cost_model = static_cast<CostModel>(rng.uniform_int(0, 4));
  gen.max_cost = rng.uniform_int(1, 12);
  out.instance = random_instance(gen, rng());

  const double eps_choices[] = {0.4, 0.6, 1.0, 2.0};
  out.eps = eps_choices[rng.uniform_int(0, 3)];
  const auto n = static_cast<std::int64_t>(gen.num_jobs);
  out.budget =
      rng.bernoulli(0.3) ? kInfCost : rng.uniform_int(0, 2 * n + 4);
  // Occasionally force a state-limit abort: the exact state count at which
  // both engines give up is part of the parity contract.
  if (rng.bernoulli(0.15)) {
    out.state_limit = static_cast<std::size_t>(rng.uniform_int(1, 200));
  }
  out.family = small ? "ptas-small" : "ptas-medium";
  return out;
}

/// Empty string iff the production PTAS engine and the reference DP agree on
/// every guess of the shared scan, and the serial / scratch-reuse /
/// wave-parallel full solves are bit-identical.
std::string ptas_divergence(const Instance& instance, double eps, Cost budget,
                            std::size_t state_limit, ThreadPool& pool) {
  PtasScratch scratch;
  const double delta = ptas_delta(eps);
  Size guess = ptas_scan_start(instance, budget);
  const Size stop = ptas_scan_stop(instance);
  while (guess <= stop) {
    const auto eng = ptas_probe_guess(instance, guess, eps, budget,
                                      state_limit, scratch,
                                      /*reconstruct=*/true);
    const auto ref =
        ptas_reference_guess(instance, guess, eps, budget, state_limit);
    if (eng.representable != ref.representable ||
        eng.within_limit != ref.within_limit ||
        eng.constructed != ref.constructed || eng.cost != ref.cost ||
        eng.states != ref.states) {
      return "guess " + std::to_string(guess) + ": outcome mismatch (engine " +
             std::to_string(eng.cost) + "/" + std::to_string(eng.states) +
             " states vs reference " + std::to_string(ref.cost) + "/" +
             std::to_string(ref.states) + " states)";
    }
    if (eng.constructed && eng.assignment != ref.assignment) {
      return "guess " + std::to_string(guess) +
             ": reconstructed assignments differ";
    }
    if (!eng.within_limit) break;
    if (eng.constructed && eng.cost <= budget) break;
    guess = ptas_next_guess(guess, delta);
  }

  PtasOptions options;
  options.eps = eps;
  options.budget = budget;
  options.state_limit = state_limit;
  const auto same = [](const PtasResult& a, const PtasResult& b) {
    return a.success == b.success && a.accepted_guess == b.accepted_guess &&
           a.states == b.states &&
           a.guesses_evaluated == b.guesses_evaluated &&
           a.result.assignment == b.result.assignment &&
           a.result.makespan == b.result.makespan &&
           a.result.cost == b.result.cost && a.result.moves == b.result.moves;
  };
  const auto serial = ptas_rebalance(instance, options);
  // `scratch` is warm (and dirty) from the probes above: reuse must not
  // change anything.
  const auto reused = ptas_rebalance(instance, options, scratch);
  if (!same(serial, reused)) return "scratch-reuse solve diverges from fresh";
  const auto parallel = ptas_rebalance_parallel(instance, options, pool, 3);
  if (!same(serial, parallel)) return "wave-parallel solve diverges";
  return {};
}

// ---- cache differential mode (--cache) ------------------------------------

struct CacheCase {
  Instance instance;
  std::int64_t k = 0;
  solver::SolverSpec spec;
  std::uint64_t relabel_seed = 0;
  std::string family;
};

CacheCase draw_cache_case(Rng& rng, std::int64_t max_jobs,
                          std::int64_t max_procs) {
  CacheCase out;
  auto fuzz_case = draw_case(rng, max_jobs, max_procs);
  out.instance = std::move(fuzz_case.instance);
  out.k = fuzz_case.options.k;
  out.family = fuzz_case.family;
  out.relabel_seed = rng();
  const auto roll = rng.uniform_int(0, 9);
  if (roll >= 9 && out.instance.num_jobs() <= 10) {
    // The PTAS tier stays tiny: the DP is exponential in 1/eps and runs
    // (at least) twice per case here.
    out.spec.backend = solver::BackendId::kPtas;
    const double eps_choices[] = {0.4, 1.0, 2.0};
    out.spec.params.eps = eps_choices[rng.uniform_int(0, 2)];
    if (rng.bernoulli(0.5)) out.spec.params.budget = fuzz_case.options.budget;
  } else {
    const solver::BackendId backends[] = {
        solver::BackendId::kGreedy, solver::BackendId::kMPartition,
        solver::BackendId::kBestOf, solver::BackendId::kLpt,
        solver::BackendId::kLocalSearch};
    out.spec.backend = backends[rng.uniform_int(0, 4)];
  }
  return out;
}

/// Random job/processor relabeling of `in` (deterministic in `seed`): the
/// same problem under different labels, which a correct cache must answer
/// from the same canonical entry, mapped back byte-exactly.
Instance relabel_instance(const Instance& in, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobId> job_perm(in.num_jobs());
  std::vector<ProcId> proc_perm(in.num_procs);
  for (std::size_t j = 0; j < job_perm.size(); ++j) {
    job_perm[j] = static_cast<JobId>(j);
  }
  for (ProcId p = 0; p < in.num_procs; ++p) proc_perm[p] = p;
  shuffle(std::span<JobId>(job_perm), rng);
  shuffle(std::span<ProcId>(proc_perm), rng);
  Instance out;
  out.num_procs = in.num_procs;
  out.sizes.resize(in.num_jobs());
  out.move_costs.resize(in.num_jobs());
  out.initial.resize(in.num_jobs());
  for (std::size_t j = 0; j < in.num_jobs(); ++j) {
    out.sizes[job_perm[j]] = in.sizes[j];
    out.move_costs[job_perm[j]] = in.move_costs[j];
    out.initial[job_perm[j]] = proc_perm[in.initial[j]];
  }
  return out;
}

std::string cache_reply_mismatch(const RebalanceResult& got,
                                 const RebalanceResult& want) {
  if (got.assignment != want.assignment) return "assignment differs";
  if (got.makespan != want.makespan) return "makespan differs";
  if (got.moves != want.moves) return "moves differ";
  if (got.cost != want.cost) return "cost differs";
  if (got.threshold != want.threshold) return "threshold differs";
  return {};
}

/// Empty string iff `solver` (cache-enabled) answers this case
/// byte-identically to cached_serial_reference on a first pass, a second
/// (guaranteed-warm) pass, and a warm pass under a random relabeling.
std::string cache_divergence(engine::BatchSolver& solver,
                             const CacheCase& fuzz_case) {
  const RebalanceResult want = engine::cached_serial_reference(
      fuzz_case.spec, fuzz_case.instance, fuzz_case.k);
  engine::BatchSolver::TickItem item;
  item.instance = &fuzz_case.instance;
  item.k = fuzz_case.k;
  item.spec = fuzz_case.spec;
  const char* pass_names[] = {"first", "warm"};
  for (int pass = 0; pass < 2; ++pass) {
    const auto got = solver.solve_items({&item, 1});
    if (const auto why = cache_reply_mismatch(got[0], want); !why.empty()) {
      return std::string(pass_names[pass]) + "-pass reply: " + why;
    }
  }
  const Instance shuffled =
      relabel_instance(fuzz_case.instance, fuzz_case.relabel_seed);
  const RebalanceResult shuffled_want = engine::cached_serial_reference(
      fuzz_case.spec, shuffled, fuzz_case.k);
  engine::BatchSolver::TickItem shuffled_item = item;
  shuffled_item.instance = &shuffled;
  const auto got = solver.solve_items({&shuffled_item, 1});
  if (const auto why = cache_reply_mismatch(got[0], shuffled_want);
      !why.empty()) {
    return "relabeled warm-pass reply: " + why;
  }
  return {};
}

/// Shrink predicate: a FRESH single-worker cache-enabled solver per
/// candidate, so the cold miss, the warm hit and the relabeled hit are all
/// replayed from scratch.
std::string cache_divergence_fresh(const CacheCase& fuzz_case) {
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 1;
  options.cache_bytes = std::size_t{4} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);
  return cache_divergence(solver, fuzz_case);
}

// ---- registry backend differential mode (--algo lpt|local-search) ---------

/// Empty string iff the registry's solve of `spec` is bit-identical to the
/// backend's direct algorithm entry point AND to the registry solve under a
/// scratch/pool context (forced intra-parallel threshold), and the result
/// passes the backend's roster certificate. The differential target here is
/// the registry seam itself: dispatch, context plumbing and normalization
/// must not change results.
std::string backend_divergence(const solver::SolverSpec& spec,
                               const Instance& instance, std::int64_t k,
                               ThreadPool& pool) {
  const RebalanceResult got = solver::solve_serial(spec, instance, k);
  RebalanceResult direct;
  const char* roster_name = nullptr;
  switch (spec.backend) {
    case solver::BackendId::kLpt:
      direct = lpt_schedule(instance);
      roster_name = "lpt-full";
      break;
    case solver::BackendId::kLocalSearch:
      direct = m_partition_ls_rebalance(instance, k);
      roster_name = "mp-ls";
      break;
    default:
      return "backend has no direct differential reference";
  }
  if (got.assignment != direct.assignment || got.makespan != direct.makespan ||
      got.moves != direct.moves || got.cost != direct.cost ||
      got.threshold != direct.threshold) {
    return "registry solve differs from the direct entry point";
  }
  MPartitionScratch m_partition_scratch;
  PtasScratch ptas_scratch;
  solver::SolveContext ctx;
  ctx.pool = &pool;
  ctx.intra_parallel_min_jobs = 2;  // force the parallel scan paths
  ctx.m_partition = &m_partition_scratch;
  ctx.ptas = &ptas_scratch;
  const RebalanceResult accelerated = solver::solve(spec, instance, k, ctx);
  if (got.assignment != accelerated.assignment ||
      got.makespan != accelerated.makespan || got.moves != accelerated.moves ||
      got.cost != accelerated.cost || got.threshold != accelerated.threshold) {
    return "context/parallel solve diverges from the serial solve";
  }
  const auto certificate = certify_solution(
      instance, got, roster_certify_options(roster_name, instance, k, got));
  if (!certificate.ok()) return certificate.to_string();
  return {};
}

void write_repro(const std::filesystem::path& path, const Instance& instance,
                 const DifferentialOptions& options,
                 const DifferentialReport& report, std::uint64_t seed,
                 std::uint64_t iteration, const std::string& family) {
  std::ofstream out(path);
  out << "# lrb_fuzz minimized repro (replay: see docs/testing.md)\n"
      << "# seed=" << seed << " iteration=" << iteration << " family="
      << family << "\n"
      << "# k=" << options.k;
  if (options.budget != kInfCost) out << " budget=" << options.budget;
  if (options.known_opt > 0) out << " known-opt=" << options.known_opt;
  out << "\n";
  for (const auto& finding : report.findings) {
    for (const auto& violation : finding.certificate.violations) {
      out << "# violation: " << finding.algorithm << " ["
          << to_string(violation.kind) << "] " << violation.detail << "\n";
    }
  }
  write_instance(out, instance);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_fuzz");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {"seed",      "iters",           "time-budget",
                                  "corpus",    "max-jobs",        "max-procs",
                                  "mutant",    "expect-violation",
                                  "expect-max-jobs", "verbose",   "jobs",
                                  "algo",      "cache",           "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t iters = flags.get_int("iters", 1000);
  const double time_budget = flags.get_double("time-budget", 0.0);
  const std::string corpus = flags.get_or("corpus", "lrb_fuzz_corpus");
  const std::int64_t max_jobs = flags.get_int("max-jobs", 40);
  const std::int64_t max_procs = flags.get_int("max-procs", 8);
  const bool with_mutant = flags.has("mutant");
  const bool expect_violation = flags.has("expect-violation");
  const std::int64_t expect_max_jobs = flags.get_int("expect-max-jobs", 0);
  const bool verbose = flags.has("verbose");
  const std::int64_t jobs_raw = flags.get_int("jobs", 1);
  if (iters <= 0 && time_budget <= 0.0) {
    return fail("need --iters > 0 or --time-budget > 0");
  }
  if (jobs_raw < 1 || jobs_raw > 256) return fail("--jobs must be in [1, 256]");
  const auto jobs = static_cast<std::size_t>(jobs_raw);
  const std::string algo = flags.get_or("algo", "roster");
  solver::SolverSpec backend_spec;
  const bool backend_mode =
      algo != "roster" && algo != "ptas" &&
      solver::parse_backend(algo, &backend_spec.backend);
  if (backend_mode && backend_spec.backend != solver::BackendId::kLpt &&
      backend_spec.backend != solver::BackendId::kLocalSearch) {
    return fail("--algo " + algo +
                " has no registry differential mode (use 'roster', 'ptas', "
                "'lpt' or 'local-search')");
  }
  if (algo != "roster" && algo != "ptas" && !backend_mode) {
    return fail("--algo must be 'roster', 'ptas', or a registry backend "
                "(lpt|local-search)");
  }
  const bool cache_mode = flags.has("cache");
  if (cache_mode && algo != "roster") {
    return fail("--cache and --algo " + algo + " are mutually exclusive");
  }
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  Timer timer;
  std::int64_t violations = 0;
  std::size_t largest_repro = 0;
  bool corpus_ready = false;
  std::uint64_t iteration = 0;

  if (algo == "ptas") {
    // PTAS differential mode: engine vs reference, serially, one case per
    // iteration (the DP itself is the expensive part).
    ThreadPool ptas_pool(pool != nullptr ? jobs : 2);
    for (;;) {
      if (iters > 0 && iteration >= static_cast<std::uint64_t>(iters)) break;
      if (time_budget > 0.0 && timer.millis() >= time_budget * 1000.0) break;
      const std::uint64_t it = iteration++;
      std::uint64_t stream = seed;
      (void)splitmix64(stream);
      Rng rng(stream ^ (it * 0x9e3779b97f4a7c15ULL));
      auto fuzz_case = draw_ptas_case(rng, max_jobs, max_procs);
      const auto divergence =
          ptas_divergence(fuzz_case.instance, fuzz_case.eps, fuzz_case.budget,
                          fuzz_case.state_limit, ptas_pool);
      if (divergence.empty()) continue;

      ++violations;
      std::cerr << "lrb_fuzz: ptas divergence at iteration " << it << " ("
                << fuzz_case.family << ", n=" << fuzz_case.instance.num_jobs()
                << ", m=" << fuzz_case.instance.num_procs
                << ", eps=" << fuzz_case.eps << "): " << divergence << "\n";
      const auto still_diverges = [&](const Instance& candidate) {
        return !ptas_divergence(candidate, fuzz_case.eps, fuzz_case.budget,
                                fuzz_case.state_limit, ptas_pool)
                    .empty();
      };
      ShrinkOptions shrink_options;
      shrink_options.max_evaluations = 2'000;
      const auto minimized =
          shrink_instance(fuzz_case.instance, still_diverges, shrink_options);
      largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
      if (!ensure_corpus_dir(corpus, corpus_ready)) {
        return fail("cannot create corpus dir " + corpus);
      }
      const auto path = std::filesystem::path(corpus) /
                        ("repro_" + std::to_string(it) + "_ptas.lrb");
      std::ofstream out(path);
      out << "# lrb_fuzz minimized repro (ptas differential: engine vs "
             "reference)\n"
          << "# seed=" << seed << " iteration=" << it
          << " family=" << fuzz_case.family << "\n"
          << "# eps=" << fuzz_case.eps << " state-limit="
          << fuzz_case.state_limit;
      if (fuzz_case.budget != kInfCost) out << " budget=" << fuzz_case.budget;
      out << "\n# divergence: "
          << ptas_divergence(minimized.instance, fuzz_case.eps,
                             fuzz_case.budget, fuzz_case.state_limit,
                             ptas_pool)
          << "\n";
      write_instance(out, minimized.instance);
      std::cerr << "lrb_fuzz: minimized to n=" << minimized.instance.num_jobs()
                << ", m=" << minimized.instance.num_procs << " -> "
                << path.string() << "\n";
    }
    std::cout << "lrb_fuzz: " << iteration << " ptas iterations, "
              << violations << " violation(s) in " << timer.millis() / 1000.0
              << " s\n";
    if (expect_violation) {
      if (violations == 0) {
        std::cerr << "lrb_fuzz: expected a violation but found none\n";
        return 1;
      }
      return 0;
    }
    return violations == 0 ? 0 : 1;
  }

  if (backend_mode) {
    // Registry backend differential mode: registry dispatch vs the direct
    // algorithm entry point vs the context-accelerated solve, plus the
    // backend's roster certificate, one case per iteration.
    ThreadPool backend_pool(pool != nullptr ? jobs : 2);
    const std::string backend_name =
        solver::backend_name(backend_spec.backend);
    for (;;) {
      if (iters > 0 && iteration >= static_cast<std::uint64_t>(iters)) break;
      if (time_budget > 0.0 && timer.millis() >= time_budget * 1000.0) break;
      const std::uint64_t it = iteration++;
      std::uint64_t stream = seed;
      (void)splitmix64(stream);
      Rng rng(stream ^ (it * 0x9e3779b97f4a7c15ULL));
      auto fuzz_case = draw_case(rng, max_jobs, max_procs);
      const std::int64_t k = fuzz_case.options.k;
      const auto divergence =
          backend_divergence(backend_spec, fuzz_case.instance, k,
                             backend_pool);
      if (divergence.empty()) continue;

      ++violations;
      std::cerr << "lrb_fuzz: " << backend_name
                << " divergence at iteration " << it << " ("
                << fuzz_case.family << ", n=" << fuzz_case.instance.num_jobs()
                << ", m=" << fuzz_case.instance.num_procs << ", k=" << k
                << "): " << divergence << "\n";
      const auto still_diverges = [&](const Instance& candidate) {
        return !backend_divergence(backend_spec, candidate, k, backend_pool)
                    .empty();
      };
      ShrinkOptions shrink_options;
      shrink_options.max_evaluations = 2'000;
      const auto minimized =
          shrink_instance(fuzz_case.instance, still_diverges, shrink_options);
      largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
      if (!ensure_corpus_dir(corpus, corpus_ready)) {
        return fail("cannot create corpus dir " + corpus);
      }
      const auto path =
          std::filesystem::path(corpus) /
          ("repro_" + std::to_string(it) + "_" + backend_name + ".lrb");
      std::ofstream out(path);
      out << "# lrb_fuzz minimized repro (" << backend_name
          << " registry differential: registry vs direct entry point)\n"
          << "# seed=" << seed << " iteration=" << it
          << " family=" << fuzz_case.family << "\n"
          << "# k=" << k << "\n"
          << "# divergence: "
          << backend_divergence(backend_spec, minimized.instance, k,
                                backend_pool)
          << "\n";
      write_instance(out, minimized.instance);
      std::cerr << "lrb_fuzz: minimized to n=" << minimized.instance.num_jobs()
                << ", m=" << minimized.instance.num_procs << " -> "
                << path.string() << "\n";
    }
    std::cout << "lrb_fuzz: " << iteration << " " << backend_name
              << " iterations, " << violations << " violation(s) in "
              << timer.millis() / 1000.0 << " s\n";
    if (expect_violation) {
      if (violations == 0) {
        std::cerr << "lrb_fuzz: expected a violation but found none\n";
        return 1;
      }
      return 0;
    }
    return violations == 0 ? 0 : 1;
  }

  if (cache_mode) {
    // Cache differential mode: one process-long cache-enabled solver, so
    // later iterations run against a cache warmed (and evicted) by earlier
    // ones; a small budget keeps the LRU churning.
    obs::Registry registry;
    engine::BatchOptions solver_options;
    solver_options.workers = jobs > 1 ? jobs : 2;
    solver_options.cache_bytes = std::size_t{4} << 20;
    solver_options.cache_shards = 4;
    solver_options.metrics = &registry;
    engine::BatchSolver solver(solver_options);

    for (;;) {
      if (iters > 0 && iteration >= static_cast<std::uint64_t>(iters)) break;
      if (time_budget > 0.0 && timer.millis() >= time_budget * 1000.0) break;
      const std::uint64_t it = iteration++;
      std::uint64_t stream = seed;
      (void)splitmix64(stream);
      Rng rng(stream ^ (it * 0x9e3779b97f4a7c15ULL));
      auto fuzz_case = draw_cache_case(rng, max_jobs, max_procs);
      const auto divergence = cache_divergence(solver, fuzz_case);
      if (divergence.empty()) continue;

      ++violations;
      std::cerr << "lrb_fuzz: cache divergence at iteration " << it << " ("
                << fuzz_case.family << ", n=" << fuzz_case.instance.num_jobs()
                << ", m=" << fuzz_case.instance.num_procs
                << ", k=" << fuzz_case.k << ", algo="
                << solver::backend_name(fuzz_case.spec.backend)
                << "): " << divergence << "\n";
      const auto still_diverges = [&](const Instance& candidate) {
        CacheCase shrunk = fuzz_case;
        shrunk.instance = candidate;
        return !cache_divergence_fresh(shrunk).empty();
      };
      ShrinkOptions shrink_options;
      shrink_options.max_evaluations = 2'000;
      const auto minimized =
          shrink_instance(fuzz_case.instance, still_diverges, shrink_options);
      largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
      if (!ensure_corpus_dir(corpus, corpus_ready)) {
        return fail("cannot create corpus dir " + corpus);
      }
      const auto path = std::filesystem::path(corpus) /
                        ("repro_" + std::to_string(it) + "_cache.lrb");
      CacheCase minimized_case = fuzz_case;
      minimized_case.instance = minimized.instance;
      std::ofstream out(path);
      out << "# lrb_fuzz minimized repro (cache differential: cached solver "
             "vs cached_serial_reference)\n"
          << "# seed=" << seed << " iteration=" << it
          << " family=" << fuzz_case.family << "\n"
          << "# k=" << fuzz_case.k << " algo="
          << solver::backend_name(fuzz_case.spec.backend)
          << " eps=" << fuzz_case.spec.params.eps
          << " relabel-seed=" << fuzz_case.relabel_seed;
      if (fuzz_case.spec.params.budget != kInfCost) {
        out << " budget=" << fuzz_case.spec.params.budget;
      }
      out << "\n# divergence: " << cache_divergence_fresh(minimized_case)
          << "\n";
      write_instance(out, minimized.instance);
      std::cerr << "lrb_fuzz: minimized to n=" << minimized.instance.num_jobs()
                << ", m=" << minimized.instance.num_procs << " -> "
                << path.string() << "\n";
    }
    std::cout << "lrb_fuzz: " << iteration << " cache iterations, "
              << violations << " violation(s), "
              << registry.counter("cache.hits").value() << " hits / "
              << registry.counter("cache.misses").value() << " misses / "
              << registry.counter("cache.evictions").value()
              << " evictions in " << timer.millis() / 1000.0 << " s\n";
    if (expect_violation) {
      if (violations == 0) {
        std::cerr << "lrb_fuzz: expected a violation but found none\n";
        return 1;
      }
      return 0;
    }
    return violations == 0 ? 0 : 1;
  }

  struct IterationResult {
    FuzzCase fuzz_case;
    DifferentialReport report;
    bool engine_deterministic = true;
  };

  // One fuzz iteration: deterministic in (seed, iter) regardless of which
  // worker runs it or in what order.
  const auto run_iteration = [&](std::uint64_t iter) {
    IterationResult out;
    std::uint64_t stream = seed;
    (void)splitmix64(stream);
    Rng rng(stream ^ (iter * 0x9e3779b97f4a7c15ULL));
    out.fuzz_case = draw_case(rng, max_jobs, max_procs);
    if (with_mutant) {
      out.fuzz_case.options.extra.push_back(CheckedRebalancer{
          NamedRebalancer{"mutant-greedy", mutant_greedy},
          [](const Instance& inst, std::int64_t k, const RebalanceResult& r) {
            return roster_certify_options("greedy", inst, k, r);
          }});
    }
    if (pool != nullptr) {
      // Route M-PARTITION through the engine's chunked parallel scan (on
      // the shared, already-busy pool) and certify it like the serial one.
      ThreadPool* p = pool.get();
      out.fuzz_case.options.extra.push_back(CheckedRebalancer{
          NamedRebalancer{"engine-m-partition",
                          [p](const Instance& inst, std::int64_t k) {
                            return m_partition_rebalance_parallel(inst, k, *p,
                                                                  nullptr, 2);
                          }},
          [](const Instance& inst, std::int64_t k, const RebalanceResult& r) {
            return roster_certify_options("m-partition", inst, k, r);
          }});
    }
    out.report =
        differential_check(out.fuzz_case.instance, out.fuzz_case.options);
    if (pool != nullptr) {
      out.engine_deterministic = engine_matches_serial(
          out.fuzz_case.instance, out.fuzz_case.options.k, *pool);
    }
    return out;
  };

  const auto ensure_corpus = [&]() -> bool {
    if (corpus_ready) return true;
    std::error_code ec;
    std::filesystem::create_directories(corpus, ec);
    if (ec) return false;
    corpus_ready = true;
    return true;
  };

  const std::size_t wave = pool != nullptr ? 4 * jobs : 1;
  for (;;) {
    if (iters > 0 && iteration >= static_cast<std::uint64_t>(iters)) break;
    if (time_budget > 0.0 && timer.millis() >= time_budget * 1000.0) break;

    std::vector<std::uint64_t> batch;
    for (std::size_t i = 0; i < wave; ++i) {
      const std::uint64_t it = iteration + i;
      if (iters > 0 && it >= static_cast<std::uint64_t>(iters)) break;
      batch.push_back(it);
    }
    if (batch.empty()) break;
    std::vector<IterationResult> results(batch.size());
    if (pool != nullptr) {
      parallel_for(*pool, 0, batch.size(),
                   [&](std::size_t i) { results[i] = run_iteration(batch[i]); });
    } else {
      results[0] = run_iteration(batch[0]);
    }
    iteration += batch.size();

    // Violations are processed strictly serially, in iteration order:
    // shrinking replays the harness on the main thread and repro files are
    // named by iteration.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::uint64_t it = batch[i];
      auto& fuzz_case = results[i].fuzz_case;
      const auto& report = results[i].report;

      if (!results[i].engine_deterministic) {
        ++violations;
        std::cerr << "lrb_fuzz: engine determinism violation at iteration "
                  << it << " (" << fuzz_case.family
                  << ", n=" << fuzz_case.instance.num_jobs()
                  << ", m=" << fuzz_case.instance.num_procs
                  << ", k=" << fuzz_case.options.k << ")\n";
        const auto mismatch = [&](const Instance& candidate) {
          return !engine_matches_serial(candidate, fuzz_case.options.k, *pool);
        };
        ShrinkOptions shrink_options;
        shrink_options.max_evaluations = 2'000;
        const auto minimized =
            shrink_instance(fuzz_case.instance, mismatch, shrink_options);
        largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
        if (!ensure_corpus()) return fail("cannot create corpus dir " + corpus);
        const auto path = std::filesystem::path(corpus) /
                          ("repro_" + std::to_string(it) + "_determinism.lrb");
        std::ofstream out(path);
        out << "# lrb_fuzz minimized repro (engine determinism: parallel "
               "M-PARTITION != serial)\n"
            << "# seed=" << seed << " iteration=" << it << " family="
            << fuzz_case.family << "\n"
            << "# k=" << fuzz_case.options.k << "\n";
        write_instance(out, minimized.instance);
        std::cerr << "lrb_fuzz: minimized to n="
                  << minimized.instance.num_jobs()
                  << ", m=" << minimized.instance.num_procs << " -> "
                  << path.string() << "\n";
      }

      if (report.ok()) continue;

      ++violations;
      std::cerr << "lrb_fuzz: violation at iteration " << it << " ("
                << fuzz_case.family << ", n=" << fuzz_case.instance.num_jobs()
                << ", m=" << fuzz_case.instance.num_procs
                << ", k=" << fuzz_case.options.k << ")\n";
      if (verbose) std::cerr << report.to_string() << "\n";

      // Minimize: any of the original (algorithm, kind) signatures counts
      // as the same failure. Unless the concurrent path itself is part of
      // the signature, replay is fully serial: the engine extra is dropped
      // from the shrink options.
      const auto signatures = report.signatures();
      DifferentialOptions shrink_case_options = fuzz_case.options;
      const bool engine_in_signature =
          std::any_of(signatures.begin(), signatures.end(), [](const auto& s) {
            return s.first == "engine-m-partition";
          });
      if (!engine_in_signature) {
        std::erase_if(shrink_case_options.extra,
                      [](const CheckedRebalancer& extra) {
                        return extra.rebalancer.name == "engine-m-partition";
                      });
      }
      const auto still_fails = [&](const Instance& candidate) {
        const auto candidate_report =
            differential_check(candidate, shrink_case_options);
        for (const auto& sig : candidate_report.signatures()) {
          for (const auto& wanted : signatures) {
            if (sig == wanted) return true;
          }
        }
        return false;
      };
      ShrinkOptions shrink_options;
      shrink_options.max_evaluations = 2'000;
      const auto minimized =
          shrink_instance(fuzz_case.instance, still_fails, shrink_options);
      largest_repro = std::max(largest_repro, minimized.instance.num_jobs());
      const auto minimized_report =
          differential_check(minimized.instance, shrink_case_options);

      if (!ensure_corpus()) return fail("cannot create corpus dir " + corpus);
      const auto path = std::filesystem::path(corpus) /
                        ("repro_" + std::to_string(it) + ".lrb");
      write_repro(path, minimized.instance, shrink_case_options,
                  minimized_report, seed, it, fuzz_case.family);
      std::cerr << "lrb_fuzz: minimized to n="
                << minimized.instance.num_jobs()
                << ", m=" << minimized.instance.num_procs << " -> "
                << path.string() << "\n";
    }
  }

  std::cout << "lrb_fuzz: " << iteration << " iterations, " << violations
            << " violation(s) in " << timer.millis() / 1000.0 << " s\n";

  if (expect_violation) {
    if (violations == 0) {
      std::cerr << "lrb_fuzz: expected a violation but found none\n";
      return 1;
    }
    if (expect_max_jobs > 0 &&
        largest_repro > static_cast<std::size_t>(expect_max_jobs)) {
      std::cerr << "lrb_fuzz: a minimized repro has " << largest_repro
                << " jobs, above the expected bound " << expect_max_jobs
                << "\n";
      return 1;
    }
    return 0;
  }
  return violations == 0 ? 0 : 1;
}
