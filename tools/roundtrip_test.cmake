# Drives the CLI tools end to end; any nonzero exit fails the test.
execute_process(
  COMMAND ${LRB_GEN} --jobs 80 --procs 8 --placement hotspot --seed 5
  OUTPUT_FILE ${WORK_DIR}/roundtrip.lrb RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_gen failed: ${rc}")
endif()
execute_process(
  COMMAND ${LRB_SOLVE} ${WORK_DIR}/roundtrip.lrb --algo mp-ls --k 6
          --out ${WORK_DIR}/roundtrip.assign RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_solve failed: ${rc}")
endif()
execute_process(
  COMMAND ${LRB_EVAL} ${WORK_DIR}/roundtrip.lrb ${WORK_DIR}/roundtrip.assign
  RESULT_VARIABLE rc OUTPUT_VARIABLE eval_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_eval failed: ${rc}")
endif()
if(NOT eval_out MATCHES "moves:")
  message(FATAL_ERROR "lrb_eval output missing report: ${eval_out}")
endif()
execute_process(
  COMMAND ${LRB_SWEEP} ${WORK_DIR}/roundtrip.lrb --k 2,4 --csv
  RESULT_VARIABLE rc OUTPUT_VARIABLE sweep_out ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_sweep failed: ${rc}")
endif()
if(NOT sweep_out MATCHES "m-partition")
  message(FATAL_ERROR "lrb_sweep output missing rows")
endif()

# ---------------------------------------------------------------------------
# Malformed-input regressions: every tool must reject bad input with a
# nonzero exit and a diagnostic - never hang, wrap, crash, or silently
# accept (fuzz repros depend on the parser being trustworthy).

# Negative --jobs used to wrap through size_t to ~2^64 and hang the
# generator; it must be rejected up front.
execute_process(
  COMMAND ${LRB_GEN} --jobs -5
  RESULT_VARIABLE rc ERROR_VARIABLE gen_err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "lrb_gen accepted --jobs -5")
endif()
if(NOT gen_err MATCHES "jobs")
  message(FATAL_ERROR "lrb_gen --jobs -5 gave no diagnostic: ${gen_err}")
endif()

# Unknown flags are typos, not no-ops.
execute_process(
  COMMAND ${LRB_GEN} --jbos 10
  RESULT_VARIABLE rc ERROR_VARIABLE gen_err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "lrb_gen accepted unknown flag --jbos")
endif()

# Garbage instead of an instance: parse diagnostic, nonzero exit.
file(WRITE ${WORK_DIR}/garbage.lrb "this is not an instance\n")
execute_process(
  COMMAND ${LRB_EVAL} ${WORK_DIR}/garbage.lrb ${WORK_DIR}/roundtrip.assign
  RESULT_VARIABLE rc ERROR_VARIABLE eval_err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "lrb_eval accepted a garbage instance")
endif()
if(NOT eval_err MATCHES "parse error")
  message(FATAL_ERROR "lrb_eval gave no parse diagnostic: ${eval_err}")
endif()

# A negative job count used to wrap to a huge unsigned value; the parser
# must reject it on the 'jobs' line.
file(WRITE ${WORK_DIR}/negjobs.lrb "lrb-instance 1\nprocs 2\njobs -1\n")
execute_process(
  COMMAND ${LRB_SOLVE} ${WORK_DIR}/negjobs.lrb --algo greedy --k 1
  RESULT_VARIABLE rc ERROR_VARIABLE solve_err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "lrb_solve accepted a negative job count")
endif()
if(NOT solve_err MATCHES "parse error")
  message(FATAL_ERROR "lrb_solve gave no parse diagnostic: ${solve_err}")
endif()

# A lying header (far more jobs than data) used to attempt the full upfront
# allocation; it must instead fail cleanly on the first missing job line.
file(WRITE ${WORK_DIR}/liar.lrb
  "lrb-instance 1\nprocs 2\njobs 99999999999\n3 1 0\n")
execute_process(
  COMMAND ${LRB_SOLVE} ${WORK_DIR}/liar.lrb --algo greedy --k 1
  RESULT_VARIABLE rc ERROR_VARIABLE solve_err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "lrb_solve accepted a lying jobs header")
endif()
if(NOT solve_err MATCHES "bad job line")
  message(FATAL_ERROR "lrb_solve gave no job-line diagnostic: ${solve_err}")
endif()
