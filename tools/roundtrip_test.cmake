# Drives the CLI tools end to end; any nonzero exit fails the test.
execute_process(
  COMMAND ${LRB_GEN} --jobs 80 --procs 8 --placement hotspot --seed 5
  OUTPUT_FILE ${WORK_DIR}/roundtrip.lrb RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_gen failed: ${rc}")
endif()
execute_process(
  COMMAND ${LRB_SOLVE} ${WORK_DIR}/roundtrip.lrb --algo mp-ls --k 6
          --out ${WORK_DIR}/roundtrip.assign RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_solve failed: ${rc}")
endif()
execute_process(
  COMMAND ${LRB_EVAL} ${WORK_DIR}/roundtrip.lrb ${WORK_DIR}/roundtrip.assign
  RESULT_VARIABLE rc OUTPUT_VARIABLE eval_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_eval failed: ${rc}")
endif()
if(NOT eval_out MATCHES "moves:")
  message(FATAL_ERROR "lrb_eval output missing report: ${eval_out}")
endif()
execute_process(
  COMMAND ${LRB_SWEEP} ${WORK_DIR}/roundtrip.lrb --k 2,4 --csv
  RESULT_VARIABLE rc OUTPUT_VARIABLE sweep_out ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lrb_sweep failed: ${rc}")
endif()
if(NOT sweep_out MATCHES "m-partition")
  message(FATAL_ERROR "lrb_sweep output missing rows")
endif()
