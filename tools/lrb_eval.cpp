// lrb_eval: evaluate an assignment against its instance.
//
//   lrb_eval instance.lrb assignment.lrb
//   lrb_gen --jobs 50 | tee i.lrb | lrb_solve - --algo greedy --k 5
//       --out a.lrb && lrb_eval i.lrb a.lrb --histogram
//
// Prints makespan, moves, relocation cost, imbalance, Gini, and (with
// --histogram) a per-processor ASCII load chart. Exits nonzero when the
// assignment is structurally invalid.

#include <fstream>
#include <iostream>
#include <string>

#include "core/analysis.h"
#include "core/io.h"
#include "util/flags.h"
#include "util/version.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_eval: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_eval");
    return 0;
  }
  if (flags.positional().size() != 2) {
    return fail("usage: lrb_eval <instance.lrb> <assignment.lrb> "
                "[--histogram]");
  }

  std::ifstream instance_in(flags.positional()[0]);
  if (!instance_in) return fail("cannot open " + flags.positional()[0]);
  std::string error;
  const auto instance = read_instance(instance_in, &error);
  if (!instance) return fail("instance parse error: " + error);

  std::ifstream assignment_in(flags.positional()[1]);
  if (!assignment_in) return fail("cannot open " + flags.positional()[1]);
  const auto assignment = read_assignment(assignment_in, &error);
  if (!assignment) return fail("assignment parse error: " + error);

  if (const auto problem = validate(*instance, *assignment)) {
    return fail("invalid assignment: " + *problem);
  }

  const auto before = analyze_initial(*instance);
  const auto after = analyze(*instance, *assignment);
  std::cout << "jobs/procs:  " << instance->num_jobs() << " / "
            << instance->num_procs << "\n"
            << "makespan:    " << before.makespan << " -> " << after.makespan
            << "\n"
            << "imbalance:   " << before.imbalance << " -> " << after.imbalance
            << "\n"
            << "gini:        " << before.gini << " -> " << after.gini << "\n"
            << "moves:       " << moves_used(*instance, *assignment) << "\n"
            << "cost:        " << relocation_cost(*instance, *assignment)
            << "\n";
  if (flags.has("histogram")) {
    std::cout << "\nbefore:\n"
              << load_histogram(before) << "\nafter:\n"
              << load_histogram(after);
  }
  return 0;
}
