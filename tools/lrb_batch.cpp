// lrb_batch: drive the parallel batch-solving engine over an instance
// corpus and report throughput / latency percentiles, optionally writing a
// machine-readable baseline (bench/BENCH_engine.json) and enforcing a
// minimum parallel speedup (the CI perf-regression gate).
//
//   lrb_batch --generate 10000 --seed 7 --algo best-of --workers 1,0
//             --reps 3 --check --json bench/BENCH_engine.json
//
// Flags (defaults in parentheses):
//   --corpus FILE        read concatenated lrb-instance records
//   --generate N (1000)  generate a mixed corpus of N instances instead
//   --seed S (7)         corpus generation seed
//   --algo NAME (best-of)  solver-registry backend (canonical name or
//                          alias, docs/solvers.md): greedy, m-partition,
//                          best-of, ptas, lpt, local-search
//   --k-frac F (0.25)    per-instance move budget = max(1, floor(F * n))
//   --workers LIST (1,0) comma-separated pool sizes to run; 0 = hardware
//   --reps R (3)         timed repetitions per pool size (best rep reported)
//   --check              also re-solve serially and require equal results
//   --min-speedup X      exit 1 unless best-config throughput >= X times
//                        the 1-worker throughput (requires 1 in --workers)
//   --json FILE          write lrb-engine-bench-v1 results
//   --ptas-eps E (1.0)   --ptas-budget B (unlimited)   solver parameters
//                        (only read by backends that use them, e.g. ptas)
//
// Results must be byte-identical across every worker configuration; the
// tool exits 1 (and says so) whenever they are not.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.h"
#include "core/io.h"
#include "engine/batch_solver.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/version.h"

namespace {

using namespace lrb;

int fail(const std::string& message) {
  std::cerr << "lrb_batch: " << message << "\n";
  return 1;
}

bool results_equal(const RebalanceResult& x, const RebalanceResult& y) {
  return x.assignment == y.assignment && x.makespan == y.makespan &&
         x.moves == y.moves && x.cost == y.cost && x.threshold == y.threshold;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  return os.str();
}

struct RunRecord {
  std::size_t workers_requested = 0;
  std::size_t workers = 0;
  double seconds = 0.0;
  double throughput_ips = 0.0;
  Summary latency;  // milliseconds, best rep
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_batch");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {"corpus", "generate", "seed",     "algo",
                                  "k-frac", "workers",  "reps",     "check",
                                  "min-speedup", "json", "ptas-eps",
                                  "ptas-budget", "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  solver::SolverSpec spec;
  if (!solver::parse_backend(flags.get_or("algo", "best-of"),
                             &spec.backend)) {
    return fail("unknown --algo (want " + solver::backend_list() + ")");
  }
  const double k_frac = flags.get_double("k-frac", 0.25);
  if (k_frac < 0.0) return fail("--k-frac must be >= 0");
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 3));
  if (reps == 0) return fail("--reps must be >= 1");
  spec.params.eps = flags.get_double("ptas-eps", 1.0);
  spec.params.budget = flags.get_int("ptas-budget", kInfCost);
  if (const auto problem = solver::validate_spec(spec)) {
    return fail(*problem);
  }

  // ---- Corpus. ----
  std::vector<Instance> instances;
  std::string corpus_source;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  if (const auto path = flags.get("corpus")) {
    corpus_source = *path;
    std::ifstream in(*path);
    if (!in) return fail("cannot open corpus '" + *path + "'");
    std::string error;
    while (in >> std::ws, !in.eof()) {
      auto instance = read_instance(in, &error);
      if (!instance) return fail("corpus parse error: " + error);
      instances.push_back(std::move(*instance));
    }
    if (instances.empty()) return fail("corpus '" + *path + "' is empty");
  } else {
    const auto count = static_cast<std::size_t>(flags.get_int("generate", 1000));
    if (count == 0) return fail("--generate must be >= 1");
    corpus_source = "generated";
    instances.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      instances.push_back(mixed_corpus_instance(i, seed));
    }
  }
  std::vector<std::int64_t> ks(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ks[i] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               k_frac * static_cast<double>(instances[i].num_jobs())));
  }

  // ---- Worker configurations. ----
  std::vector<std::size_t> worker_list;
  {
    std::stringstream ss(flags.get_or("workers", "1,0"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      worker_list.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
    if (worker_list.empty()) return fail("--workers list is empty");
  }

  // ---- Runs. ----
  std::vector<RunRecord> runs;
  std::vector<RebalanceResult> reference;
  bool identical = true;
  for (const std::size_t requested : worker_list) {
    engine::BatchOptions options;
    options.workers = requested;
    options.spec = spec;
    engine::BatchSolver solver(options);

    RunRecord record;
    record.workers_requested = requested;
    record.workers = solver.workers();
    std::vector<RebalanceResult> results;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::vector<double> latencies;
      const auto begin = std::chrono::steady_clock::now();
      auto rep_results = solver.solve(instances, ks, &latencies);
      const auto end = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(end - begin).count();
      const double ips =
          static_cast<double>(instances.size()) / std::max(seconds, 1e-12);
      if (rep == 0 || ips > record.throughput_ips) {
        record.seconds = seconds;
        record.throughput_ips = ips;
        record.latency = summarize(latencies);
      }
      if (rep == 0) {
        results = std::move(rep_results);
      } else if (!std::equal(results.begin(), results.end(),
                             rep_results.begin(), rep_results.end(),
                             results_equal)) {
        identical = false;
        std::cerr << "lrb_batch: results differ across repetitions at "
                  << record.workers << " workers\n";
      }
    }
    if (reference.empty()) {
      reference = std::move(results);
    } else if (!std::equal(reference.begin(), reference.end(),
                           results.begin(), results.end(), results_equal)) {
      identical = false;
      std::cerr << "lrb_batch: results differ between worker configs ("
                << runs.front().workers << " vs " << record.workers << ")\n";
    }
    runs.push_back(record);
    std::cout << "workers=" << record.workers << " (requested " << requested
              << "): " << fmt(record.throughput_ips) << " inst/s, latency ms"
              << " p50=" << fmt(record.latency.p50)
              << " p90=" << fmt(record.latency.p90)
              << " p99=" << fmt(record.latency.p99) << "\n";
  }

  // ---- Optional serial cross-check against the library entry points.
  // Every mismatch counts (first few are printed); any mismatch makes the
  // tool exit non-zero after the JSON baseline is still written, so CI
  // gets both the failure and the evidence. ----
  std::size_t check_mismatches = 0;
  if (flags.has("check")) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const RebalanceResult serial =
          engine::solve_serial_reference(spec, instances[i], ks[i]);
      if (!results_equal(serial, reference[i])) {
        ++check_mismatches;
        if (check_mismatches <= 10) {
          std::cerr << "lrb_batch: engine result differs from the serial "
                       "entry point at instance "
                    << i << "\n";
        }
      }
    }
    if (check_mismatches == 0) {
      std::cout << "serial cross-check: OK (" << instances.size()
                << " instances)\n";
    } else {
      std::cerr << "lrb_batch: serial cross-check FAILED ("
                << check_mismatches << " of " << instances.size()
                << " instances differ)\n";
    }
  }

  double speedup = 0.0;
  {
    double base = 0.0;
    double best = 0.0;
    for (const auto& run : runs) {
      if (run.workers == 1) base = std::max(base, run.throughput_ips);
      best = std::max(best, run.throughput_ips);
    }
    if (base > 0.0) speedup = best / base;
  }
  if (speedup > 0.0) {
    std::cout << "speedup (best vs 1 worker): " << fmt(speedup) << "x\n";
  }

  // ---- JSON baseline. ----
  if (const auto path = flags.get("json")) {
    std::ofstream out(*path);
    if (!out) return fail("cannot write '" + *path + "'");
    out << "{\n";
    out << "  \"schema\": \"" << kEngineBenchSchema << "\",\n";
    out << "  \"algo\": \"" << solver::backend_name(spec.backend) << "\",\n";
    out << "  \"corpus\": {\"instances\": " << instances.size()
        << ", \"source\": \"" << corpus_source << "\", \"seed\": " << seed
        << ", \"k_frac\": " << fmt(k_frac) << "},\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& run = runs[i];
      out << "    {\"workers_requested\": " << run.workers_requested
          << ", \"workers\": " << run.workers << ", \"seconds\": "
          << fmt(run.seconds) << ", \"throughput_ips\": "
          << fmt(run.throughput_ips) << ",\n"
          << "     \"latency_ms\": {\"mean\": " << fmt(run.latency.mean)
          << ", \"p50\": " << fmt(run.latency.p50) << ", \"p90\": "
          << fmt(run.latency.p90) << ", \"p99\": " << fmt(run.latency.p99)
          << ", \"max\": " << fmt(run.latency.max) << "}}"
          << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"speedup_best_vs_1\": " << fmt(speedup) << ",\n";
    out << "  \"identical_across_configs\": "
        << (identical ? "true" : "false") << "\n";
    out << "}\n";
  }

  if (check_mismatches > 0) {
    return fail("serial cross-check found " +
                std::to_string(check_mismatches) + " mismatching instances");
  }
  if (!identical) return fail("determinism violation (see above)");
  if (const auto min_speedup = flags.get("min-speedup")) {
    const double want = flags.get_double("min-speedup", 0.0);
    if (speedup <= 0.0) {
      return fail("--min-speedup needs a 1-worker run in --workers");
    }
    if (speedup < want) {
      return fail("speedup " + fmt(speedup) + "x below required " +
                  fmt(want) + "x");
    }
  }
  return 0;
}
