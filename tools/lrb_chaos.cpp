// lrb_chaos: seeded fault-injection campaigns against the rebalancing
// service (docs/testing.md, "Chaos harness").
//
// Each campaign spins up an in-process lrb server behind a server-side
// FaultInjector, fires resilient clients at it through client-side
// injectors, and asserts the full resilience contract: every request gets
// exactly one outcome, every completed reply is byte-identical to
// engine::solve_serial_reference, and no client gives up. Every fault
// schedule is a pure function of the campaign seed, so any failure this
// tool reports replays with:
//
//   lrb_chaos --seed BASE --campaign-index I --campaigns 1
//
// (the failing campaign's own seed is printed; --seed-list replays an
// explicit set, which is how tests/corpus/chaos_seeds.txt pins past
// failures).
//
//   lrb_chaos --campaigns 50 --check
//   lrb_chaos --smoke --check            # CI preset
//
// Flags (defaults in parentheses):
//   --campaigns N (50)     number of seeded campaigns
//   --seed S (1)           base seed; campaign i uses campaign_seed(S, i)
//   --campaign-index I (0) first campaign index (for replaying one seed)
//   --clients N (2)        resilient clients per campaign
//   --requests N (8)       solve requests per client
//   --algo NAME (best-of)  solver-registry backend (canonical name or
//                          alias, docs/solvers.md): greedy, m-partition,
//                          best-of, ptas, lpt, local-search
//   --reactors N (1)       reactor shards in the server under test
//   --tick-workers N (1)   engine tick workers in the server under test
//   --stream               streaming-session campaigns instead of one-shot
//                          Solves: --clients concurrent sessions each
//                          streaming --requests x 8 deltas under fault
//                          injection, every ack byte-compared against the
//                          serial replay mirror and the delta ledger
//                          checked for lost/duplicated deltas
//                          (docs/streaming.md; restarts do not apply)
//   --restart-every K (4)  every Kth campaign drains + restarts the
//                          server mid-campaign (0 = never)
//   --seed-list CSV        run exactly these campaign seeds (decimal or
//                          0x-hex, comma-separated); overrides --campaigns
//   --check                byte-compare every reply vs the serial solver
//   --smoke                CI preset: 8 campaigns x 2 clients x 4 requests
//   --verbose              print each campaign's fault plans
//   --version              print version/schema info and exit
//
// Exits nonzero iff any campaign failed.

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "solver/registry.h"
#include "svc/fault/chaos.h"
#include "util/flags.h"
#include "util/version.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_chaos: " << message << "\n";
  return 1;
}

bool parse_seed_list(const std::string& text,
                     std::vector<std::uint64_t>* seeds) {
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    try {
      seeds->push_back(std::stoull(token, nullptr, 0));
    } catch (...) {
      return false;
    }
  }
  return !seeds->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_chaos");
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {
        "campaigns", "seed",    "campaign-index", "clients",
        "requests",  "algo",    "restart-every",  "seed-list",
        "reactors",  "tick-workers", "stream",
        "check",     "smoke",   "verbose",        "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  const bool smoke = flags.has("smoke");
  std::int64_t campaigns = flags.get_int("campaigns", smoke ? 8 : 50);
  const std::int64_t clients = flags.get_int("clients", 2);
  const std::int64_t requests = flags.get_int("requests", smoke ? 4 : 8);
  const std::int64_t restart_every = flags.get_int("restart-every", 4);
  const std::int64_t first_index = flags.get_int("campaign-index", 0);
  const std::int64_t reactors = flags.get_int("reactors", 1);
  const std::int64_t tick_workers = flags.get_int("tick-workers", 1);
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (campaigns < 1) return fail("--campaigns must be >= 1");
  if (clients < 1) return fail("--clients must be >= 1");
  if (requests < 1) return fail("--requests must be >= 1");
  if (reactors < 1) return fail("--reactors must be >= 1");
  if (tick_workers < 1) return fail("--tick-workers must be >= 1");
  if (restart_every < 0) return fail("--restart-every must be >= 0");
  if (first_index < 0) return fail("--campaign-index must be >= 0");

  solver::SolverSpec spec;
  const std::string algo_text = flags.get_or("algo", "best-of");
  if (!solver::parse_backend(algo_text, &spec.backend)) {
    return fail("unknown --algo '" + algo_text + "' (want " +
                solver::backend_list() + ")");
  }

  std::vector<std::uint64_t> seeds;
  if (const auto list = flags.get("seed-list")) {
    if (!parse_seed_list(*list, &seeds)) {
      return fail("bad --seed-list '" + *list + "'");
    }
  } else {
    for (std::int64_t i = 0; i < campaigns; ++i) {
      seeds.push_back(svc::fault::campaign_seed(
          base_seed, static_cast<std::uint64_t>(first_index + i)));
    }
  }

  std::size_t failures = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_retries = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    svc::fault::CampaignOptions options;
    options.seed = seeds[i];
    options.clients = static_cast<std::size_t>(clients);
    options.requests_per_client = static_cast<std::size_t>(requests);
    options.solver = spec;
    options.reactors = static_cast<std::size_t>(reactors);
    options.tick_workers = static_cast<std::size_t>(tick_workers);
    options.check = flags.has("check");
    options.restart_server =
        restart_every > 0 &&
        (i + 1) % static_cast<std::size_t>(restart_every) == 0;
    if (flags.has("stream")) {
      options.stream_sessions = static_cast<std::size_t>(clients);
      options.deltas_per_session = static_cast<std::size_t>(requests) * 8;
      options.restart_server = false;  // sessions die with the server
    }
    const auto result = svc::fault::run_campaign(options);
    total_faults +=
        result.server_faults.total + result.client_faults.total;
    total_retries += result.retries;
    if (flags.has("verbose") || !result.ok) {
      std::cout << "lrb_chaos: campaign " << i
                << (options.restart_server ? " [restart]" : "") << " "
                << result.summary() << "\n"
                << "lrb_chaos:   server plan "
                << result.server_plan.describe() << "\n"
                << "lrb_chaos:   client plan "
                << result.client_plan.describe() << "\n";
    }
    if (!result.ok) {
      ++failures;
      for (const auto& error : result.errors) {
        std::cerr << "lrb_chaos: campaign " << i << ": " << error << "\n";
      }
      std::cerr << "lrb_chaos: replay with --seed-list 0x" << std::hex
                << seeds[i] << std::dec << "\n";
    }
  }

  std::cout << "lrb_chaos: " << seeds.size() << " campaigns, "
            << (seeds.size() - failures) << " ok, " << failures
            << " failed (" << total_faults << " faults injected, "
            << total_retries << " client retries)\n";
  return failures == 0 ? 0 : 1;
}
