// lrb_serve: the long-running rebalancing service. Accepts the binary wire
// protocol (docs/serving.md) over TCP and/or Unix-domain sockets, batches
// concurrent Solve requests into engine::BatchSolver ticks, enforces
// per-request deadlines and queue-depth backpressure, and drains
// gracefully on SIGTERM/SIGINT or a Drain request (zero dropped in-flight
// requests).
//
//   lrb_serve --unix /tmp/lrb.sock --workers 0
//   lrb_serve --tcp 7733 --bind 0.0.0.0 --metrics-json metrics.json
//
// Flags (defaults in parentheses):
//   --unix PATH          listen on a Unix-domain socket
//   --tcp PORT           listen on TCP (0 = ephemeral; port is printed)
//   --bind ADDR (127.0.0.1)  TCP bind address
//   --reactors N (1)     event-loop shards, each with its own poll loop
//                        and connection table (docs/serving.md)
//   --engine-workers N (1)  engine tick workers; > 1 runs concurrent
//                        BatchSolver ticks (replies stay byte-identical)
//   --workers N (0)      solver pool size; 0 = hardware concurrency
//   --max-batch N (64)   solve coalescing cap per engine tick
//   --max-queue N (256)  admission control: shed Solves beyond this depth
//   --max-conns N (256)  connection cap
//   --tick-delay-ms N (0)  chaos/testing knob: delay each engine tick
//   --cache-mb N (0)     canonicalizing solution cache budget in MiB
//                        (docs/caching.md); 0 disables the cache
//   --metrics-json FILE  dump the final metrics snapshot on clean exit
//   --help               print usage, including the Stats JSON schema
//   --version            print version/schema info and exit
//
// At least one of --unix / --tcp is required.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "solver/registry.h"
#include "svc/server.h"
#include "util/flags.h"
#include "util/version.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_serve: " << message << "\n";
  return 1;
}

/// --help: usage plus the observable surface a dashboard scrapes — the
/// Stats reply / --metrics-json schema and its metric families. Kept in
/// one place so operators do not have to read wire.h to find the schema.
void print_help() {
  std::cout <<
      "usage: lrb_serve (--unix PATH | --tcp PORT) [options]\n"
      "\n"
      "The long-running rebalancing service (docs/serving.md): wire v1\n"
      "one-shot Solves plus wire-v2 streaming sessions (docs/streaming.md)\n"
      "over TCP and/or Unix-domain sockets.\n"
      "\n"
      "options:\n"
      "  --unix PATH           listen on a Unix-domain socket\n"
      "  --tcp PORT            listen on TCP (0 = ephemeral; port printed)\n"
      "  --bind ADDR           TCP bind address (127.0.0.1)\n"
      "  --reactors N          event-loop shards (1)\n"
      "  --engine-workers N    concurrent engine tick workers (1)\n"
      "  --workers N           solver pool size; 0 = hardware (0)\n"
      "  --max-batch N         solve coalescing cap per tick (64)\n"
      "  --max-queue N         shed Solves beyond this queue depth (256)\n"
      "  --max-conns N         connection cap (256)\n"
      "  --tick-delay-ms N     chaos knob: delay each engine tick (0)\n"
      "  --cache-mb N          solution cache budget in MiB; 0 = off (0)\n"
      "  --metrics-json FILE   dump the final metrics snapshot on exit\n"
      "  --help | --version    this text / version and schema info\n"
      "\n"
      "solvers (docs/solvers.md):\n"
      "  Each Solve / SessionOpen frame names its backend by the solver\n"
      "  registry's stable wire id; unknown ids get a BadRequest reply.\n"
      "  Registered backends (wire id: name, accepted aliases):\n";
  for (const auto& backend : lrb::solver::all_backends()) {
    std::cout << "    " << static_cast<int>(backend.wire_id) << ": "
              << backend.name;
    if (!backend.aliases.empty()) {
      std::cout << " (";
      for (std::size_t i = 0; i < backend.aliases.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << backend.aliases[i];
      }
      std::cout << ")";
    }
    std::cout << "\n";
  }
  std::cout <<
      "\n"
      "stats:\n"
      "  The Stats reply and --metrics-json both carry schema \""
      << lrb::kStatsSchema << "\":\n"
      "  {\"schema\": \"" << lrb::kStatsSchema
      << "\", \"counters\": {...}, \"gauges\": {...},\n"
      "   \"histograms\": {...}} with these families:\n"
      "    svc.*     request/reply/connection counters of the v1 path\n"
      "              (svc.requests_solve, svc.replies_solve_ok, ...) plus\n"
      "              svc.requests_session for the v2 frames\n"
      "    engine.*  batch-engine tick and latency metrics\n"
      "    cache.*   solution cache hits/misses/evictions (--cache-mb)\n"
      "    stream.*  streaming sessions (docs/streaming.md#metrics):\n"
      "              sessions_open (gauge), sessions_opened,\n"
      "              sessions_closed, deltas_applied, deltas_rejected,\n"
      "              plans_emitted, dup_frames_resent, forwarded_frames\n"
      "              (counters), moves_per_plan, replan_latency_ms\n"
      "              (histograms)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_serve");
    return 0;
  }
  if (flags.has("help")) {
    print_help();
    return 0;
  }
  for (const auto& key : flags.keys()) {
    static const char* known[] = {"unix",      "tcp",           "bind",
                                  "reactors",  "engine-workers",
                                  "workers",   "max-batch",     "max-queue",
                                  "max-conns", "tick-delay-ms", "cache-mb",
                                  "metrics-json", "help",       "version"};
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known)) {
      return fail("unknown flag '--" + key + "'");
    }
  }

  svc::ServerOptions options;
  options.unix_path = flags.get_or("unix", "");
  options.tcp_port = static_cast<int>(flags.get_int("tcp", -1));
  options.tcp_bind = flags.get_or("bind", "127.0.0.1");
  options.engine.workers =
      static_cast<std::size_t>(flags.get_int("workers", 0));
  const std::int64_t reactors = flags.get_int("reactors", 1);
  const std::int64_t engine_workers = flags.get_int("engine-workers", 1);
  const std::int64_t max_batch = flags.get_int("max-batch", 64);
  const std::int64_t max_queue = flags.get_int("max-queue", 256);
  const std::int64_t max_conns = flags.get_int("max-conns", 256);
  const std::int64_t tick_delay = flags.get_int("tick-delay-ms", 0);
  const std::int64_t cache_mb = flags.get_int("cache-mb", 0);
  if (reactors < 1) return fail("--reactors must be >= 1");
  if (engine_workers < 1) return fail("--engine-workers must be >= 1");
  if (max_batch < 1) return fail("--max-batch must be >= 1");
  if (max_queue < 1) return fail("--max-queue must be >= 1");
  if (max_conns < 1) return fail("--max-conns must be >= 1");
  if (tick_delay < 0) return fail("--tick-delay-ms must be >= 0");
  if (cache_mb < 0) return fail("--cache-mb must be >= 0");
  options.reactors = static_cast<std::size_t>(reactors);
  options.engine_workers = static_cast<std::size_t>(engine_workers);
  options.max_batch = static_cast<std::size_t>(max_batch);
  options.max_queue = static_cast<std::size_t>(max_queue);
  options.max_connections = static_cast<std::size_t>(max_conns);
  options.tick_delay_ms = static_cast<std::uint32_t>(tick_delay);
  options.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return fail("need at least one of --unix PATH / --tcp PORT");
  }
  if (options.tcp_port > 65535) return fail("--tcp port out of range");

  svc::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) return fail(error);

  if (!server.options().unix_path.empty()) {
    std::cout << "lrb_serve: listening on unix:" << server.options().unix_path
              << "\n";
  }
  if (server.tcp_port() >= 0) {
    std::cout << "lrb_serve: listening on tcp:" << server.options().tcp_bind
              << ":" << server.tcp_port() << "\n";
  }
  std::cout.flush();

  svc::install_signal_drain(&server);
  server.run();
  svc::install_signal_drain(nullptr);
  std::cout << "lrb_serve: drained cleanly\n";

  if (const auto path = flags.get("metrics-json")) {
    std::ofstream out(*path);
    if (!out) return fail("cannot write '" + *path + "'");
    out << server.options().metrics->to_json();
  }
  return 0;
}
