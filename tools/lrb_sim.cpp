// lrb_simulate: run the web-farm rebalancing simulator from the command line and
// emit the per-step metric series (CSV on stdout, summary on stderr).
//
//   lrb_simulate --policy m-partition --sites 300 --servers 12 --steps 400
//                --every 5 --k 12 --seed 7 > series.csv
//
// Flags (defaults in parentheses):
//   --policy none|greedy|m-partition|best-of|lpt-full (m-partition)
//   --byte-budget B        use cost-PARTITION with B bytes per round instead
//   --sites N (300)        --servers M (12)     --steps T (400)
//   --every R (5)          --k K (12)           --seed S (1)
//   --flash-prob P (0.003) --drain-prob P (0)   --churn-prob P (0)
//   --migrations-per-step G (0 = instantaneous)

#include <iostream>
#include <string>

#include "sim/policies.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/version.h"
#include "util/table.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_simulate: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::sim;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_simulate");
    return 0;
  }

  SimOptions options;
  options.workload.num_sites =
      static_cast<std::size_t>(flags.get_int("sites", 300));
  options.workload.flash_prob = flags.get_double("flash-prob", 0.003);
  options.workload.churn_prob = flags.get_double("churn-prob", 0.0);
  options.num_servers = static_cast<ProcId>(flags.get_int("servers", 12));
  options.steps = static_cast<std::size_t>(flags.get_int("steps", 400));
  options.rebalance_every =
      static_cast<std::size_t>(flags.get_int("every", 5));
  options.move_budget = flags.get_int("k", 12);
  options.drain_prob = flags.get_double("drain-prob", 0.0);
  options.migrations_per_step =
      static_cast<std::size_t>(flags.get_int("migrations-per-step", 0));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (options.workload.num_sites == 0 || options.num_servers == 0 ||
      options.steps == 0) {
    return fail("--sites, --servers and --steps must be positive");
  }

  Policy policy;
  std::string policy_name = flags.get_or("policy", "m-partition");
  if (flags.has("byte-budget")) {
    options.byte_costs = true;
    policy = cost_partition_policy(flags.get_int("byte-budget", 5000));
    policy_name = "cost-partition(" +
                  std::to_string(flags.get_int("byte-budget", 5000)) + "B)";
  } else {
    bool known = false;
    for (auto& candidate : unit_policies()) {
      if (candidate.name == policy_name) {
        policy = candidate.run;
        known = true;
      }
    }
    if (!known) return fail("unknown --policy '" + policy_name + "'");
  }

  Simulator simulator(options, policy);
  const auto result = simulator.run();

  Table series({"step", "makespan", "ideal", "imbalance", "moves",
                "forced_moves", "bytes_moved", "flashes"});
  for (const auto& step : result.series) {
    series.row()
        .add(static_cast<std::uint64_t>(step.step))
        .add(step.makespan)
        .add(step.ideal)
        .add(step.imbalance, 6)
        .add(step.moves)
        .add(step.forced_moves)
        .add(step.bytes_moved)
        .add(static_cast<std::uint64_t>(step.flashes));
  }
  series.print_csv(std::cout);

  std::cerr << "policy:          " << policy_name << "\n"
            << "mean imbalance:  " << result.mean_imbalance << "\n"
            << "p90 imbalance:   " << result.imbalance.p90 << "\n"
            << "max imbalance:   " << result.imbalance.max << "\n"
            << "policy moves:    " << result.total_moves << "\n"
            << "forced moves:    " << result.total_forced_moves << "\n"
            << "bytes moved:     " << result.total_bytes << "\n";
  return 0;
}
