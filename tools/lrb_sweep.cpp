// lrb_sweep: evaluate the whole algorithm roster across a sweep of move
// budgets on one instance, in parallel, and print a comparison table.
//
//   lrb_sweep instance.lrb --k 1,2,4,8,16,32 [--csv] [--threads N]
//
// Each (algorithm, k) cell runs as an independent task on the thread pool;
// results are deterministic regardless of the thread count.

#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "algo/rebalancer.h"
#include "core/analysis.h"
#include "core/io.h"
#include "core/lower_bounds.h"
#include "util/flags.h"
#include "util/version.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

int fail(const std::string& message) {
  std::cerr << "lrb_sweep: " << message << "\n";
  return 1;
}

std::vector<std::int64_t> parse_budgets(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::istringstream iss(csv);
  std::string token;
  while (std::getline(iss, token, ',')) {
    if (!token.empty()) out.push_back(std::stoll(token));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  const Flags flags(argc, argv);
  if (flags.has("version")) {
    print_version("lrb_sweep");
    return 0;
  }
  if (flags.positional().size() != 1) {
    return fail("usage: lrb_sweep <instance.lrb> [--k 1,2,4,...] [--csv] "
                "[--threads N]");
  }
  std::ifstream in(flags.positional()[0]);
  if (!in) return fail("cannot open " + flags.positional()[0]);
  std::string error;
  const auto instance = read_instance(in, &error);
  if (!instance) return fail("parse error: " + error);

  const auto budgets = parse_budgets(flags.get_or("k", "1,2,4,8,16,32"));
  if (budgets.empty()) return fail("--k list is empty");
  const auto roster = standard_rebalancers();

  struct Cell {
    std::string algo;
    std::int64_t k = 0;
    RebalanceResult result;
    double millis = 0;
  };
  std::vector<Cell> cells;
  for (const auto& algo : roster) {
    for (std::int64_t k : budgets) {
      cells.push_back({algo.name, k, {}, 0});
    }
  }

  ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads", 0)));
  parallel_for(pool, 0, cells.size(), [&](std::size_t i) {
    const auto& algo = roster[i / budgets.size()];
    Timer timer;
    cells[i].result = algo.run(*instance, cells[i].k);
    cells[i].millis = timer.millis();
  });

  std::cerr << "instance: " << instance->num_jobs() << " jobs on "
            << instance->num_procs << " processors; initial makespan "
            << instance->initial_makespan() << "\n";
  Table table({"algorithm", "k", "makespan", "moves", "cost", "vs LB", "ms"});
  for (const auto& cell : cells) {
    const Size lb = combined_lower_bound(*instance, cell.k);
    table.row()
        .add(cell.algo)
        .add(cell.k)
        .add(cell.result.makespan)
        .add(cell.result.moves)
        .add(cell.result.cost)
        .add(lb > 0 ? static_cast<double>(cell.result.makespan) /
                          static_cast<double>(lb)
                    : 1.0,
             4)
        .add(cell.millis, 3);
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
