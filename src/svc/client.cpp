#include "svc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lrb::svc {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool set_errno_error(std::string* error, const std::string& what) {
  return set_error(error, what + ": " + std::strerror(errno));
}

/// Connects `fd` to `addr`, honouring a 0-means-blocking timeout. On
/// timeout-mode success the socket is restored to blocking.
bool connect_with_timeout(int fd, const sockaddr* addr, socklen_t addr_len,
                          std::uint32_t timeout_ms, std::string* error,
                          const std::string& what) {
  if (timeout_ms == 0) {
    if (connect(fd, addr, addr_len) != 0) {
      return set_errno_error(error, what);
    }
    return true;
  }
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return set_errno_error(error, what + " (nonblocking)");
  }
  if (connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS) return set_errno_error(error, what);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return set_error(error, what + ": connect timeout");
      pollfd entry{fd, POLLOUT, 0};
      const int ready = poll(&entry, 1, static_cast<int>(remaining));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return set_errno_error(error, what + " (poll)");
      }
      if (ready == 0) return set_error(error, what + ": connect timeout");
      int so_error = 0;
      socklen_t len = sizeof so_error;
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
        return set_errno_error(error, what + " (getsockopt)");
      }
      if (so_error != 0) {
        errno = so_error;
        return set_errno_error(error, what);
      }
      break;
    }
  }
  if (fcntl(fd, F_SETFL, flags) != 0) {
    return set_errno_error(error, what + " (blocking restore)");
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      io_(other.io_),
      recv_buf_(std::move(other.recv_buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    io_ = other.io_;
    recv_buf_ = std::move(other.recv_buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    io_->on_close(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  recv_buf_.clear();
}

std::optional<Client> Client::connect_unix(const std::string& path,
                                           std::string* error,
                                           fault::SocketIo* io,
                                           std::uint32_t connect_timeout_ms) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    set_error(error, "unix path too long");
    return std::nullopt;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_errno_error(error, "socket(AF_UNIX)");
    return std::nullopt;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (!connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof addr, connect_timeout_ms, error,
                            "connect(" + path + ")")) {
    ::close(fd);
    return std::nullopt;
  }
  Client client;
  client.fd_ = fd;
  client.io_ = io;
  return client;
}

std::optional<Client> Client::connect_tcp(const std::string& host, int port,
                                          std::string* error,
                                          fault::SocketIo* io,
                                          std::uint32_t connect_timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_errno_error(error, "socket(AF_INET)");
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "bad address " + host);
    ::close(fd);
    return std::nullopt;
  }
  if (!connect_with_timeout(
          fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
          connect_timeout_ms, error,
          "connect(" + host + ":" + std::to_string(port) + ")")) {
    ::close(fd);
    return std::nullopt;
  }
  Client client;
  client.fd_ = fd;
  client.io_ = io;
  return client;
}

bool Client::send_bytes(std::string_view bytes, std::string* error) {
  if (fd_ < 0) return set_error(error, "not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        io_->send(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return set_errno_error(error, "send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::send_frame(MsgType type, std::uint64_t request_id,
                        std::string_view payload, std::string* error) {
  std::string frame;
  encode_frame(frame, type, request_id, payload);
  return send_bytes(frame, error);
}

bool Client::recv_frame(FrameHeader* header, std::string* payload,
                        std::string* error) {
  return recv_frame_until(header, payload,
                          std::chrono::steady_clock::time_point::max(),
                          error, nullptr);
}

bool Client::recv_frame_until(FrameHeader* header, std::string* payload,
                              std::chrono::steady_clock::time_point deadline,
                              std::string* error, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (fd_ < 0) return set_error(error, "not connected");
  const bool bounded =
      deadline != std::chrono::steady_clock::time_point::max();
  char chunk[65536];
  for (;;) {
    switch (decode_header(recv_buf_, header)) {
      case DecodeStatus::kNeedMore:
        break;
      case DecodeStatus::kOk:
        if (recv_buf_.size() - kHeaderSize >= header->payload_len) {
          payload->assign(recv_buf_, kHeaderSize, header->payload_len);
          recv_buf_.erase(0, kHeaderSize + header->payload_len);
          return true;
        }
        break;
      case DecodeStatus::kBadMagic:
        return set_error(error, "reply has bad magic");
      case DecodeStatus::kBadVersion:
        return set_error(error, "reply has unsupported version");
      case DecodeStatus::kTooLarge:
        return set_error(error, "reply payload exceeds cap");
    }
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        return set_error(error, "receive timeout");
      }
      pollfd entry{fd_, POLLIN, 0};
      const int ready = io_->poll(&entry, 1, static_cast<int>(remaining));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return set_errno_error(error, "poll");
      }
      if (ready == 0) {
        if (timed_out != nullptr) *timed_out = true;
        return set_error(error, "receive timeout");
      }
    }
    const ssize_t n = io_->recv(fd_, chunk, sizeof chunk);
    if (n == 0) return set_error(error, "connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return set_errno_error(error, "recv");
    }
    recv_buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::call(MsgType type, std::uint64_t request_id,
                  std::string_view payload, FrameHeader* reply_header,
                  std::string* reply_payload, std::string* error) {
  if (!send_frame(type, request_id, payload, error)) return false;
  if (!recv_frame(reply_header, reply_payload, error)) return false;
  if (reply_header->request_id != request_id) {
    return set_error(error, "reply request id mismatch");
  }
  return true;
}

std::optional<Client::SolveOutcome> Client::solve(const SolveRequest& request,
                                                  std::uint64_t request_id,
                                                  std::string* error) {
  FrameHeader header;
  std::string payload;
  if (!call(MsgType::kSolve, request_id, encode_solve_request(request),
            &header, &payload, error)) {
    return std::nullopt;
  }
  SolveOutcome outcome;
  if (header.type == MsgType::kSolveOk) {
    std::string decode_error;
    auto result = decode_solve_reply_payload(payload, &decode_error);
    if (!result) {
      set_error(error, "bad solve reply: " + decode_error);
      return std::nullopt;
    }
    outcome.result = std::move(*result);
    outcome.raw_payload = std::move(payload);
    return outcome;
  }
  if (header.type == MsgType::kError) {
    outcome.server_error = decode_error_payload(payload);
    if (!outcome.server_error) {
      set_error(error, "malformed error reply");
      return std::nullopt;
    }
    return outcome;
  }
  set_error(error, "unexpected reply type");
  return std::nullopt;
}

}  // namespace lrb::svc
