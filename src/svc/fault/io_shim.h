// The socket-IO seam for the rebalancing service.
//
// Server and Client never call recv/send/poll directly; every byte they
// move goes through a SocketIo. The default implementation (SocketIo::real)
// is a thin passthrough to the syscalls, so production behaviour is
// unchanged. The fault-injection harness (svc/fault/fault.h) substitutes a
// FaultInjector that perturbs the stream on a seeded, reproducible
// schedule — short reads, EINTR, ECONNRESET, partial writes, abrupt
// close, header-byte corruption — which is what turns "does the service
// survive a torn frame?" into a deterministic tier-1 test.
//
// Contract: implementations must preserve syscall semantics (return counts
// and errno) so callers cannot tell a shim from the kernel. on_close(fd)
// tells the shim a descriptor is about to be closed so per-connection
// state can be dropped before the fd number is reused.

#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>

namespace lrb::svc::fault {

class SocketIo {
 public:
  virtual ~SocketIo();

  /// recv(2) on a stream socket; returns the byte count, 0 on EOF, or -1
  /// with errno set.
  [[nodiscard]] virtual ssize_t recv(int fd, void* buf, std::size_t len);

  /// send(2) with MSG_NOSIGNAL; returns the byte count or -1 with errno.
  [[nodiscard]] virtual ssize_t send(int fd, const void* buf,
                                     std::size_t len);

  /// poll(2); returns the ready count, 0 on timeout, or -1 with errno.
  [[nodiscard]] virtual int poll(struct pollfd* fds, nfds_t nfds,
                                 int timeout_ms);

  /// Notification that `fd` is about to be closed by the caller (the close
  /// itself stays with the caller). Default: no-op.
  virtual void on_close(int fd);

  /// The passthrough instance used everywhere by default.
  [[nodiscard]] static SocketIo& real() noexcept;
};

}  // namespace lrb::svc::fault
