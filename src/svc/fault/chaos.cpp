#include "svc/fault/chaos.h"

#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "online/trace.h"
#include "stream/delta_log.h"
#include "svc/server.h"
#include "svc/session_client.h"
#include "svc/wire.h"

namespace lrb::svc::fault {

namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/lrb_chaos_" + std::to_string(getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// One in-process lrb server behind a fault injector, run() on its own
/// thread. drain() is the graceful kill (what SIGTERM does to lrb_serve).
class ServerRunner {
 public:
  ServerRunner(const std::string& path, const FaultPlan& plan,
               const CampaignOptions& options, obs::Registry* registry)
      : injector_(plan, registry) {
    ServerOptions server_options;
    server_options.unix_path = path;
    server_options.metrics = registry;
    server_options.io = &injector_;
    server_options.engine.workers = options.engine_workers;
    server_options.reactors = options.reactors;
    server_options.engine_workers = options.tick_workers;
    server_options.cache_bytes = options.cache_bytes;
    server_ = std::make_unique<Server>(std::move(server_options));
    std::string error;
    started_ = server_->start(&error);
    error_ = error;
    if (started_) runner_ = std::thread([this] { server_->run(); });
  }

  ~ServerRunner() { drain(); }

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] FaultStats faults() const { return injector_.stats(); }

  void drain() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
  }

 private:
  FaultInjector injector_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
  bool started_ = false;
  std::string error_;
};

struct RequestSpec {
  std::uint64_t id = 0;
  SolveRequest request;
};

RequestSpec make_request(const CampaignOptions& options, std::size_t client,
                         std::size_t index) {
  RequestSpec spec;
  spec.id = static_cast<std::uint64_t>(client) * 1'000'000 + index + 1;
  spec.request.spec = options.solver;
  spec.request.instance = mixed_corpus_instance(
      client * 1000003 + index, options.seed);
  spec.request.k = std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(spec.request.instance.num_jobs()) / 4);
  return spec;
}

/// Shared, mutex-guarded campaign ledger: one entry per request id, so
/// lost (missing) and duplicated (double-recorded) outcomes are caught no
/// matter how the client threads interleave.
class Ledger {
 public:
  void record(std::uint64_t id, std::string what) {
    std::lock_guard lock(mutex_);
    const auto [it, inserted] = outcomes_.emplace(id, std::move(what));
    if (!inserted) {
      errors_.push_back("request " + std::to_string(id) +
                        ": duplicate outcome (" + it->second + ")");
    }
  }

  void error(std::string what) {
    std::lock_guard lock(mutex_);
    errors_.push_back(std::move(what));
  }

  [[nodiscard]] std::size_t outcomes() const {
    std::lock_guard lock(mutex_);
    return outcomes_.size();
  }

  [[nodiscard]] std::vector<std::string> take_errors() {
    std::lock_guard lock(mutex_);
    return std::move(errors_);
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::string> outcomes_;
  std::vector<std::string> errors_;
};

void run_client_phase(const CampaignOptions& options, std::size_t client,
                      std::size_t begin, std::size_t end,
                      ResilientClient& resilient, Ledger& ledger,
                      std::atomic<std::size_t>& completed) {
  for (std::size_t i = begin; i < end; ++i) {
    const RequestSpec spec = make_request(options, client, i);
    std::string error;
    const auto outcome = resilient.solve(spec.request, spec.id, &error);
    if (!outcome) {
      ledger.record(spec.id, "gave up");
      ledger.error("request " + std::to_string(spec.id) + ": " + error);
      continue;
    }
    if (outcome->server_error) {
      // The campaign never sends deadlines or malformed payloads, so any
      // definitive server error is a resilience bug, not backpressure.
      ledger.record(spec.id, "server error");
      ledger.error("request " + std::to_string(spec.id) +
                   ": unexpected definitive error " +
                   error_code_name(outcome->server_error->code) + ": " +
                   outcome->server_error->text);
      continue;
    }
    ledger.record(spec.id, "ok");
    completed.fetch_add(1, std::memory_order_relaxed);
    if (options.check) {
      // With the cache on, every reply — cold solve or warm hit, before or
      // after a restart — must match the canonical-solve reference.
      const auto reference =
          options.cache_bytes > 0
              ? engine::cached_serial_reference(
                    spec.request.spec, spec.request.instance, spec.request.k)
              : engine::solve_serial_reference(
                    spec.request.spec, spec.request.instance, spec.request.k);
      if (outcome->raw_payload != encode_solve_reply_payload(reference)) {
        ledger.error("request " + std::to_string(spec.id) +
                     ": reply differs from serial reference");
      }
    }
  }
}

/// One seeded session workload: a mixed-corpus initial cluster plus a
/// random arrival/departure trace folded into a delta log
/// (stream::delta_log_from_trace), with triggers tight enough that most
/// campaigns fire several replans while faults are flying.
stream::DeltaLog make_session_log(const CampaignOptions& options,
                                  std::size_t session) {
  stream::TriggerConfig trigger;
  trigger.spec = options.solver;
  trigger.move_frac = 0.25;
  trigger.imbalance_ratio = 1.5;
  trigger.delta_count = 16;
  online::TraceOptions trace_options;
  trace_options.num_events = options.deltas_per_session;
  trace_options.departure_fraction = 0.4;
  const auto events = online::random_trace(
      trace_options, campaign_seed(options.seed, 0x200 + session));
  return stream::delta_log_from_trace(
      mixed_corpus_instance(session, options.seed), events, trigger);
}

/// Streaming-session campaign: N concurrent sessions, each a SessionClient
/// thread behind its own fault injector, every ack byte-compared against
/// the serial replay mirror (run_session_stream). The stats byte-compare at
/// the end of each session is the per-session delta ledger; on top of that
/// the server-side stream.deltas_* totals must equal the sum of the
/// mirrors' — if an injected reset ever made the server re-apply a resent
/// frame (instead of dedup-resending the stored ack), the totals diverge.
CampaignResult run_stream_campaign(const CampaignOptions& options) {
  CampaignResult result;
  result.requests = options.stream_sessions;
  std::uint64_t sx = options.seed ^ 0x5e12e20b5ebULL;  // server-side stream
  std::uint64_t cx = options.seed ^ 0xc11e7a05eedULL;  // client-side stream
  result.server_plan = FaultPlan::from_seed(splitmix64(sx));
  result.client_plan = FaultPlan::from_seed(splitmix64(cx));

  const std::string path = unique_socket_path();
  obs::Registry server_registry;
  obs::Registry client_registry;

  // restart_server is deliberately not honored here: sessions are server
  // state, so a cold restart is session loss by design, not a fault to
  // ride across.
  ServerRunner server(path, result.server_plan, options, &server_registry);
  if (!server.started()) {
    result.errors.push_back("server start failed: " + server.error());
    return result;
  }

  std::vector<std::unique_ptr<FaultInjector>> injectors;
  for (std::size_t s = 0; s < options.stream_sessions; ++s) {
    FaultPlan plan = result.client_plan;
    plan.seed = campaign_seed(result.client_plan.seed, s + 1);
    injectors.push_back(
        std::make_unique<FaultInjector>(plan, &client_registry));
  }

  std::vector<StreamRunResult> runs(options.stream_sessions);
  std::vector<std::thread> threads;
  threads.reserve(options.stream_sessions);
  for (std::size_t s = 0; s < options.stream_sessions; ++s) {
    threads.emplace_back([&, s] {
      const stream::DeltaLog log = make_session_log(options, s);
      StreamRunOptions run;
      run.endpoint = Endpoint::unix_socket(path);
      run.retry = options.retry;
      run.retry.jitter_seed = campaign_seed(options.seed, 0x100 + s);
      run.session_id = s + 1;
      run.frame_size = 6;
      run.check = options.check;
      run.cached = options.cache_bytes > 0;
      run.metrics = &client_registry;
      run.io = injectors[s].get();
      runs[s] = run_session_stream(log, run);
    });
  }
  for (auto& t : threads) t.join();

  server.drain();
  result.server_faults = server.faults();
  unlink(path.c_str());

  std::uint64_t mirror_deltas = 0;
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const auto& run = runs[s];
    if (run.ok) {
      ++result.completed;
    } else {
      result.errors.push_back("session " + std::to_string(s + 1) + ": " +
                              run.error);
    }
    mirror_deltas += run.deltas_applied + run.deltas_rejected;
  }
  const std::uint64_t server_deltas =
      server_registry.counter("stream.deltas_applied").value() +
      server_registry.counter("stream.deltas_rejected").value();
  if (result.completed == result.requests && server_deltas != mirror_deltas) {
    result.errors.push_back(
        "delta ledger mismatch: server processed " +
        std::to_string(server_deltas) + " deltas, mirrors saw " +
        std::to_string(mirror_deltas) +
        " (a retried frame was lost or re-applied)");
  }

  result.retries = client_registry.counter("client.retries").value();
  result.reconnects = client_registry.counter("client.reconnects").value();
  result.server_solves =
      server_registry.counter("stream.plans_emitted").value();
  result.client_faults.total =
      client_registry.counter("svc.faults_injected").value();
  result.client_faults.short_reads =
      client_registry.counter("fault.short_read").value();
  result.client_faults.eintrs =
      client_registry.counter("fault.eintr").value();
  result.client_faults.partial_writes =
      client_registry.counter("fault.partial_write").value();
  result.client_faults.conn_resets =
      client_registry.counter("fault.conn_reset").value();
  result.client_faults.abrupt_closes =
      client_registry.counter("fault.abrupt_close").value();
  result.client_faults.corruptions =
      client_registry.counter("fault.corrupt").value();
  result.ok = result.errors.empty();
  return result;
}

}  // namespace

std::uint64_t campaign_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t x = base_seed + 0x9e3779b97f4a7c15ULL * index;
  return splitmix64(x);
}

std::string CampaignResult::summary() const {
  std::ostringstream out;
  out << "seed=0x" << std::hex << server_plan.seed << std::dec
      << (ok ? " ok" : " FAIL") << ": " << completed << '/' << requests
      << " completed, " << retries << " retries, " << reconnects
      << " reconnects, " << server_faults.total << '+'
      << client_faults.total << " faults";
  if (!errors.empty()) out << ", " << errors.size() << " errors";
  return out.str();
}

CampaignResult run_campaign(const CampaignOptions& options) {
  if (options.stream_sessions > 0) return run_stream_campaign(options);
  CampaignResult result;
  result.requests = options.clients * options.requests_per_client;
  // Independent plans for the two sides of the wire, both derived from
  // the campaign seed alone.
  std::uint64_t sx = options.seed ^ 0x5e12e20b5ebULL;  // server-side stream
  std::uint64_t cx = options.seed ^ 0xc11e7a05eedULL;  // client-side stream
  result.server_plan = FaultPlan::from_seed(splitmix64(sx));
  result.client_plan = FaultPlan::from_seed(splitmix64(cx));

  const std::string path = unique_socket_path();
  obs::Registry server_registry;
  obs::Registry client_registry;
  Ledger ledger;
  std::atomic<std::size_t> completed{0};

  auto server = std::make_unique<ServerRunner>(path, result.server_plan,
                                               options, &server_registry);
  if (!server->started()) {
    result.errors.push_back("server start failed: " + server->error());
    return result;
  }

  // Each client gets its own injector (independent per-connection decision
  // streams) but they all share the client registry, so fault counters
  // aggregate across the campaign.
  std::vector<std::unique_ptr<FaultInjector>> client_injectors;
  std::vector<std::unique_ptr<ResilientClient>> clients;
  for (std::size_t c = 0; c < options.clients; ++c) {
    FaultPlan plan = result.client_plan;
    plan.seed = campaign_seed(result.client_plan.seed, c + 1);
    client_injectors.push_back(
        std::make_unique<FaultInjector>(plan, &client_registry));
    RetryPolicy policy = options.retry;
    policy.jitter_seed = campaign_seed(options.seed, 0x100 + c);
    clients.push_back(std::make_unique<ResilientClient>(
        Endpoint::unix_socket(path), policy, &client_registry,
        client_injectors.back().get()));
  }

  const auto run_phase = [&](std::size_t begin, std::size_t end) {
    std::vector<std::thread> threads;
    threads.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) {
      threads.emplace_back([&, c] {
        run_client_phase(options, c, begin, end, *clients[c], ledger,
                         completed);
      });
    }
    for (auto& t : threads) t.join();
  };

  if (options.restart_server && options.requests_per_client >= 2) {
    const std::size_t half = options.requests_per_client / 2;
    run_phase(0, half);
    // Graceful kill + cold restart on the same socket: the clients'
    // cached connections are now dead and must reconnect.
    server = nullptr;
    server = std::make_unique<ServerRunner>(path, result.server_plan,
                                            options, &server_registry);
    if (!server->started()) {
      result.errors.push_back("server restart failed: " + server->error());
      return result;
    }
    run_phase(half, options.requests_per_client);
  } else {
    run_phase(0, options.requests_per_client);
  }

  server->drain();
  // Injector counters live in the shared server registry, so this is
  // cumulative across a mid-campaign restart.
  result.server_faults = server->faults();
  server = nullptr;
  unlink(path.c_str());

  result.completed = completed.load();
  result.retries = client_registry.counter("client.retries").value();
  result.reconnects = client_registry.counter("client.reconnects").value();
  result.server_solves =
      server_registry.counter("svc.replies_solve_ok").value();
  result.client_faults.total =
      client_registry.counter("svc.faults_injected").value();
  result.client_faults.short_reads =
      client_registry.counter("fault.short_read").value();
  result.client_faults.eintrs =
      client_registry.counter("fault.eintr").value();
  result.client_faults.partial_writes =
      client_registry.counter("fault.partial_write").value();
  result.client_faults.conn_resets =
      client_registry.counter("fault.conn_reset").value();
  result.client_faults.abrupt_closes =
      client_registry.counter("fault.abrupt_close").value();
  result.client_faults.corruptions =
      client_registry.counter("fault.corrupt").value();

  result.errors = ledger.take_errors();
  if (ledger.outcomes() != result.requests) {
    result.errors.push_back(
        "lost requests: " + std::to_string(ledger.outcomes()) + " of " +
        std::to_string(result.requests) + " outcomes recorded");
  }
  if (result.completed != result.requests && result.errors.empty()) {
    result.errors.push_back("only " + std::to_string(result.completed) +
                            " of " + std::to_string(result.requests) +
                            " requests completed");
  }
  // The server may legitimately have solved MORE than the clients saw
  // (a reply can be lost to an injected reset and the retry re-solved),
  // but never fewer.
  if (result.server_solves < result.completed) {
    result.errors.push_back(
        "server answered fewer solves (" +
        std::to_string(result.server_solves) + ") than clients completed (" +
        std::to_string(result.completed) + ")");
  }
  result.ok = result.errors.empty();
  return result;
}

}  // namespace lrb::svc::fault
