#include "svc/fault/fault.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace lrb::svc::fault {

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(splitmix64(seed));
  // Non-lethal stream perturbations are the bread and butter: at least one
  // of them is always on, at a rate that forces reassembly work without
  // stalling progress.
  plan.short_read = rng.bernoulli(0.75) ? rng.uniform_real(0.05, 0.35) : 0.0;
  plan.eintr = rng.bernoulli(0.6) ? rng.uniform_real(0.05, 0.25) : 0.0;
  plan.partial_write =
      rng.bernoulli(0.6) ? rng.uniform_real(0.05, 0.30) : 0.0;
  if (plan.short_read == 0.0 && plan.eintr == 0.0 &&
      plan.partial_write == 0.0) {
    plan.short_read = 0.2;
  }
  // Lethal faults and corruption are rare per operation; the caps below
  // bound them campaign-wide so bounded-retry clients always get through.
  plan.conn_reset = rng.bernoulli(0.4) ? rng.uniform_real(0.005, 0.03) : 0.0;
  plan.abrupt_close =
      rng.bernoulli(0.4) ? rng.uniform_real(0.005, 0.03) : 0.0;
  plan.corrupt = rng.bernoulli(0.35) ? rng.uniform_real(0.01, 0.08) : 0.0;
  plan.max_disruptions_per_conn =
      static_cast<std::uint32_t>(rng.uniform_int(6, 20));
  plan.max_disruptions_total =
      static_cast<std::uint32_t>(rng.uniform_int(24, 64));
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "seed=0x" << std::hex << seed << std::dec;
  const auto rate = [&](const char* name, double value) {
    if (value > 0.0) out << ' ' << name << '=' << value;
  };
  rate("short_read", short_read);
  rate("eintr", eintr);
  rate("partial_write", partial_write);
  rate("conn_reset", conn_reset);
  rate("abrupt_close", abrupt_close);
  rate("corrupt", corrupt);
  out << " caps=" << max_disruptions_per_conn << '/'
      << max_disruptions_total;
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Registry* metrics,
                             SocketIo* base)
    : plan_(plan),
      base_(base),
      m_total_(metrics->counter("svc.faults_injected")),
      m_short_read_(metrics->counter("fault.short_read")),
      m_eintr_(metrics->counter("fault.eintr")),
      m_partial_write_(metrics->counter("fault.partial_write")),
      m_conn_reset_(metrics->counter("fault.conn_reset")),
      m_abrupt_close_(metrics->counter("fault.abrupt_close")),
      m_corrupt_(metrics->counter("fault.corrupt")) {}

FaultInjector::Stream& FaultInjector::stream_for(int fd) {
  const auto it = streams_.find(fd);
  if (it != streams_.end()) return it->second;
  Stream stream;
  std::uint64_t x = plan_.seed + 0x9e3779b97f4a7c15ULL * (next_stream_ + 1);
  stream.rng = Rng(splitmix64(x));
  ++next_stream_;
  return streams_.emplace(fd, std::move(stream)).first->second;
}

bool FaultInjector::may_disrupt(Stream& stream) {
  return stream.disruptions < plan_.max_disruptions_per_conn &&
         total_disruptions_ < plan_.max_disruptions_total;
}

void FaultInjector::spend(Stream& stream, obs::Counter& kind) {
  ++stream.disruptions;
  ++total_disruptions_;
  m_total_.add(1);
  kind.add(1);
}

void FaultInjector::kill_socket(int fd, Stream& stream) {
  stream.dead = true;
  // Shut the real socket down so the peer sees EOF instead of waiting on a
  // reply that will never come; the fd itself stays open (the owner still
  // closes it).
  shutdown(fd, SHUT_RDWR);
}

ssize_t FaultInjector::recv(int fd, void* buf, std::size_t len) {
  std::size_t ask = len;
  {
    std::lock_guard lock(mutex_);
    Stream& stream = stream_for(fd);
    if (stream.dead) {
      errno = ECONNRESET;
      return -1;
    }
    if (may_disrupt(stream)) {
      if (stream.rng.bernoulli(plan_.eintr)) {
        spend(stream, m_eintr_);
        errno = EINTR;
        return -1;
      }
      if (stream.rng.bernoulli(plan_.conn_reset)) {
        spend(stream, m_conn_reset_);
        kill_socket(fd, stream);
        errno = ECONNRESET;
        return -1;
      }
      if (stream.rng.bernoulli(plan_.abrupt_close)) {
        spend(stream, m_abrupt_close_);
        kill_socket(fd, stream);
        return 0;  // EOF
      }
      if (len > 1 && stream.rng.bernoulli(plan_.short_read)) {
        spend(stream, m_short_read_);
        ask = static_cast<std::size_t>(stream.rng.uniform_int(1, 8));
        if (ask > len) ask = len;
      }
    }
  }
  const ssize_t n = base_->recv(fd, buf, ask);
  if (n <= 0) return n;
  {
    std::lock_guard lock(mutex_);
    Stream& stream = stream_for(fd);
    // Corrupt only frame-aligned chunks (see fault.h): flipping a bit in
    // the magic/version bytes guarantees the receiver detects it.
    if (n >= 6 && may_disrupt(stream) &&
        std::memcmp(buf, "LRBS", 4) == 0 &&
        stream.rng.bernoulli(plan_.corrupt)) {
      spend(stream, m_corrupt_);
      const auto offset =
          static_cast<std::size_t>(stream.rng.uniform_int(0, 5));
      const auto bit = static_cast<unsigned char>(
          1u << stream.rng.uniform_int(0, 7));
      static_cast<unsigned char*>(buf)[offset] ^= bit;
    }
  }
  return n;
}

ssize_t FaultInjector::send(int fd, const void* buf, std::size_t len) {
  std::size_t ask = len;
  {
    std::lock_guard lock(mutex_);
    Stream& stream = stream_for(fd);
    if (stream.dead) {
      errno = EPIPE;
      return -1;
    }
    if (may_disrupt(stream)) {
      if (stream.rng.bernoulli(plan_.eintr)) {
        spend(stream, m_eintr_);
        errno = EINTR;
        return -1;
      }
      if (stream.rng.bernoulli(plan_.conn_reset)) {
        spend(stream, m_conn_reset_);
        kill_socket(fd, stream);
        errno = ECONNRESET;
        return -1;
      }
      if (stream.rng.bernoulli(plan_.abrupt_close)) {
        spend(stream, m_abrupt_close_);
        kill_socket(fd, stream);
        errno = EPIPE;
        return -1;
      }
      if (len > 1 && stream.rng.bernoulli(plan_.partial_write)) {
        spend(stream, m_partial_write_);
        ask = static_cast<std::size_t>(stream.rng.uniform_int(1, 8));
        if (ask > len) ask = len;
      }
    }
  }
  return base_->send(fd, buf, ask);
}

int FaultInjector::poll(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  {
    std::lock_guard lock(mutex_);
    // Poll EINTR draws from a dedicated stream keyed to fd -1 so it does
    // not perturb any connection's schedule.
    Stream& stream = stream_for(-1);
    if (may_disrupt(stream) && stream.rng.bernoulli(plan_.eintr)) {
      spend(stream, m_eintr_);
      errno = EINTR;
      return -1;
    }
  }
  return base_->poll(fds, nfds, timeout_ms);
}

void FaultInjector::on_close(int fd) {
  {
    std::lock_guard lock(mutex_);
    streams_.erase(fd);
  }
  base_->on_close(fd);
}

FaultStats FaultInjector::stats() const {
  FaultStats out;
  out.total = m_total_.value();
  out.short_reads = m_short_read_.value();
  out.eintrs = m_eintr_.value();
  out.partial_writes = m_partial_write_.value();
  out.conn_resets = m_conn_reset_.value();
  out.abrupt_closes = m_abrupt_close_.value();
  out.corruptions = m_corrupt_.value();
  return out;
}

}  // namespace lrb::svc::fault
