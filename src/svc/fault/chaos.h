// Chaos campaigns: seeded end-to-end fault drills for the rebalancing
// service, shared by tools/lrb_chaos and tests/test_chaos.
//
// One campaign = one in-process Server behind a server-side FaultInjector
// plus N ResilientClient threads behind client-side injectors, all driven
// from a single campaign seed:
//
//   campaign seed ─┬─> FaultPlan for the server's socket IO
//                  ├─> FaultPlan for the clients' socket IO
//                  ├─> the request workload (mixed corpus instances)
//                  └─> every backoff jitter stream
//
// so a failing campaign replays from (seed, plan) alone. The campaign
// asserts the service's whole resilience contract:
//
//   * every request reaches exactly one outcome (zero lost, zero
//     duplicated in-flight requests, across retries, resets and drains);
//   * every completed Solve reply is byte-identical to
//     engine::solve_serial_reference on the same instance — or, with
//     cache_bytes set, to engine::cached_serial_reference, proving the
//     solution cache never serves a stale or mis-permuted reply no matter
//     which faults, retries or re-solves happened in between;
//   * no client ever gives up (the plan caps total disruptions, so
//     bounded retry must always get through).
//
// With restart_server set, the backend is drained and a fresh Server is
// started on the same socket mid-campaign; clients must ride across the
// restart on their reconnect path.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solver/spec.h"
#include "svc/fault/fault.h"
#include "svc/retry_client.h"

namespace lrb::svc::fault {

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::size_t clients = 2;
  std::size_t requests_per_client = 8;
  /// Backend + parameters for every campaign Solve (and the session
  /// trigger in streaming mode), resolved through the solver registry.
  solver::SolverSpec solver;
  /// Byte-compare every completed reply against the serial reference.
  bool check = true;
  /// Drain the server mid-campaign and restart it on the same socket.
  bool restart_server = false;
  /// BatchSolver pool size inside the server under test
  /// (ServerOptions::engine.workers).
  std::size_t engine_workers = 2;
  /// Reactor shards for the server under test (ServerOptions::reactors):
  /// > 1 spreads the campaign's client connections across event-loop
  /// threads, so the faulted framing/flush paths run concurrently.
  std::size_t reactors = 1;
  /// Engine tick workers for the server under test
  /// (ServerOptions::engine_workers): > 1 runs concurrent BatchSolver
  /// ticks while the byte-identity check stays in force.
  std::size_t tick_workers = 1;
  /// Solution cache budget for the server under test; 0 = cache off.
  /// With a cache, `check` compares against cached_serial_reference (and a
  /// restart additionally proves a cold cache answers identically to the
  /// warm one it replaced).
  std::size_t cache_bytes = 0;
  /// Per-request retry policy; jitter_seed is re-derived from the
  /// campaign seed per client.
  RetryPolicy retry;

  /// Streaming-session mode (docs/streaming.md): when > 0 the campaign
  /// runs this many concurrent SESSIONS (one SessionClient thread each)
  /// instead of one-shot Solves. Each session streams a seeded delta log
  /// under fault injection; `check` byte-compares every ack against the
  /// serial replay mirror, and the final server-side session stats must
  /// equal the mirror's — the zero-lost / zero-duplicated DELTA ledger
  /// (an injected reset can only ever force a dedup'd resend, never a
  /// re-apply). restart_server is ignored here: sessions are server
  /// state and die with it by design.
  std::size_t stream_sessions = 0;
  std::size_t deltas_per_session = 64;
};

struct CampaignResult {
  bool ok = false;
  FaultPlan server_plan;
  FaultPlan client_plan;
  std::size_t requests = 0;   ///< issued = clients * requests_per_client
  std::size_t completed = 0;  ///< SolveOk outcomes delivered
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t server_solves = 0;  ///< server-side svc.replies_solve_ok
  FaultStats server_faults;
  FaultStats client_faults;
  std::vector<std::string> errors;  ///< mismatches, lost/dup ids, give-ups

  /// One status line, e.g.
  /// "seed=0x2a ok: 16/16 completed, 3 retries, 11+7 faults".
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

/// Derives the seed of campaign `index` from a base seed (what
/// lrb_chaos --campaigns iterates).
[[nodiscard]] std::uint64_t campaign_seed(std::uint64_t base_seed,
                                          std::uint64_t index);

}  // namespace lrb::svc::fault
