// Deterministic fault injection for the service socket paths.
//
// A FaultPlan is a seeded recipe: per-operation injection rates for each
// fault kind plus disruption caps that guarantee liveness (after the caps
// are spent the stream runs clean, so every campaign terminates). A
// FaultInjector interposes the plan on a SocketIo: each connection gets
// its own decision stream, seeded from (plan.seed, registration order),
// so the schedule of faults on a stream is a pure function of
// (seed, plan) — replaying the same seed replays the same failures.
//
// Fault kinds:
//   short read     recv delivers only 1..8 bytes of what was asked
//   EINTR          recv/send/poll fails with errno = EINTR
//   partial write  send accepts only 1..8 bytes ("stalled" peer)
//   conn reset     the real socket is shut down, recv/send fail with
//                  ECONNRESET (peer sees EOF)
//   abrupt close   the real socket is shut down, recv reports EOF and
//                  send fails with EPIPE
//   corruption     one bit of a frame header's magic/version bytes is
//                  flipped on inbound data. Corruption is only applied to
//                  chunks that begin with the "LRBS" magic so every
//                  corrupted frame is *detectably* corrupt (bad magic or
//                  bad version) — flipping arbitrary payload bytes could
//                  mutate a Solve into a different valid Solve, which
//                  would make the byte-compare-vs-reference contract
//                  meaningless.
//
// Injected failures are visible in obs counters: svc.faults_injected
// totals everything, fault.<kind> counts per kind.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "svc/fault/io_shim.h"
#include "util/rng.h"

namespace lrb::svc::fault {

struct FaultPlan {
  std::uint64_t seed = 0;

  // Per-operation injection probabilities in [0, 1].
  double short_read = 0.0;
  double eintr = 0.0;
  double partial_write = 0.0;
  double conn_reset = 0.0;
  double abrupt_close = 0.0;
  double corrupt = 0.0;

  /// Per-connection cap on injected faults; once spent, that connection's
  /// stream runs clean. Keeps any single connection survivable.
  std::uint32_t max_disruptions_per_conn = 16;
  /// Injector-wide cap across all connections; once spent the campaign
  /// runs clean, so retries are guaranteed to eventually succeed.
  std::uint32_t max_disruptions_total = 64;

  /// Derives a reproducible mixed plan: the seed picks which fault kinds
  /// are active and at what intensity. Lethal kinds (reset/close) are kept
  /// rare enough that a bounded-retry client always gets through.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed);

  /// One-line human-readable form, e.g.
  /// "seed=0x2a short_read=0.20 eintr=0.10 caps=12/48".
  [[nodiscard]] std::string describe() const;
};

/// Counts of what an injector actually did (reads from relaxed counters;
/// exact once the streams are quiescent).
struct FaultStats {
  std::uint64_t total = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t eintrs = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t conn_resets = 0;
  std::uint64_t abrupt_closes = 0;
  std::uint64_t corruptions = 0;
};

class FaultInjector final : public SocketIo {
 public:
  /// `metrics` receives svc.faults_injected / fault.* counters; `base` is
  /// the IO being wrapped (the real syscalls by default).
  explicit FaultInjector(FaultPlan plan,
                         obs::Registry* metrics = &obs::Registry::global(),
                         SocketIo* base = &SocketIo::real());

  [[nodiscard]] ssize_t recv(int fd, void* buf, std::size_t len) override;
  [[nodiscard]] ssize_t send(int fd, const void* buf,
                             std::size_t len) override;
  [[nodiscard]] int poll(struct pollfd* fds, nfds_t nfds,
                         int timeout_ms) override;
  void on_close(int fd) override;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] FaultStats stats() const;

 private:
  struct Stream {
    Rng rng{0};
    std::uint32_t disruptions = 0;
    bool dead = false;  ///< a lethal fault already landed on this fd
  };

  /// The per-fd decision stream; created on first sight, seeded from
  /// (plan.seed, registration index). Guarded by mutex_ so one injector
  /// may serve several client threads.
  Stream& stream_for(int fd);
  bool may_disrupt(Stream& stream);
  void spend(Stream& stream, obs::Counter& kind);
  /// Kills the real socket so the peer observes EOF instead of hanging.
  void kill_socket(int fd, Stream& stream);

  FaultPlan plan_;
  SocketIo* base_;
  std::mutex mutex_;
  std::map<int, Stream> streams_;
  std::uint64_t next_stream_ = 0;
  std::uint32_t total_disruptions_ = 0;

  obs::Counter& m_total_;
  obs::Counter& m_short_read_;
  obs::Counter& m_eintr_;
  obs::Counter& m_partial_write_;
  obs::Counter& m_conn_reset_;
  obs::Counter& m_abrupt_close_;
  obs::Counter& m_corrupt_;
};

}  // namespace lrb::svc::fault
