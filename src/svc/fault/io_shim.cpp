#include "svc/fault/io_shim.h"

#include <sys/socket.h>

namespace lrb::svc::fault {

SocketIo::~SocketIo() = default;

ssize_t SocketIo::recv(int fd, void* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketIo::send(int fd, const void* buf, std::size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int SocketIo::poll(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  return ::poll(fds, nfds, timeout_ms);
}

void SocketIo::on_close(int) {}

SocketIo& SocketIo::real() noexcept {
  static SocketIo instance;
  return instance;
}

}  // namespace lrb::svc::fault
