#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <utility>

#include "cache/canonical.h"
#include "stream/session.h"

namespace lrb::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

engine::BatchOptions engine_options_for(const ServerOptions& options) {
  engine::BatchOptions engine = options.engine;
  // A custom server registry also captures the engine metrics unless the
  // caller explicitly pointed the engine elsewhere.
  if (engine.metrics == &obs::Registry::global() &&
      options.metrics != &obs::Registry::global()) {
    engine.metrics = options.metrics;
  }
  if (options.cache_bytes > 0) {
    engine.cache_bytes = options.cache_bytes;
  }
  return engine;
}

void drain_pipe(int fd) {
  char buf[256];
  while (read(fd, buf, sizeof buf) > 0) {
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      solver_(engine_options_for(options_)),
      m_conns_accepted_(options_.metrics->counter("svc.connections_accepted")),
      m_conns_closed_(options_.metrics->counter("svc.connections_closed")),
      m_bytes_in_(options_.metrics->counter("svc.bytes_in")),
      m_bytes_out_(options_.metrics->counter("svc.bytes_out")),
      m_req_ping_(options_.metrics->counter("svc.requests_ping")),
      m_req_solve_(options_.metrics->counter("svc.requests_solve")),
      m_req_stats_(options_.metrics->counter("svc.requests_stats")),
      m_req_drain_(options_.metrics->counter("svc.requests_drain")),
      m_replies_ok_(options_.metrics->counter("svc.replies_solve_ok")),
      m_shed_overloaded_(options_.metrics->counter("svc.shed_overloaded")),
      m_shed_deadline_(options_.metrics->counter("svc.shed_deadline")),
      m_rejected_draining_(options_.metrics->counter("svc.rejected_draining")),
      m_bad_requests_(options_.metrics->counter("svc.bad_requests")),
      m_ticks_(options_.metrics->counter("svc.engine_ticks")),
      m_dropped_replies_(options_.metrics->counter("svc.dropped_replies")),
      m_request_latency_ms_(
          options_.metrics->histogram("svc.request_latency_ms")),
      m_tick_batch_(options_.metrics->histogram("svc.tick_batch_size")),
      m_req_session_(options_.metrics->counter("svc.requests_session")),
      m_sessions_open_(options_.metrics->gauge("stream.sessions_open")),
      m_sessions_opened_(options_.metrics->counter("stream.sessions_opened")),
      m_sessions_closed_(options_.metrics->counter("stream.sessions_closed")),
      m_deltas_applied_(options_.metrics->counter("stream.deltas_applied")),
      m_deltas_rejected_(options_.metrics->counter("stream.deltas_rejected")),
      m_plans_emitted_(options_.metrics->counter("stream.plans_emitted")),
      m_dup_frames_resent_(
          options_.metrics->counter("stream.dup_frames_resent")),
      m_forwarded_frames_(options_.metrics->counter("stream.forwarded_frames")),
      m_moves_per_plan_(options_.metrics->histogram("stream.moves_per_plan")),
      m_replan_latency_ms_(
          options_.metrics->histogram("stream.replan_latency_ms")) {}

Server::~Server() {
  {
    std::lock_guard lock(queue_mutex_);
    stop_engine_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : engine_threads_) {
    if (worker.joinable()) worker.join();
  }
  for (auto& reactor : reactors_) {
    // run() joins the reactor threads; this only covers "start() succeeded
    // but run() was never called".
    if (reactor->thread.joinable()) reactor->thread.join();
    for (auto& [fd, conn] : reactor->connections) close(conn.fd);
    for (const int fd : reactor->incoming) close(fd);
    if (reactor->wake_pipe[0] >= 0) close(reactor->wake_pipe[0]);
    if (reactor->wake_pipe[1] >= 0) close(reactor->wake_pipe[1]);
  }
  if (unix_listener_ >= 0) close(unix_listener_);
  if (tcp_listener_ >= 0) close(tcp_listener_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  if (!options_.unix_path.empty() && unix_listener_ >= 0) {
    unlink(options_.unix_path.c_str());
  }
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }
  if (pipe(wake_pipe_) != 0) return fail("pipe");
  if (!set_nonblocking(wake_pipe_[0]) || !set_nonblocking(wake_pipe_[1])) {
    return fail("pipe nonblocking");
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      if (error != nullptr) *error = "unix path too long";
      return false;
    }
    unix_listener_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listener_ < 0) return fail("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unlink(options_.unix_path.c_str());
    if (bind(unix_listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
      return fail("bind(" + options_.unix_path + ")");
    }
    if (listen(unix_listener_, 128) != 0) return fail("listen(unix)");
    if (!set_nonblocking(unix_listener_)) return fail("nonblocking(unix)");
  }

  if (options_.tcp_port >= 0) {
    tcp_listener_ = socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listener_ < 0) return fail("socket(AF_INET)");
    const int one = 1;
    setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (inet_pton(AF_INET, options_.tcp_bind.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad bind address " + options_.tcp_bind;
      return false;
    }
    if (bind(tcp_listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
      return fail("bind(tcp " + std::to_string(options_.tcp_port) + ")");
    }
    if (listen(tcp_listener_, 128) != 0) return fail("listen(tcp)");
    if (!set_nonblocking(tcp_listener_)) return fail("nonblocking(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (getsockname(tcp_listener_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  const std::size_t reactor_count = std::max<std::size_t>(1, options_.reactors);
  reactors_.reserve(reactor_count);
  for (std::size_t i = 0; i < reactor_count; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    if (pipe(reactor->wake_pipe) != 0) return fail("pipe(reactor)");
    if (!set_nonblocking(reactor->wake_pipe[0]) ||
        !set_nonblocking(reactor->wake_pipe[1])) {
      return fail("pipe nonblocking(reactor)");
    }
    reactor->fds.push_back({reactor->wake_pipe[0], POLLIN, 0});
    const std::string prefix = "svc.reactor" + std::to_string(i);
    reactor->m_accepted =
        &options_.metrics->counter(prefix + ".connections_accepted");
    reactor->m_solve = &options_.metrics->counter(prefix + ".requests_solve");
    reactor->m_bytes_in = &options_.metrics->counter(prefix + ".bytes_in");
    reactor->m_bytes_out = &options_.metrics->counter(prefix + ".bytes_out");
    reactors_.push_back(std::move(reactor));
  }

  const std::size_t workers =
      std::max<std::size_t>(1, options_.engine_workers);
  engine_threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    engine_threads_.emplace_back([this] { engine_loop(); });
  }
  return true;
}

void Server::notify_signal() noexcept {
  signal_requested_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  // The result is deliberately ignored: a full pipe already guarantees a
  // pending wakeup, and failing inside a signal handler has no recourse.
  [[maybe_unused]] const auto n = write(wake_pipe_[1], &byte, 1);
}

void Server::wake_reactor(Reactor& reactor) {
  const char byte = 'w';
  [[maybe_unused]] const auto n = write(reactor.wake_pipe[1], &byte, 1);
}

void Server::wake_all_reactors() {
  for (auto& reactor : reactors_) wake_reactor(*reactor);
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
  // Wake everyone that gates on draining_: the acceptor (closes the
  // listeners), every reactor (stops adopting, starts acking), and the
  // engine workers are woken by reactors/workers as results flow.
  const char byte = 'd';
  [[maybe_unused]] const auto n = write(wake_pipe_[1], &byte, 1);
  wake_all_reactors();
}

void Server::close_listeners() {
  if (unix_listener_ >= 0) {
    close(unix_listener_);
    if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
    unix_listener_ = -1;
  }
  if (tcp_listener_ >= 0) {
    close(tcp_listener_);
    tcp_listener_ = -1;
  }
}

bool Server::accept_ready(int listener_fd) {
  for (;;) {
    const int fd = accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Out of fds (or kernel memory): the listener stays readable until
      // a slot frees, so polling it again immediately would spin a full
      // core. Tell run() to pause accepting for a beat.
      return errno != EMFILE && errno != ENFILE && errno != ENOBUFS &&
             errno != ENOMEM;  // otherwise EAGAIN/transient: poll again
    }
    if (draining_.load(std::memory_order_relaxed) ||
        conn_count_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      close(fd);
      continue;
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    Reactor& reactor = *reactors_[next_reactor_];
    next_reactor_ = (next_reactor_ + 1) % reactors_.size();
    {
      std::lock_guard lock(reactor.mutex);
      reactor.incoming.push_back(fd);
    }
    wake_reactor(reactor);
    m_conns_accepted_.add(1);
    reactor.m_accepted->add(1);
  }
}

void Server::run() {
  for (auto& reactor : reactors_) {
    reactor->thread =
        std::thread([this, r = reactor.get()] { reactor_loop(*r); });
  }

  // The acceptor's pollfd set is fixed for its whole life: self-pipe plus
  // the configured listeners (closed only after this loop exits). On fd
  // exhaustion the listener entries are masked (events = 0) for a beat —
  // a readable listener we cannot accept from would otherwise turn this
  // loop into a poll/accept busy-spin until an fd frees up.
  std::vector<pollfd> fds;
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  if (unix_listener_ >= 0) fds.push_back({unix_listener_, POLLIN, 0});
  if (tcp_listener_ >= 0) fds.push_back({tcp_listener_, POLLIN, 0});
  bool accept_paused = false;
  auto accept_resume_at = std::chrono::steady_clock::time_point{};

  while (!draining_.load(std::memory_order_acquire) &&
         !aborting_.load(std::memory_order_relaxed)) {
    if (signal_requested_.load(std::memory_order_relaxed)) {
      request_drain();
      break;
    }
    if (accept_paused &&
        std::chrono::steady_clock::now() >= accept_resume_at) {
      for (std::size_t i = 1; i < fds.size(); ++i) fds[i].events = POLLIN;
      accept_paused = false;
    }
    // The self-pipe wakes us for signals/drain; the timeout is only a
    // belt-and-braces guard against a lost wakeup (and the tick that ends
    // an accept pause).
    if (options_.io->poll(fds.data(), fds.size(), 100) < 0 &&
        errno != EINTR) {
      aborting_.store(true, std::memory_order_relaxed);
      break;
    }
    if (fds[0].revents != 0) drain_pipe(wake_pipe_[0]);
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      if (!accept_ready(fds[i].fd)) {
        for (std::size_t j = 1; j < fds.size(); ++j) fds[j].events = 0;
        accept_paused = true;
        accept_resume_at = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(100);
        break;
      }
    }
  }
  // Stop the intake first so no reactor can be handed work after it
  // decides it is drained, then wait for every reactor to finish
  // answering. request_drain() also covers the abort path, where the
  // reactors must exit rather than drain.
  close_listeners();
  request_drain();
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }

  // Adoption-window sweep: fds handed off after a reactor exited (only
  // possible on the abort path) and results nobody is left to deliver.
  for (auto& reactor : reactors_) {
    std::lock_guard lock(reactor->mutex);
    for (const int fd : reactor->incoming) {
      options_.io->on_close(fd);
      close(fd);
      m_conns_closed_.add(1);
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    reactor->incoming.clear();
    for (const SolveOutcome& outcome : reactor->results) {
      (void)outcome;
      m_dropped_replies_.add(1);
      results_inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    reactor->results.clear();
    for (const ForwardedFrame& frame : reactor->forwarded) {
      (void)frame;
      m_dropped_replies_.add(1);
      results_inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    reactor->forwarded.clear();
  }
}

// ---------------------------------------------------------------------------
// Reactor side.

void Server::adopt_incoming(Reactor& reactor) {
  std::deque<int> fresh;
  {
    std::lock_guard lock(reactor.mutex);
    fresh.swap(reactor.incoming);
  }
  for (const int fd : fresh) {
    Connection conn;
    conn.fd = fd;
    conn.gen = conn_gen_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    conn.poll_idx = reactor.fds.size();
    reactor.fds.push_back({fd, POLLIN, 0});
    reactor.connections.emplace(fd, std::move(conn));
  }
}

void Server::queue_reply(Reactor& reactor, Connection& conn, MsgType type,
                         std::uint64_t request_id, std::string_view payload) {
  encode_frame(conn.write_buf, type, request_id, payload);
  mark_dirty(reactor, conn);
}

void Server::queue_error(Reactor& reactor, Connection& conn,
                         std::uint64_t request_id, ErrorCode code,
                         std::string_view text) {
  reactor.scratch.clear();
  encode_error_payload(code, text, reactor.scratch);
  queue_reply(reactor, conn, MsgType::kError, request_id, reactor.scratch);
}

void Server::mark_dirty(Reactor& reactor, Connection& conn) {
  if (conn.dirty) return;
  conn.dirty = true;
  reactor.dirty_fds.push_back(conn.fd);
}

void Server::handle_solve(Reactor& reactor, Connection& conn,
                          const FrameHeader& header,
                          std::string_view payload) {
  m_req_solve_.add(1);
  reactor.m_solve->add(1);
  if (draining_.load(std::memory_order_acquire)) {
    m_rejected_draining_.add(1);
    queue_error(reactor, conn, header.request_id, ErrorCode::kDraining,
                "server is draining");
    return;
  }
  {
    // Fast-path shed before paying for the decode. Advisory only: the
    // authoritative check is re-done under the same lock as the push.
    std::lock_guard lock(queue_mutex_);
    if (pending_.size() >= options_.max_queue) {
      m_shed_overloaded_.add(1);
      queue_error(reactor, conn, header.request_id, ErrorCode::kOverloaded,
                  "solve queue at capacity");
      return;
    }
  }
  std::string error;
  auto request = decode_solve_request(payload, &error);
  if (!request) {
    m_bad_requests_.add(1);
    queue_error(reactor, conn, header.request_id, ErrorCode::kBadRequest,
                error);
    return;
  }
  PendingSolve pending;
  pending.reactor = reactor.index;
  pending.conn_gen = conn.gen;
  pending.fd = conn.fd;
  pending.request_id = header.request_id;
  pending.received = std::chrono::steady_clock::now();
  if (request->deadline_ms > 0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.received + std::chrono::milliseconds(request->deadline_ms);
  }
  pending.request = std::move(*request);
  bool admitted = false;
  {
    // Check-and-push atomically: N reactors racing through the lock gap
    // above (while decoding) must not overshoot max_queue.
    std::lock_guard lock(queue_mutex_);
    if (pending_.size() < options_.max_queue) {
      pending_.push_back(std::move(pending));
      admitted = true;
    }
  }
  if (!admitted) {
    m_shed_overloaded_.add(1);
    queue_error(reactor, conn, header.request_id, ErrorCode::kOverloaded,
                "solve queue at capacity");
    return;
  }
  queue_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Streaming sessions (wire v2; see docs/streaming.md).
//
// Ownership model: a session lives on exactly one reactor (the one that
// claimed its SessionOpen in the global directory). Session frames landing
// elsewhere are forwarded to the owner and the reply rides back through
// the origin's result inbox, so a connection is only ever written by its
// own reactor. Forwarded frames and their replies each hold one
// results_inflight_ reference — the reply leg is raised BEFORE the forward
// leg is released — so the drain-ack barrier ("inflight == 0 means every
// admitted request is answered") covers sessions exactly as it covers
// engine Solves.

namespace {

std::uint64_t payload_digest(std::string_view payload) {
  const cache::Fingerprint fp = cache::fingerprint(payload);
  return fp.hi ^ fp.lo;
}

std::uint64_t peek_session_id(std::string_view payload) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(payload[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void Server::handle_session_frame(Reactor& reactor, Connection& conn,
                                  const FrameHeader& header,
                                  std::string_view payload) {
  m_req_session_.add(1);
  if (draining_.load(std::memory_order_acquire)) {
    m_rejected_draining_.add(1);
    queue_error(reactor, conn, header.request_id, ErrorCode::kDraining,
                "server is draining");
    return;
  }
  if (payload.size() < 8) {
    m_bad_requests_.add(1);
    queue_error(reactor, conn, header.request_id, ErrorCode::kBadRequest,
                "session payload shorter than the session id");
    return;
  }
  const std::uint64_t sid = peek_session_id(payload);

  // Resolve the owner (or claim ownership) in the directory, then either
  // process inline or forward. The forward target is decided under the
  // directory lock but the push happens after it — owner assignments are
  // permanent for live sessions, so the entry cannot move underneath us.
  std::size_t owner = reactor.index;
  bool process_local = false;
  bool claimed = false;
  {
    std::lock_guard lock(session_dir_mutex_);
    const auto it = session_dir_.find(sid);
    if (header.type == MsgType::kSessionOpen) {
      if (it == session_dir_.end()) {
        if (sessions_open_ >= options_.max_sessions) {
          m_shed_overloaded_.add(1);
          queue_error(reactor, conn, header.request_id,
                      ErrorCode::kOverloaded, "session table at capacity");
          return;
        }
        SessionDirEntry entry;
        entry.owner = reactor.index;
        session_dir_.emplace(sid, std::move(entry));
        ++sessions_open_;
        process_local = true;
        claimed = true;
      } else if (it->second.closed) {
        queue_error(reactor, conn, header.request_id,
                    ErrorCode::kSessionExists,
                    "session id was already used and closed");
        return;
      } else if (it->second.owner == reactor.index) {
        process_local = true;  // duplicate-open check against our table
      } else {
        owner = it->second.owner;
      }
    } else {
      if (it == session_dir_.end()) {
        queue_error(reactor, conn, header.request_id,
                    ErrorCode::kUnknownSession, "unknown session id");
        return;
      }
      if (it->second.closed) {
        if (header.type == MsgType::kSessionClose) {
          // Idempotent close: any reactor can resend the stored ack.
          m_dup_frames_resent_.add(1);
          queue_reply(reactor, conn, MsgType::kSessionCloseOk,
                      header.request_id, it->second.close_payload);
        } else {
          queue_error(reactor, conn, header.request_id,
                      ErrorCode::kSessionClosed, "session is closed");
        }
        return;
      }
      if (it->second.owner == reactor.index) {
        process_local = true;
      } else {
        owner = it->second.owner;
      }
    }
  }

  if (process_local) {
    if (header.type == MsgType::kSessionOpen) {
      process_session_open(reactor, reactor.index, conn.gen, conn.fd,
                           header.request_id, payload, claimed);
    } else {
      process_session_request(reactor, reactor.index, conn.gen, conn.fd,
                              header, payload);
    }
    return;
  }

  // Forward to the owning reactor; the frame holds an inflight reference
  // until the owner has produced (and accounted) its reply.
  m_forwarded_frames_.add(1);
  results_inflight_.fetch_add(1, std::memory_order_acq_rel);
  ForwardedFrame frame;
  frame.origin = reactor.index;
  frame.conn_gen = conn.gen;
  frame.fd = conn.fd;
  frame.header = header;
  frame.payload.assign(payload.data(), payload.size());
  Reactor& target = *reactors_[owner];
  {
    std::lock_guard lock(target.mutex);
    target.forwarded.push_back(std::move(frame));
  }
  wake_reactor(target);
}

void Server::process_forwarded(Reactor& reactor) {
  std::deque<ForwardedFrame> frames;
  {
    std::lock_guard lock(reactor.mutex);
    frames.swap(reactor.forwarded);
  }
  if (frames.empty()) return;
  for (ForwardedFrame& frame : frames) {
    process_session_request(reactor, frame.origin, frame.conn_gen, frame.fd,
                            frame.header, frame.payload);
    // The reply leg (raised inside deliver_session_reply) is already
    // accounted, so releasing the forward leg here cannot let the drain
    // barrier observe zero while the reply is still in flight.
    results_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (draining_.load(std::memory_order_acquire) &&
      results_inflight_.load(std::memory_order_acquire) == 0) {
    wake_all_reactors();
  }
}

void Server::process_session_request(Reactor& reactor, std::size_t origin,
                                     std::uint64_t conn_gen, int fd,
                                     const FrameHeader& header,
                                     std::string_view payload) {
  if (header.type == MsgType::kSessionOpen) {
    process_session_open(reactor, origin, conn_gen, fd, header.request_id,
                         payload, /*claimed=*/false);
    return;
  }
  const std::uint64_t sid = peek_session_id(payload);
  const auto it = reactor.sessions.find(sid);
  if (it == reactor.sessions.end()) {
    // The session vanished between the origin's directory lookup and this
    // dispatch: it was closed (tombstone) or the degenerate claim-rollback
    // race. Re-consult the directory for the honest answer.
    bool closed = false;
    std::string close_payload;
    {
      std::lock_guard lock(session_dir_mutex_);
      const auto dir_it = session_dir_.find(sid);
      if (dir_it != session_dir_.end() && dir_it->second.closed) {
        closed = true;
        close_payload = dir_it->second.close_payload;
      }
    }
    if (closed && header.type == MsgType::kSessionClose) {
      m_dup_frames_resent_.add(1);
      deliver_session_reply(reactor, origin, conn_gen, fd, header.request_id,
                            MsgType::kSessionCloseOk, close_payload);
    } else if (closed) {
      deliver_session_error(reactor, origin, conn_gen, fd, header.request_id,
                            ErrorCode::kSessionClosed, "session is closed");
    } else {
      deliver_session_error(reactor, origin, conn_gen, fd, header.request_id,
                            ErrorCode::kUnknownSession, "unknown session id");
    }
    return;
  }
  SessionState& state = it->second;
  switch (header.type) {
    case MsgType::kSessionDelta:
      process_session_delta(reactor, state, origin, conn_gen, fd,
                            header.request_id, payload);
      return;
    case MsgType::kSessionStats: {
      SessionStatsReply reply;
      reply.session_id = sid;
      reply.stats = state.session.stats();
      deliver_session_reply(reactor, origin, conn_gen, fd, header.request_id,
                            MsgType::kSessionStatsOk,
                            encode_session_stats_reply(reply));
      return;
    }
    case MsgType::kSessionClose: {
      const stream::SessionStats stats = state.session.stats();
      SessionCloseReply reply;
      reply.session_id = sid;
      reply.deltas_applied = stats.deltas_applied;
      reply.deltas_rejected = stats.deltas_rejected;
      reply.plans_emitted = stats.plans_emitted;
      const std::string encoded = encode_session_close_reply(reply);
      {
        std::lock_guard lock(session_dir_mutex_);
        auto dir_it = session_dir_.find(sid);
        if (dir_it != session_dir_.end() && !dir_it->second.closed) {
          dir_it->second.closed = true;
          dir_it->second.close_payload = encoded;
          --sessions_open_;
        }
      }
      reactor.sessions.erase(it);
      m_sessions_closed_.add(1);
      m_sessions_open_.add(-1);
      deliver_session_reply(reactor, origin, conn_gen, fd, header.request_id,
                            MsgType::kSessionCloseOk, encoded);
      return;
    }
    default:
      deliver_session_error(reactor, origin, conn_gen, fd, header.request_id,
                            ErrorCode::kInternal, "unexpected session frame");
      return;
  }
}

void Server::process_session_open(Reactor& reactor, std::size_t origin,
                                  std::uint64_t conn_gen, int fd,
                                  std::uint64_t request_id,
                                  std::string_view payload, bool claimed) {
  auto rollback_claim = [&](std::uint64_t sid) {
    std::lock_guard lock(session_dir_mutex_);
    session_dir_.erase(sid);
    --sessions_open_;
  };
  std::string error;
  auto request = decode_session_open_request(payload, &error);
  if (!request) {
    m_bad_requests_.add(1);
    if (claimed) rollback_claim(peek_session_id(payload));
    deliver_session_error(reactor, origin, conn_gen, fd, request_id,
                          ErrorCode::kBadRequest, error);
    return;
  }
  const std::uint64_t sid = request->session_id;
  const auto it = reactor.sessions.find(sid);
  if (it != reactor.sessions.end()) {
    // A retried SessionOpen whose ack was lost is answered byte-identically
    // — but only while the session is still pristine AND the payload is the
    // same bytes; anything else is a genuine id collision.
    SessionState& state = it->second;
    if (state.last_seq == 0 &&
        state.open_payload_digest == payload_digest(payload)) {
      m_dup_frames_resent_.add(1);
      deliver_session_reply(reactor, origin, conn_gen, fd, request_id,
                            MsgType::kSessionOpenOk,
                            state.last_reply_payload);
    } else {
      deliver_session_error(reactor, origin, conn_gen, fd, request_id,
                            ErrorCode::kSessionExists,
                            "session id already in use");
    }
    return;
  }
  if (!claimed) {
    // Forwarded open that raced with a close/rollback on this reactor.
    bool closed = false;
    {
      std::lock_guard lock(session_dir_mutex_);
      const auto dir_it = session_dir_.find(sid);
      closed = dir_it != session_dir_.end() && dir_it->second.closed;
    }
    deliver_session_error(reactor, origin, conn_gen, fd, request_id,
                          closed ? ErrorCode::kSessionExists
                                 : ErrorCode::kUnknownSession,
                          closed ? "session id was already used and closed"
                                 : "unknown session id");
    return;
  }
  auto session =
      stream::ClusterSession::open(request->instance, request->trigger,
                                   &error);
  if (!session) {
    m_bad_requests_.add(1);
    rollback_claim(sid);
    deliver_session_error(reactor, origin, conn_gen, fd, request_id,
                          ErrorCode::kBadRequest, error);
    return;
  }
  SessionState state;
  state.session = std::move(*session);
  state.open_payload_digest = payload_digest(payload);
  SessionOpenReply reply;
  reply.session_id = sid;
  reply.makespan = state.session.makespan();
  reply.lower_bound = state.session.lower_bound();
  reply.state_digest = state.session.digest();
  state.last_reply_type = MsgType::kSessionOpenOk;
  state.last_reply_payload = encode_session_open_reply(reply);
  const std::string_view encoded = state.last_reply_payload;
  deliver_session_reply(reactor, origin, conn_gen, fd, request_id,
                        MsgType::kSessionOpenOk, encoded);
  reactor.sessions.emplace(sid, std::move(state));
  m_sessions_opened_.add(1);
  m_sessions_open_.add(1);
}

void Server::process_session_delta(Reactor& reactor, SessionState& state,
                                   std::size_t origin, std::uint64_t conn_gen,
                                   int fd, std::uint64_t request_id,
                                   std::string_view payload) {
  std::string error;
  auto request = decode_session_delta_request(payload, &error);
  if (!request) {
    m_bad_requests_.add(1);
    deliver_session_error(reactor, origin, conn_gen, fd, request_id,
                          ErrorCode::kBadRequest, error);
    return;
  }
  const std::uint32_t count =
      static_cast<std::uint32_t>(request->deltas.size());
  // Exactly-once deltas under retries: an exact resend of the last applied
  // frame gets the stored reply, byte-identical; any other overlap is a
  // sequencing bug on the client side.
  if (count > 0 && request->first_seq == state.last_frame_first_seq &&
      count == state.last_frame_count &&
      state.last_seq == request->first_seq + count - 1) {
    m_dup_frames_resent_.add(1);
    deliver_session_reply(reactor, origin, conn_gen, fd, request_id,
                          state.last_reply_type, state.last_reply_payload);
    return;
  }
  if (request->first_seq != state.last_seq + 1) {
    deliver_session_error(
        reactor, origin, conn_gen, fd, request_id, ErrorCode::kBadSequence,
        "first_seq " + std::to_string(request->first_seq) + " != expected " +
            std::to_string(state.last_seq + 1));
    return;
  }

  const auto solve = [this](const Instance& instance, std::int64_t k,
                            const solver::SolverSpec& spec) {
    engine::BatchSolver::TickItem item;
    item.instance = &instance;
    item.k = k;
    item.spec = spec;
    const auto started = std::chrono::steady_clock::now();
    auto result = solver_.solve_item(item);
    m_replan_latency_ms_.record(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - started)
                                    .count());
    return result;
  };

  SessionDeltaReply reply;
  reply.session_id = request->session_id;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t seq = request->first_seq + i;
    stream::StepResult step =
        state.session.step(request->deltas[i], seq, solve);
    if (step.applied) {
      ++reply.applied;
    } else {
      ++reply.rejected;
      if (reply.first_error.empty()) reply.first_error = step.error;
    }
    for (stream::SessionPlan& plan : step.plans) {
      m_plans_emitted_.add(1);
      m_moves_per_plan_.record(static_cast<double>(plan.moves.size()));
      reply.plans.push_back(std::move(plan));
    }
  }
  m_deltas_applied_.add(reply.applied);
  m_deltas_rejected_.add(reply.rejected);

  state.last_seq = count > 0 ? request->first_seq + count - 1 : state.last_seq;
  reply.last_seq = state.last_seq;
  reply.makespan = state.session.makespan();
  reply.lower_bound = state.session.lower_bound();
  reply.state_digest = state.session.digest();
  state.last_frame_first_seq = request->first_seq;
  state.last_frame_count = count;
  state.last_reply_type = session_reply_type(reply);
  state.last_reply_payload = encode_session_delta_reply(reply);
  deliver_session_reply(reactor, origin, conn_gen, fd, request_id,
                        state.last_reply_type, state.last_reply_payload);
}

void Server::deliver_session_reply(Reactor& reactor, std::size_t origin,
                                   std::uint64_t conn_gen, int fd,
                                   std::uint64_t request_id, MsgType type,
                                   std::string_view payload) {
  if (origin == reactor.index) {
    const auto it = reactor.connections.find(fd);
    if (it == reactor.connections.end() || it->second.gen != conn_gen) {
      m_dropped_replies_.add(1);
      return;
    }
    queue_reply(reactor, it->second, type, request_id, payload);
    return;
  }
  // Cross-reactor: ride the origin's result inbox (generation-checked
  // there, exactly like an engine-worker outcome).
  SolveOutcome outcome;
  outcome.reactor = origin;
  outcome.conn_gen = conn_gen;
  outcome.fd = fd;
  outcome.request_id = request_id;
  outcome.type = type;
  outcome.payload.assign(payload.data(), payload.size());
  results_inflight_.fetch_add(1, std::memory_order_acq_rel);
  Reactor& target = *reactors_[origin];
  {
    std::lock_guard lock(target.mutex);
    target.results.push_back(std::move(outcome));
  }
  wake_reactor(target);
}

void Server::deliver_session_error(Reactor& reactor, std::size_t origin,
                                   std::uint64_t conn_gen, int fd,
                                   std::uint64_t request_id, ErrorCode code,
                                   std::string_view text) {
  deliver_session_reply(reactor, origin, conn_gen, fd, request_id,
                        MsgType::kError, encode_error_payload(code, text));
}

bool Server::process_frames(Reactor& reactor, Connection& conn) {
  for (;;) {
    FrameHeader header;
    switch (decode_header(conn.read_buf, &header)) {
      case DecodeStatus::kNeedMore:
        return true;
      case DecodeStatus::kBadMagic:
        m_bad_requests_.add(1);
        queue_error(reactor, conn, 0, ErrorCode::kBadRequest, "bad magic");
        return false;
      case DecodeStatus::kBadVersion:
        m_bad_requests_.add(1);
        queue_error(reactor, conn, header.request_id, ErrorCode::kBadRequest,
                    "unsupported protocol version");
        return false;
      case DecodeStatus::kTooLarge:
        m_bad_requests_.add(1);
        queue_error(reactor, conn, header.request_id, ErrorCode::kBadRequest,
                    "payload exceeds 64 MiB cap");
        return false;
      case DecodeStatus::kOk:
        break;
    }
    if (conn.read_buf.size() - kHeaderSize < header.payload_len) {
      return true;  // wait for the rest of the payload
    }
    const std::string_view payload(conn.read_buf.data() + kHeaderSize,
                                   header.payload_len);
    switch (header.type) {
      case MsgType::kPing:
        m_req_ping_.add(1);
        queue_reply(reactor, conn, MsgType::kPong, header.request_id,
                    payload);
        break;
      case MsgType::kSolve:
        handle_solve(reactor, conn, header, payload);
        break;
      case MsgType::kStats:
        m_req_stats_.add(1);
        queue_reply(reactor, conn, MsgType::kStatsOk, header.request_id,
                    options_.metrics->to_json());
        break;
      case MsgType::kDrain:
        m_req_drain_.add(1);
        conn.wants_drain_ack = true;
        mark_dirty(reactor, conn);
        request_drain();
        break;
      case MsgType::kSessionOpen:
      case MsgType::kSessionDelta:
      case MsgType::kSessionStats:
      case MsgType::kSessionClose:
        handle_session_frame(reactor, conn, header, payload);
        break;
      default:
        m_bad_requests_.add(1);
        queue_error(reactor, conn, header.request_id, ErrorCode::kBadRequest,
                    "unknown request type");
        return false;
    }
    conn.read_buf.erase(0, kHeaderSize + header.payload_len);
  }
}

void Server::handle_readable(Reactor& reactor, Connection& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = options_.io->recv(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
      m_bytes_in_.add(static_cast<std::uint64_t>(n));
      reactor.m_bytes_in->add(static_cast<std::uint64_t>(n));
      conn.read_buf.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not EOF: just retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    // EOF or hard error: flush what we owe, then close.
    conn.close_after_flush = true;
    break;
  }
  if (!process_frames(reactor, conn)) conn.close_after_flush = true;
  mark_dirty(reactor, conn);
}

void Server::handle_writable(Reactor& reactor, Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        options_.io->send(conn.fd, conn.write_buf.data() + conn.write_pos,
                          conn.write_buf.size() - conn.write_pos);
    if (n > 0) {
      m_bytes_out_.add(static_cast<std::uint64_t>(n));
      reactor.m_bytes_out->add(static_cast<std::uint64_t>(n));
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0) {
      // EINTR must not drop the buffered replies (a signal landing during
      // a flush used to lose the whole write buffer; the fault shim's
      // EINTR schedule pins this as a regression test).
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    }
    // Peer vanished; nothing left to flush to it.
    conn.write_buf.clear();
    conn.write_pos = 0;
    conn.close_after_flush = true;
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
}

void Server::close_connection(Reactor& reactor, int fd) {
  const auto it = reactor.connections.find(fd);
  if (it == reactor.connections.end()) return;
  options_.io->on_close(fd);
  close(it->second.fd);
  // Swap-remove the pollfd slot; slot 0 is the wake pipe, so a moved
  // entry is always a connection whose poll_idx needs patching.
  const std::size_t idx = it->second.poll_idx;
  const std::size_t last = reactor.fds.size() - 1;
  if (idx != last) {
    reactor.fds[idx] = reactor.fds[last];
    reactor.connections.at(reactor.fds[idx].fd).poll_idx = idx;
  }
  reactor.fds.pop_back();
  reactor.connections.erase(it);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  m_conns_closed_.add(1);
}

void Server::drain_results(Reactor& reactor) {
  std::deque<SolveOutcome> ready;
  {
    std::lock_guard lock(reactor.mutex);
    ready.swap(reactor.results);
  }
  if (ready.empty()) return;
  for (SolveOutcome& outcome : ready) {
    const auto it = reactor.connections.find(outcome.fd);
    if (it == reactor.connections.end() ||
        it->second.gen != outcome.conn_gen) {
      m_dropped_replies_.add(1);
    } else {
      Connection& conn = it->second;
      queue_reply(reactor, conn, outcome.type, outcome.request_id,
                  outcome.payload);
      if (outcome.type == MsgType::kSolveOk) {
        m_replies_ok_.add(1);
        m_request_latency_ms_.record(outcome.request_latency_ms);
      }
    }
    // Only decrement once the reply sits in a write buffer (or is counted
    // dropped) — this is what keeps the DrainOk ack ordered after every
    // reply on its connection, on every reactor.
    results_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (draining_.load(std::memory_order_acquire) &&
      results_inflight_.load(std::memory_order_acquire) == 0) {
    // Other reactors may be waiting on this inflight count to ack drains.
    wake_all_reactors();
  }
}

void Server::maybe_finish_drain(Reactor& reactor) {
  if (!draining_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(queue_mutex_);
    if (!pending_.empty() || ticking_ != 0) return;
  }
  if (results_inflight_.load(std::memory_order_acquire) != 0) return;
  // Every admitted request has been answered; acknowledge the drain(s).
  // The ack rides the same FIFO write buffer, so it is ordered after every
  // in-flight reply on that connection.
  for (auto& [fd, conn] : reactor.connections) {
    if (conn.wants_drain_ack) {
      queue_reply(reactor, conn, MsgType::kDrainOk, 0, {});
      conn.wants_drain_ack = false;
    }
  }
}

bool Server::reactor_drained(Reactor& reactor) {
  if (aborting_.load(std::memory_order_relaxed)) return true;
  if (!draining_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard lock(queue_mutex_);
    if (!pending_.empty() || ticking_ != 0) return false;
  }
  if (results_inflight_.load(std::memory_order_acquire) != 0) return false;
  {
    std::lock_guard lock(reactor.mutex);
    if (!reactor.incoming.empty() || !reactor.results.empty() ||
        !reactor.forwarded.empty()) {
      return false;
    }
  }
  for (const auto& [fd, conn] : reactor.connections) {
    if (conn.wants_drain_ack || conn.write_pos < conn.write_buf.size()) {
      return false;
    }
  }
  return true;
}

void Server::flush_dirty(Reactor& reactor) {
  for (std::size_t i = 0; i < reactor.dirty_fds.size(); ++i) {
    const int fd = reactor.dirty_fds[i];
    const auto it = reactor.connections.find(fd);
    if (it == reactor.connections.end()) continue;  // closed this pass
    Connection& conn = it->second;
    conn.dirty = false;
    // Flush opportunistically: most replies fit the socket buffer, so
    // this usually completes without waiting for a POLLOUT round-trip.
    if (conn.write_pos < conn.write_buf.size()) {
      handle_writable(reactor, conn);
    }
    const bool backlog = conn.write_pos < conn.write_buf.size();
    if (conn.close_after_flush && !backlog) {
      close_connection(reactor, fd);
      continue;
    }
    reactor.fds[conn.poll_idx].events =
        static_cast<short>(backlog ? (POLLIN | POLLOUT) : POLLIN);
  }
  reactor.dirty_fds.clear();
}

void Server::reactor_loop(Reactor& reactor) {
  for (;;) {
    adopt_incoming(reactor);
    process_forwarded(reactor);
    drain_results(reactor);
    maybe_finish_drain(reactor);
    flush_dirty(reactor);
    if (reactor_drained(reactor)) break;

    // The self-pipe wakes us for handoffs/results/drain; the timeout is
    // only a belt-and-braces guard against a lost wakeup.
    if (options_.io->poll(reactor.fds.data(), reactor.fds.size(), 100) < 0 &&
        errno != EINTR) {
      aborting_.store(true, std::memory_order_relaxed);
      break;
    }

    if (reactor.fds[0].revents != 0) drain_pipe(reactor.wake_pipe[0]);
    // Closes are deferred to flush_dirty (next top-of-loop), so the pollfd
    // vector is stable while we walk it.
    for (std::size_t i = 1; i < reactor.fds.size(); ++i) {
      const pollfd entry = reactor.fds[i];
      if (entry.revents == 0) continue;
      Connection& conn = reactor.connections.at(entry.fd);
      if ((entry.revents & (POLLERR | POLLNVAL)) != 0) {
        // Peer is gone; drop any backlog and close on the next pass.
        conn.write_buf.clear();
        conn.write_pos = 0;
        conn.close_after_flush = true;
        mark_dirty(reactor, conn);
        continue;
      }
      if ((entry.revents & (POLLIN | POLLHUP)) != 0) {
        handle_readable(reactor, conn);
      }
      if ((entry.revents & POLLOUT) != 0) handle_writable(reactor, conn);
      mark_dirty(reactor, conn);
    }
  }
  // Drained (every reply incl. DrainOk flushed) or aborting: close what
  // remains on this shard.
  while (!reactor.connections.empty()) {
    close_connection(reactor, reactor.connections.begin()->first);
  }
}

// ---------------------------------------------------------------------------
// Engine workers.

void Server::engine_loop() {
  std::vector<PendingSolve> batch;
  std::vector<engine::BatchSolver::TickItem> items;
  std::vector<std::size_t> slots;  // batch index of each solved instance
  std::vector<SolveOutcome> outcomes;
  std::vector<char> touched(reactors_.size(), 0);
  for (;;) {
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_engine_ || !pending_.empty(); });
      if (stop_engine_) return;
    }
    if (options_.tick_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.tick_delay_ms));
    }
    batch.clear();
    {
      std::lock_guard lock(queue_mutex_);
      while (!pending_.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ticking_ += batch.size();
    }
    if (batch.empty()) continue;  // another worker got there first
    m_ticks_.add(1);
    m_tick_batch_.record(static_cast<double>(batch.size()));

    const auto now = std::chrono::steady_clock::now();
    outcomes.clear();
    items.clear();
    slots.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].has_deadline && now > batch[i].deadline) {
        m_shed_deadline_.add(1);
        SolveOutcome shed;
        shed.reactor = batch[i].reactor;
        shed.conn_gen = batch[i].conn_gen;
        shed.fd = batch[i].fd;
        shed.request_id = batch[i].request_id;
        shed.type = MsgType::kError;
        encode_error_payload(
            ErrorCode::kDeadlineExceeded,
            "deadline passed before the solve was dispatched", shed.payload);
        outcomes.push_back(std::move(shed));
        continue;
      }
      engine::BatchSolver::TickItem item;
      item.instance = &batch[i].request.instance;
      item.k = batch[i].request.k;
      item.spec = batch[i].request.spec;
      items.push_back(item);
      slots.push_back(i);
    }
    if (!items.empty()) {
      // One tick = one BatchSolver call: everything this worker popped is
      // coalesced here, with per-request algorithm parameters carried by
      // the TickItems. Neither batching composition nor concurrent ticks
      // on other workers can change results — BatchSolver is bit-identical
      // to the serial entry point per instance, for any concurrent caller.
      const auto results = solver_.solve_items(items);
      for (std::size_t i = 0; i < items.size(); ++i) {
        const PendingSolve& solve = batch[slots[i]];
        SolveOutcome outcome;
        outcome.reactor = solve.reactor;
        outcome.conn_gen = solve.conn_gen;
        outcome.fd = solve.fd;
        outcome.request_id = solve.request_id;
        outcome.type = MsgType::kSolveOk;
        encode_solve_reply_payload(results[i], outcome.payload);
        outcome.request_latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - solve.received)
                .count();
        outcomes.push_back(std::move(outcome));
      }
    }
    // Inflight is raised BEFORE our ticking_ share is released, so a
    // drain checker that sees the queue idle is guaranteed to still see
    // these outcomes in flight until a reactor queues each reply.
    results_inflight_.fetch_add(outcomes.size(), std::memory_order_acq_rel);
    std::fill(touched.begin(), touched.end(), 0);
    for (SolveOutcome& outcome : outcomes) {
      const std::size_t target = outcome.reactor;
      Reactor& reactor = *reactors_[target];
      {
        std::lock_guard lock(reactor.mutex);
        reactor.results.push_back(std::move(outcome));
      }
      touched[target] = 1;
    }
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (touched[i] != 0) wake_reactor(*reactors_[i]);
    }
    {
      std::lock_guard lock(queue_mutex_);
      ticking_ -= batch.size();
    }
    if (draining_.load(std::memory_order_acquire)) wake_all_reactors();
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};
struct sigaction g_old_term;
struct sigaction g_old_int;

void forward_signal(int) {
  if (Server* server = g_signal_server.load(std::memory_order_relaxed)) {
    server->notify_signal();
  }
}

}  // namespace

void install_signal_drain(Server* server) {
  if (server != nullptr) {
    g_signal_server.store(server, std::memory_order_relaxed);
    struct sigaction action{};
    action.sa_handler = forward_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, &g_old_term);
    sigaction(SIGINT, &action, &g_old_int);
  } else {
    sigaction(SIGTERM, &g_old_term, nullptr);
    sigaction(SIGINT, &g_old_int, nullptr);
    g_signal_server.store(nullptr, std::memory_order_relaxed);
  }
}

}  // namespace lrb::svc
