#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace lrb::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

engine::BatchOptions engine_options_for(const ServerOptions& options) {
  engine::BatchOptions engine = options.engine;
  // A custom server registry also captures the engine metrics unless the
  // caller explicitly pointed the engine elsewhere.
  if (engine.metrics == &obs::Registry::global() &&
      options.metrics != &obs::Registry::global()) {
    engine.metrics = options.metrics;
  }
  if (options.cache_bytes > 0) {
    engine.cache_bytes = options.cache_bytes;
  }
  return engine;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      solver_(engine_options_for(options_)),
      m_conns_accepted_(options_.metrics->counter("svc.connections_accepted")),
      m_conns_closed_(options_.metrics->counter("svc.connections_closed")),
      m_bytes_in_(options_.metrics->counter("svc.bytes_in")),
      m_bytes_out_(options_.metrics->counter("svc.bytes_out")),
      m_req_ping_(options_.metrics->counter("svc.requests_ping")),
      m_req_solve_(options_.metrics->counter("svc.requests_solve")),
      m_req_stats_(options_.metrics->counter("svc.requests_stats")),
      m_req_drain_(options_.metrics->counter("svc.requests_drain")),
      m_replies_ok_(options_.metrics->counter("svc.replies_solve_ok")),
      m_shed_overloaded_(options_.metrics->counter("svc.shed_overloaded")),
      m_shed_deadline_(options_.metrics->counter("svc.shed_deadline")),
      m_rejected_draining_(options_.metrics->counter("svc.rejected_draining")),
      m_bad_requests_(options_.metrics->counter("svc.bad_requests")),
      m_ticks_(options_.metrics->counter("svc.engine_ticks")),
      m_dropped_replies_(options_.metrics->counter("svc.dropped_replies")),
      m_request_latency_ms_(
          options_.metrics->histogram("svc.request_latency_ms")),
      m_tick_batch_(options_.metrics->histogram("svc.tick_batch_size")) {}

Server::~Server() {
  {
    std::lock_guard lock(queue_mutex_);
    stop_engine_ = true;
  }
  queue_cv_.notify_all();
  if (engine_thread_.joinable()) engine_thread_.join();
  for (auto& [fd, conn] : connections_) close(conn.fd);
  if (unix_listener_ >= 0) close(unix_listener_);
  if (tcp_listener_ >= 0) close(tcp_listener_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  if (!options_.unix_path.empty() && unix_listener_ >= 0) {
    unlink(options_.unix_path.c_str());
  }
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }
  if (pipe(wake_pipe_) != 0) return fail("pipe");
  if (!set_nonblocking(wake_pipe_[0]) || !set_nonblocking(wake_pipe_[1])) {
    return fail("pipe nonblocking");
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      if (error != nullptr) *error = "unix path too long";
      return false;
    }
    unix_listener_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listener_ < 0) return fail("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unlink(options_.unix_path.c_str());
    if (bind(unix_listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
      return fail("bind(" + options_.unix_path + ")");
    }
    if (listen(unix_listener_, 128) != 0) return fail("listen(unix)");
    if (!set_nonblocking(unix_listener_)) return fail("nonblocking(unix)");
  }

  if (options_.tcp_port >= 0) {
    tcp_listener_ = socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listener_ < 0) return fail("socket(AF_INET)");
    const int one = 1;
    setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (inet_pton(AF_INET, options_.tcp_bind.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad bind address " + options_.tcp_bind;
      return false;
    }
    if (bind(tcp_listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
      return fail("bind(tcp " + std::to_string(options_.tcp_port) + ")");
    }
    if (listen(tcp_listener_, 128) != 0) return fail("listen(tcp)");
    if (!set_nonblocking(tcp_listener_)) return fail("nonblocking(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (getsockname(tcp_listener_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  engine_thread_ = std::thread([this] { engine_loop(); });
  return true;
}

void Server::notify_signal() noexcept {
  signal_requested_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  // The result is deliberately ignored: a full pipe already guarantees a
  // pending wakeup, and failing inside a signal handler has no recourse.
  [[maybe_unused]] const auto n = write(wake_pipe_[1], &byte, 1);
}

void Server::accept_ready(int listener_fd) {
  for (;;) {
    const int fd = accept(listener_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again later
    if (draining_ || connections_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    conn_gen_[fd] = ++conn_gen_counter_;
    m_conns_accepted_.add(1);
  }
}

void Server::queue_reply(Connection& conn, MsgType type,
                         std::uint64_t request_id, std::string_view payload) {
  encode_frame(conn.write_buf, type, request_id, payload);
}

void Server::queue_error(Connection& conn, std::uint64_t request_id,
                         ErrorCode code, std::string_view text) {
  queue_reply(conn, MsgType::kError, request_id,
              encode_error_payload(code, text));
}

void Server::handle_solve(Connection& conn, const FrameHeader& header,
                          std::string_view payload) {
  m_req_solve_.add(1);
  if (draining_) {
    m_rejected_draining_.add(1);
    queue_error(conn, header.request_id, ErrorCode::kDraining,
                "server is draining");
    return;
  }
  {
    std::lock_guard lock(queue_mutex_);
    if (pending_.size() >= options_.max_queue) {
      m_shed_overloaded_.add(1);
      queue_error(conn, header.request_id, ErrorCode::kOverloaded,
                  "solve queue at capacity");
      return;
    }
  }
  std::string error;
  auto request = decode_solve_request(payload, &error);
  if (!request) {
    m_bad_requests_.add(1);
    queue_error(conn, header.request_id, ErrorCode::kBadRequest, error);
    return;
  }
  PendingSolve pending;
  pending.conn_gen = conn_gen_[conn.fd];
  pending.fd = conn.fd;
  pending.request_id = header.request_id;
  pending.received = std::chrono::steady_clock::now();
  if (request->deadline_ms > 0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.received + std::chrono::milliseconds(request->deadline_ms);
  }
  pending.request = std::move(*request);
  {
    std::lock_guard lock(queue_mutex_);
    pending_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
}

bool Server::process_frames(Connection& conn) {
  for (;;) {
    FrameHeader header;
    switch (decode_header(conn.read_buf, &header)) {
      case DecodeStatus::kNeedMore:
        return true;
      case DecodeStatus::kBadMagic:
        m_bad_requests_.add(1);
        queue_error(conn, 0, ErrorCode::kBadRequest, "bad magic");
        return false;
      case DecodeStatus::kBadVersion:
        m_bad_requests_.add(1);
        queue_error(conn, header.request_id, ErrorCode::kBadRequest,
                    "unsupported protocol version");
        return false;
      case DecodeStatus::kTooLarge:
        m_bad_requests_.add(1);
        queue_error(conn, header.request_id, ErrorCode::kBadRequest,
                    "payload exceeds 64 MiB cap");
        return false;
      case DecodeStatus::kOk:
        break;
    }
    if (conn.read_buf.size() - kHeaderSize < header.payload_len) {
      return true;  // wait for the rest of the payload
    }
    const std::string_view payload(conn.read_buf.data() + kHeaderSize,
                                   header.payload_len);
    switch (header.type) {
      case MsgType::kPing:
        m_req_ping_.add(1);
        queue_reply(conn, MsgType::kPong, header.request_id, payload);
        break;
      case MsgType::kSolve:
        handle_solve(conn, header, payload);
        break;
      case MsgType::kStats:
        m_req_stats_.add(1);
        queue_reply(conn, MsgType::kStatsOk, header.request_id,
                    options_.metrics->to_json());
        break;
      case MsgType::kDrain:
        m_req_drain_.add(1);
        conn.wants_drain_ack = true;
        begin_drain();
        break;
      default:
        m_bad_requests_.add(1);
        queue_error(conn, header.request_id, ErrorCode::kBadRequest,
                    "unknown request type");
        return false;
    }
    conn.read_buf.erase(0, kHeaderSize + header.payload_len);
  }
}

void Server::handle_readable(Connection& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = options_.io->recv(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
      m_bytes_in_.add(static_cast<std::uint64_t>(n));
      conn.read_buf.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not EOF: just retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    // EOF or hard error: flush what we owe, then close.
    conn.close_after_flush = true;
    break;
  }
  if (!process_frames(conn)) conn.close_after_flush = true;
}

void Server::handle_writable(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        options_.io->send(conn.fd, conn.write_buf.data() + conn.write_pos,
                          conn.write_buf.size() - conn.write_pos);
    if (n > 0) {
      m_bytes_out_.add(static_cast<std::uint64_t>(n));
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0) {
      // EINTR must not drop the buffered replies (a signal landing during
      // a flush used to lose the whole write buffer; the fault shim's
      // EINTR schedule pins this as a regression test).
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    }
    // Peer vanished; nothing left to flush to it.
    conn.write_buf.clear();
    conn.write_pos = 0;
    conn.close_after_flush = true;
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
}

void Server::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  options_.io->on_close(fd);
  close(it->second.fd);
  connections_.erase(it);
  conn_gen_.erase(fd);
  m_conns_closed_.add(1);
}

void Server::drain_results() {
  std::deque<SolveOutcome> ready;
  {
    std::lock_guard lock(queue_mutex_);
    ready.swap(results_);
  }
  for (SolveOutcome& outcome : ready) {
    const auto gen = conn_gen_.find(outcome.fd);
    if (gen == conn_gen_.end() || gen->second != outcome.conn_gen) {
      m_dropped_replies_.add(1);
      continue;
    }
    Connection& conn = connections_.at(outcome.fd);
    queue_reply(conn, outcome.type, outcome.request_id, outcome.payload);
    if (outcome.type == MsgType::kSolveOk) {
      m_replies_ok_.add(1);
      m_request_latency_ms_.record(outcome.request_latency_ms);
    }
  }
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (unix_listener_ >= 0) {
    close(unix_listener_);
    if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
    unix_listener_ = -1;
  }
  if (tcp_listener_ >= 0) {
    close(tcp_listener_);
    tcp_listener_ = -1;
  }
}

bool Server::drained() const {
  if (!draining_) return false;
  {
    std::lock_guard lock(queue_mutex_);
    if (!pending_.empty() || ticking_ != 0 || !results_.empty()) return false;
  }
  for (const auto& [fd, conn] : connections_) {
    if (conn.wants_drain_ack || conn.write_pos < conn.write_buf.size()) {
      return false;
    }
  }
  return true;
}

void Server::maybe_finish_drain() {
  if (!draining_) return;
  bool engine_idle;
  {
    std::lock_guard lock(queue_mutex_);
    engine_idle = pending_.empty() && ticking_ == 0 && results_.empty();
  }
  if (!engine_idle) return;
  // Every admitted request has been answered; acknowledge the drain(s).
  // The ack rides the same FIFO write buffer, so it is ordered after every
  // in-flight reply on that connection.
  for (auto& [fd, conn] : connections_) {
    if (conn.wants_drain_ack) {
      queue_reply(conn, MsgType::kDrainOk, 0, {});
      conn.wants_drain_ack = false;
    }
  }
}

void Server::run() {
  std::vector<pollfd> fds;
  std::vector<int> to_close;
  for (;;) {
    drain_results();
    if (signal_requested_.load(std::memory_order_relaxed)) begin_drain();
    maybe_finish_drain();
    if (drained()) break;

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (unix_listener_ >= 0) fds.push_back({unix_listener_, POLLIN, 0});
    if (tcp_listener_ >= 0) fds.push_back({tcp_listener_, POLLIN, 0});
    for (auto& [fd, conn] : connections_) {
      const bool backlog = conn.write_pos < conn.write_buf.size();
      fds.push_back(
          {fd, static_cast<short>(backlog ? (POLLIN | POLLOUT) : POLLIN), 0});
    }
    // The self-pipe wakes us for results/signals; the timeout is only a
    // belt-and-braces guard against a lost wakeup.
    if (options_.io->poll(fds.data(), fds.size(), 100) < 0 &&
        errno != EINTR) {
      break;
    }

    for (const pollfd& entry : fds) {
      if (entry.revents == 0) continue;
      if (entry.fd == wake_pipe_[0]) {
        char buf[256];
        while (read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (entry.fd == unix_listener_ || entry.fd == tcp_listener_) {
        accept_ready(entry.fd);
        continue;
      }
      const auto it = connections_.find(entry.fd);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      if ((entry.revents & (POLLERR | POLLNVAL)) != 0) {
        to_close.push_back(entry.fd);
        continue;
      }
      if ((entry.revents & (POLLIN | POLLHUP)) != 0) handle_readable(conn);
      if ((entry.revents & POLLOUT) != 0) handle_writable(conn);
    }

    drain_results();
    maybe_finish_drain();
    // Flush opportunistically: most replies fit the socket buffer, so this
    // usually completes without waiting for a POLLOUT round-trip.
    for (auto& [fd, conn] : connections_) {
      if (conn.write_pos < conn.write_buf.size()) handle_writable(conn);
      if (conn.close_after_flush && conn.write_pos >= conn.write_buf.size()) {
        to_close.push_back(fd);
      }
    }
    for (const int fd : to_close) close_connection(fd);
    to_close.clear();
  }
  // Drained: every reply (incl. DrainOk) is flushed; close what remains.
  while (!connections_.empty()) {
    close_connection(connections_.begin()->first);
  }
}

void Server::engine_loop() {
  std::vector<PendingSolve> batch;
  std::vector<engine::BatchSolver::TickItem> items;
  std::vector<std::size_t> slots;  // batch index of each solved instance
  for (;;) {
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_engine_ || !pending_.empty(); });
      if (stop_engine_) return;
    }
    if (options_.tick_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.tick_delay_ms));
    }
    batch.clear();
    {
      std::lock_guard lock(queue_mutex_);
      while (!pending_.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ticking_ = batch.size();
    }
    if (batch.empty()) continue;
    m_ticks_.add(1);
    m_tick_batch_.record(static_cast<double>(batch.size()));

    const auto now = std::chrono::steady_clock::now();
    std::deque<SolveOutcome> outcomes;
    items.clear();
    slots.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].has_deadline && now > batch[i].deadline) {
        m_shed_deadline_.add(1);
        SolveOutcome shed;
        shed.conn_gen = batch[i].conn_gen;
        shed.fd = batch[i].fd;
        shed.request_id = batch[i].request_id;
        shed.type = MsgType::kError;
        shed.payload = encode_error_payload(
            ErrorCode::kDeadlineExceeded,
            "deadline passed before the solve was dispatched");
        outcomes.push_back(std::move(shed));
        continue;
      }
      engine::BatchSolver::TickItem item;
      item.instance = &batch[i].request.instance;
      item.k = batch[i].request.k;
      item.algo = batch[i].request.algo;
      item.ptas_budget = batch[i].request.ptas_budget;
      item.ptas_eps = batch[i].request.ptas_eps;
      items.push_back(item);
      slots.push_back(i);
    }
    if (!items.empty()) {
      // One tick = one BatchSolver call: everything admitted while the
      // previous tick ran is coalesced here, with per-request algorithm
      // parameters carried by the TickItems. Batching composition cannot
      // change results — BatchSolver is bit-identical to the serial entry
      // point per instance.
      const auto results = solver_.solve_items(items);
      for (std::size_t i = 0; i < items.size(); ++i) {
        const PendingSolve& solve = batch[slots[i]];
        SolveOutcome outcome;
        outcome.conn_gen = solve.conn_gen;
        outcome.fd = solve.fd;
        outcome.request_id = solve.request_id;
        outcome.type = MsgType::kSolveOk;
        outcome.payload = encode_solve_reply_payload(results[i]);
        outcome.request_latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - solve.received)
                .count();
        outcomes.push_back(std::move(outcome));
      }
    }
    {
      std::lock_guard lock(queue_mutex_);
      for (SolveOutcome& outcome : outcomes) {
        results_.push_back(std::move(outcome));
      }
      ticking_ = 0;
    }
    const char byte = 'r';
    [[maybe_unused]] const auto n = write(wake_pipe_[1], &byte, 1);
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};
struct sigaction g_old_term;
struct sigaction g_old_int;

void forward_signal(int) {
  if (Server* server = g_signal_server.load(std::memory_order_relaxed)) {
    server->notify_signal();
  }
}

}  // namespace

void install_signal_drain(Server* server) {
  if (server != nullptr) {
    g_signal_server.store(server, std::memory_order_relaxed);
    struct sigaction action{};
    action.sa_handler = forward_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, &g_old_term);
    sigaction(SIGINT, &action, &g_old_int);
  } else {
    sigaction(SIGTERM, &g_old_term, nullptr);
    sigaction(SIGINT, &g_old_int, nullptr);
    g_signal_server.store(nullptr, std::memory_order_relaxed);
  }
}

}  // namespace lrb::svc
