#include "svc/session_client.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

namespace lrb::svc {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::string describe_ack(const SessionClient::Ack& ack) {
  if (!ack.server_error) return "unexpected reply type";
  return std::string(error_code_name(ack.server_error->code)) + ": " +
         ack.server_error->text;
}

}  // namespace

SessionClient::SessionClient(Endpoint endpoint, RetryPolicy policy,
                             obs::Registry* metrics, fault::SocketIo* io)
    : endpoint_(std::move(endpoint)),
      policy_(policy),
      io_(io),
      jitter_(splitmix64(policy.jitter_seed)),
      m_connects_(metrics->counter("client.connects")),
      m_reconnects_(metrics->counter("client.reconnects")),
      m_retries_(metrics->counter("client.retries")),
      m_timeouts_(metrics->counter("client.timeouts")),
      m_gave_up_(metrics->counter("client.gave_up")) {
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
}

bool SessionClient::ensure_connected(std::string* error) {
  if (client_.connected()) return true;
  std::string connect_error;
  auto client =
      endpoint_.unix_path.empty()
          ? Client::connect_tcp(endpoint_.tcp_host, endpoint_.tcp_port,
                                &connect_error, io_,
                                policy_.connect_timeout_ms)
          : Client::connect_unix(endpoint_.unix_path, &connect_error, io_,
                                 policy_.connect_timeout_ms);
  if (!client) return set_error(error, connect_error);
  client_ = std::move(*client);
  m_connects_.add(1);
  if (ever_connected_) m_reconnects_.add(1);
  ever_connected_ = true;
  return true;
}

void SessionClient::backoff(std::size_t attempt) {
  const auto shift = std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 20);
  const std::uint64_t raw = std::uint64_t{policy_.backoff_base_ms} << shift;
  const auto capped = std::min<std::uint64_t>(raw, policy_.backoff_cap_ms);
  const double jittered =
      static_cast<double>(capped) * jitter_.uniform_real(0.5, 1.0);
  if (jittered >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(jittered));
  }
}

std::optional<SessionClient::Ack> SessionClient::call_with_retry(
    MsgType type, const std::string& payload, std::string* error) {
  // One request id for every attempt of this logical call: a retry is a
  // byte-identical resend of the original frame, which is exactly what the
  // server's duplicate detection answers from its stored reply.
  const std::uint64_t request_id = next_request_id_++;
  std::string last_error = "no attempts made";
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      m_retries_.add(1);
      backoff(attempt - 1);
    }
    if (!ensure_connected(&last_error)) continue;
    if (!client_.send_frame(type, request_id, payload, &last_error)) {
      client_.close();
      continue;
    }
    const auto deadline =
        policy_.solve_timeout_ms > 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(policy_.solve_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    FrameHeader header;
    std::string reply;
    bool timed_out = false;
    if (!client_.recv_frame_until(&header, &reply, deadline, &last_error,
                                  &timed_out)) {
      if (timed_out) m_timeouts_.add(1);
      // The dead connection may still carry a stale reply: never reuse it.
      client_.close();
      continue;
    }
    if (header.request_id != request_id) {
      last_error = "reply request id mismatch";
      client_.close();
      continue;
    }
    Ack ack;
    ack.attempts = attempt;
    ack.type = header.type;
    if (header.type != MsgType::kError) {
      ack.raw_payload = std::move(reply);
      return ack;
    }
    auto server_error = decode_error_payload(reply);
    if (!server_error) {
      last_error = "malformed error reply";
      client_.close();
      continue;
    }
    switch (server_error->code) {
      case ErrorCode::kOverloaded:
        last_error = "server overloaded";
        continue;  // connection stays healthy; just back off
      case ErrorCode::kDraining:
        last_error = "server draining";
        client_.close();
        continue;
      case ErrorCode::kBadRequest:
      case ErrorCode::kInternal:
        // Possibly line corruption of a good frame (the wire has no
        // checksum); the resend is dedup-safe, so retry like the one-shot
        // client does. A genuinely bad frame recurs every attempt and
        // surfaces as the give-up error.
        last_error = std::string("server error: ") +
                     error_code_name(server_error->code) + ": " +
                     server_error->text;
        client_.close();
        continue;
      default:
        // Session errors (unknown/exists/sequence/closed) and deadline
        // are definitive outcomes for this call.
        ack.raw_payload = std::move(reply);
        ack.server_error = std::move(*server_error);
        return ack;
    }
  }
  m_gave_up_.add(1);
  set_error(error, "gave up after " + std::to_string(policy_.max_attempts) +
                       " attempts: " + last_error);
  return std::nullopt;
}

std::optional<SessionClient::Ack> SessionClient::open(
    const SessionOpenRequest& request, std::string* error) {
  session_id_ = request.session_id;
  return call_with_retry(MsgType::kSessionOpen,
                         encode_session_open_request(request), error);
}

std::optional<SessionClient::Ack> SessionClient::send_deltas(
    const SessionDeltaRequest& request, std::string* error) {
  return call_with_retry(MsgType::kSessionDelta,
                         encode_session_delta_request(request), error);
}

std::optional<SessionClient::Ack> SessionClient::stats(std::string* error) {
  return call_with_retry(MsgType::kSessionStats,
                         encode_session_id_payload(session_id_), error);
}

std::optional<SessionClient::Ack> SessionClient::close_session(
    std::string* error) {
  return call_with_retry(MsgType::kSessionClose,
                         encode_session_id_payload(session_id_), error);
}

// ---------------------------------------------------------------------------
// run_session_stream: stream a delta log, mirroring the server reply by
// reply. The mirror is a local ClusterSession wired to the serial
// reference solver and stepped over the SAME framing as the wire calls,
// so every expected reply can be re-encoded and byte-compared — the
// strongest form of the determinism check (full reply payloads, not just
// plan contents).

StreamRunResult run_session_stream(const stream::DeltaLog& log,
                                   const StreamRunOptions& options) {
  StreamRunResult result;
  const std::size_t frame_size = std::max<std::size_t>(1, options.frame_size);

  std::optional<stream::ClusterSession> mirror;
  stream::SolveFn reference_solve;
  if (options.check) {
    std::string open_error;
    mirror = stream::ClusterSession::open(log.initial, log.trigger,
                                          &open_error);
    if (!mirror) {
      result.error = "reference open failed: " + open_error;
      return result;
    }
    reference_solve = stream::serial_reference_solver(options.cached);
  }

  SessionClient client(options.endpoint, options.retry, options.metrics,
                       options.io);
  auto fail = [&result](std::string what) {
    result.error = std::move(what);
    return result;
  };
  auto record_mismatch = [&](const std::string& where) {
    ++result.mismatches;
    if (result.error.empty()) {
      result.error = "reply mismatch vs serial reference at " + where;
    }
  };

  SessionOpenRequest open_request;
  open_request.session_id = options.session_id;
  open_request.trigger = log.trigger;
  open_request.instance = log.initial;
  std::string error;
  auto ack = client.open(open_request, &error);
  if (!ack) return fail("open: " + error);
  if (ack->type != MsgType::kSessionOpenOk) {
    return fail("open rejected: " + describe_ack(*ack));
  }
  if (mirror) {
    SessionOpenReply expected;
    expected.session_id = options.session_id;
    expected.makespan = mirror->makespan();
    expected.lower_bound = mirror->lower_bound();
    expected.state_digest = mirror->digest();
    if (encode_session_open_reply(expected) != ack->raw_payload) {
      record_mismatch("open");
    }
  }

  std::uint64_t seq = 1;
  for (std::size_t base = 0; base < log.deltas.size(); base += frame_size) {
    const std::size_t count =
        std::min(frame_size, log.deltas.size() - base);
    SessionDeltaRequest frame;
    frame.session_id = options.session_id;
    frame.first_seq = seq;
    frame.deltas.assign(log.deltas.begin() + static_cast<std::ptrdiff_t>(base),
                        log.deltas.begin() +
                            static_cast<std::ptrdiff_t>(base + count));
    if (options.reconnect_every > 0 && result.frames_sent > 0 &&
        result.frames_sent % options.reconnect_every == 0) {
      client.disconnect();  // next frame reconnects — often to a different
                            // reactor, exercising session forwarding
    }
    ack = client.send_deltas(frame, &error);
    if (!ack) return fail("deltas at seq " + std::to_string(seq) + ": " +
                          error);
    ++result.frames_sent;
    if (ack->type != MsgType::kSessionDeltaOk &&
        ack->type != MsgType::kSessionPlan) {
      return fail("delta frame at seq " + std::to_string(seq) +
                  " rejected: " + describe_ack(*ack));
    }
    if (mirror) {
      SessionDeltaReply expected;
      expected.session_id = options.session_id;
      for (std::size_t i = 0; i < count; ++i) {
        stream::StepResult step = mirror->step(
            frame.deltas[i], seq + i, reference_solve);
        if (step.applied) {
          ++expected.applied;
        } else {
          ++expected.rejected;
          if (expected.first_error.empty()) {
            expected.first_error = step.error;
          }
        }
        for (stream::SessionPlan& plan : step.plans) {
          expected.plans.push_back(std::move(plan));
        }
      }
      expected.last_seq = seq + count - 1;
      expected.makespan = mirror->makespan();
      expected.lower_bound = mirror->lower_bound();
      expected.state_digest = mirror->digest();
      if (session_reply_type(expected) != ack->type ||
          encode_session_delta_reply(expected) != ack->raw_payload) {
        record_mismatch("seq " + std::to_string(seq));
      }
    }
    seq += count;
  }

  ack = client.stats(&error);
  if (!ack) return fail("stats: " + error);
  if (ack->type != MsgType::kSessionStatsOk) {
    return fail("stats rejected: " + describe_ack(*ack));
  }
  {
    std::string decode_error;
    auto stats_reply = decode_session_stats_reply(ack->raw_payload,
                                                  &decode_error);
    if (!stats_reply) return fail("bad stats reply: " + decode_error);
    result.deltas_applied = stats_reply->stats.deltas_applied;
    result.deltas_rejected = stats_reply->stats.deltas_rejected;
    result.plans_emitted = stats_reply->stats.plans_emitted;
    result.moves_total = stats_reply->stats.moves_total;
    result.final_makespan = stats_reply->stats.makespan;
    result.final_digest = stats_reply->stats.digest;
  }
  if (mirror) {
    // The stats comparison is the zero-lost / zero-duplicated delta
    // ledger: applied + rejected counters can only match the mirror if no
    // retry double-applied a frame and no fault dropped one.
    SessionStatsReply expected;
    expected.session_id = options.session_id;
    expected.stats = mirror->stats();
    if (encode_session_stats_reply(expected) != ack->raw_payload) {
      record_mismatch("stats");
    }
  }

  ack = client.close_session(&error);
  if (!ack) return fail("close: " + error);
  if (ack->type != MsgType::kSessionCloseOk) {
    return fail("close rejected: " + describe_ack(*ack));
  }
  if (mirror) {
    const stream::SessionStats stats = mirror->stats();
    SessionCloseReply expected;
    expected.session_id = options.session_id;
    expected.deltas_applied = stats.deltas_applied;
    expected.deltas_rejected = stats.deltas_rejected;
    expected.plans_emitted = stats.plans_emitted;
    if (encode_session_close_reply(expected) != ack->raw_payload) {
      record_mismatch("close");
    }
  }

  result.ok = result.error.empty() && result.mismatches == 0;
  return result;
}

}  // namespace lrb::svc
