// The rebalancing service: a long-running daemon that answers wire-protocol
// requests (svc/wire.h) over TCP and/or Unix-domain sockets.
//
// Architecture (two threads, one direction of ownership):
//
//   poll(2) event loop (run())          engine thread
//   ─ accepts connections               ─ waits for pending solves
//   ─ non-blocking reads, incremental   ─ coalesces everything pending
//     frame parsing (partial reads OK)    (up to max_batch) into ONE
//   ─ admission control: queue depth      engine::BatchSolver tick over
//     >= max_queue -> Overloaded reply     leased Scratch arenas
//   ─ answers Ping/Stats inline         ─ sheds requests whose deadline
//   ─ queues Solve for the engine         passed before dispatch
//   ─ writes replies, partial writes    ─ posts results back through the
//     buffered and driven by POLLOUT      self-pipe
//
// Backpressure never blocks and never hangs: a request is either answered
// with its solve result or with an explicit Error (Overloaded /
// DeadlineExceeded / Draining / BadRequest).
//
// Drain: a Drain request or SIGTERM (wired via notify_signal(), which is
// async-signal-safe) stops accepting new connections and new Solves;
// every request already admitted is still solved and its reply flushed
// before run() returns — zero dropped in-flight requests.
//
// Determinism: replies are byte-identical to the serial entry points
// (engine::solve_serial_reference) regardless of batching composition or
// concurrency, because BatchSolver guarantees exactly that per instance.
// With the solution cache enabled (cache_bytes > 0) the reference is
// engine::cached_serial_reference instead — still a pure function of the
// request, identical on cold misses and warm hits (docs/caching.md).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/fault/io_shim.h"
#include "svc/wire.h"

namespace lrb::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the UDS listener. An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (query the result with tcp_port()).
  int tcp_port = -1;
  std::string tcp_bind = "127.0.0.1";

  engine::BatchOptions engine;  ///< pool size, default algo params, metrics

  /// Byte budget for the engine's canonicalizing solution cache
  /// (docs/caching.md); 0 leaves it to engine.cache_bytes (default: off).
  /// Cache hits skip the solver entirely and replies stay byte-identical
  /// to engine::cached_serial_reference. Exposed by lrb_serve --cache-mb;
  /// cache.* counters/gauges appear in the Stats JSON snapshot.
  std::size_t cache_bytes = 0;

  /// Coalescing cap: at most this many Solves per engine tick.
  std::size_t max_batch = 64;
  /// Admission control: Solves arriving while this many are already
  /// pending (queued, not yet dispatched) are shed with Overloaded.
  std::size_t max_queue = 256;
  std::size_t max_connections = 256;
  /// Testing/chaos knob: the engine thread sleeps this long before each
  /// tick's deadline check, simulating a slow engine. Lets tests exercise
  /// deadline shedding and queue backpressure deterministically.
  std::uint32_t tick_delay_ms = 0;
  /// Metrics registry for "svc.*" metrics (and, unless options.engine
  /// overrides it separately, also handed to the BatchSolver). Defaults to
  /// the process-wide registry.
  obs::Registry* metrics = &obs::Registry::global();
  /// Socket-IO seam: every connection recv/send and the event-loop poll go
  /// through this. Production uses the passthrough; the chaos harness
  /// substitutes a fault::FaultInjector.
  fault::SocketIo* io = &fault::SocketIo::real();
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the listeners and starts the engine thread. Returns false (and
  /// sets *error) on socket setup failure.
  [[nodiscard]] bool start(std::string* error);

  /// Runs the event loop until drained (Drain request or notify_signal).
  /// Call from the thread that owns the server; tests run it in a
  /// std::thread.
  void run();

  /// Async-signal-safe drain trigger: write one byte to the self-pipe.
  /// Safe to call from a SIGTERM handler or any thread, once start()
  /// returned true and until the destructor begins.
  void notify_signal() noexcept;

  /// Actual TCP port after start() (useful with tcp_port = 0).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::string read_buf;
    std::string write_buf;
    std::size_t write_pos = 0;  ///< flushed prefix of write_buf
    bool close_after_flush = false;
    bool wants_drain_ack = false;
  };

  struct PendingSolve {
    std::uint64_t conn_gen = 0;  ///< generation-checked connection handle
    int fd = -1;
    std::uint64_t request_id = 0;
    SolveRequest request;
    std::chrono::steady_clock::time_point deadline{};  ///< zero = none
    bool has_deadline = false;
    std::chrono::steady_clock::time_point received{};
  };

  struct SolveOutcome {
    std::uint64_t conn_gen = 0;
    int fd = -1;
    std::uint64_t request_id = 0;
    MsgType type = MsgType::kSolveOk;
    std::string payload;
    double request_latency_ms = 0.0;
  };

  // -- event loop side --
  void accept_ready(int listener_fd);
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  bool process_frames(Connection& conn);  ///< false = close connection
  void handle_solve(Connection& conn, const FrameHeader& header,
                    std::string_view payload);
  void queue_reply(Connection& conn, MsgType type, std::uint64_t request_id,
                   std::string_view payload);
  void queue_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                   std::string_view text);
  void close_connection(int fd);
  void drain_results();
  void begin_drain();
  void maybe_finish_drain();
  [[nodiscard]] bool drained() const;

  // -- engine thread --
  void engine_loop();

  ServerOptions options_;
  engine::BatchSolver solver_;

  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< [0] polled by the loop, [1] written by
                                 ///< the engine thread and signal handlers

  std::map<int, Connection> connections_;
  std::uint64_t conn_gen_counter_ = 0;
  std::map<int, std::uint64_t> conn_gen_;  ///< fd -> live generation

  // Engine-thread handoff.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingSolve> pending_;
  std::size_t ticking_ = 0;  ///< Solves currently inside a tick
  std::deque<SolveOutcome> results_;
  bool stop_engine_ = false;
  std::thread engine_thread_;

  bool draining_ = false;
  bool drain_acked_ = false;
  std::atomic<bool> signal_requested_{false};

  // svc.* metrics (see docs/serving.md for the catalog).
  obs::Counter& m_conns_accepted_;
  obs::Counter& m_conns_closed_;
  obs::Counter& m_bytes_in_;
  obs::Counter& m_bytes_out_;
  obs::Counter& m_req_ping_;
  obs::Counter& m_req_solve_;
  obs::Counter& m_req_stats_;
  obs::Counter& m_req_drain_;
  obs::Counter& m_replies_ok_;
  obs::Counter& m_shed_overloaded_;
  obs::Counter& m_shed_deadline_;
  obs::Counter& m_rejected_draining_;
  obs::Counter& m_bad_requests_;
  obs::Counter& m_ticks_;
  obs::Counter& m_dropped_replies_;
  obs::Histogram& m_request_latency_ms_;
  obs::Histogram& m_tick_batch_;
};

/// Installs a SIGTERM + SIGINT handler that calls server->notify_signal().
/// At most one server can be wired at a time; passing nullptr restores the
/// previous handlers. Used by lrb_serve and the drain tests.
void install_signal_drain(Server* server);

}  // namespace lrb::svc
