// The rebalancing service: a long-running daemon that answers wire-protocol
// requests (svc/wire.h) over TCP and/or Unix-domain sockets.
//
// Architecture (1 acceptor + N reactors + M engine workers):
//
//   acceptor thread (run())
//   ─ polls the listeners + its self-pipe
//   ─ accepts connections, applies the max_connections cap, and hands each
//     new fd round-robin to a reactor's inbox (one byte on that reactor's
//     self-pipe wakes it)
//   ─ owns drain: on a signal or Drain request it closes the listeners and
//     then joins the reactors
//
//   reactor threads (ServerOptions::reactors, each owns its connections)
//   ─ per-reactor poll(2) loop, self-pipe wakeup, connection table, and an
//     incrementally maintained pollfd set (no per-iteration rebuild)
//   ─ non-blocking reads, incremental frame parsing (partial reads OK)
//   ─ admission control: queue depth >= max_queue -> Overloaded reply
//   ─ answers Ping/Stats inline; queues Solve on the shared pending queue
//   ─ owns its shard of the streaming-session tables (wire v2): sessions
//     are pinned to the reactor that accepted their SessionOpen; frames
//     for a session that land on another reactor (round-robin dealing,
//     client reconnects) are forwarded to the owner via its `forwarded`
//     inbox and the reply rides back through the origin's result inbox —
//     see docs/streaming.md. Session replans run INLINE on the owning
//     reactor thread through the shared BatchSolver (cache-aware).
//   ─ writes replies, partial writes buffered and driven by POLLOUT
//   ─ per-reactor svc.reactor<i>.* counters next to the svc.* aggregates
//
//   engine workers (ServerOptions::engine_workers, shared BatchSolver)
//   ─ each pulls a coalesced batch (up to max_batch) from the shared
//     pending queue into ONE engine::BatchSolver tick over leased Scratch
//     arenas; multiple ticks run concurrently when engine_workers > 1
//   ─ sheds requests whose deadline passed before dispatch
//   ─ posts each result to the owning reactor's result inbox + self-pipe
//
// Backpressure never blocks and never hangs: a request is either answered
// with its solve result or with an explicit Error (Overloaded /
// DeadlineExceeded / Draining / BadRequest).
//
// Reply ordering: each connection's replies ride one FIFO write buffer, so
// frames are ordered per connection; with engine_workers > 1, replies to
// *different* requests on the same connection may be queued out of request
// order (concurrent ticks finish independently) — the echoed request id is
// the correlation mechanism, exactly as on reconnect/retry paths.
//
// Drain: a Drain request or SIGTERM (wired via notify_signal(), which is
// async-signal-safe) stops accepting new connections and new Solves;
// every request already admitted — on any reactor — is still solved and
// its reply flushed before run() returns; the DrainOk ack is queued only
// once the engine is idle and every result has been delivered, so it is
// ordered after every reply on its connection. Zero dropped in-flight
// requests, across all reactors.
//
// Determinism: replies are byte-identical to the serial entry points
// (engine::solve_serial_reference) regardless of batching composition or
// concurrency — per-reactor framing, tick coalescing, and concurrent ticks
// cannot change any reply, because BatchSolver guarantees exactly that per
// instance. With the solution cache enabled (cache_bytes > 0) the
// reference is engine::cached_serial_reference instead — still a pure
// function of the request, identical on cold misses and warm hits
// (docs/caching.md).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/fault/io_shim.h"
#include "svc/wire.h"

namespace lrb::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the UDS listener. An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (query the result with tcp_port()).
  int tcp_port = -1;
  std::string tcp_bind = "127.0.0.1";

  engine::BatchOptions engine;  ///< pool size, default algo params, metrics

  /// Byte budget for the engine's canonicalizing solution cache
  /// (docs/caching.md); 0 leaves it to engine.cache_bytes (default: off).
  /// Cache hits skip the solver entirely and replies stay byte-identical
  /// to engine::cached_serial_reference. Exposed by lrb_serve --cache-mb;
  /// cache.* counters/gauges appear in the Stats JSON snapshot.
  std::size_t cache_bytes = 0;

  /// Event-loop shards: each reactor thread owns its own poll loop,
  /// self-pipe, and connection table; the acceptor deals new connections
  /// round-robin. Values < 1 are treated as 1. Exposed by
  /// lrb_serve --reactors.
  std::size_t reactors = 1;
  /// Engine tick workers pulling coalesced batches from the shared pending
  /// queue; > 1 runs multiple BatchSolver ticks concurrently (replies stay
  /// byte-identical — see the determinism note above). Values < 1 are
  /// treated as 1. Exposed by lrb_serve --engine-workers.
  std::size_t engine_workers = 1;

  /// Coalescing cap: at most this many Solves per engine tick.
  std::size_t max_batch = 64;
  /// Admission control: Solves arriving while this many are already
  /// pending (queued, not yet dispatched) are shed with Overloaded.
  std::size_t max_queue = 256;
  std::size_t max_connections = 256;
  /// Admission cap on concurrently open streaming sessions (across all
  /// reactors); SessionOpens beyond it are shed with Overloaded.
  std::size_t max_sessions = 1024;
  /// Testing/chaos knob: an engine worker sleeps this long before each
  /// tick's deadline check, simulating a slow engine. Lets tests exercise
  /// deadline shedding and queue backpressure deterministically.
  std::uint32_t tick_delay_ms = 0;
  /// Metrics registry for "svc.*" metrics (and, unless options.engine
  /// overrides it separately, also handed to the BatchSolver). Defaults to
  /// the process-wide registry.
  obs::Registry* metrics = &obs::Registry::global();
  /// Socket-IO seam: every connection recv/send and every event-loop poll
  /// (acceptor and reactors alike) go through this. Production uses the
  /// passthrough; the chaos harness substitutes a fault::FaultInjector
  /// (whose per-fd decision streams are mutex-guarded, so concurrent
  /// reactors stay race-free).
  fault::SocketIo* io = &fault::SocketIo::real();
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the listeners, creates the reactors, and starts the engine
  /// workers. Returns false (and sets *error) on socket setup failure.
  [[nodiscard]] bool start(std::string* error);

  /// Spawns the reactor threads and runs the acceptor loop until drained
  /// (Drain request or notify_signal); joins the reactors before
  /// returning. Call from the thread that owns the server; tests run it
  /// in a std::thread.
  void run();

  /// Async-signal-safe drain trigger: write one byte to the self-pipe.
  /// Safe to call from a SIGTERM handler or any thread, once start()
  /// returned true and until the destructor begins.
  void notify_signal() noexcept;

  /// Actual TCP port after start() (useful with tcp_port = 0).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;     ///< live generation (fd reuse detection)
    std::size_t poll_idx = 0;  ///< this connection's slot in Reactor::fds
    std::string read_buf;
    std::string write_buf;
    std::size_t write_pos = 0;  ///< flushed prefix of write_buf
    bool close_after_flush = false;
    bool wants_drain_ack = false;
    bool dirty = false;  ///< queued for flush / poll-event recompute
  };

  struct PendingSolve {
    std::size_t reactor = 0;     ///< reactor owning the connection
    std::uint64_t conn_gen = 0;  ///< generation-checked connection handle
    int fd = -1;
    std::uint64_t request_id = 0;
    SolveRequest request;
    std::chrono::steady_clock::time_point deadline{};  ///< zero = none
    bool has_deadline = false;
    std::chrono::steady_clock::time_point received{};
  };

  struct SolveOutcome {
    std::size_t reactor = 0;
    std::uint64_t conn_gen = 0;
    int fd = -1;
    std::uint64_t request_id = 0;
    MsgType type = MsgType::kSolveOk;
    std::string payload;
    double request_latency_ms = 0.0;
  };

  /// A session frame that landed on a reactor that does not own the
  /// session: re-queued verbatim onto the owner's `forwarded` inbox. The
  /// reply travels back through the ORIGIN reactor's result inbox (the
  /// same generation-checked route engine workers use), so the connection
  /// is only ever touched by its own reactor.
  struct ForwardedFrame {
    std::size_t origin = 0;  ///< reactor owning the connection
    std::uint64_t conn_gen = 0;
    int fd = -1;
    FrameHeader header;
    std::string payload;
  };

  /// One streaming session, owned by exactly one reactor (no locks: only
  /// the owning reactor thread touches it). `last_reply_*` snapshot the
  /// most recent state-advancing reply so an exact duplicate frame — a
  /// client retry whose reply was lost — is answered byte-identically
  /// instead of re-applied: the delta exactly-once contract.
  struct SessionState {
    stream::ClusterSession session;
    std::uint64_t last_seq = 0;          ///< highest delta seq consumed
    std::uint64_t open_payload_digest = 0;  ///< idempotent re-open check
    std::uint64_t last_frame_first_seq = 0;
    std::uint32_t last_frame_count = 0;
    MsgType last_reply_type = MsgType::kSessionOpenOk;
    std::string last_reply_payload;
  };

  /// One event-loop shard. `mutex` guards only the three cross-thread
  /// inboxes (`incoming` from the acceptor, `results` from the engine
  /// workers, `forwarded` from sibling reactors); everything else is owned
  /// by the reactor thread alone (touched by run()/~Server only after the
  /// thread is joined).
  struct Reactor {
    std::size_t index = 0;
    int wake_pipe[2] = {-1, -1};  ///< [0] polled; [1] written by others
    std::thread thread;

    std::mutex mutex;
    std::deque<int> incoming;  ///< accepted fds awaiting adoption
    std::deque<SolveOutcome> results;
    std::deque<ForwardedFrame> forwarded;

    std::map<int, Connection> connections;
    /// Sessions pinned to this reactor, keyed by session id.
    std::map<std::uint64_t, SessionState> sessions;
    std::vector<pollfd> fds;  ///< slot 0 = wake pipe; maintained in place
    std::vector<int> dirty_fds;
    std::string scratch;  ///< reused reply-payload encode buffer

    // Per-reactor slices of the svc.* aggregates ("svc.reactor<i>.*").
    obs::Counter* m_accepted = nullptr;
    obs::Counter* m_solve = nullptr;
    obs::Counter* m_bytes_in = nullptr;
    obs::Counter* m_bytes_out = nullptr;
  };

  // -- acceptor thread --
  /// Accepts until the listener drains. Returns false on fd exhaustion
  /// (EMFILE/ENFILE/...), where the listener stays readable and must be
  /// taken out of the poll set briefly instead of busy-spinning.
  [[nodiscard]] bool accept_ready(int listener_fd);
  void close_listeners();
  void request_drain();
  void wake_reactor(Reactor& reactor);
  void wake_all_reactors();

  // -- reactor threads --
  void reactor_loop(Reactor& reactor);
  void adopt_incoming(Reactor& reactor);
  void handle_readable(Reactor& reactor, Connection& conn);
  void handle_writable(Reactor& reactor, Connection& conn);
  bool process_frames(Reactor& reactor,
                      Connection& conn);  ///< false = close connection
  void handle_solve(Reactor& reactor, Connection& conn,
                    const FrameHeader& header, std::string_view payload);

  // -- streaming sessions (wire v2; see docs/streaming.md) --
  /// Entry for the four session MsgTypes: resolves the owner in the
  /// session directory, forwards to it when it is not this reactor, and
  /// otherwise processes the frame inline.
  void handle_session_frame(Reactor& reactor, Connection& conn,
                            const FrameHeader& header,
                            std::string_view payload);
  /// Drains the reactor's `forwarded` inbox (frames re-queued by sibling
  /// reactors); replies ride back through the origin's result inbox.
  void process_forwarded(Reactor& reactor);
  /// Processes one session frame on the OWNING reactor. Appends the reply
  /// (type, payload) via deliver_session_reply, which routes locally or
  /// cross-reactor as needed.
  void process_session_request(Reactor& reactor, std::size_t origin,
                               std::uint64_t conn_gen, int fd,
                               const FrameHeader& header,
                               std::string_view payload);
  /// `claimed` marks the fresh-claim path (this call just inserted the
  /// directory entry); decode/validation failures roll that claim back.
  void process_session_open(Reactor& reactor, std::size_t origin,
                            std::uint64_t conn_gen, int fd,
                            std::uint64_t request_id,
                            std::string_view payload, bool claimed);
  void process_session_delta(Reactor& reactor, SessionState& state,
                             std::size_t origin, std::uint64_t conn_gen,
                             int fd, std::uint64_t request_id,
                             std::string_view payload);
  /// Routes a session reply to the connection that sent the frame: queued
  /// directly when `origin` is this reactor, else pushed as a SolveOutcome
  /// onto the origin's result inbox (the generation check happens there).
  void deliver_session_reply(Reactor& reactor, std::size_t origin,
                             std::uint64_t conn_gen, int fd,
                             std::uint64_t request_id, MsgType type,
                             std::string_view payload);
  void deliver_session_error(Reactor& reactor, std::size_t origin,
                             std::uint64_t conn_gen, int fd,
                             std::uint64_t request_id, ErrorCode code,
                             std::string_view text);
  void queue_reply(Reactor& reactor, Connection& conn, MsgType type,
                   std::uint64_t request_id, std::string_view payload);
  void queue_error(Reactor& reactor, Connection& conn,
                   std::uint64_t request_id, ErrorCode code,
                   std::string_view text);
  void mark_dirty(Reactor& reactor, Connection& conn);
  void flush_dirty(Reactor& reactor);  ///< flush + recompute events + close
  void close_connection(Reactor& reactor, int fd);
  void drain_results(Reactor& reactor);
  void maybe_finish_drain(Reactor& reactor);
  [[nodiscard]] bool reactor_drained(Reactor& reactor);

  // -- engine workers --
  void engine_loop();

  ServerOptions options_;
  engine::BatchSolver solver_;

  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< acceptor self-pipe: [0] polled by
                                 ///< run(), [1] written by signal handlers
                                 ///< and request_drain()

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  ///< round-robin dealing cursor (acceptor)

  /// Global session directory: which reactor owns each session id, plus a
  /// tombstone after close (so ANY reactor can resend the CloseOk to a
  /// retrying client, and closed ids cannot be reopened). Guarded by
  /// session_dir_mutex_; reactors take it only on session frames, never on
  /// the solve hot path.
  struct SessionDirEntry {
    std::size_t owner = 0;
    bool closed = false;
    std::string close_payload;  ///< stored CloseOk (tombstone resend)
  };
  std::mutex session_dir_mutex_;
  std::map<std::uint64_t, SessionDirEntry> session_dir_;
  std::size_t sessions_open_ = 0;  ///< live (non-tombstone) entries


  std::atomic<std::uint64_t> conn_gen_counter_{0};
  std::atomic<std::size_t> conn_count_{0};  ///< across all reactors

  // Engine handoff (shared by reactors and engine workers).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingSolve> pending_;
  std::size_t ticking_ = 0;  ///< Solves currently inside some tick
  bool stop_engine_ = false;
  std::vector<std::thread> engine_threads_;
  /// Outcomes produced but not yet queued into a connection write buffer
  /// (or counted dropped). A worker increments this BEFORE releasing its
  /// ticking_ share, so "pending empty && ticking==0 && inflight==0" is
  /// never observed while a reply is still in flight — the drain-ack
  /// barrier.
  std::atomic<std::size_t> results_inflight_{0};

  std::atomic<bool> draining_{false};
  std::atomic<bool> aborting_{false};  ///< poll failure: exit, skip drain
  std::atomic<bool> signal_requested_{false};

  // svc.* metrics (see docs/serving.md for the catalog).
  obs::Counter& m_conns_accepted_;
  obs::Counter& m_conns_closed_;
  obs::Counter& m_bytes_in_;
  obs::Counter& m_bytes_out_;
  obs::Counter& m_req_ping_;
  obs::Counter& m_req_solve_;
  obs::Counter& m_req_stats_;
  obs::Counter& m_req_drain_;
  obs::Counter& m_replies_ok_;
  obs::Counter& m_shed_overloaded_;
  obs::Counter& m_shed_deadline_;
  obs::Counter& m_rejected_draining_;
  obs::Counter& m_bad_requests_;
  obs::Counter& m_ticks_;
  obs::Counter& m_dropped_replies_;
  obs::Histogram& m_request_latency_ms_;
  obs::Histogram& m_tick_batch_;

  // stream.* metrics (streaming sessions; see docs/streaming.md).
  obs::Counter& m_req_session_;
  obs::Gauge& m_sessions_open_;
  obs::Counter& m_sessions_opened_;
  obs::Counter& m_sessions_closed_;
  obs::Counter& m_deltas_applied_;
  obs::Counter& m_deltas_rejected_;
  obs::Counter& m_plans_emitted_;
  obs::Counter& m_dup_frames_resent_;
  obs::Counter& m_forwarded_frames_;
  obs::Histogram& m_moves_per_plan_;
  obs::Histogram& m_replan_latency_ms_;
};

/// Installs a SIGTERM + SIGINT handler that calls server->notify_signal().
/// At most one server can be wired at a time; passing nullptr restores the
/// previous handlers. Used by lrb_serve and the drain tests.
void install_signal_drain(Server* server);

}  // namespace lrb::svc
