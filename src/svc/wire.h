// The lrb_serve binary wire protocol (version lrb::kWireVersion).
//
// Every message is one length-prefixed frame, little-endian throughout:
//
//   offset  size  field
//        0     4  magic "LRBS"
//        4     2  protocol version (= 1)
//        6     2  message type (MsgType)
//        8     8  request id (echoed verbatim in the reply)
//       16     4  payload length in bytes
//       20     -  payload
//
// Request payloads:
//   Ping   arbitrary bytes (echoed back in Pong)
//   Solve  u8 algo, u8+u16 reserved, u32 deadline_ms (0 = none, relative
//          to server receipt), i64 k, i64 ptas_budget, f64 ptas_eps,
//          u32 num_procs, u32 num_jobs, then per job
//          {i64 size, i64 move_cost, u32 initial}
//   Stats  empty
//   Drain  empty
//
// Reply payloads:
//   Pong     the Ping payload
//   SolveOk  i64 makespan, i64 moves, i64 cost, i64 threshold,
//            u32 num_jobs, u32 assignment[num_jobs]
//   StatsOk  UTF-8 JSON metrics snapshot (obs::Registry::to_json)
//   DrainOk  empty (sent once every in-flight request has been answered)
//   Error    u32 code (ErrorCode), u32 text length, UTF-8 text
//
// Determinism: encode_solve_reply_payload is a pure function of the
// RebalanceResult, so "reply payload byte-identical to the serial solver"
// is a meaningful contract checked by lrb_load --check and tests/test_svc.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/assignment.h"
#include "core/instance.h"
#include "engine/batch_solver.h"
#include "util/version.h"

namespace lrb::svc {

inline constexpr char kMagic[4] = {'L', 'R', 'B', 'S'};
inline constexpr std::size_t kHeaderSize = 20;
/// Frames advertising a larger payload are rejected with kBadRequest and
/// the connection is closed (a lying header must not make the server
/// buffer unbounded input).
inline constexpr std::uint32_t kMaxPayload = 1u << 26;  // 64 MiB

enum class MsgType : std::uint16_t {
  // Requests.
  kPing = 1,
  kSolve = 2,
  kStats = 3,
  kDrain = 4,
  // Replies.
  kPong = 101,
  kSolveOk = 102,
  kStatsOk = 103,
  kDrainOk = 104,
  kError = 120,
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,       ///< malformed frame or payload; connection closes
  kOverloaded = 2,       ///< admission control shed: queue depth at cap
  kDeadlineExceeded = 3, ///< deadline passed before the solve was dispatched
  kDraining = 4,         ///< server is draining; no new work accepted
  kInternal = 5,
};

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

enum class DecodeStatus {
  kOk,         ///< *header filled; kHeaderSize bytes consumed by the caller
  kNeedMore,   ///< fewer than kHeaderSize bytes available
  kBadMagic,
  kBadVersion,
  kTooLarge,   ///< payload_len > kMaxPayload
};

/// Parses a frame header from the front of `buf` without consuming it.
[[nodiscard]] DecodeStatus decode_header(std::string_view buf,
                                         FrameHeader* header);

/// Appends a complete frame (header + payload) to `out`.
void encode_frame(std::string& out, MsgType type, std::uint64_t request_id,
                  std::string_view payload);

struct SolveRequest {
  engine::Algo algo = engine::Algo::kBestOf;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  std::int64_t k = 0;
  Cost ptas_budget = kInfCost;
  double ptas_eps = 1.0;
  Instance instance;
};

[[nodiscard]] std::string encode_solve_request(const SolveRequest& request);
/// Returns nullopt (and sets *error) on truncated/invalid payloads,
/// including structurally invalid instances (lrb::validate).
[[nodiscard]] std::optional<SolveRequest> decode_solve_request(
    std::string_view payload, std::string* error);

[[nodiscard]] std::string encode_solve_reply_payload(
    const RebalanceResult& result);
/// Appending overload for the serving hot path: encodes into `out`
/// (appended, not cleared), so a reused per-connection/per-worker scratch
/// buffer replaces a fresh std::string per reply frame. The returning
/// overload wraps this one, so the bytes are identical.
void encode_solve_reply_payload(const RebalanceResult& result,
                                std::string& out);
[[nodiscard]] std::optional<RebalanceResult> decode_solve_reply_payload(
    std::string_view payload, std::string* error);

[[nodiscard]] std::string encode_error_payload(ErrorCode code,
                                               std::string_view text);
/// Appending overload (same contract as encode_solve_reply_payload's).
void encode_error_payload(ErrorCode code, std::string_view text,
                          std::string& out);
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string text;
};
[[nodiscard]] std::optional<ErrorReply> decode_error_payload(
    std::string_view payload);

[[nodiscard]] const char* error_code_name(ErrorCode code);

}  // namespace lrb::svc
