// The lrb_serve binary wire protocol (versions lrb::kWireVersion and
// lrb::kWireVersionV2).
//
// Every message is one length-prefixed frame, little-endian throughout:
//
//   offset  size  field
//        0     4  magic "LRBS"
//        4     2  protocol version (1 for the one-shot types below,
//                 2 for the streaming-session types; must match the
//                 message type's level — wire_version_for())
//        6     2  message type (MsgType)
//        8     8  request id (echoed verbatim in the reply)
//       16     4  payload length in bytes
//       20     -  payload
//
// Version-1 request payloads (unchanged since v1, still accepted):
//   Ping   arbitrary bytes (echoed back in Pong)
//   Solve  u8 algo (a solver-registry wire id, docs/solvers.md),
//          u8+u16 reserved, u32 deadline_ms (0 = none, relative
//          to server receipt), i64 k, i64 budget, f64 eps,
//          u32 num_procs, u32 num_jobs, then per job
//          {i64 size, i64 move_cost, u32 initial}
//   Stats  empty
//   Drain  empty
//
// Version-1 reply payloads:
//   Pong     the Ping payload
//   SolveOk  i64 makespan, i64 moves, i64 cost, i64 threshold,
//            u32 num_jobs, u32 assignment[num_jobs]
//   StatsOk  UTF-8 JSON metrics snapshot (obs::Registry::to_json, schema
//            lrb::kStatsSchema)
//   DrainOk  empty (sent once every in-flight request has been answered)
//   Error    u32 code (ErrorCode), u32 text length, UTF-8 text
//
// Version-2 (streaming session) payloads are documented field-by-field in
// docs/streaming.md; the codecs below are their single source of truth:
//   SessionOpen    u64 session_id, trigger config, embedded instance
//   SessionDelta   u64 session_id, u64 first_seq, u32 count, count deltas
//   SessionStats   u64 session_id
//   SessionClose   u64 session_id
//   SessionOpenOk  u64 session_id, i64 makespan, i64 lower_bound,
//                  u64 state_digest
//   SessionDeltaOk / SessionPlan
//                  shared ack header (id, last_seq, applied, rejected,
//                  makespan, lower_bound, digest, first rejection text)
//                  plus the fired plans; the reply type is kSessionPlan
//                  iff at least one plan fired
//   SessionStatsOk / SessionCloseOk   fixed summaries (see the structs)
//
// Determinism: every reply codec is a pure function of its struct, so
// "reply payload byte-identical to the serial reference" is a meaningful
// contract for both one-shot Solves (engine::solve_serial_reference,
// checked by lrb_load --check and tests/test_svc) and streamed sessions
// (stream::replay_serial_reference, checked by lrb_stream --check and
// tests/test_stream_svc).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "solver/spec.h"
#include "stream/session.h"
#include "util/version.h"

namespace lrb::svc {

inline constexpr char kMagic[4] = {'L', 'R', 'B', 'S'};
inline constexpr std::size_t kHeaderSize = 20;
/// Frames advertising a larger payload are rejected with kBadRequest and
/// the connection is closed (a lying header must not make the server
/// buffer unbounded input).
inline constexpr std::uint32_t kMaxPayload = 1u << 26;  // 64 MiB

enum class MsgType : std::uint16_t {
  // Version-1 requests.
  kPing = 1,
  kSolve = 2,
  kStats = 3,
  kDrain = 4,
  // Version-2 (streaming session) requests.
  kSessionOpen = 5,
  kSessionDelta = 6,
  kSessionStats = 7,
  kSessionClose = 8,
  // Version-1 replies.
  kPong = 101,
  kSolveOk = 102,
  kStatsOk = 103,
  kDrainOk = 104,
  // Version-2 replies.
  kSessionOpenOk = 105,
  kSessionDeltaOk = 106,  ///< deltas acked, no trigger fired
  kSessionPlan = 107,     ///< deltas acked AND >= 1 plan fired (move diff)
  kSessionStatsOk = 108,
  kSessionCloseOk = 109,
  // Either version (matches the request it answers).
  kError = 120,
};

/// The protocol level a frame of `type` must carry in its version field:
/// kWireVersionV2 for the streaming-session types, kWireVersion otherwise.
/// (kError answers both levels; it is stamped — and accepted — at either.)
[[nodiscard]] std::uint16_t wire_version_for(MsgType type);

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,       ///< malformed frame or payload; closes the
                         ///< connection for v1 requests (session frames
                         ///< answer the error and keep the stream open)
  kOverloaded = 2,       ///< admission control shed: queue depth at cap
  kDeadlineExceeded = 3, ///< deadline passed before the solve was dispatched
  kDraining = 4,         ///< server is draining; no new work accepted
  kInternal = 5,
  // Version-2 session errors (docs/streaming.md). None of them close the
  // connection: a session error answers one frame, the stream continues.
  kUnknownSession = 6,   ///< no such session id on this server
  kSessionExists = 7,    ///< SessionOpen id already in use (or was closed)
  kBadSequence = 8,      ///< SessionDelta first_seq is neither the next
                         ///< expected seq nor a resend of the last frame
  kSessionClosed = 9,    ///< delta/stats for a session after SessionClose
};

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

enum class DecodeStatus {
  kOk,         ///< *header filled; kHeaderSize bytes consumed by the caller
  kNeedMore,   ///< fewer than kHeaderSize bytes available
  kBadMagic,
  kBadVersion,
  kTooLarge,   ///< payload_len > kMaxPayload
};

/// Parses a frame header from the front of `buf` without consuming it.
[[nodiscard]] DecodeStatus decode_header(std::string_view buf,
                                         FrameHeader* header);

/// Appends a complete frame (header + payload) to `out`.
void encode_frame(std::string& out, MsgType type, std::uint64_t request_id,
                  std::string_view payload);

struct SolveRequest {
  /// Backend + parameters. On the wire: the backend's stable registry wire
  /// id (u8) plus the budget/eps slots of the v1 layout; unknown wire ids
  /// are rejected by solver::is_valid_wire_id at decode time.
  solver::SolverSpec spec;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  std::int64_t k = 0;
  Instance instance;
};

[[nodiscard]] std::string encode_solve_request(const SolveRequest& request);
/// Returns nullopt (and sets *error) on truncated/invalid payloads,
/// including structurally invalid instances (lrb::validate).
[[nodiscard]] std::optional<SolveRequest> decode_solve_request(
    std::string_view payload, std::string* error);

[[nodiscard]] std::string encode_solve_reply_payload(
    const RebalanceResult& result);
/// Appending overload for the serving hot path: encodes into `out`
/// (appended, not cleared), so a reused per-connection/per-worker scratch
/// buffer replaces a fresh std::string per reply frame. The returning
/// overload wraps this one, so the bytes are identical.
void encode_solve_reply_payload(const RebalanceResult& result,
                                std::string& out);
[[nodiscard]] std::optional<RebalanceResult> decode_solve_reply_payload(
    std::string_view payload, std::string* error);

[[nodiscard]] std::string encode_error_payload(ErrorCode code,
                                               std::string_view text);
/// Appending overload (same contract as encode_solve_reply_payload's).
void encode_error_payload(ErrorCode code, std::string_view text,
                          std::string& out);
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string text;
};
[[nodiscard]] std::optional<ErrorReply> decode_error_payload(
    std::string_view payload);

[[nodiscard]] const char* error_code_name(ErrorCode code);

// ---------------------------------------------------------------------------
// Version-2 streaming-session payloads (docs/streaming.md).

/// Hard cap on deltas per SessionDelta frame, far below what the 64 MiB
/// payload cap admits: a lying count must fail fast, and gigantic frames
/// defeat the incremental point of streaming.
inline constexpr std::uint32_t kMaxDeltasPerFrame = 1u << 16;

struct SessionOpenRequest {
  std::uint64_t session_id = 0;
  stream::TriggerConfig trigger;
  Instance instance;
};

[[nodiscard]] std::string encode_session_open_request(
    const SessionOpenRequest& request);
[[nodiscard]] std::optional<SessionOpenRequest> decode_session_open_request(
    std::string_view payload, std::string* error);

struct SessionDeltaRequest {
  std::uint64_t session_id = 0;
  std::uint64_t first_seq = 1;  ///< seq of deltas[0]; consecutive after
  std::vector<stream::Delta> deltas;
};

[[nodiscard]] std::string encode_session_delta_request(
    const SessionDeltaRequest& request);
[[nodiscard]] std::optional<SessionDeltaRequest> decode_session_delta_request(
    std::string_view payload, std::string* error);

/// SessionStats and SessionClose requests: just the session id.
[[nodiscard]] std::string encode_session_id_payload(std::uint64_t session_id);
[[nodiscard]] std::optional<std::uint64_t> decode_session_id_payload(
    std::string_view payload);

struct SessionOpenReply {
  std::uint64_t session_id = 0;
  Size makespan = 0;
  Size lower_bound = 0;
  std::uint64_t state_digest = 0;
};

[[nodiscard]] std::string encode_session_open_reply(
    const SessionOpenReply& reply);
[[nodiscard]] std::optional<SessionOpenReply> decode_session_open_reply(
    std::string_view payload, std::string* error);

/// The ack for one SessionDelta frame. Sent as kSessionDeltaOk when
/// `plans` is empty and kSessionPlan otherwise (session_reply_type).
/// Rejected deltas consume their seq slot without mutating state;
/// `first_error` carries the first rejection text of the frame.
struct SessionDeltaReply {
  std::uint64_t session_id = 0;
  std::uint64_t last_seq = 0;  ///< highest seq consumed so far
  std::uint32_t applied = 0;   ///< deltas of THIS frame that applied
  std::uint32_t rejected = 0;  ///< deltas of THIS frame that were rejected
  Size makespan = 0;
  Size lower_bound = 0;
  std::uint64_t state_digest = 0;
  std::string first_error;
  std::vector<stream::SessionPlan> plans;
};

[[nodiscard]] MsgType session_reply_type(const SessionDeltaReply& reply);
[[nodiscard]] std::string encode_session_delta_reply(
    const SessionDeltaReply& reply);
[[nodiscard]] std::optional<SessionDeltaReply> decode_session_delta_reply(
    std::string_view payload, std::string* error);

struct SessionStatsReply {
  std::uint64_t session_id = 0;
  stream::SessionStats stats;
};

[[nodiscard]] std::string encode_session_stats_reply(
    const SessionStatsReply& reply);
[[nodiscard]] std::optional<SessionStatsReply> decode_session_stats_reply(
    std::string_view payload, std::string* error);

struct SessionCloseReply {
  std::uint64_t session_id = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_rejected = 0;
  std::uint64_t plans_emitted = 0;
};

[[nodiscard]] std::string encode_session_close_reply(
    const SessionCloseReply& reply);
[[nodiscard]] std::optional<SessionCloseReply> decode_session_close_reply(
    std::string_view payload, std::string* error);

}  // namespace lrb::svc
