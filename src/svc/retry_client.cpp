#include "svc/retry_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lrb::svc {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

ResilientClient::ResilientClient(Endpoint endpoint, RetryPolicy policy,
                                 obs::Registry* metrics, fault::SocketIo* io)
    : endpoint_(std::move(endpoint)),
      policy_(policy),
      io_(io),
      jitter_(splitmix64(policy.jitter_seed)),
      m_connects_(metrics->counter("client.connects")),
      m_reconnects_(metrics->counter("client.reconnects")),
      m_retries_(metrics->counter("client.retries")),
      m_timeouts_(metrics->counter("client.timeouts")),
      m_gave_up_(metrics->counter("client.gave_up")) {
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
}

void ResilientClient::disconnect() { client_.close(); }

bool ResilientClient::ensure_connected(std::string* error) {
  if (client_.connected()) return true;
  std::string connect_error;
  auto client =
      endpoint_.unix_path.empty()
          ? Client::connect_tcp(endpoint_.tcp_host, endpoint_.tcp_port,
                                &connect_error, io_,
                                policy_.connect_timeout_ms)
          : Client::connect_unix(endpoint_.unix_path, &connect_error, io_,
                                 policy_.connect_timeout_ms);
  if (!client) return fail(error, connect_error);
  client_ = std::move(*client);
  m_connects_.add(1);
  if (ever_connected_) m_reconnects_.add(1);
  ever_connected_ = true;
  return true;
}

void ResilientClient::backoff(std::size_t attempt) {
  // min(cap, base * 2^(attempt-1)), shift kept in range to avoid UB.
  const auto shift = std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 20);
  const std::uint64_t raw = std::uint64_t{policy_.backoff_base_ms} << shift;
  const auto capped = std::min<std::uint64_t>(raw, policy_.backoff_cap_ms);
  const double jittered =
      static_cast<double>(capped) * jitter_.uniform_real(0.5, 1.0);
  if (jittered >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(jittered));
  }
}

std::optional<ResilientClient::Outcome> ResilientClient::solve(
    const SolveRequest& request, std::uint64_t request_id,
    std::string* error) {
  const std::string frame_payload = encode_solve_request(request);
  std::string last_error = "no attempts made";
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      m_retries_.add(1);
      backoff(attempt - 1);
    }
    if (!ensure_connected(&last_error)) continue;
    if (!client_.send_frame(MsgType::kSolve, request_id, frame_payload,
                            &last_error)) {
      client_.close();
      continue;
    }
    const auto deadline =
        policy_.solve_timeout_ms > 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(policy_.solve_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    FrameHeader header;
    std::string payload;
    bool timed_out = false;
    if (!client_.recv_frame_until(&header, &payload, deadline, &last_error,
                                  &timed_out)) {
      if (timed_out) m_timeouts_.add(1);
      // Whatever broke (timeout, EOF, torn frame), this connection may
      // still carry a stale reply: never reuse it.
      client_.close();
      continue;
    }
    if (header.request_id != request_id) {
      last_error = "reply request id mismatch";
      client_.close();
      continue;
    }
    Outcome outcome;
    outcome.attempts = attempt;
    if (header.type == MsgType::kSolveOk) {
      std::string decode_error;
      auto result = decode_solve_reply_payload(payload, &decode_error);
      if (!result) {
        last_error = "bad solve reply: " + decode_error;
        client_.close();
        continue;
      }
      outcome.result = std::move(*result);
      outcome.raw_payload = std::move(payload);
      return outcome;
    }
    if (header.type == MsgType::kError) {
      auto server_error = decode_error_payload(payload);
      if (!server_error) {
        last_error = "malformed error reply";
        client_.close();
        continue;
      }
      switch (server_error->code) {
        case ErrorCode::kOverloaded:
          last_error = "server overloaded";
          continue;  // connection stays healthy; just back off
        case ErrorCode::kDraining:
          // This server instance is going away; a later attempt must
          // reach its replacement.
          last_error = "server draining";
          client_.close();
          continue;
        case ErrorCode::kBadRequest:
        case ErrorCode::kInternal:
          // The wire has no checksum, so a BadRequest may be line
          // corruption of a perfectly good frame — retry on a fresh
          // connection. A genuinely malformed request recurs every
          // attempt and surfaces as the give-up error.
          last_error = std::string("server error: ") +
                       error_code_name(server_error->code) + ": " +
                       server_error->text;
          client_.close();
          continue;
        default:
          outcome.server_error = std::move(*server_error);
          return outcome;  // definitive (DeadlineExceeded, unknown codes)
      }
    }
    last_error = "unexpected reply type";
    client_.close();
  }
  m_gave_up_.add(1);
  fail(error, "gave up after " + std::to_string(policy_.max_attempts) +
                  " attempts: " + last_error);
  return std::nullopt;
}

bool ResilientClient::ping(std::uint64_t request_id, std::string* error) {
  std::string last_error = "no attempts made";
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      m_retries_.add(1);
      backoff(attempt - 1);
    }
    if (!ensure_connected(&last_error)) continue;
    if (!client_.send_frame(MsgType::kPing, request_id, "", &last_error)) {
      client_.close();
      continue;
    }
    const auto deadline =
        policy_.solve_timeout_ms > 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(policy_.solve_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    FrameHeader header;
    std::string payload;
    bool timed_out = false;
    if (!client_.recv_frame_until(&header, &payload, deadline, &last_error,
                                  &timed_out)) {
      if (timed_out) m_timeouts_.add(1);
      client_.close();
      continue;
    }
    if (header.type == MsgType::kPong && header.request_id == request_id) {
      return true;
    }
    last_error = "unexpected ping reply";
    client_.close();
  }
  m_gave_up_.add(1);
  return fail(error, "gave up after " + std::to_string(policy_.max_attempts) +
                         " attempts: " + last_error);
}

}  // namespace lrb::svc
