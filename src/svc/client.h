// A small blocking client for the lrb_serve wire protocol, used by the
// lrb_load generator and the loopback tests. One Client = one connection;
// not thread-safe (use one per thread).
//
// All socket IO goes through a fault::SocketIo (the real syscalls by
// default), so the chaos harness can perturb the client side of the
// stream too. recv_frame_until adds a poll-based deadline, which is what
// ResilientClient (svc/retry_client.h) builds its solve timeout on.

#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/assignment.h"
#include "svc/fault/io_shim.h"
#include "svc/wire.h"

namespace lrb::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// `connect_timeout_ms` 0 = blocking connect; otherwise the connect is
  /// non-blocking and fails with "connect timeout" once the budget is
  /// spent. `io` is the socket-IO seam (real syscalls by default).
  [[nodiscard]] static std::optional<Client> connect_unix(
      const std::string& path, std::string* error,
      fault::SocketIo* io = &fault::SocketIo::real(),
      std::uint32_t connect_timeout_ms = 0);
  [[nodiscard]] static std::optional<Client> connect_tcp(
      const std::string& host, int port, std::string* error,
      fault::SocketIo* io = &fault::SocketIo::real(),
      std::uint32_t connect_timeout_ms = 0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one complete frame (blocking until written).
  [[nodiscard]] bool send_frame(MsgType type, std::uint64_t request_id,
                                std::string_view payload, std::string* error);

  /// Sends raw bytes as-is — lets tests split frames at arbitrary
  /// boundaries to exercise the server's partial-read handling.
  [[nodiscard]] bool send_bytes(std::string_view bytes, std::string* error);

  /// Blocks until one complete reply frame arrives (or EOF/error).
  [[nodiscard]] bool recv_frame(FrameHeader* header, std::string* payload,
                                std::string* error);

  /// recv_frame with an absolute deadline: fails (setting *timed_out if
  /// non-null) once `deadline` passes without a complete frame.
  [[nodiscard]] bool recv_frame_until(
      FrameHeader* header, std::string* payload,
      std::chrono::steady_clock::time_point deadline, std::string* error,
      bool* timed_out = nullptr);

  /// send_frame + recv_frame; fails if the reply's request id differs.
  [[nodiscard]] bool call(MsgType type, std::uint64_t request_id,
                          std::string_view payload, FrameHeader* reply_header,
                          std::string* reply_payload, std::string* error);

  /// Outcome of one Solve round-trip: either a result or a server error.
  struct SolveOutcome {
    std::optional<RebalanceResult> result;  ///< set iff SolveOk
    std::string raw_payload;  ///< SolveOk payload bytes (for --check)
    std::optional<ErrorReply> server_error;
  };
  [[nodiscard]] std::optional<SolveOutcome> solve(
      const SolveRequest& request, std::uint64_t request_id,
      std::string* error);

  void close();

 private:
  int fd_ = -1;
  fault::SocketIo* io_ = &fault::SocketIo::real();
  std::string recv_buf_;
};

}  // namespace lrb::svc
