#include "svc/wire.h"

#include <bit>
#include <cstring>

#include "solver/registry.h"

namespace lrb::svc {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(take(8)); }
  double f64() { return std::bit_cast<double>(take(8)); }

 private:
  std::uint64_t take(std::size_t bytes) {
    if (!ok_ || data_.size() - pos_ < bytes) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::uint16_t wire_version_for(MsgType type) {
  switch (type) {
    case MsgType::kSessionOpen:
    case MsgType::kSessionDelta:
    case MsgType::kSessionStats:
    case MsgType::kSessionClose:
    case MsgType::kSessionOpenOk:
    case MsgType::kSessionDeltaOk:
    case MsgType::kSessionPlan:
    case MsgType::kSessionStatsOk:
    case MsgType::kSessionCloseOk:
      return kWireVersionV2;
    default:
      return kWireVersion;
  }
}

DecodeStatus decode_header(std::string_view buf, FrameHeader* header) {
  if (buf.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0) {
    return DecodeStatus::kBadMagic;
  }
  Reader r(buf.substr(sizeof kMagic, kHeaderSize - sizeof kMagic));
  header->version = r.u16();
  header->type = static_cast<MsgType>(r.u16());
  header->request_id = r.u64();
  header->payload_len = r.u32();
  if (header->version != kWireVersion && header->version != kWireVersionV2) {
    return DecodeStatus::kBadVersion;
  }
  // A frame's version must match its type's protocol level: a v1 stamp on
  // a session frame (or v2 on a one-shot) is a framing bug, not a payload
  // problem, and is rejected before any payload is read. kError answers
  // requests of both levels and is exempt.
  if (header->type != MsgType::kError &&
      header->version != wire_version_for(header->type)) {
    return DecodeStatus::kBadVersion;
  }
  if (header->payload_len > kMaxPayload) return DecodeStatus::kTooLarge;
  return DecodeStatus::kOk;
}

void encode_frame(std::string& out, MsgType type, std::uint64_t request_id,
                  std::string_view payload) {
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u16(out, wire_version_for(type));
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

std::string encode_solve_request(const SolveRequest& request) {
  std::string out;
  const std::size_t n = request.instance.num_jobs();
  out.reserve(40 + n * 20);
  out.push_back(
      static_cast<char>(solver::descriptor(request.spec.backend).wire_id));
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, request.deadline_ms);
  put_i64(out, request.k);
  put_i64(out, request.spec.params.budget);
  put_f64(out, request.spec.params.eps);
  put_u32(out, request.instance.num_procs);
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    put_i64(out, request.instance.sizes[j]);
    put_i64(out, request.instance.move_costs[j]);
    put_u32(out, request.instance.initial[j]);
  }
  return out;
}

std::optional<SolveRequest> decode_solve_request(std::string_view payload,
                                                 std::string* error) {
  auto fail = [&](const char* what) -> std::optional<SolveRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  SolveRequest request;
  const std::uint8_t algo = r.u8();
  r.u8();
  r.u16();
  request.deadline_ms = r.u32();
  request.k = r.i64();
  request.spec.params.budget = r.i64();
  request.spec.params.eps = r.f64();
  request.instance.num_procs = r.u32();
  const std::uint32_t num_jobs = r.u32();
  if (!r.ok()) return fail("truncated solve header");
  const solver::BackendDescriptor* backend = solver::backend_by_wire_id(algo);
  if (backend == nullptr) return fail("unknown algo id");
  request.spec.backend = backend->id;
  // The remaining payload must hold exactly num_jobs records; checking up
  // front turns a lying count into one error instead of 3n reader checks.
  if (payload.size() != 40 + std::size_t{num_jobs} * 20) {
    return fail("job count does not match payload length");
  }
  request.instance.sizes.resize(num_jobs);
  request.instance.move_costs.resize(num_jobs);
  request.instance.initial.resize(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    request.instance.sizes[j] = r.i64();
    request.instance.move_costs[j] = r.i64();
    request.instance.initial[j] = r.u32();
  }
  if (!r.done()) return fail("truncated job records");
  if (request.k < 0) return fail("negative move budget");
  if (const auto problem = validate(request.instance)) {
    return fail(problem->c_str());
  }
  return request;
}

void encode_solve_reply_payload(const RebalanceResult& result,
                                std::string& out) {
  out.reserve(out.size() + 36 + result.assignment.size() * 4);
  put_i64(out, result.makespan);
  put_i64(out, result.moves);
  put_i64(out, result.cost);
  put_i64(out, result.threshold);
  put_u32(out, static_cast<std::uint32_t>(result.assignment.size()));
  for (const ProcId p : result.assignment) put_u32(out, p);
}

std::string encode_solve_reply_payload(const RebalanceResult& result) {
  std::string out;
  encode_solve_reply_payload(result, out);
  return out;
}

std::optional<RebalanceResult> decode_solve_reply_payload(
    std::string_view payload, std::string* error) {
  auto fail = [&](const char* what) -> std::optional<RebalanceResult> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  RebalanceResult result;
  result.makespan = r.i64();
  result.moves = r.i64();
  result.cost = r.i64();
  result.threshold = r.i64();
  const std::uint32_t num_jobs = r.u32();
  if (!r.ok()) return fail("truncated solve reply header");
  if (payload.size() != 36 + std::size_t{num_jobs} * 4) {
    return fail("assignment length does not match payload length");
  }
  result.assignment.resize(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) result.assignment[j] = r.u32();
  if (!r.done()) return fail("truncated assignment");
  return result;
}

void encode_error_payload(ErrorCode code, std::string_view text,
                          std::string& out) {
  out.reserve(out.size() + 8 + text.size());
  put_u32(out, static_cast<std::uint32_t>(code));
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.append(text);
}

std::string encode_error_payload(ErrorCode code, std::string_view text) {
  std::string out;
  encode_error_payload(code, text, out);
  return out;
}

std::optional<ErrorReply> decode_error_payload(std::string_view payload) {
  Reader r(payload);
  ErrorReply reply;
  reply.code = static_cast<ErrorCode>(r.u32());
  const std::uint32_t len = r.u32();
  if (!r.ok() || payload.size() != 8 + std::size_t{len}) return std::nullopt;
  reply.text.assign(payload.substr(8));
  return reply;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kDraining:
      return "draining";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnknownSession:
      return "unknown-session";
    case ErrorCode::kSessionExists:
      return "session-exists";
    case ErrorCode::kBadSequence:
      return "bad-sequence";
    case ErrorCode::kSessionClosed:
      return "session-closed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Version-2 streaming-session codecs. Layouts in docs/streaming.md; every
// encoder is a pure function of its struct so replies are byte-comparable
// across the concurrent server and the serial replay reference.

std::string encode_session_open_request(const SessionOpenRequest& request) {
  std::string out;
  const std::size_t n = request.instance.num_jobs();
  out.reserve(64 + n * 20);
  put_u64(out, request.session_id);
  const stream::TriggerConfig& trigger = request.trigger;
  out.push_back(
      static_cast<char>(solver::descriptor(trigger.spec.backend).wire_id));
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, trigger.move_budget);
  put_f64(out, trigger.move_frac);
  put_f64(out, trigger.imbalance_ratio);
  put_u32(out, trigger.delta_count);
  put_u32(out, 0);
  put_i64(out, trigger.spec.params.budget);
  put_f64(out, trigger.spec.params.eps);
  put_u32(out, request.instance.num_procs);
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    put_i64(out, request.instance.sizes[j]);
    put_i64(out, request.instance.move_costs[j]);
    put_u32(out, request.instance.initial[j]);
  }
  return out;
}

std::optional<SessionOpenRequest> decode_session_open_request(
    std::string_view payload, std::string* error) {
  auto fail = [&](const char* what) -> std::optional<SessionOpenRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  SessionOpenRequest request;
  request.session_id = r.u64();
  const std::uint8_t algo = r.u8();
  r.u8();
  r.u16();
  request.trigger.move_budget = r.u32();
  request.trigger.move_frac = r.f64();
  request.trigger.imbalance_ratio = r.f64();
  request.trigger.delta_count = r.u32();
  r.u32();
  request.trigger.spec.params.budget = r.i64();
  request.trigger.spec.params.eps = r.f64();
  request.instance.num_procs = r.u32();
  const std::uint32_t num_jobs = r.u32();
  if (!r.ok()) return fail("truncated session open header");
  const solver::BackendDescriptor* backend = solver::backend_by_wire_id(algo);
  if (backend == nullptr) return fail("unknown algo id");
  request.trigger.spec.backend = backend->id;
  if (payload.size() != 64 + std::size_t{num_jobs} * 20) {
    return fail("job count does not match payload length");
  }
  request.instance.sizes.resize(num_jobs);
  request.instance.move_costs.resize(num_jobs);
  request.instance.initial.resize(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    request.instance.sizes[j] = r.i64();
    request.instance.move_costs[j] = r.i64();
    request.instance.initial[j] = r.u32();
  }
  if (!r.done()) return fail("truncated job records");
  if (const auto problem = stream::validate_trigger(request.trigger)) {
    if (error != nullptr) *error = *problem;
    return std::nullopt;
  }
  if (const auto problem = validate(request.instance)) {
    return fail(problem->c_str());
  }
  return request;
}

std::string encode_session_delta_request(const SessionDeltaRequest& request) {
  std::string out;
  out.reserve(20 + request.deltas.size() * 40);
  put_u64(out, request.session_id);
  put_u64(out, request.first_seq);
  put_u32(out, static_cast<std::uint32_t>(request.deltas.size()));
  for (const stream::Delta& delta : request.deltas) {
    out.push_back(static_cast<char>(delta.kind));
    out.push_back(0);
    put_u16(out, 0);
    put_u32(out, 0);
    put_u64(out, delta.id);
    put_i64(out, delta.size);
    put_i64(out, delta.move_cost);
    put_u64(out, delta.proc);
  }
  return out;
}

std::optional<SessionDeltaRequest> decode_session_delta_request(
    std::string_view payload, std::string* error) {
  auto fail = [&](const char* what) -> std::optional<SessionDeltaRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  SessionDeltaRequest request;
  request.session_id = r.u64();
  request.first_seq = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return fail("truncated session delta header");
  if (request.first_seq == 0) return fail("delta seq numbers start at 1");
  if (count > kMaxDeltasPerFrame) {
    return fail("too many deltas in one frame");
  }
  if (payload.size() != 20 + std::size_t{count} * 40) {
    return fail("delta count does not match payload length");
  }
  request.deltas.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    stream::Delta& delta = request.deltas[i];
    const std::uint8_t kind = r.u8();
    r.u8();
    r.u16();
    r.u32();
    delta.id = r.u64();
    delta.size = r.i64();
    delta.move_cost = r.i64();
    delta.proc = r.u64();
    if (kind < static_cast<std::uint8_t>(stream::DeltaKind::kJobArrive) ||
        kind > static_cast<std::uint8_t>(stream::DeltaKind::kReplan)) {
      return fail("unknown delta kind");
    }
    delta.kind = static_cast<stream::DeltaKind>(kind);
  }
  if (!r.done()) return fail("truncated delta records");
  return request;
}

std::string encode_session_id_payload(std::uint64_t session_id) {
  std::string out;
  put_u64(out, session_id);
  return out;
}

std::optional<std::uint64_t> decode_session_id_payload(
    std::string_view payload) {
  if (payload.size() != 8) return std::nullopt;
  Reader r(payload);
  return r.u64();
}

std::string encode_session_open_reply(const SessionOpenReply& reply) {
  std::string out;
  out.reserve(32);
  put_u64(out, reply.session_id);
  put_i64(out, reply.makespan);
  put_i64(out, reply.lower_bound);
  put_u64(out, reply.state_digest);
  return out;
}

std::optional<SessionOpenReply> decode_session_open_reply(
    std::string_view payload, std::string* error) {
  if (payload.size() != 32) {
    if (error != nullptr) *error = "bad session open reply length";
    return std::nullopt;
  }
  Reader r(payload);
  SessionOpenReply reply;
  reply.session_id = r.u64();
  reply.makespan = r.i64();
  reply.lower_bound = r.i64();
  reply.state_digest = r.u64();
  return reply;
}

MsgType session_reply_type(const SessionDeltaReply& reply) {
  return reply.plans.empty() ? MsgType::kSessionDeltaOk
                             : MsgType::kSessionPlan;
}

std::string encode_session_delta_reply(const SessionDeltaReply& reply) {
  std::string out;
  out.reserve(56 + reply.first_error.size() + reply.plans.size() * 64);
  put_u64(out, reply.session_id);
  put_u64(out, reply.last_seq);
  put_u32(out, reply.applied);
  put_u32(out, reply.rejected);
  put_i64(out, reply.makespan);
  put_i64(out, reply.lower_bound);
  put_u64(out, reply.state_digest);
  put_u32(out, static_cast<std::uint32_t>(reply.first_error.size()));
  out.append(reply.first_error);
  put_u32(out, static_cast<std::uint32_t>(reply.plans.size()));
  for (const stream::SessionPlan& plan : reply.plans) {
    put_u64(out, plan.plan_seq);
    put_u64(out, plan.triggered_by_seq);
    out.push_back(static_cast<char>(plan.reason));
    out.push_back(0);
    put_u16(out, 0);
    put_u32(out, static_cast<std::uint32_t>(plan.moves.size()));
    put_i64(out, plan.makespan_before);
    put_i64(out, plan.makespan_after);
    for (const stream::PlanMove& move : plan.moves) {
      put_u64(out, move.job);
      put_u64(out, move.from);
      put_u64(out, move.to);
    }
  }
  return out;
}

std::optional<SessionDeltaReply> decode_session_delta_reply(
    std::string_view payload, std::string* error) {
  auto fail = [&](const char* what) -> std::optional<SessionDeltaReply> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  SessionDeltaReply reply;
  reply.session_id = r.u64();
  reply.last_seq = r.u64();
  reply.applied = r.u32();
  reply.rejected = r.u32();
  reply.makespan = r.i64();
  reply.lower_bound = r.i64();
  reply.state_digest = r.u64();
  const std::uint32_t error_len = r.u32();
  if (!r.ok()) return fail("truncated session delta reply header");
  if (payload.size() < 52 + std::size_t{error_len} + 4) {
    return fail("truncated rejection text");
  }
  reply.first_error.assign(payload.substr(52, error_len));
  Reader rest(payload.substr(52 + error_len));
  const std::uint32_t plan_count = rest.u32();
  if (!rest.ok()) return fail("truncated plan count");
  reply.plans.resize(plan_count);
  for (std::uint32_t p = 0; p < plan_count; ++p) {
    stream::SessionPlan& plan = reply.plans[p];
    plan.plan_seq = rest.u64();
    plan.triggered_by_seq = rest.u64();
    const std::uint8_t reason = rest.u8();
    rest.u8();
    rest.u16();
    const std::uint32_t move_count = rest.u32();
    plan.makespan_before = rest.i64();
    plan.makespan_after = rest.i64();
    if (!rest.ok()) return fail("truncated plan header");
    if (reason < static_cast<std::uint8_t>(stream::PlanReason::kImbalance) ||
        reason > static_cast<std::uint8_t>(stream::PlanReason::kDrain)) {
      return fail("unknown plan reason");
    }
    plan.reason = static_cast<stream::PlanReason>(reason);
    plan.moves.resize(move_count);
    for (std::uint32_t m = 0; m < move_count; ++m) {
      plan.moves[m].job = rest.u64();
      plan.moves[m].from = rest.u64();
      plan.moves[m].to = rest.u64();
    }
    if (!rest.ok()) return fail("truncated plan moves");
  }
  if (!rest.done()) return fail("trailing bytes after plans");
  return reply;
}

std::string encode_session_stats_reply(const SessionStatsReply& reply) {
  std::string out;
  out.reserve(88);
  put_u64(out, reply.session_id);
  put_u64(out, reply.stats.num_procs);
  put_u64(out, reply.stats.num_jobs);
  put_u64(out, reply.stats.deltas_applied);
  put_u64(out, reply.stats.deltas_rejected);
  put_u64(out, reply.stats.plans_emitted);
  put_u64(out, reply.stats.moves_total);
  put_u64(out, reply.stats.last_seq);
  put_i64(out, reply.stats.makespan);
  put_i64(out, reply.stats.lower_bound);
  put_u64(out, reply.stats.digest);
  return out;
}

std::optional<SessionStatsReply> decode_session_stats_reply(
    std::string_view payload, std::string* error) {
  if (payload.size() != 88) {
    if (error != nullptr) *error = "bad session stats reply length";
    return std::nullopt;
  }
  Reader r(payload);
  SessionStatsReply reply;
  reply.session_id = r.u64();
  reply.stats.num_procs = r.u64();
  reply.stats.num_jobs = r.u64();
  reply.stats.deltas_applied = r.u64();
  reply.stats.deltas_rejected = r.u64();
  reply.stats.plans_emitted = r.u64();
  reply.stats.moves_total = r.u64();
  reply.stats.last_seq = r.u64();
  reply.stats.makespan = r.i64();
  reply.stats.lower_bound = r.i64();
  reply.stats.digest = r.u64();
  return reply;
}

std::string encode_session_close_reply(const SessionCloseReply& reply) {
  std::string out;
  out.reserve(32);
  put_u64(out, reply.session_id);
  put_u64(out, reply.deltas_applied);
  put_u64(out, reply.deltas_rejected);
  put_u64(out, reply.plans_emitted);
  return out;
}

std::optional<SessionCloseReply> decode_session_close_reply(
    std::string_view payload, std::string* error) {
  if (payload.size() != 32) {
    if (error != nullptr) *error = "bad session close reply length";
    return std::nullopt;
  }
  Reader r(payload);
  SessionCloseReply reply;
  reply.session_id = r.u64();
  reply.deltas_applied = r.u64();
  reply.deltas_rejected = r.u64();
  reply.plans_emitted = r.u64();
  return reply;
}

}  // namespace lrb::svc
