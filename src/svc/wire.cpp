#include "svc/wire.h"

#include <bit>
#include <cstring>

namespace lrb::svc {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(take(8)); }
  double f64() { return std::bit_cast<double>(take(8)); }

 private:
  std::uint64_t take(std::size_t bytes) {
    if (!ok_ || data_.size() - pos_ < bytes) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

DecodeStatus decode_header(std::string_view buf, FrameHeader* header) {
  if (buf.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0) {
    return DecodeStatus::kBadMagic;
  }
  Reader r(buf.substr(sizeof kMagic, kHeaderSize - sizeof kMagic));
  header->version = r.u16();
  header->type = static_cast<MsgType>(r.u16());
  header->request_id = r.u64();
  header->payload_len = r.u32();
  if (header->version != kWireVersion) return DecodeStatus::kBadVersion;
  if (header->payload_len > kMaxPayload) return DecodeStatus::kTooLarge;
  return DecodeStatus::kOk;
}

void encode_frame(std::string& out, MsgType type, std::uint64_t request_id,
                  std::string_view payload) {
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

std::string encode_solve_request(const SolveRequest& request) {
  std::string out;
  const std::size_t n = request.instance.num_jobs();
  out.reserve(40 + n * 20);
  out.push_back(static_cast<char>(request.algo));
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, request.deadline_ms);
  put_i64(out, request.k);
  put_i64(out, request.ptas_budget);
  put_f64(out, request.ptas_eps);
  put_u32(out, request.instance.num_procs);
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    put_i64(out, request.instance.sizes[j]);
    put_i64(out, request.instance.move_costs[j]);
    put_u32(out, request.instance.initial[j]);
  }
  return out;
}

std::optional<SolveRequest> decode_solve_request(std::string_view payload,
                                                 std::string* error) {
  auto fail = [&](const char* what) -> std::optional<SolveRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  SolveRequest request;
  const std::uint8_t algo = r.u8();
  r.u8();
  r.u16();
  request.deadline_ms = r.u32();
  request.k = r.i64();
  request.ptas_budget = r.i64();
  request.ptas_eps = r.f64();
  request.instance.num_procs = r.u32();
  const std::uint32_t num_jobs = r.u32();
  if (!r.ok()) return fail("truncated solve header");
  if (algo > static_cast<std::uint8_t>(engine::Algo::kPtas)) {
    return fail("unknown algo id");
  }
  request.algo = static_cast<engine::Algo>(algo);
  // The remaining payload must hold exactly num_jobs records; checking up
  // front turns a lying count into one error instead of 3n reader checks.
  if (payload.size() != 40 + std::size_t{num_jobs} * 20) {
    return fail("job count does not match payload length");
  }
  request.instance.sizes.resize(num_jobs);
  request.instance.move_costs.resize(num_jobs);
  request.instance.initial.resize(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    request.instance.sizes[j] = r.i64();
    request.instance.move_costs[j] = r.i64();
    request.instance.initial[j] = r.u32();
  }
  if (!r.done()) return fail("truncated job records");
  if (request.k < 0) return fail("negative move budget");
  if (const auto problem = validate(request.instance)) {
    return fail(problem->c_str());
  }
  return request;
}

void encode_solve_reply_payload(const RebalanceResult& result,
                                std::string& out) {
  out.reserve(out.size() + 36 + result.assignment.size() * 4);
  put_i64(out, result.makespan);
  put_i64(out, result.moves);
  put_i64(out, result.cost);
  put_i64(out, result.threshold);
  put_u32(out, static_cast<std::uint32_t>(result.assignment.size()));
  for (const ProcId p : result.assignment) put_u32(out, p);
}

std::string encode_solve_reply_payload(const RebalanceResult& result) {
  std::string out;
  encode_solve_reply_payload(result, out);
  return out;
}

std::optional<RebalanceResult> decode_solve_reply_payload(
    std::string_view payload, std::string* error) {
  auto fail = [&](const char* what) -> std::optional<RebalanceResult> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Reader r(payload);
  RebalanceResult result;
  result.makespan = r.i64();
  result.moves = r.i64();
  result.cost = r.i64();
  result.threshold = r.i64();
  const std::uint32_t num_jobs = r.u32();
  if (!r.ok()) return fail("truncated solve reply header");
  if (payload.size() != 36 + std::size_t{num_jobs} * 4) {
    return fail("assignment length does not match payload length");
  }
  result.assignment.resize(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) result.assignment[j] = r.u32();
  if (!r.done()) return fail("truncated assignment");
  return result;
}

void encode_error_payload(ErrorCode code, std::string_view text,
                          std::string& out) {
  out.reserve(out.size() + 8 + text.size());
  put_u32(out, static_cast<std::uint32_t>(code));
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.append(text);
}

std::string encode_error_payload(ErrorCode code, std::string_view text) {
  std::string out;
  encode_error_payload(code, text, out);
  return out;
}

std::optional<ErrorReply> decode_error_payload(std::string_view payload) {
  Reader r(payload);
  ErrorReply reply;
  reply.code = static_cast<ErrorCode>(r.u32());
  const std::uint32_t len = r.u32();
  if (!r.ok() || payload.size() != 8 + std::size_t{len}) return std::nullopt;
  reply.text.assign(payload.substr(8));
  return reply;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kDraining:
      return "draining";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

}  // namespace lrb::svc
