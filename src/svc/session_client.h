// SessionClient: a retrying client for the wire-v2 streaming-session
// protocol, plus run_session_stream — the shared checked driver that
// lrb_stream, lrb_load --trace, the stream service tests and the chaos
// campaigns all use to stream a delta log at a server and (optionally)
// byte-compare every ack against stream::replay_serial_reference.
//
// Retry semantics lean on the server's exactly-once dedup (see
// docs/streaming.md): a transport failure (send/recv error, EOF, timeout,
// torn frame) reconnects, backs off, and resends the IDENTICAL frame —
// the server answers a duplicate of the last applied frame with the
// stored reply bytes instead of re-applying it, so retries can never
// double-apply a delta. Overloaded/Draining back off and retry like the
// one-shot ResilientClient; every other server error is a definitive
// outcome for that call.
//
// Thread-safety: like Client, one SessionClient per thread.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/fault/io_shim.h"
#include "svc/retry_client.h"
#include "svc/wire.h"
#include "stream/delta_log.h"
#include "stream/replay.h"
#include "stream/session.h"
#include "util/rng.h"

namespace lrb::svc {

class SessionClient {
 public:
  SessionClient(Endpoint endpoint, RetryPolicy policy = {},
                obs::Registry* metrics = &obs::Registry::global(),
                fault::SocketIo* io = &fault::SocketIo::real());

  /// Outcome of one session round-trip that got a reply (of any kind).
  struct Ack {
    MsgType type = MsgType::kError;
    std::string raw_payload;  ///< reply payload bytes (what --check compares)
    std::optional<ErrorReply> server_error;  ///< set iff type == kError
    std::size_t attempts = 1;
  };

  /// Opens the session; remembers the id for the later calls. The ack is
  /// kSessionOpenOk or a definitive server error.
  [[nodiscard]] std::optional<Ack> open(const SessionOpenRequest& request,
                                        std::string* error);

  /// Streams one SessionDelta frame (first_seq/session_id must be filled
  /// by the caller). Ack is kSessionDeltaOk, kSessionPlan, or an error.
  [[nodiscard]] std::optional<Ack> send_deltas(
      const SessionDeltaRequest& request, std::string* error);

  [[nodiscard]] std::optional<Ack> stats(std::string* error);
  [[nodiscard]] std::optional<Ack> close_session(std::string* error);

  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }
  void disconnect() { client_.close(); }

 private:
  [[nodiscard]] std::optional<Ack> call_with_retry(MsgType type,
                                                   const std::string& payload,
                                                   std::string* error);
  [[nodiscard]] bool ensure_connected(std::string* error);
  void backoff(std::size_t attempt);

  Endpoint endpoint_;
  RetryPolicy policy_;
  fault::SocketIo* io_;
  Client client_;
  bool ever_connected_ = false;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_request_id_ = 1;
  Rng jitter_;

  obs::Counter& m_connects_;
  obs::Counter& m_reconnects_;
  obs::Counter& m_retries_;
  obs::Counter& m_timeouts_;
  obs::Counter& m_gave_up_;
};

// ---------------------------------------------------------------------------
// The shared checked stream driver.

struct StreamRunOptions {
  Endpoint endpoint;
  RetryPolicy retry;
  std::uint64_t session_id = 1;
  /// Deltas per SessionDelta frame (>= 1).
  std::size_t frame_size = 16;
  /// Drop the connection after every N delta frames (0 = never): the next
  /// frame reconnects and usually lands on a DIFFERENT reactor (round-robin
  /// dealing), driving the server's cross-reactor forwarding path. Replies
  /// must stay byte-identical — pinning that is the point.
  std::size_t reconnect_every = 0;
  /// Byte-compare every ack (open, each delta frame, stats, close) against
  /// the locally mirrored stream::replay_serial_reference transcript.
  bool check = true;
  /// Mirror with engine::cached_serial_reference instead of
  /// solve_serial_reference — must match the server's cache_bytes setting
  /// (docs/caching.md), exactly like lrb_load --check.
  bool cached = false;
  obs::Registry* metrics = &obs::Registry::global();
  fault::SocketIo* io = &fault::SocketIo::real();
};

struct StreamRunResult {
  bool ok = false;
  std::string error;  ///< first failure (transport give-up or mismatch)
  std::size_t frames_sent = 0;
  std::size_t mismatches = 0;  ///< acks differing from the reference bytes
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_rejected = 0;
  std::uint64_t plans_emitted = 0;
  std::uint64_t moves_total = 0;
  Size final_makespan = 0;
  std::uint64_t final_digest = 0;
};

/// Opens a session for `log.initial` + `log.trigger`, streams `log.deltas`
/// in frames of `frame_size`, fetches stats, and closes. With `check` on,
/// every reply payload must be byte-identical to the reply a serial replay
/// of the same deltas would produce (the determinism acceptance gate);
/// the final server-side stats must also match the mirror exactly — the
/// zero-lost / zero-duplicated delta ledger under retries and faults.
[[nodiscard]] StreamRunResult run_session_stream(
    const stream::DeltaLog& log, const StreamRunOptions& options);

}  // namespace lrb::svc
