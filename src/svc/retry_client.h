// ResilientClient: a retrying wrapper around svc::Client for the
// idempotent requests (Solve, Ping).
//
// Failure handling:
//   * transport errors (send/recv failure, EOF, torn or corrupt reply
//     frame, receive timeout) tear the connection down and retry on a
//     fresh one — the dead connection is never reused, so a stale reply
//     can never be matched to a later request;
//   * Overloaded / Draining server errors back off and retry (Draining
//     implies reconnecting, since that server instance will not accept
//     new work again);
//   * BadRequest / Internal also retry on a fresh connection: the wire
//     has no checksum, so a BadRequest may be line corruption of a good
//     frame. A genuinely malformed request fails every attempt and comes
//     back as the give-up error;
//   * DeadlineExceeded is a definitive outcome — the request's own
//     deadline passed — and is returned without retrying.
//
// Backoff is bounded exponential with seeded jitter (deterministic for a
// given RetryPolicy::jitter_seed), so chaos campaigns replay identically.
// Every decision is visible in obs counters: client.connects,
// client.reconnects, client.retries, client.timeouts, client.gave_up.
//
// Thread-safety: like Client, one ResilientClient per thread.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/fault/io_shim.h"
#include "util/rng.h"

namespace lrb::svc {

/// Where to (re)connect: exactly one of unix_path / tcp_port >= 0.
struct Endpoint {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;

  [[nodiscard]] static Endpoint unix_socket(std::string path) {
    Endpoint endpoint;
    endpoint.unix_path = std::move(path);
    return endpoint;
  }
  [[nodiscard]] static Endpoint tcp(std::string host, int port) {
    Endpoint endpoint;
    endpoint.tcp_host = std::move(host);
    endpoint.tcp_port = port;
    return endpoint;
  }
};

struct RetryPolicy {
  /// Attempts per request (first try included). 0 is treated as 1.
  std::size_t max_attempts = 8;
  std::uint32_t connect_timeout_ms = 2000;
  /// Per-attempt budget for the reply to arrive; 0 = wait forever.
  std::uint32_t solve_timeout_ms = 10000;
  /// Backoff before retry a (1-based) is
  /// min(cap, base << (a-1)) * uniform[0.5, 1.0) from the jitter stream.
  std::uint32_t backoff_base_ms = 2;
  std::uint32_t backoff_cap_ms = 250;
  std::uint64_t jitter_seed = 1;
};

class ResilientClient {
 public:
  ResilientClient(Endpoint endpoint, RetryPolicy policy = {},
                  obs::Registry* metrics = &obs::Registry::global(),
                  fault::SocketIo* io = &fault::SocketIo::real());

  struct Outcome {
    std::optional<RebalanceResult> result;  ///< set iff SolveOk
    std::string raw_payload;                ///< SolveOk payload bytes
    std::optional<ErrorReply> server_error; ///< definitive server error
    std::size_t attempts = 1;               ///< round-trips consumed
  };

  /// Solves with retries. nullopt (and *error) only when every attempt
  /// failed; otherwise an Outcome carrying the result or the definitive
  /// server error.
  [[nodiscard]] std::optional<Outcome> solve(const SolveRequest& request,
                                             std::uint64_t request_id,
                                             std::string* error);

  /// Ping with retries; true once a Pong with the right id comes back.
  [[nodiscard]] bool ping(std::uint64_t request_id, std::string* error);

  /// Drops the current connection (the next request reconnects).
  void disconnect();

  [[nodiscard]] const RetryPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  [[nodiscard]] bool ensure_connected(std::string* error);
  void backoff(std::size_t attempt);

  Endpoint endpoint_;
  RetryPolicy policy_;
  fault::SocketIo* io_;
  Client client_;
  bool ever_connected_ = false;
  Rng jitter_;

  obs::Counter& m_connects_;
  obs::Counter& m_reconnects_;
  obs::Counter& m_retries_;
  obs::Counter& m_timeouts_;
  obs::Counter& m_gave_up_;
};

}  // namespace lrb::svc
