// SolverSpec: the typed solver selection every layer passes around instead
// of the old loose (Algo, ptas_budget, ptas_eps) triple. A spec is a stable
// backend id plus a small, bounded parameter bag; which knobs a backend
// actually consumes is declared by its registry descriptor (registry.h),
// and cache-key encoding folds ignored knobs to their defaults so
// equivalent requests share one cache entry.

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.h"

namespace lrb::solver {

/// Registered solver backends. The enumerator value IS the stable wire id
/// (docs/solvers.md): the first four match the byte values the retired
/// engine::Algo enum put on the wire, so legacy frames decode unchanged.
/// New backends append new values; ids are never reused or renumbered.
enum class BackendId : std::uint8_t {
  kGreedy = 0,       ///< paper §2 GREEDY (2 - 1/m under k moves)
  kMPartition = 1,   ///< paper §3.1 M-PARTITION (1.5-approx under k moves)
  kBestOf = 2,       ///< best of GREEDY and M-PARTITION (PARTITION wins ties)
  kPtas = 3,         ///< paper §4 costed PTAS (budget + eps)
  kLpt = 4,          ///< LPT from scratch (4/3 - 1/(3m); ignores k)
  kLocalSearch = 5,  ///< M-PARTITION + peak-lowering local search under k
};

inline constexpr std::size_t kNumBackends = 6;

/// The bounded parameter bag. Every backend sees the same bag; descriptors
/// declare which knobs are consumed (capability flags `budgeted` /
/// `uses_eps`), and normalized_params() folds the rest to these defaults.
struct SolverParams {
  Cost budget = kInfCost;  ///< relocation-cost budget B; kInfCost = unbounded
  double eps = 1.0;        ///< approximation target (1 + eps)

  friend bool operator==(const SolverParams&, const SolverParams&) = default;
};

/// A complete solver selection: which backend, with which parameters.
/// Implicitly constructible from a bare BackendId (default parameters) so
/// call sites that only pick an algorithm stay terse.
struct SolverSpec {
  SolverSpec() = default;
  /*implicit*/ SolverSpec(BackendId b, SolverParams p = {})
      : backend(b), params(p) {}

  BackendId backend = BackendId::kBestOf;
  SolverParams params;

  friend bool operator==(const SolverSpec&, const SolverSpec&) = default;
};

}  // namespace lrb::solver
