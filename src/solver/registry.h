// The solver backend registry: one descriptor per registered backend
// (canonical name + aliases, stable wire id, parameter validation,
// cache-key parameter encoding, serial-reference entry point, capability
// flags) and the ONE dispatch switch in the codebase (registry.cpp's
// solve()). Every layer — engine, cache, wire codecs, streaming triggers,
// chaos, tools — resolves backends and dispatches solves through this seam
// instead of switching on an enum locally. docs/solvers.md describes the
// design, the wire-id stability policy, and how to add a backend.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "solver/spec.h"

namespace lrb {
class ThreadPool;
struct MPartitionScratch;
struct PtasScratch;
}  // namespace lrb

namespace lrb::solver {

/// Everything a layer needs to know about a backend without naming it in a
/// switch. One static table entry per BackendId (registry.cpp); lookups by
/// id, name/alias, or wire id all land on the same descriptor.
struct BackendDescriptor {
  BackendId id = BackendId::kBestOf;
  /// Stable on-wire / cache-key discriminant. Equal to the enumerator value
  /// today, but consumers must go through this field: the policy is that
  /// wire ids are append-only and never reused (docs/solvers.md).
  std::uint8_t wire_id = 0;
  /// Canonical name: what tools print and delta logs record.
  const char* name = "";
  /// Accepted spellings beyond the canonical name (parse-only).
  std::span<const std::string_view> aliases;

  // ---- capability flags ----
  bool costed = false;     ///< consumes per-job relocation costs
  bool budgeted = false;   ///< honors SolverParams::budget
  bool uses_eps = false;   ///< honors SolverParams::eps
  bool scratch_reusing = false;  ///< benefits from engine scratch arenas
  bool respects_k = true;  ///< honors the k-move bound (LPT reassigns all)

  /// Rejects out-of-bounds parameters; nullopt = valid. All current
  /// backends share the uniform bounds of validate_spec(), but the hook is
  /// per-backend so a future backend can tighten them in its own entry.
  std::optional<std::string> (*validate)(const SolverParams&) = nullptr;
  /// The serial reference entry point: no pool, no arenas. Forwards into
  /// the single dispatch switch with an empty context.
  RebalanceResult (*serial)(const Instance&, std::int64_t k,
                            const SolverParams&) = nullptr;
};

/// All registered backends, in BackendId order.
[[nodiscard]] std::span<const BackendDescriptor> all_backends();

[[nodiscard]] const BackendDescriptor& descriptor(BackendId id);

/// Lookup by canonical name or alias; nullptr if unknown.
[[nodiscard]] const BackendDescriptor* find_backend(std::string_view name);

/// Parses a canonical name or alias; returns false on an unknown name.
[[nodiscard]] bool parse_backend(std::string_view name, BackendId* out);

[[nodiscard]] const char* backend_name(BackendId id);

/// Canonical names joined with '|' (e.g. "greedy|m-partition|..."), for
/// tool usage/error text that should not go stale as backends are added.
[[nodiscard]] std::string backend_list();

/// Lookup by stable wire id; nullptr if the id names no backend. The wire
/// codecs' single range check (docs/serving.md).
[[nodiscard]] const BackendDescriptor* backend_by_wire_id(
    std::uint8_t wire_id);
[[nodiscard]] bool is_valid_wire_id(std::uint8_t wire_id);

/// Validates spec.params against its backend's bounds (budget >= 0, eps
/// finite and > 0); nullopt = valid. Streaming triggers and tools reject
/// invalid specs up front; the v1 Solve decode path stays permissive for
/// compatibility (out-of-range knobs there are simply ignored by backends
/// that do not consume them).
[[nodiscard]] std::optional<std::string> validate_spec(const SolverSpec& spec);

/// Folds parameters the backend declares it ignores to their defaults.
/// This is the cache-key normalization contract (docs/caching.md): two
/// specs that cannot produce different results share one key.
[[nodiscard]] SolverParams normalized_params(const SolverSpec& spec);

/// Appends the spec's deterministic cache-key bytes to `out`: the stable
/// wire id plus the normalized parameters in a fixed-width little-endian
/// layout — the same values the pre-registry key encoding folded in, so
/// legacy backends keep their hit ranges.
void encode_key_params(const SolverSpec& spec, std::string* out);

/// Optional acceleration context for solve(): a thread pool for the
/// intra-instance parallel scans and per-backend scratch arenas. Default
/// construction means "serial, allocate as you go" — exactly the serial
/// reference. Every accelerated path is bit-identical to the serial one
/// (m_partition.h / ptas.h), so a context never changes results.
struct SolveContext {
  ThreadPool* pool = nullptr;
  /// Instances with at least this many jobs use the intra-instance
  /// parallel scans when `pool` has more than one worker.
  std::size_t intra_parallel_min_jobs = static_cast<std::size_t>(-1);
  MPartitionScratch* m_partition = nullptr;
  PtasScratch* ptas = nullptr;
  std::vector<PtasScratch>* ptas_wave = nullptr;
};

/// THE dispatch switch (the only one in the codebase): runs `spec` on
/// `instance` under move budget `k`. Callers must pass a validated spec;
/// out-of-bounds parameters on backends that consume them are the
/// backend's own contract (the PTAS treats eps <= 0 as undefined).
[[nodiscard]] RebalanceResult solve(const SolverSpec& spec,
                                    const Instance& instance, std::int64_t k,
                                    const SolveContext& ctx);

/// solve() with an empty context: the serial reference entry point.
[[nodiscard]] RebalanceResult solve_serial(const SolverSpec& spec,
                                           const Instance& instance,
                                           std::int64_t k);

}  // namespace lrb::solver
