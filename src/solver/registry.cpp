#include "solver/registry.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/lpt.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "util/thread_pool.h"

namespace lrb::solver {
namespace {

/// Uniform parameter bounds every current backend shares. Kept as the
/// per-descriptor hook's default target so a future backend can install a
/// tighter validator without touching any consumer.
std::optional<std::string> validate_bounds(const SolverParams& params) {
  if (!(std::isfinite(params.eps) && params.eps > 0.0)) {
    return "solver eps must be finite and > 0";
  }
  if (params.budget < 0) {
    return "solver budget must be >= 0";
  }
  return std::nullopt;
}

/// M-PARTITION under a context: the three entry points are bit-identical
/// (m_partition.h), so this only picks the cheapest one available.
RebalanceResult solve_m_partition(const Instance& instance, std::int64_t k,
                                  const SolveContext& ctx) {
  if (ctx.pool != nullptr && ctx.pool->size() > 1 &&
      instance.num_jobs() >= ctx.intra_parallel_min_jobs) {
    return m_partition_rebalance_parallel(instance, k, *ctx.pool);
  }
  if (ctx.m_partition != nullptr) {
    return m_partition_rebalance(instance, k, *ctx.m_partition);
  }
  return m_partition_rebalance(instance, k);
}

template <BackendId kId>
RebalanceResult serial_entry(const Instance& instance, std::int64_t k,
                             const SolverParams& params) {
  return solve(SolverSpec(kId, params), instance, k, SolveContext{});
}

constexpr std::string_view kMPartitionAliases[] = {"mpartition"};
constexpr std::string_view kBestOfAliases[] = {"best", "bestof"};
constexpr std::string_view kLptAliases[] = {"lpt-full"};
constexpr std::string_view kLocalSearchAliases[] = {"ls", "mp-ls"};

const BackendDescriptor kBackends[kNumBackends] = {
    {
        .id = BackendId::kGreedy,
        .wire_id = 0,
        .name = "greedy",
        .aliases = {},
        .costed = false,
        .budgeted = false,
        .uses_eps = false,
        .scratch_reusing = false,
        .respects_k = true,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kGreedy>,
    },
    {
        .id = BackendId::kMPartition,
        .wire_id = 1,
        .name = "m-partition",
        .aliases = kMPartitionAliases,
        .costed = false,
        .budgeted = false,
        .uses_eps = false,
        .scratch_reusing = true,
        .respects_k = true,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kMPartition>,
    },
    {
        .id = BackendId::kBestOf,
        .wire_id = 2,
        .name = "best-of",
        .aliases = kBestOfAliases,
        .costed = false,
        .budgeted = false,
        .uses_eps = false,
        .scratch_reusing = true,
        .respects_k = true,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kBestOf>,
    },
    {
        .id = BackendId::kPtas,
        .wire_id = 3,
        .name = "ptas",
        .aliases = {},
        .costed = true,
        .budgeted = true,
        .uses_eps = true,
        .scratch_reusing = true,
        .respects_k = false,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kPtas>,
    },
    {
        .id = BackendId::kLpt,
        .wire_id = 4,
        .name = "lpt",
        .aliases = kLptAliases,
        .costed = false,
        .budgeted = false,
        .uses_eps = false,
        .scratch_reusing = false,
        .respects_k = false,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kLpt>,
    },
    {
        .id = BackendId::kLocalSearch,
        .wire_id = 5,
        .name = "local-search",
        .aliases = kLocalSearchAliases,
        .costed = false,
        .budgeted = false,
        .uses_eps = false,
        .scratch_reusing = true,
        .respects_k = true,
        .validate = &validate_bounds,
        .serial = &serial_entry<BackendId::kLocalSearch>,
    },
};

void append_u64(std::string* out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

}  // namespace

std::span<const BackendDescriptor> all_backends() { return kBackends; }

const BackendDescriptor& descriptor(BackendId id) {
  const auto index = static_cast<std::size_t>(id);
  assert(index < kNumBackends);
  return kBackends[index];
}

const BackendDescriptor* find_backend(std::string_view name) {
  for (const BackendDescriptor& backend : kBackends) {
    if (name == backend.name) return &backend;
    for (const std::string_view alias : backend.aliases) {
      if (name == alias) return &backend;
    }
  }
  return nullptr;
}

bool parse_backend(std::string_view name, BackendId* out) {
  const BackendDescriptor* backend = find_backend(name);
  if (backend == nullptr) return false;
  *out = backend->id;
  return true;
}

const char* backend_name(BackendId id) { return descriptor(id).name; }

std::string backend_list() {
  std::string out;
  for (const BackendDescriptor& backend : kBackends) {
    if (!out.empty()) out.push_back('|');
    out += backend.name;
  }
  return out;
}

const BackendDescriptor* backend_by_wire_id(std::uint8_t wire_id) {
  for (const BackendDescriptor& backend : kBackends) {
    if (backend.wire_id == wire_id) return &backend;
  }
  return nullptr;
}

bool is_valid_wire_id(std::uint8_t wire_id) {
  return backend_by_wire_id(wire_id) != nullptr;
}

std::optional<std::string> validate_spec(const SolverSpec& spec) {
  return descriptor(spec.backend).validate(spec.params);
}

SolverParams normalized_params(const SolverSpec& spec) {
  const BackendDescriptor& backend = descriptor(spec.backend);
  SolverParams out;
  if (backend.budgeted) out.budget = spec.params.budget;
  if (backend.uses_eps) out.eps = spec.params.eps;
  return out;
}

void encode_key_params(const SolverSpec& spec, std::string* out) {
  const SolverParams params = normalized_params(spec);
  out->push_back(static_cast<char>(descriptor(spec.backend).wire_id));
  append_u64(out, static_cast<std::uint64_t>(params.budget));
  std::uint64_t eps_bits = 0;
  static_assert(sizeof eps_bits == sizeof params.eps);
  std::memcpy(&eps_bits, &params.eps, sizeof eps_bits);
  append_u64(out, eps_bits);
}

RebalanceResult solve(const SolverSpec& spec, const Instance& instance,
                      std::int64_t k, const SolveContext& ctx) {
  switch (spec.backend) {
    case BackendId::kGreedy:
      return greedy_rebalance(instance, k);
    case BackendId::kMPartition:
      return solve_m_partition(instance, k, ctx);
    case BackendId::kBestOf: {
      // Same tie-break as best_of_rebalance: PARTITION wins ties.
      auto greedy = greedy_rebalance(instance, k);
      auto partition = solve_m_partition(instance, k, ctx);
      return partition.makespan <= greedy.makespan ? std::move(partition)
                                                   : std::move(greedy);
    }
    case BackendId::kPtas: {
      PtasOptions options;
      options.budget = spec.params.budget;
      options.eps = spec.params.eps;
      if (ctx.pool != nullptr && ctx.pool->size() > 1 &&
          instance.num_jobs() >= ctx.intra_parallel_min_jobs) {
        if (ctx.ptas_wave != nullptr) {
          return ptas_rebalance_parallel(instance, options, *ctx.pool,
                                         *ctx.ptas_wave)
              .result;
        }
        return ptas_rebalance_parallel(instance, options, *ctx.pool).result;
      }
      if (ctx.ptas != nullptr) {
        return ptas_rebalance(instance, options, *ctx.ptas).result;
      }
      return ptas_rebalance(instance, options).result;
    }
    case BackendId::kLpt:
      // Full reassignment: LPT ignores both the initial placement and k.
      return lpt_schedule(instance);
    case BackendId::kLocalSearch: {
      // m_partition_ls_rebalance, decomposed so the base solve can use the
      // context's scratch/parallel paths (bit-identical to the plain one).
      auto base = solve_m_partition(instance, k, ctx);
      LocalSearchOptions options;
      options.max_moves = k;
      return local_search_improve(instance, base, options);
    }
  }
  assert(false && "unregistered backend");
  return {};
}

RebalanceResult solve_serial(const SolverSpec& spec, const Instance& instance,
                             std::int64_t k) {
  return solve(spec, instance, k, SolveContext{});
}

}  // namespace lrb::solver
