// The Conflict Scheduling problem (SPAA'03 §5, Theorem 7): makespan
// minimization where specified pairs of jobs may not share a processor.
// Even FEASIBILITY is NP-hard (3DM reduction), so no approximation ratio is
// achievable in polynomial time. The module provides an exact backtracking
// feasibility/optimization oracle, a first-fit heuristic, and the gadget.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/types.h"
#include "ext/threedm.h"

namespace lrb {

struct ConflictInstance {
  std::vector<Size> sizes;
  ProcId num_machines = 0;
  /// Unordered conflicting pairs (j1, j2): the two jobs may not share a
  /// machine.
  std::vector<std::pair<JobId, JobId>> conflicts;

  [[nodiscard]] std::size_t num_jobs() const { return sizes.size(); }
};

/// True iff `assignment` places no conflicting pair together.
[[nodiscard]] bool respects_conflicts(const ConflictInstance& instance,
                                      const std::vector<ProcId>& assignment);

/// First-fit heuristic in descending conflict-degree order; each job goes to
/// the least-loaded conflict-free machine. Returns nullopt when it gets
/// stuck (which NP-hardness says must sometimes happen on feasible inputs).
[[nodiscard]] std::optional<std::vector<ProcId>> conflict_first_fit(
    const ConflictInstance& instance);

struct ConflictExactResult {
  bool feasible = false;
  Size makespan = 0;  ///< min makespan over conflict-respecting assignments
  std::vector<ProcId> assignment;
  bool proven = false;  ///< search exhausted within the node limit
  std::uint64_t nodes = 0;
};

/// Exact backtracking: minimum makespan subject to the conflicts (reports
/// infeasible when no valid assignment exists at all).
[[nodiscard]] ConflictExactResult conflict_exact(
    const ConflictInstance& instance, std::uint64_t node_limit = 20'000'000);

/// Theorem 7's gadget: m machines; m pairwise-conflicting triple jobs;
/// 3n element jobs, each conflicting with every triple job whose triple
/// does NOT contain it; m - n pairwise-conflicting dummy jobs that also
/// conflict with every element job. A conflict-respecting assignment exists
/// iff the 3DM instance has a perfect matching.
struct ConflictGadget {
  ConflictInstance instance;
};

[[nodiscard]] ConflictGadget conflict_gadget(const ThreeDmInstance& source);

}  // namespace lrb
