// Instance transformers realizing the paper's §5 hardness reductions, plus a
// small exact GAP solver so the reductions can be verified empirically:
// yes-instances of the source problem map to gadgets with a small objective,
// no-instances to gadgets where that objective is unachievable - exactly the
// gap that rules out the corresponding approximation factors.

#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "ext/threedm.h"
#include "lp/gap.h"

namespace lrb {

// ------------------------------------------------------- Theorem 5 (moves)

/// The PARTITION-number reduction behind Theorem 5: all `numbers` start on
/// processor 0 of 2; the move-minimization target is half their sum. A
/// finite answer exists iff the numbers split evenly - approximating the
/// move count to ANY factor would decide PARTITION.
struct MoveMinGadget {
  Instance instance;
  Size target_load = 0;
};

[[nodiscard]] MoveMinGadget move_min_gadget(const std::vector<Size>& numbers);

// -------------------------------------------------- Theorem 6 ({p,q} costs)

/// The 3DM reduction behind Theorem 6 (no rho < 1.5 for makespan with
/// assignment costs in {p, q}): machines are triples; element jobs for B and
/// C (unit size) cost p exactly on the machines of triples naming them;
/// t_j - 1 dummy jobs (size 2) per type j cost p exactly on type-j machines;
/// everything else costs q. With budget (m + n) * p, makespan 2 is
/// achievable iff the 3DM instance has a perfect matching (else >= 3).
struct TwoCostGadget {
  GapInstance gap;
  Cost budget = 0;
  Size yes_makespan = 2;  ///< achievable iff the source instance matches
};

[[nodiscard]] TwoCostGadget two_cost_gadget(const ThreeDmInstance& source,
                                            Cost p, Cost q);

// ------------------------------------------------------ exact GAP oracle

struct GapExactResult {
  bool feasible = false;       ///< some schedule fits within the budget
  Size makespan = 0;           ///< min makespan subject to the budget
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
};

/// Branch-and-bound over GAP: minimize makespan subject to total assignment
/// cost <= budget. Ground truth for the Theorem 6 experiments.
[[nodiscard]] GapExactResult gap_exact_min_makespan(
    const GapInstance& gap, Cost budget,
    std::uint64_t node_limit = 20'000'000);

}  // namespace lrb
