#include "ext/constrained.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "lp/gap.h"

namespace lrb {

std::optional<std::string> validate(const ConstrainedInstance& instance) {
  if (auto base_problem = validate(instance.base)) return base_problem;
  if (instance.allowed.size() != instance.base.num_jobs()) {
    return "allowed rows (" + std::to_string(instance.allowed.size()) +
           ") != number of jobs";
  }
  for (const auto& row : instance.allowed) {
    if (row.size() != instance.base.num_procs) {
      return "allowed row width != number of processors";
    }
  }
  return std::nullopt;
}

RebalanceResult constrained_greedy(const ConstrainedInstance& instance,
                                   std::int64_t k) {
  assert(!validate(instance));
  const Instance& base = instance.base;
  Assignment assignment = base.initial;
  std::vector<Size> load = base.initial_loads();

  // Step 1 (same as GREEDY): k removals of the largest job off the heaviest
  // processor.
  auto by_proc = base.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      return base.sizes[a] > base.sizes[b];
    });
  }
  std::vector<std::size_t> next(base.num_procs, 0);
  std::priority_queue<std::pair<Size, ProcId>> max_heap;
  for (ProcId p = 0; p < base.num_procs; ++p) max_heap.emplace(load[p], p);
  std::vector<JobId> removed;
  for (std::int64_t step = 0; step < k && !max_heap.empty();) {
    const auto [snapshot, p] = max_heap.top();
    if (snapshot != load[p]) {
      max_heap.pop();
      continue;
    }
    if (next[p] >= by_proc[p].size()) break;
    max_heap.pop();
    const JobId victim = by_proc[p][next[p]++];
    load[p] -= base.sizes[victim];
    removed.push_back(victim);
    max_heap.emplace(load[p], p);
    ++step;
  }

  // Step 2: largest-first, each onto its least-loaded allowed processor.
  std::sort(removed.begin(), removed.end(), [&](JobId a, JobId b) {
    if (base.sizes[a] != base.sizes[b]) return base.sizes[a] > base.sizes[b];
    return a < b;
  });
  for (JobId j : removed) {
    ProcId best = base.initial[j];
    for (ProcId p = 0; p < base.num_procs; ++p) {
      if (instance.job_allowed_on(j, p) && load[p] < load[best]) best = p;
    }
    assignment[j] = best;
    load[best] += base.sizes[j];
  }
  return finalize_result(base, std::move(assignment));
}

namespace {

struct ConstrainedSearcher {
  const ConstrainedInstance& inst;
  std::int64_t max_moves;
  std::uint64_t node_limit;

  std::vector<JobId> order;
  std::vector<Size> load;
  Assignment current;
  Assignment best_assignment;
  Size best = kInfSize;
  std::int64_t moves = 0;
  std::uint64_t nodes = 0;
  bool aborted = false;

  ConstrainedSearcher(const ConstrainedInstance& instance, std::int64_t k,
                      std::uint64_t limit)
      : inst(instance), max_moves(k), node_limit(limit) {
    const Instance& base = inst.base;
    order.resize(base.num_jobs());
    std::iota(order.begin(), order.end(), JobId{0});
    std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      if (base.sizes[a] != base.sizes[b]) return base.sizes[a] > base.sizes[b];
      return a < b;
    });
    load.assign(base.num_procs, 0);
    current = base.initial;
    best_assignment = base.initial;
    best = base.initial_makespan() + 1;  // identity is always feasible
  }

  void dfs(std::size_t idx, Size cur_max) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (cur_max >= best) return;
    const Instance& base = inst.base;
    if (idx == order.size()) {
      best = cur_max;
      best_assignment = current;
      return;
    }
    const JobId j = order[idx];
    const ProcId home = base.initial[j];
    std::vector<ProcId> cands;
    cands.push_back(home);
    std::vector<ProcId> others;
    for (ProcId p = 0; p < base.num_procs; ++p) {
      if (p != home && inst.job_allowed_on(j, p)) others.push_back(p);
    }
    std::sort(others.begin(), others.end(), [&](ProcId x, ProcId y) {
      if (load[x] != load[y]) return load[x] < load[y];
      return x < y;
    });
    cands.insert(cands.end(), others.begin(), others.end());
    for (ProcId p : cands) {
      const bool is_move = p != home;
      if (is_move && moves + 1 > max_moves) continue;
      if (load[p] + base.sizes[j] >= best) continue;
      load[p] += base.sizes[j];
      current[j] = p;
      if (is_move) ++moves;
      dfs(idx + 1, std::max(cur_max, load[p]));
      if (is_move) --moves;
      load[p] -= base.sizes[j];
      current[j] = home;
      if (aborted) return;
    }
  }
};

}  // namespace

ConstrainedExactResult constrained_exact(const ConstrainedInstance& instance,
                                         std::int64_t k,
                                         std::uint64_t node_limit) {
  assert(!validate(instance));
  ConstrainedSearcher searcher(instance, k, node_limit);
  searcher.dfs(0, 0);
  ConstrainedExactResult result;
  result.nodes = searcher.nodes;
  result.proven_optimal = !searcher.aborted;
  result.best =
      finalize_result(instance.base, std::move(searcher.best_assignment));
  return result;
}

RebalanceResult constrained_st_rebalance(const ConstrainedInstance& instance,
                                         Cost budget) {
  assert(!validate(instance));
  const Instance& base = instance.base;
  const std::size_t n = base.num_jobs();
  const std::size_t m = base.num_procs;

  GapInstance gap;
  gap.processing.assign(n, std::vector<Size>(m, kInfSize));
  gap.cost.assign(n, std::vector<Cost>(m, kInfCost));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto job = static_cast<JobId>(i);
      const auto proc = static_cast<ProcId>(j);
      if (!instance.job_allowed_on(job, proc)) continue;  // no variable
      gap.processing[i][j] = base.sizes[i];
      gap.cost[i][j] = proc == base.initial[i] ? 0 : base.move_costs[i];
    }
  }
  const auto result = gap_shmoys_tardos(gap, budget);
  if (!result.feasible) return no_move_result(base);
  Assignment assignment(n);
  for (std::size_t i = 0; i < n; ++i) {
    assignment[i] = static_cast<ProcId>(result.rounded.machine_of_job[i]);
  }
  auto out = finalize_result(base, std::move(assignment), result.lp_target);
  assert(out.cost <= budget);
  return out;
}

ConstrainedGadget constrained_gadget(const ThreeDmInstance& source) {
  const int n = source.n;
  const auto m = static_cast<ProcId>(source.triples.size());
  std::vector<std::int64_t> type_count(static_cast<std::size_t>(n), 0);
  for (const auto& triple : source.triples) {
    ++type_count[static_cast<std::size_t>(triple.a)];
  }

  struct JobDesc {
    Size size;
    int kind;   // 0 = B element, 1 = C element, 2 = dummy
    int index;  // element id or dummy type
  };
  std::vector<JobDesc> jobs;
  for (int b = 0; b < n; ++b) jobs.push_back({1, 0, b});
  for (int c = 0; c < n; ++c) jobs.push_back({1, 1, c});
  for (int j = 0; j < n; ++j) {
    for (std::int64_t d = 1; d < type_count[static_cast<std::size_t>(j)]; ++d) {
      jobs.push_back({2, 2, j});
    }
  }

  // Machines 0..m-1 are the triples; machine m is the "source" everything
  // starts on. Because not moving is always legal in the rebalancing
  // framing, the source carries a pinned blocker job of size 2 (allowed only
  // there): any gadget job that stays home pushes the source above 2, so a
  // makespan-2 solution must place every gadget job on one of its allowed
  // triple machines - exactly the Theorem 6 structure.
  ConstrainedGadget gadget;
  std::vector<Size> sizes;
  std::vector<ProcId> initial(jobs.size() + 1, m);  // all on the source
  sizes.reserve(jobs.size() + 1);
  for (const auto& job : jobs) sizes.push_back(job.size);
  sizes.push_back(2);  // the blocker
  gadget.instance.base = make_instance(
      std::move(sizes), std::move(initial), static_cast<ProcId>(m + 1));
  gadget.instance.allowed.assign(jobs.size() + 1,
                                 std::vector<char>(m + 1, 0));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (ProcId machine = 0; machine < m; ++machine) {
      const auto& triple = source.triples[machine];
      const bool ok = (jobs[i].kind == 0 && triple.b == jobs[i].index) ||
                      (jobs[i].kind == 1 && triple.c == jobs[i].index) ||
                      (jobs[i].kind == 2 && triple.a == jobs[i].index);
      gadget.instance.allowed[i][machine] = ok ? 1 : 0;
    }
  }
  gadget.instance.allowed[jobs.size()][m] = 1;  // blocker pinned to source
  gadget.yes_makespan = 2;
  return gadget;
}

}  // namespace lrb
