#include "ext/threedm.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <tuple>

#include "util/rng.h"

namespace lrb {
namespace {

Triple random_triple(int n, Rng& rng, int min_a) {
  return {static_cast<int>(rng.uniform_int(min_a, n - 1)),
          static_cast<int>(rng.uniform_int(0, n - 1)),
          static_cast<int>(rng.uniform_int(0, n - 1))};
}

void dedupe(std::vector<Triple>& triples) {
  std::sort(triples.begin(), triples.end(), [](const Triple& x, const Triple& y) {
    return std::tie(x.a, x.b, x.c) < std::tie(y.a, y.b, y.c);
  });
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
}

}  // namespace

ThreeDmInstance random_matchable_3dm(int n, int extra_triples,
                                     std::uint64_t seed) {
  assert(n >= 1);
  Rng rng(seed);
  ThreeDmInstance instance;
  instance.n = n;
  // Hidden matching: a_i paired with pi_b(i), pi_c(i).
  std::vector<int> perm_b(static_cast<std::size_t>(n));
  std::vector<int> perm_c(static_cast<std::size_t>(n));
  std::iota(perm_b.begin(), perm_b.end(), 0);
  std::iota(perm_c.begin(), perm_c.end(), 0);
  shuffle(std::span<int>(perm_b), rng);
  shuffle(std::span<int>(perm_c), rng);
  for (int i = 0; i < n; ++i) {
    instance.triples.push_back({i, perm_b[static_cast<std::size_t>(i)],
                                perm_c[static_cast<std::size_t>(i)]});
  }
  for (int e = 0; e < extra_triples; ++e) {
    instance.triples.push_back(random_triple(n, rng, 0));
  }
  dedupe(instance.triples);
  shuffle(std::span<Triple>(instance.triples), rng);
  return instance;
}

ThreeDmInstance unmatchable_3dm(int n, int num_triples, std::uint64_t seed) {
  assert(n >= 2);
  Rng rng(seed);
  ThreeDmInstance instance;
  instance.n = n;
  for (int e = 0; e < num_triples; ++e) {
    instance.triples.push_back(random_triple(n, rng, 1));  // a = 0 never covered
  }
  dedupe(instance.triples);
  return instance;
}

std::optional<std::vector<std::size_t>> solve_3dm(
    const ThreeDmInstance& instance) {
  const int n = instance.n;
  // Triples grouped by their A element.
  std::vector<std::vector<std::size_t>> by_a(static_cast<std::size_t>(n));
  for (std::size_t t = 0; t < instance.triples.size(); ++t) {
    const auto& triple = instance.triples[t];
    if (triple.a < 0 || triple.a >= n || triple.b < 0 || triple.b >= n ||
        triple.c < 0 || triple.c >= n) {
      continue;  // malformed triples can never participate
    }
    by_a[static_cast<std::size_t>(triple.a)].push_back(t);
  }
  std::vector<char> used_b(static_cast<std::size_t>(n), 0);
  std::vector<char> used_c(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> chosen;
  chosen.reserve(static_cast<std::size_t>(n));

  // Order A elements by ascending branching factor (fail fast).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return by_a[static_cast<std::size_t>(x)].size() <
           by_a[static_cast<std::size_t>(y)].size();
  });

  auto dfs = [&](auto&& self, std::size_t depth) -> bool {
    if (depth == static_cast<std::size_t>(n)) return true;
    const auto a = static_cast<std::size_t>(order[depth]);
    for (std::size_t t : by_a[a]) {
      const auto& triple = instance.triples[t];
      const auto b = static_cast<std::size_t>(triple.b);
      const auto c = static_cast<std::size_t>(triple.c);
      if (used_b[b] || used_c[c]) continue;
      used_b[b] = used_c[c] = 1;
      chosen.push_back(t);
      if (self(self, depth + 1)) return true;
      chosen.pop_back();
      used_b[b] = used_c[c] = 0;
    }
    return false;
  };
  if (dfs(dfs, 0)) return chosen;
  return std::nullopt;
}

bool is_perfect_matching(const ThreeDmInstance& instance,
                         const std::vector<std::size_t>& chosen) {
  if (chosen.size() != static_cast<std::size_t>(instance.n)) return false;
  std::vector<char> a(static_cast<std::size_t>(instance.n), 0);
  std::vector<char> b(static_cast<std::size_t>(instance.n), 0);
  std::vector<char> c(static_cast<std::size_t>(instance.n), 0);
  for (std::size_t t : chosen) {
    if (t >= instance.triples.size()) return false;
    const auto& triple = instance.triples[t];
    auto& ta = a[static_cast<std::size_t>(triple.a)];
    auto& tb = b[static_cast<std::size_t>(triple.b)];
    auto& tc = c[static_cast<std::size_t>(triple.c)];
    if (ta || tb || tc) return false;
    ta = tb = tc = 1;
  }
  return true;
}

}  // namespace lrb
