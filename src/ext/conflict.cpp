#include "ext/conflict.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lrb {
namespace {

std::vector<std::vector<JobId>> adjacency(const ConflictInstance& instance) {
  std::vector<std::vector<JobId>> adj(instance.num_jobs());
  for (const auto& [x, y] : instance.conflicts) {
    assert(x < instance.num_jobs() && y < instance.num_jobs() && x != y);
    adj[x].push_back(y);
    adj[y].push_back(x);
  }
  return adj;
}

}  // namespace

bool respects_conflicts(const ConflictInstance& instance,
                        const std::vector<ProcId>& assignment) {
  if (assignment.size() != instance.num_jobs()) return false;
  for (const auto& [x, y] : instance.conflicts) {
    if (assignment[x] == assignment[y]) return false;
  }
  return true;
}

std::optional<std::vector<ProcId>> conflict_first_fit(
    const ConflictInstance& instance) {
  const auto adj = adjacency(instance);
  std::vector<JobId> order(instance.num_jobs());
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() > adj[b].size();
    if (instance.sizes[a] != instance.sizes[b]) {
      return instance.sizes[a] > instance.sizes[b];
    }
    return a < b;
  });
  std::vector<ProcId> assignment(instance.num_jobs(), kNoProc);
  std::vector<Size> load(instance.num_machines, 0);
  for (JobId j : order) {
    ProcId best = kNoProc;
    for (ProcId p = 0; p < instance.num_machines; ++p) {
      bool clash = false;
      for (JobId other : adj[j]) {
        if (assignment[other] == p) {
          clash = true;
          break;
        }
      }
      if (!clash && (best == kNoProc || load[p] < load[best])) best = p;
    }
    if (best == kNoProc) return std::nullopt;
    assignment[j] = best;
    load[best] += instance.sizes[j];
  }
  return assignment;
}

ConflictExactResult conflict_exact(const ConflictInstance& instance,
                                   std::uint64_t node_limit) {
  ConflictExactResult result;
  const auto adj = adjacency(instance);
  std::vector<JobId> order(instance.num_jobs());
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() > adj[b].size();
    return a < b;
  });
  std::vector<ProcId> current(instance.num_jobs(), kNoProc);
  std::vector<Size> load(instance.num_machines, 0);
  Size best = kInfSize;
  std::vector<ProcId> best_assignment;
  std::uint64_t nodes = 0;
  bool aborted = false;

  auto dfs = [&](auto&& self, std::size_t idx, Size cur_max) -> void {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (cur_max >= best) return;
    if (idx == order.size()) {
      best = cur_max;
      best_assignment = current;
      return;
    }
    const JobId j = order[idx];
    // Machines in ascending-load order; among empty machines only try the
    // first (they are interchangeable for the remaining jobs because
    // conflicts reference jobs, not machines).
    std::vector<ProcId> machines(instance.num_machines);
    std::iota(machines.begin(), machines.end(), ProcId{0});
    std::sort(machines.begin(), machines.end(), [&](ProcId x, ProcId y) {
      if (load[x] != load[y]) return load[x] < load[y];
      return x < y;
    });
    bool tried_untouched = false;
    for (ProcId p : machines) {
      // An untouched machine: zero load and hosting nothing (size-0 jobs
      // make "zero load" alone insufficient).
      const bool untouched =
          load[p] == 0 &&
          std::none_of(current.begin(), current.end(),
                       [&](ProcId q) { return q == p; });
      if (untouched) {
        if (tried_untouched) continue;
        tried_untouched = true;
      }
      bool clash = false;
      for (JobId other : adj[j]) {
        if (current[other] == p) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      if (load[p] + instance.sizes[j] >= best) continue;
      load[p] += instance.sizes[j];
      current[j] = p;
      self(self, idx + 1, std::max(cur_max, load[p]));
      current[j] = kNoProc;
      load[p] -= instance.sizes[j];
      if (aborted) return;
    }
  };
  dfs(dfs, 0, 0);

  result.nodes = nodes;
  result.proven = !aborted;
  result.feasible = best < kInfSize;
  if (result.feasible) {
    result.makespan = best;
    result.assignment = std::move(best_assignment);
    assert(respects_conflicts(instance, result.assignment));
  }
  return result;
}

ConflictGadget conflict_gadget(const ThreeDmInstance& source) {
  const int n = source.n;
  const auto m = source.triples.size();
  assert(m >= static_cast<std::size_t>(n));

  // Job ids: [0, m) triple jobs; [m, m+3n) element jobs (A block, then B,
  // then C); [m+3n, 2m+2n) dummy jobs.
  ConflictGadget gadget;
  auto& inst = gadget.instance;
  inst.num_machines = static_cast<ProcId>(m);
  const std::size_t elements_start = m;
  const std::size_t dummies_start = m + 3 * static_cast<std::size_t>(n);
  const std::size_t total = dummies_start + (m - static_cast<std::size_t>(n));
  inst.sizes.assign(total, 1);

  auto element_job = [&](int kind, int index) {
    return static_cast<JobId>(elements_start +
                              static_cast<std::size_t>(kind) *
                                  static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(index));
  };

  // Triple jobs pairwise conflict.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      inst.conflicts.emplace_back(static_cast<JobId>(i), static_cast<JobId>(j));
    }
  }
  // Element u conflicts with triple job T_i unless u is in T_i.
  for (std::size_t i = 0; i < m; ++i) {
    const auto& triple = source.triples[i];
    for (int kind = 0; kind < 3; ++kind) {
      for (int e = 0; e < n; ++e) {
        const bool member = (kind == 0 && triple.a == e) ||
                            (kind == 1 && triple.b == e) ||
                            (kind == 2 && triple.c == e);
        if (!member) {
          inst.conflicts.emplace_back(static_cast<JobId>(i),
                                      element_job(kind, e));
        }
      }
    }
  }
  // Dummies pairwise conflict and conflict with every element job.
  for (std::size_t d1 = dummies_start; d1 < total; ++d1) {
    for (std::size_t d2 = d1 + 1; d2 < total; ++d2) {
      inst.conflicts.emplace_back(static_cast<JobId>(d1),
                                  static_cast<JobId>(d2));
    }
    for (std::size_t e = elements_start; e < dummies_start; ++e) {
      inst.conflicts.emplace_back(static_cast<JobId>(d1),
                                  static_cast<JobId>(e));
    }
  }
  return gadget;
}

}  // namespace lrb
