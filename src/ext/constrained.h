// The Constrained Load Rebalancing problem (SPAA'03 §5, Corollary 1): load
// rebalancing where each job may only be reassigned to a specified subset of
// machines. No rho < 1.5 approximation exists unless P=NP; the module
// provides a restricted GREEDY heuristic, an exact branch-and-bound oracle,
// and the 3DM gadget realizing the hardness gap.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "ext/threedm.h"

namespace lrb {

struct ConstrainedInstance {
  Instance base;
  /// allowed[j][p] != 0 iff job j may run on processor p. A job's initial
  /// processor is always implicitly allowed (not moving is always legal).
  std::vector<std::vector<char>> allowed;

  [[nodiscard]] bool job_allowed_on(JobId j, ProcId p) const {
    return allowed[j][p] != 0 || base.initial[j] == p;
  }
};

/// Structural validation (shapes and ranges).
[[nodiscard]] std::optional<std::string> validate(
    const ConstrainedInstance& instance);

/// GREEDY restricted to allowed sets: k removals of the largest job from the
/// heaviest processor, then each removed job goes to its least-loaded
/// ALLOWED processor. Always succeeds (home remains allowed).
[[nodiscard]] RebalanceResult constrained_greedy(
    const ConstrainedInstance& instance, std::int64_t k);

struct ConstrainedExactResult {
  RebalanceResult best;
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
};

/// Exact minimum makespan under a move budget and the allowed sets.
[[nodiscard]] ConstrainedExactResult constrained_exact(
    const ConstrainedInstance& instance, std::int64_t k,
    std::uint64_t node_limit = 20'000'000);

/// The best upper bound known for Constrained Load Rebalancing (the paper
/// notes a 1.5-approximation is open; Shmoys-Tardos [14] gives 2): LP
/// rounding on the GAP encoding where a job only has variables on its
/// allowed machines (cost 0 at home, its move cost elsewhere). Returns a
/// solution of relocation cost <= budget and makespan <= 2 * OPT(budget).
[[nodiscard]] RebalanceResult constrained_st_rebalance(
    const ConstrainedInstance& instance, Cost budget);

/// Corollary 1's gadget: machines are the triples, all jobs start on
/// machine 0, and allowed sets mirror Theorem 6's cheap positions (element
/// jobs may go to machines of triples naming them, type-j dummies to type-j
/// machines). Makespan 2 is reachable iff the 3DM instance has a perfect
/// matching; otherwise the optimum is >= 3.
struct ConstrainedGadget {
  ConstrainedInstance instance;
  Size yes_makespan = 2;
};

[[nodiscard]] ConstrainedGadget constrained_gadget(const ThreeDmInstance& source);

}  // namespace lrb
