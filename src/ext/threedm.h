// 3-dimensional matching: the NP-complete source problem of the paper's §5
// hardness reductions (Theorems 6 and 7). Instances here are small enough
// to solve exactly, so the reductions can be exercised end to end.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace lrb {

/// A triple (a, b, c) with each coordinate in [0, n).
struct Triple {
  int a = 0;
  int b = 0;
  int c = 0;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Sets A, B, C each of size n, and a family of triples.
struct ThreeDmInstance {
  int n = 0;
  std::vector<Triple> triples;
};

/// A matchable instance: a hidden perfect matching (random permutations of B
/// and C against A) plus `extra_triples` random decoys. Deterministic in
/// (n, extra_triples, seed).
[[nodiscard]] ThreeDmInstance random_matchable_3dm(int n, int extra_triples,
                                                   std::uint64_t seed);

/// An instance that is certainly NOT matchable: generated like the random
/// decoys but with every triple avoiding element a = 0, so A can never be
/// covered. Deterministic in (n, num_triples, seed).
[[nodiscard]] ThreeDmInstance unmatchable_3dm(int n, int num_triples,
                                              std::uint64_t seed);

/// Exact solver (backtracking over elements of A with pruning). Returns the
/// indices of a perfect matching's triples, or nullopt.
[[nodiscard]] std::optional<std::vector<std::size_t>> solve_3dm(
    const ThreeDmInstance& instance);

/// Checks that the given triple indices form a perfect matching.
[[nodiscard]] bool is_perfect_matching(const ThreeDmInstance& instance,
                                       const std::vector<std::size_t>& chosen);

}  // namespace lrb
