#include "ext/gadgets.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lrb {

MoveMinGadget move_min_gadget(const std::vector<Size>& numbers) {
  MoveMinGadget gadget;
  std::vector<Size> sizes = numbers;
  std::vector<ProcId> initial(sizes.size(), 0);
  const Size total = std::accumulate(sizes.begin(), sizes.end(), Size{0});
  gadget.instance = make_instance(std::move(sizes), std::move(initial), 2);
  gadget.target_load = total / 2;  // meaningful when total is even
  return gadget;
}

TwoCostGadget two_cost_gadget(const ThreeDmInstance& source, Cost p, Cost q) {
  assert(p >= 1 && q > p);
  const int n = source.n;
  const auto m = source.triples.size();  // one machine per triple

  // t_j = number of triples of type j (type = the A element they contain).
  std::vector<std::int64_t> type_count(static_cast<std::size_t>(n), 0);
  for (const auto& triple : source.triples) {
    ++type_count[static_cast<std::size_t>(triple.a)];
  }

  // Jobs: element jobs for B (ids 0..n-1) and C (ids n..2n-1), unit size;
  // then for each type j, t_j - 1 dummy jobs of size 2.
  struct JobDesc {
    Size size;
    int kind;   // 0 = B element, 1 = C element, 2 = dummy
    int index;  // element id or dummy's type j
  };
  std::vector<JobDesc> jobs;
  for (int b = 0; b < n; ++b) jobs.push_back({1, 0, b});
  for (int c = 0; c < n; ++c) jobs.push_back({1, 1, c});
  for (int j = 0; j < n; ++j) {
    for (std::int64_t d = 1; d < type_count[static_cast<std::size_t>(j)]; ++d) {
      jobs.push_back({2, 2, j});
    }
  }

  TwoCostGadget gadget;
  gadget.gap.processing.assign(jobs.size(), std::vector<Size>(m, 0));
  gadget.gap.cost.assign(jobs.size(), std::vector<Cost>(m, q));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t machine = 0; machine < m; ++machine) {
      gadget.gap.processing[i][machine] = jobs[i].size;
      const auto& triple = source.triples[machine];
      const bool cheap =
          (jobs[i].kind == 0 && triple.b == jobs[i].index) ||
          (jobs[i].kind == 1 && triple.c == jobs[i].index) ||
          (jobs[i].kind == 2 && triple.a == jobs[i].index);
      if (cheap) gadget.gap.cost[i][machine] = p;
    }
  }
  gadget.budget = (static_cast<Cost>(m) + static_cast<Cost>(n)) * p;
  gadget.yes_makespan = 2;
  return gadget;
}

namespace {

struct GapSearcher {
  const GapInstance& gap;
  Cost budget;
  std::uint64_t node_limit;

  std::vector<std::size_t> order;  // jobs by descending min processing time
  std::vector<Size> load;
  Size best = kInfSize;
  Cost cost = 0;
  std::uint64_t nodes = 0;
  bool aborted = false;

  GapSearcher(const GapInstance& g, Cost b, std::uint64_t limit)
      : gap(g), budget(b), node_limit(limit) {
    order.resize(gap.num_jobs());
    std::iota(order.begin(), order.end(), std::size_t{0});
    auto weight = [&](std::size_t i) {
      Size w = kInfSize;
      for (std::size_t j = 0; j < gap.num_machines(); ++j) {
        w = std::min(w, gap.processing[i][j]);
      }
      return w;
    };
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return weight(x) > weight(y);
    });
    load.assign(gap.num_machines(), 0);
  }

  [[nodiscard]] Cost cheapest_completion(std::size_t idx) const {
    // Admissible bound: every remaining job pays at least its cheapest cost.
    Cost sum = 0;
    for (std::size_t r = idx; r < order.size(); ++r) {
      Cost c = kInfCost;
      for (std::size_t j = 0; j < gap.num_machines(); ++j) {
        c = std::min(c, gap.cost[order[r]][j]);
      }
      sum += c;
    }
    return sum;
  }

  void dfs(std::size_t idx, Size cur_max) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (cur_max >= best) return;
    if (idx == order.size()) {
      best = cur_max;
      return;
    }
    if (cost + cheapest_completion(idx) > budget) return;
    const std::size_t i = order[idx];
    // Try machines cheapest-first, then by load.
    std::vector<std::size_t> machines(gap.num_machines());
    std::iota(machines.begin(), machines.end(), std::size_t{0});
    std::sort(machines.begin(), machines.end(),
              [&](std::size_t x, std::size_t y) {
                if (gap.cost[i][x] != gap.cost[i][y]) {
                  return gap.cost[i][x] < gap.cost[i][y];
                }
                return load[x] < load[y];
              });
    for (std::size_t j : machines) {
      if (cost + gap.cost[i][j] > budget) continue;
      if (load[j] + gap.processing[i][j] >= best) continue;
      cost += gap.cost[i][j];
      load[j] += gap.processing[i][j];
      dfs(idx + 1, std::max(cur_max, load[j]));
      load[j] -= gap.processing[i][j];
      cost -= gap.cost[i][j];
      if (aborted) return;
    }
  }
};

}  // namespace

GapExactResult gap_exact_min_makespan(const GapInstance& gap, Cost budget,
                                      std::uint64_t node_limit) {
  GapExactResult result;
  if (gap.num_machines() == 0) {
    result.feasible = gap.num_jobs() == 0;
    result.proven_optimal = true;
    return result;
  }
  GapSearcher searcher(gap, budget, node_limit);
  searcher.dfs(0, 0);
  result.nodes = searcher.nodes;
  result.proven_optimal = !searcher.aborted;
  result.feasible = searcher.best < kInfSize;
  result.makespan = result.feasible ? searcher.best : kInfSize;
  return result;
}

}  // namespace lrb
