// Certified lower bounds on the optimal rebalanced makespan. Used to bound
// approximation ratios on instances too large for the exact solver.

#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/types.h"

namespace lrb {

/// ceil(total size / m): the fractional-relaxation bound. Valid for any
/// move budget because total load is invariant under relocation.
[[nodiscard]] Size average_load_bound(const Instance& instance);

/// Largest job size: jobs are indivisible, so some processor carries it.
[[nodiscard]] Size max_job_bound(const Instance& instance);

/// Lemma 1's bound: the makespan after removing the k jobs chosen by
/// "repeat k times: drop the largest job from the max-loaded processor" is
/// the minimum over ALL ways of deleting k jobs, hence <= OPT (deleting the
/// optimum's relocated jobs from the initial configuration leaves load
/// <= OPT everywhere, and greedy removal is the best deletion). O(n log n).
[[nodiscard]] Size k_removal_bound(const Instance& instance, std::int64_t k);

/// Budget version of the removal bound: the smallest T such that the summed
/// per-processor FRACTIONAL min-cost of trimming each processor's load to T
/// is within the budget. The optimum's relocated set costs <= B and trims
/// every processor to <= OPT, and the fractional relaxation only
/// underestimates trimming cost, so the returned T is <= OPT.
/// O(n log n + n log(initial makespan)).
[[nodiscard]] Size budget_removal_bound(const Instance& instance, Cost budget);

/// max(average_load_bound, max_job_bound, k_removal_bound).
[[nodiscard]] Size combined_lower_bound(const Instance& instance,
                                        std::int64_t k);

}  // namespace lrb
