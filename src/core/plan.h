// Migration plans: the executable form of a rebalancing solution. A
// RebalanceResult says WHERE jobs end up; an orchestrator needs the ordered
// list of individual migrations, and cares how bad the intermediate states
// get while the plan drains (migrations are not instantaneous in practice).
//
// The kMonotone order greedily picks, at each step, the pending migration
// whose application minimizes the resulting makespan - keeping the
// intermediate peak as low as the plan allows. (A peak above the initial
// makespan can be unavoidable when the plan encodes a swap chain through a
// loaded processor; peak_makespan reports what will actually happen.)

#pragma once

#include <cstddef>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct Migration {
  JobId job = 0;
  ProcId from = 0;
  ProcId to = 0;
  Size size = 0;
  Cost cost = 0;
};

struct MigrationPlan {
  std::vector<Migration> steps;
  Size initial_makespan = 0;
  Size final_makespan = 0;
  /// Max over all intermediate states (after each step, plus the start)
  /// when the steps run in order.
  Size peak_makespan = 0;
  Cost total_cost = 0;
};

enum class PlanOrder {
  kArbitrary,      ///< job-id order
  kLargestFirst,   ///< biggest relief first
  kCheapestFirst,  ///< cheapest migrations first
  kMonotone,       ///< greedy minimal intermediate makespan
};

/// Builds the plan turning the instance's initial assignment into `target`.
/// `target` must be a valid assignment for the instance.
[[nodiscard]] MigrationPlan make_plan(const Instance& instance,
                                      std::span<const ProcId> target,
                                      PlanOrder order = PlanOrder::kMonotone);

/// Loads after executing the first `prefix` steps of the plan (prefix may
/// equal steps.size() for the final state). Used by tests and the
/// simulator's gradual executor.
[[nodiscard]] std::vector<Size> replay_loads(const Instance& instance,
                                             const MigrationPlan& plan,
                                             std::size_t prefix);

}  // namespace lrb
