// Descriptive statistics of a placement: the quantities operators actually
// look at (imbalance factor, load spread, Gini coefficient, histogram) -
// used by the CLI tools and the simulator reports.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct LoadReport {
  std::vector<Size> loads;     ///< per-processor
  Size makespan = 0;
  Size min_load = 0;
  double mean_load = 0.0;
  double stddev = 0.0;
  /// makespan / max(ceil-average, max job): 1.0 = fractionally optimal.
  double imbalance = 1.0;
  /// Gini coefficient of the load distribution in [0, 1): 0 = perfectly even.
  double gini = 0.0;
};

/// Report for an arbitrary assignment.
[[nodiscard]] LoadReport analyze(const Instance& instance,
                                 std::span<const ProcId> assignment);

/// Report for the instance's initial assignment.
[[nodiscard]] LoadReport analyze_initial(const Instance& instance);

/// A fixed-width ASCII bar chart of per-processor loads (one line per
/// processor), for terminal inspection.
[[nodiscard]] std::string load_histogram(const LoadReport& report,
                                         int width = 50);

}  // namespace lrb
