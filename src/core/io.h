// Plain-text serialization of instances and assignments, so experiment
// inputs can be checked in, diffed, and replayed.
//
// Format (whitespace-separated, '#' comments allowed):
//
//   lrb-instance 1
//   procs <m>
//   jobs <n>
//   <size> <move_cost> <initial_proc>     # one line per job
//
// Assignments: "lrb-assignment 1", "jobs <n>", then one processor per line.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

void write_instance(std::ostream& os, const Instance& instance);
[[nodiscard]] std::string instance_to_string(const Instance& instance);

/// Parses an instance; returns nullopt (and sets *error if non-null) on
/// malformed input.
[[nodiscard]] std::optional<Instance> read_instance(std::istream& is,
                                                    std::string* error = nullptr);
[[nodiscard]] std::optional<Instance> instance_from_string(
    const std::string& text, std::string* error = nullptr);

void write_assignment(std::ostream& os, const Assignment& assignment);
[[nodiscard]] std::optional<Assignment> read_assignment(
    std::istream& is, std::string* error = nullptr);

}  // namespace lrb
