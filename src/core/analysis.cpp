#include "core/analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/lower_bounds.h"
#include "util/stats.h"

namespace lrb {

LoadReport analyze(const Instance& instance,
                   std::span<const ProcId> assignment) {
  LoadReport report;
  report.loads = loads(instance, assignment);
  if (report.loads.empty()) return report;

  OnlineStats stats;
  for (Size l : report.loads) stats.add(static_cast<double>(l));
  report.makespan = *std::max_element(report.loads.begin(), report.loads.end());
  report.min_load = *std::min_element(report.loads.begin(), report.loads.end());
  report.mean_load = stats.mean();
  report.stddev = stats.stddev();

  const Size fractional_opt =
      std::max(average_load_bound(instance), max_job_bound(instance));
  report.imbalance = fractional_opt > 0
                         ? static_cast<double>(report.makespan) /
                               static_cast<double>(fractional_opt)
                         : 1.0;

  // Gini via the sorted-loads closed form:
  //   G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1) / n,  i = 1..n.
  std::vector<Size> sorted = report.loads;
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    total += static_cast<double>(sorted[i]);
  }
  const auto n = static_cast<double>(sorted.size());
  report.gini =
      total > 0 ? (2.0 * weighted) / (n * total) - (n + 1.0) / n : 0.0;
  return report;
}

LoadReport analyze_initial(const Instance& instance) {
  return analyze(instance, instance.initial);
}

std::string load_histogram(const LoadReport& report, int width) {
  assert(width > 0);
  std::string out;
  const double peak =
      std::max(1.0, static_cast<double>(report.makespan));
  for (std::size_t p = 0; p < report.loads.size(); ++p) {
    const auto bars = static_cast<int>(std::llround(
        static_cast<double>(report.loads[p]) / peak * width));
    out += "P" + std::to_string(p);
    out += std::string(p < 10 ? 2 : 1, ' ');
    out += "|";
    out += std::string(static_cast<std::size_t>(bars), '#');
    out += " " + std::to_string(report.loads[p]) + "\n";
  }
  return out;
}

}  // namespace lrb
