#include "core/assignment.h"

#include <algorithm>
#include <cassert>

namespace lrb {

std::vector<Size> loads(const Instance& instance,
                        std::span<const ProcId> assignment) {
  assert(assignment.size() == instance.num_jobs());
  std::vector<Size> result(instance.num_procs, 0);
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    assert(assignment[j] < instance.num_procs);
    result[assignment[j]] += instance.sizes[j];
  }
  return result;
}

Size makespan(const Instance& instance, std::span<const ProcId> assignment) {
  const auto l = loads(instance, assignment);
  if (l.empty()) return 0;
  return *std::max_element(l.begin(), l.end());
}

std::int64_t moves_used(const Instance& instance,
                        std::span<const ProcId> assignment) {
  assert(assignment.size() == instance.num_jobs());
  std::int64_t moves = 0;
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    if (assignment[j] != instance.initial[j]) ++moves;
  }
  return moves;
}

Cost relocation_cost(const Instance& instance,
                     std::span<const ProcId> assignment) {
  assert(assignment.size() == instance.num_jobs());
  Cost cost = 0;
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    if (assignment[j] != instance.initial[j]) cost += instance.move_costs[j];
  }
  return cost;
}

std::optional<std::string> validate(const Instance& instance,
                                    std::span<const ProcId> assignment) {
  if (assignment.size() != instance.num_jobs()) {
    return "assignment length (" + std::to_string(assignment.size()) +
           ") != number of jobs (" + std::to_string(instance.num_jobs()) + ")";
  }
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    if (assignment[j] >= instance.num_procs) {
      return "job " + std::to_string(j) + " assigned to out-of-range processor " +
             std::to_string(assignment[j]);
    }
  }
  return std::nullopt;
}

RebalanceResult finalize_result(const Instance& instance, Assignment assignment,
                                Size threshold) {
  assert(!validate(instance, assignment));
  RebalanceResult result;
  result.makespan = makespan(instance, assignment);
  result.moves = moves_used(instance, assignment);
  result.cost = relocation_cost(instance, assignment);
  result.threshold = threshold;
  result.assignment = std::move(assignment);
  return result;
}

RebalanceResult no_move_result(const Instance& instance) {
  return finalize_result(instance, instance.initial);
}

}  // namespace lrb
