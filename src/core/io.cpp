#include "core/io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <type_traits>

namespace lrb {
namespace {

constexpr const char* kInstanceMagic = "lrb-instance";
constexpr const char* kAssignmentMagic = "lrb-assignment";

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Token stream that skips '#'-to-end-of-line comments.
class TokenReader {
 public:
  explicit TokenReader(std::istream& is) : is_(is) {}

  bool next(std::string& token) {
    while (is_ >> token) {
      if (token[0] == '#') {
        std::string rest;
        std::getline(is_, rest);
        continue;
      }
      return true;
    }
    return false;
  }

  template <typename Int>
  bool next_int(Int& out) {
    std::string token;
    if (!next(token)) return false;
    std::int64_t value = 0;
    std::size_t pos = 0;
    try {
      value = std::stoll(token, &pos);
    } catch (...) {
      return false;
    }
    if (pos != token.size()) return false;
    // An unsigned target must not absorb a negative token: -1 would wrap to
    // a huge count and still pass the round-trip check below.
    if (std::is_unsigned_v<Int> && value < 0) return false;
    out = static_cast<Int>(value);
    return static_cast<std::int64_t>(out) == value;
  }

 private:
  std::istream& is_;
};

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << kInstanceMagic << " 1\n";
  os << "procs " << instance.num_procs << '\n';
  os << "jobs " << instance.num_jobs() << '\n';
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    os << instance.sizes[j] << ' ' << instance.move_costs[j] << ' '
       << instance.initial[j] << '\n';
  }
}

std::string instance_to_string(const Instance& instance) {
  std::ostringstream oss;
  write_instance(oss, instance);
  return oss.str();
}

std::optional<Instance> read_instance(std::istream& is, std::string* error) {
  TokenReader reader(is);
  std::string token;
  int version = 0;
  if (!reader.next(token) || token != kInstanceMagic ||
      !reader.next_int(version) || version != 1) {
    fail(error, "bad instance header (want 'lrb-instance 1')");
    return std::nullopt;
  }
  Instance inst;
  std::size_t n = 0;
  if (!reader.next(token) || token != "procs" ||
      !reader.next_int(inst.num_procs)) {
    fail(error, "bad 'procs' line");
    return std::nullopt;
  }
  if (!reader.next(token) || token != "jobs" || !reader.next_int(n)) {
    fail(error, "bad 'jobs' line");
    return std::nullopt;
  }
  // Grow incrementally instead of resize(n) up front: a lying header (jobs
  // count far beyond the actual data) must end in a "bad job line"
  // diagnostic, not an attempted multi-terabyte allocation.
  const std::size_t reserve = std::min<std::size_t>(n, 1 << 20);
  inst.sizes.reserve(reserve);
  inst.move_costs.reserve(reserve);
  inst.initial.reserve(reserve);
  for (std::size_t j = 0; j < n; ++j) {
    Size size = 0;
    Cost cost = 0;
    ProcId proc = 0;
    if (!reader.next_int(size) || !reader.next_int(cost) ||
        !reader.next_int(proc)) {
      fail(error, "bad job line " + std::to_string(j));
      return std::nullopt;
    }
    inst.sizes.push_back(size);
    inst.move_costs.push_back(cost);
    inst.initial.push_back(proc);
  }
  if (auto problem = validate(inst)) {
    fail(error, *problem);
    return std::nullopt;
  }
  return inst;
}

std::optional<Instance> instance_from_string(const std::string& text,
                                             std::string* error) {
  std::istringstream iss(text);
  return read_instance(iss, error);
}

void write_assignment(std::ostream& os, const Assignment& assignment) {
  os << kAssignmentMagic << " 1\n";
  os << "jobs " << assignment.size() << '\n';
  for (ProcId p : assignment) os << p << '\n';
}

std::optional<Assignment> read_assignment(std::istream& is,
                                          std::string* error) {
  TokenReader reader(is);
  std::string token;
  int version = 0;
  if (!reader.next(token) || token != kAssignmentMagic ||
      !reader.next_int(version) || version != 1) {
    fail(error, "bad assignment header (want 'lrb-assignment 1')");
    return std::nullopt;
  }
  std::size_t n = 0;
  if (!reader.next(token) || token != "jobs" || !reader.next_int(n)) {
    fail(error, "bad 'jobs' line");
    return std::nullopt;
  }
  Assignment assignment;
  assignment.reserve(std::min<std::size_t>(n, 1 << 20));
  for (std::size_t j = 0; j < n; ++j) {
    ProcId proc = 0;
    if (!reader.next_int(proc)) {
      fail(error, "bad assignment entry " + std::to_string(j));
      return std::nullopt;
    }
    assignment.push_back(proc);
  }
  return assignment;
}

}  // namespace lrb
