#include "core/lower_bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

namespace lrb {

Size average_load_bound(const Instance& instance) {
  const Size total = instance.total_size();
  const auto m = static_cast<Size>(instance.num_procs);
  return (total + m - 1) / m;  // ceil
}

Size max_job_bound(const Instance& instance) { return instance.max_job(); }

Size k_removal_bound(const Instance& instance, std::int64_t k) {
  // Per-processor jobs sorted descending; a max-heap of (load, proc) drives
  // the "largest job off the heaviest processor" loop.
  auto by_proc = instance.jobs_by_proc();
  std::vector<std::size_t> next(instance.num_procs, 0);
  std::vector<Size> load = instance.initial_loads();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      return instance.sizes[a] > instance.sizes[b];
    });
  }
  std::priority_queue<std::pair<Size, ProcId>> heap;
  for (ProcId p = 0; p < instance.num_procs; ++p) heap.emplace(load[p], p);

  for (std::int64_t step = 0; step < k; ++step) {
    // Pop stale entries (loads changed since push).
    while (!heap.empty() && heap.top().first != load[heap.top().second]) {
      heap.pop();
    }
    if (heap.empty()) break;
    const ProcId p = heap.top().second;
    if (next[p] >= by_proc[p].size()) {  // heaviest processor is empty: done
      break;
    }
    const JobId victim = by_proc[p][next[p]++];
    load[p] -= instance.sizes[victim];
    heap.emplace(load[p], p);
  }
  Size result = 0;
  for (ProcId p = 0; p < instance.num_procs; ++p) {
    result = std::max(result, load[p]);
  }
  return result;
}

Size budget_removal_bound(const Instance& instance, Cost budget) {
  // Per processor: jobs sorted by cost/size ascending (cheapest trimming
  // first) with prefix sums, so the fractional trim cost to any target T is
  // O(log n) per processor via binary search on the size prefix.
  struct ProcPlan {
    Size load = 0;
    std::vector<Size> size_prefix;    // cumulative size removed
    std::vector<double> cost_prefix;  // cumulative cost removed
  };
  std::vector<ProcPlan> plans(instance.num_procs);
  {
    auto by_proc = instance.jobs_by_proc();
    for (ProcId p = 0; p < instance.num_procs; ++p) {
      auto& jobs = by_proc[p];
      std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
        // cost_a / size_a < cost_b / size_b, cross-multiplied; size-0 jobs
        // are never worth removing (treat as infinitely expensive per unit).
        const auto sa = instance.sizes[a], sb = instance.sizes[b];
        const auto ca = instance.move_costs[a], cb = instance.move_costs[b];
        if (sa == 0 || sb == 0) return sb == 0 && sa != 0;
        return static_cast<double>(ca) * static_cast<double>(sb) <
               static_cast<double>(cb) * static_cast<double>(sa);
      });
      auto& plan = plans[p];
      plan.size_prefix.reserve(jobs.size() + 1);
      plan.cost_prefix.reserve(jobs.size() + 1);
      plan.size_prefix.push_back(0);
      plan.cost_prefix.push_back(0.0);
      for (JobId j : jobs) {
        plan.load += instance.sizes[j];
        plan.size_prefix.push_back(plan.size_prefix.back() + instance.sizes[j]);
        plan.cost_prefix.push_back(plan.cost_prefix.back() +
                                   static_cast<double>(instance.move_costs[j]));
      }
    }
  }

  // Fractional minimum cost to trim processor p's load to <= target.
  auto trim_cost = [&](const ProcPlan& plan, Size target) -> double {
    const Size need = plan.load - target;
    if (need <= 0) return 0.0;
    if (plan.size_prefix.back() < need) return 1e300;  // cannot trim enough
    const auto it = std::lower_bound(plan.size_prefix.begin(),
                                     plan.size_prefix.end(), need);
    const auto idx = static_cast<std::size_t>(it - plan.size_prefix.begin());
    if (plan.size_prefix[idx] == need) return plan.cost_prefix[idx];
    // Take jobs [0, idx-1] fully and a fraction of job idx-1 -> idx.
    const Size covered = plan.size_prefix[idx - 1];
    const Size slice = plan.size_prefix[idx] - covered;
    const double slice_cost = plan.cost_prefix[idx] - plan.cost_prefix[idx - 1];
    const double frac = static_cast<double>(need - covered) /
                        static_cast<double>(slice);
    return plan.cost_prefix[idx - 1] + frac * slice_cost;
  };

  auto feasible = [&](Size target) {
    double total = 0.0;
    for (const auto& plan : plans) {
      total += trim_cost(plan, target);
      if (total > static_cast<double>(budget) + 1e-9) return false;
    }
    return true;
  };

  Size lo = 0;
  Size hi = instance.initial_makespan();
  while (lo < hi) {
    const Size mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Size combined_lower_bound(const Instance& instance, std::int64_t k) {
  return std::max({average_load_bound(instance), max_job_bound(instance),
                   k_removal_bound(instance, k)});
}

}  // namespace lrb
