// The load rebalancing instance: n jobs with sizes and relocation costs,
// initially assigned to m processors (SPAA'03, Definition 1).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace lrb {

/// An immutable problem instance. `sizes[j]`, `move_costs[j]` and
/// `initial[j]` describe job j; `num_procs` is m. The unit-cost problem
/// (relocate at most k jobs) is the special case move_costs[j] == 1.
struct Instance {
  std::vector<Size> sizes;
  std::vector<Cost> move_costs;
  std::vector<ProcId> initial;
  ProcId num_procs = 0;

  [[nodiscard]] std::size_t num_jobs() const noexcept { return sizes.size(); }

  /// Sum of all job sizes (invariant under rebalancing).
  [[nodiscard]] Size total_size() const noexcept;

  /// Largest job size; 0 for an empty instance. A lower bound on any
  /// achievable makespan since jobs are indivisible.
  [[nodiscard]] Size max_job() const noexcept;

  /// Per-processor loads of the initial assignment.
  [[nodiscard]] std::vector<Size> initial_loads() const;

  /// Makespan of the initial assignment (the k = 0 answer).
  [[nodiscard]] Size initial_makespan() const;

  /// Job ids residing on each processor initially.
  [[nodiscard]] std::vector<std::vector<JobId>> jobs_by_proc() const;

  /// True if every job has unit relocation cost.
  [[nodiscard]] bool unit_costs() const noexcept;
};

/// Convenience constructor: unit costs, explicit per-job initial processors.
[[nodiscard]] Instance make_instance(std::vector<Size> sizes,
                                     std::vector<ProcId> initial,
                                     ProcId num_procs);

/// Convenience constructor with explicit per-job costs.
[[nodiscard]] Instance make_instance(std::vector<Size> sizes,
                                     std::vector<Cost> move_costs,
                                     std::vector<ProcId> initial,
                                     ProcId num_procs);

/// Structural validation: matching vector lengths, m >= 1, sizes >= 0,
/// costs >= 0, initial processors in range. Returns an error description or
/// nullopt when valid.
[[nodiscard]] std::optional<std::string> validate(const Instance& instance);

}  // namespace lrb
