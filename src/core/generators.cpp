#include "core/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lrb {
namespace {

std::vector<Size> draw_sizes(const GeneratorOptions& opt, Rng& rng) {
  assert(opt.min_size >= 0 && opt.min_size <= opt.max_size);
  std::vector<Size> sizes(opt.num_jobs);
  switch (opt.size_dist) {
    case SizeDistribution::kUniform:
      for (auto& s : sizes) s = rng.uniform_int(opt.min_size, opt.max_size);
      break;
    case SizeDistribution::kBimodal:
      for (auto& s : sizes) {
        if (rng.bernoulli(opt.bimodal_large_fraction)) {
          s = rng.uniform_int(opt.max_size * 10, opt.max_size * 20);
        } else {
          s = rng.uniform_int(opt.min_size, opt.max_size);
        }
      }
      break;
    case SizeDistribution::kZipf: {
      // The sampler materializes one table entry per distinct value, so cap
      // the rank span: beyond ~10^6 distinct values the tail ranks carry
      // negligible mass and a full-range table would be gigabytes.
      const auto span = static_cast<std::size_t>(
          std::min<Size>(opt.max_size - opt.min_size + 1, Size{1} << 20));
      const ZipfSampler sampler(span, opt.zipf_alpha);
      // Rank 0 (most likely) maps to the largest size: a few huge sites and
      // a long tail of small ones, inverted so hot items are big.
      for (auto& s : sizes) {
        s = opt.max_size - static_cast<Size>(sampler(rng));
      }
      break;
    }
    case SizeDistribution::kExponential: {
      const double mean =
          0.5 * static_cast<double>(opt.min_size + opt.max_size);
      for (auto& s : sizes) {
        const double v = rng.exponential(1.0 / std::max(1.0, mean));
        s = std::clamp(static_cast<Size>(std::llround(v)), opt.min_size,
                       opt.max_size * 10);
      }
      break;
    }
    case SizeDistribution::kUnit:
      std::fill(sizes.begin(), sizes.end(), Size{1});
      break;
  }
  return sizes;
}

std::vector<ProcId> draw_placement(const GeneratorOptions& opt,
                                   const std::vector<Size>& sizes, Rng& rng) {
  const ProcId m = opt.num_procs;
  std::vector<ProcId> initial(sizes.size(), 0);
  switch (opt.placement) {
    case PlacementPolicy::kRandom:
      for (auto& p : initial) {
        p = static_cast<ProcId>(rng.uniform_int(0, static_cast<Size>(m) - 1));
      }
      break;
    case PlacementPolicy::kHotspot: {
      const ProcId hot = std::max<ProcId>(
          1, static_cast<ProcId>(std::llround(opt.hotspot_fraction * m)));
      for (auto& p : initial) {
        if (rng.bernoulli(opt.hotspot_mass)) {
          p = static_cast<ProcId>(rng.uniform_int(0, static_cast<Size>(hot) - 1));
        } else {
          p = static_cast<ProcId>(rng.uniform_int(0, static_cast<Size>(m) - 1));
        }
      }
      break;
    }
    case PlacementPolicy::kZipfProcs: {
      const ZipfSampler sampler(m, opt.zipf_alpha);
      for (auto& p : initial) p = static_cast<ProcId>(sampler(rng));
      break;
    }
    case PlacementPolicy::kBalanced: {
      // LPT: biggest jobs first onto the least-loaded processor.
      std::vector<std::size_t> order(sizes.size());
      for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sizes[a] > sizes[b];
      });
      std::vector<Size> load(m, 0);
      for (std::size_t j : order) {
        const auto argmin = static_cast<ProcId>(
            std::min_element(load.begin(), load.end()) - load.begin());
        initial[j] = argmin;
        load[argmin] += sizes[j];
      }
      break;
    }
    case PlacementPolicy::kSingleProc:
      std::fill(initial.begin(), initial.end(), ProcId{0});
      break;
  }
  return initial;
}

std::vector<Cost> draw_costs(const GeneratorOptions& opt,
                             const std::vector<Size>& sizes, Rng& rng) {
  std::vector<Cost> costs(sizes.size(), 1);
  switch (opt.cost_model) {
    case CostModel::kUnit:
      break;
    case CostModel::kUniform:
      for (auto& c : costs) c = rng.uniform_int(opt.min_cost, opt.max_cost);
      break;
    case CostModel::kProportional:
      for (std::size_t j = 0; j < costs.size(); ++j) {
        costs[j] = std::max<Cost>(1, sizes[j]);
      }
      break;
    case CostModel::kInverse: {
      const Size max_size =
          sizes.empty() ? 1 : *std::max_element(sizes.begin(), sizes.end());
      for (std::size_t j = 0; j < costs.size(); ++j) {
        costs[j] = max_size - sizes[j] + 1;
      }
      break;
    }
    case CostModel::kTwoValued:
      for (auto& c : costs) {
        c = rng.bernoulli(opt.two_value_p_fraction) ? opt.two_value_p
                                                    : opt.two_value_q;
      }
      break;
  }
  return costs;
}

}  // namespace

Instance random_instance(const GeneratorOptions& options, std::uint64_t seed) {
  assert(options.num_procs >= 1);
  Rng rng(seed);
  Instance inst;
  inst.num_procs = options.num_procs;
  inst.sizes = draw_sizes(options, rng);
  inst.initial = draw_placement(options, inst.sizes, rng);
  inst.move_costs = draw_costs(options, inst.sizes, rng);
  assert(!validate(inst));
  return inst;
}

KnownOptInstance greedy_tight_instance(ProcId m) {
  assert(m >= 2);
  const auto m64 = static_cast<Size>(m);
  std::vector<Size> sizes;
  std::vector<ProcId> initial;
  sizes.push_back(m64);  // the big job, on processor 0
  initial.push_back(0);
  for (ProcId p = 0; p < m; ++p) {
    for (Size i = 0; i < m64 - 1; ++i) {  // m - 1 unit jobs everywhere
      sizes.push_back(1);
      initial.push_back(p);
    }
  }
  KnownOptInstance result;
  result.instance = make_instance(std::move(sizes), std::move(initial), m);
  result.k = m64 - 1;
  // Moving the m - 1 unit jobs off processor 0 (one to each other processor)
  // leaves every load exactly m.
  result.opt = m64;
  return result;
}

KnownOptInstance partition_tight_instance() {
  // Paper's example scaled by 2 to stay integral: processor 0 holds {1, 2},
  // processor 1 holds {1}; k = 1. Moving the size-1 job off processor 0
  // yields loads {2, 2}, so OPT = 2. PARTITION at threshold 2 computes
  // L_T = 1, L_E = 0, a = (0, 0), b = (1, 0), c = (-1, 0), selects processor
  // 0, removes nothing, and returns the initial makespan 3 - ratio 1.5.
  KnownOptInstance result;
  result.instance =
      make_instance({Size{1}, Size{2}, Size{1}}, {0, 0, 1}, ProcId{2});
  result.k = 1;
  result.opt = 2;
  return result;
}

Instance unit_instance(const std::vector<std::int64_t>& counts_per_proc) {
  assert(!counts_per_proc.empty());
  std::vector<Size> sizes;
  std::vector<ProcId> initial;
  for (std::size_t p = 0; p < counts_per_proc.size(); ++p) {
    assert(counts_per_proc[p] >= 0);
    for (std::int64_t i = 0; i < counts_per_proc[p]; ++i) {
      sizes.push_back(1);
      initial.push_back(static_cast<ProcId>(p));
    }
  }
  return make_instance(std::move(sizes), std::move(initial),
                       static_cast<ProcId>(counts_per_proc.size()));
}

Instance mixed_corpus_instance(std::size_t index, std::uint64_t seed) {
  static constexpr SizeDistribution kDists[] = {
      SizeDistribution::kUniform, SizeDistribution::kBimodal,
      SizeDistribution::kZipf, SizeDistribution::kExponential,
      SizeDistribution::kUnit};
  static constexpr PlacementPolicy kPlacements[] = {
      PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
      PlacementPolicy::kZipfProcs, PlacementPolicy::kBalanced,
      PlacementPolicy::kSingleProc};
  static constexpr std::size_t kJobs[] = {32, 128, 512};
  static constexpr ProcId kProcs[] = {4, 8, 16};

  GeneratorOptions options;
  options.size_dist = kDists[index % std::size(kDists)];
  options.placement =
      kPlacements[(index / std::size(kDists)) % std::size(kPlacements)];
  const std::size_t tier =
      (index / (std::size(kDists) * std::size(kPlacements))) % std::size(kJobs);
  options.num_jobs = kJobs[tier];
  options.num_procs = kProcs[tier];
  return random_instance(options, seed + index);
}

}  // namespace lrb
