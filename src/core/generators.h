// Synthetic instance generators: random workload families used by the
// experiment suite, plus the paper's adversarial tightness families
// (Theorem 1's GREEDY-tight instance and Theorem 2's PARTITION-tight
// instance).
//
// All generators are deterministic in (options, seed).

#pragma once

#include <cstdint>

#include "core/instance.h"
#include "util/rng.h"

namespace lrb {

enum class SizeDistribution {
  kUniform,      ///< uniform integer in [min_size, max_size]
  kBimodal,      ///< small uniform in [min_size, max_size], large = 10x range
  kZipf,         ///< power-law over [min_size, max_size] with zipf_alpha
  kExponential,  ///< geometric-ish with mean (min_size + max_size)/2, clamped
  kUnit,         ///< all jobs size 1 (the Rudolph et al. model in the intro)
};

enum class PlacementPolicy {
  kRandom,      ///< independently uniform processor per job
  kHotspot,     ///< hotspot_mass of jobs land on hotspot_fraction of procs
  kZipfProcs,   ///< processor popularity is Zipf(zipf_alpha)
  kBalanced,    ///< LPT-style near-balanced start (little rebalancing needed)
  kSingleProc,  ///< everything piled on processor 0 (worst case)
};

enum class CostModel {
  kUnit,          ///< all move costs 1 (the k-move problem)
  kUniform,       ///< uniform integer in [min_cost, max_cost]
  kProportional,  ///< cost == size (bytes-moved model for website migration)
  kInverse,       ///< cost = max size - size + 1 (small jobs expensive)
  kTwoValued,     ///< cost in {two_value_p, two_value_q} (Theorem 6 regime)
};

struct GeneratorOptions {
  std::size_t num_jobs = 100;
  ProcId num_procs = 10;

  SizeDistribution size_dist = SizeDistribution::kUniform;
  Size min_size = 1;
  Size max_size = 100;
  double zipf_alpha = 1.2;
  double bimodal_large_fraction = 0.1;

  PlacementPolicy placement = PlacementPolicy::kRandom;
  double hotspot_fraction = 0.2;
  double hotspot_mass = 0.7;

  CostModel cost_model = CostModel::kUnit;
  Cost min_cost = 1;
  Cost max_cost = 10;
  Cost two_value_p = 1;
  Cost two_value_q = 10;
  double two_value_p_fraction = 0.5;
};

/// Generates a random instance according to `options`. Deterministic in
/// (options, seed).
[[nodiscard]] Instance random_instance(const GeneratorOptions& options,
                                       std::uint64_t seed);

/// A known-OPT adversarial instance together with its parameters.
struct KnownOptInstance {
  Instance instance;
  std::int64_t k = 0;  ///< move budget the family is defined for
  Size opt = 0;        ///< optimal makespan under that budget
};

/// Theorem 1's tight family for GREEDY: one job of size m plus m^2 - m unit
/// jobs; processor 0 holds the big job and m - 1 units, every other processor
/// holds m - 1 units... with k = m - 1 moves OPT = m while GREEDY can return
/// 2m - 1 (ratio -> 2 - 1/m). Requires m >= 2.
[[nodiscard]] KnownOptInstance greedy_tight_instance(ProcId m);

/// Theorem 2's tight family for PARTITION (integer-scaled by 2): two
/// processors, jobs {1, 2} on processor 0 and {1} on processor 1, k = 1.
/// OPT = 2 but PARTITION makes no moves and returns 3 (ratio 1.5).
[[nodiscard]] KnownOptInstance partition_tight_instance();

/// Builds a unit-size-job instance with the given per-processor job counts
/// (the equal-size model of Rudolph et al. / Ghosh et al. from the intro).
[[nodiscard]] Instance unit_instance(const std::vector<std::int64_t>& counts_per_proc);

/// The mixed benchmark corpus shared by lrb_batch and lrb_load: every size
/// distribution crossed with every placement policy, cycled over three
/// (jobs, procs) tiers. Deterministic in (index, seed), so a load
/// generator and a checker can regenerate instance `index` independently.
[[nodiscard]] Instance mixed_corpus_instance(std::size_t index,
                                             std::uint64_t seed);

}  // namespace lrb
