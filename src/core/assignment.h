// Assignments (solutions) and their exact accounting: loads, makespan,
// moves, relocation cost, and validation against an Instance.

#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace lrb {

/// A complete solution: final processor of every job.
using Assignment = std::vector<ProcId>;

/// Per-processor loads under `assignment`.
[[nodiscard]] std::vector<Size> loads(const Instance& instance,
                                      std::span<const ProcId> assignment);

/// Maximum processor load under `assignment`.
[[nodiscard]] Size makespan(const Instance& instance,
                            std::span<const ProcId> assignment);

/// Number of jobs whose final processor differs from their initial one.
[[nodiscard]] std::int64_t moves_used(const Instance& instance,
                                      std::span<const ProcId> assignment);

/// Total relocation cost: sum of move_costs[j] over relocated jobs j.
[[nodiscard]] Cost relocation_cost(const Instance& instance,
                                   std::span<const ProcId> assignment);

/// Structural validation of a solution: one entry per job, all in range.
[[nodiscard]] std::optional<std::string> validate(
    const Instance& instance, std::span<const ProcId> assignment);

/// Result of any rebalancing algorithm in this library, with the exact
/// quantities the paper's guarantees speak about.
struct RebalanceResult {
  Assignment assignment;
  Size makespan = 0;         ///< max processor load of `assignment`
  std::int64_t moves = 0;    ///< #jobs relocated (final != initial)
  Cost cost = 0;             ///< total relocation cost
  Size threshold = 0;        ///< OPT-guess the algorithm committed to (0 if n/a)
};

/// Fills in makespan / moves / cost for `assignment` and returns the result.
[[nodiscard]] RebalanceResult finalize_result(const Instance& instance,
                                              Assignment assignment,
                                              Size threshold = 0);

/// The identity solution (no job moves): the k = 0 / B = 0 answer.
[[nodiscard]] RebalanceResult no_move_result(const Instance& instance);

}  // namespace lrb
