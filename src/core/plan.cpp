#include "core/plan.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lrb {
namespace {

std::vector<Migration> collect_migrations(const Instance& instance,
                                          std::span<const ProcId> target) {
  std::vector<Migration> migrations;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    if (target[j] != instance.initial[j]) {
      migrations.push_back({static_cast<JobId>(j), instance.initial[j],
                            target[j], instance.sizes[j],
                            instance.move_costs[j]});
    }
  }
  return migrations;
}

/// Greedy monotone ordering: repeatedly apply the pending migration that
/// minimizes the makespan after its application (ties: larger size first,
/// then job id). O(steps^2 * log m) with a running load vector.
std::vector<Migration> monotone_order(const Instance& instance,
                                      std::vector<Migration> pending) {
  std::vector<Size> load = instance.initial_loads();
  std::vector<Migration> ordered;
  ordered.reserve(pending.size());
  while (!pending.empty()) {
    std::size_t best = 0;
    Size best_makespan = kInfSize;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto& mig = pending[i];
      load[mig.from] -= mig.size;
      load[mig.to] += mig.size;
      const Size makespan = *std::max_element(load.begin(), load.end());
      load[mig.from] += mig.size;
      load[mig.to] -= mig.size;
      if (makespan < best_makespan ||
          (makespan == best_makespan &&
           (pending[i].size > pending[best].size ||
            (pending[i].size == pending[best].size &&
             pending[i].job < pending[best].job)))) {
        best_makespan = makespan;
        best = i;
      }
    }
    const Migration chosen = pending[best];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
    load[chosen.from] -= chosen.size;
    load[chosen.to] += chosen.size;
    ordered.push_back(chosen);
  }
  return ordered;
}

}  // namespace

MigrationPlan make_plan(const Instance& instance,
                        std::span<const ProcId> target, PlanOrder order) {
  assert(!validate(instance, target));
  MigrationPlan plan;
  plan.steps = collect_migrations(instance, target);
  switch (order) {
    case PlanOrder::kArbitrary:
      break;  // job-id order by construction
    case PlanOrder::kLargestFirst:
      std::stable_sort(plan.steps.begin(), plan.steps.end(),
                       [](const Migration& x, const Migration& y) {
                         return x.size > y.size;
                       });
      break;
    case PlanOrder::kCheapestFirst:
      std::stable_sort(plan.steps.begin(), plan.steps.end(),
                       [](const Migration& x, const Migration& y) {
                         return x.cost < y.cost;
                       });
      break;
    case PlanOrder::kMonotone:
      plan.steps = monotone_order(instance, std::move(plan.steps));
      break;
  }

  // Replay once to fill in the metrics.
  std::vector<Size> load = instance.initial_loads();
  plan.initial_makespan =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  plan.peak_makespan = plan.initial_makespan;
  for (const auto& mig : plan.steps) {
    load[mig.from] -= mig.size;
    load[mig.to] += mig.size;
    plan.peak_makespan = std::max(
        plan.peak_makespan, *std::max_element(load.begin(), load.end()));
    plan.total_cost += mig.cost;
  }
  plan.final_makespan =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  assert(plan.final_makespan == makespan(instance, target));
  return plan;
}

std::vector<Size> replay_loads(const Instance& instance,
                               const MigrationPlan& plan, std::size_t prefix) {
  assert(prefix <= plan.steps.size());
  std::vector<Size> load = instance.initial_loads();
  for (std::size_t i = 0; i < prefix; ++i) {
    const auto& mig = plan.steps[i];
    load[mig.from] -= mig.size;
    load[mig.to] += mig.size;
  }
  return load;
}

}  // namespace lrb
