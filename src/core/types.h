// Fundamental scalar types shared across the lrb library.
//
// Sizes, loads, makespans and relocation costs are exact 64-bit integers so
// that every approximation-ratio experiment compares exact quantities;
// floating point is confined to the discretization layers of the PTAS/FPTAS.

#pragma once

#include <cstdint>
#include <limits>

namespace lrb {

/// Job size / processor load / makespan.
using Size = std::int64_t;

/// Relocation cost. The unit-cost problem uses cost 1 per job.
using Cost = std::int64_t;

/// Index of a job within an Instance: [0, num_jobs).
using JobId = std::uint32_t;

/// Index of a processor within an Instance: [0, num_procs).
using ProcId = std::uint32_t;

/// Sentinel for "no processor" (used by partial configurations).
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();

/// "Effectively infinite" size/cost used by solvers for infeasible states.
inline constexpr Size kInfSize = std::numeric_limits<Size>::max() / 4;
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

}  // namespace lrb
