#include "core/instance.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lrb {

Size Instance::total_size() const noexcept {
  return std::accumulate(sizes.begin(), sizes.end(), Size{0});
}

Size Instance::max_job() const noexcept {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

std::vector<Size> Instance::initial_loads() const {
  std::vector<Size> loads(num_procs, 0);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    assert(initial[j] < num_procs);
    loads[initial[j]] += sizes[j];
  }
  return loads;
}

Size Instance::initial_makespan() const {
  const auto loads = initial_loads();
  if (loads.empty()) return 0;
  return *std::max_element(loads.begin(), loads.end());
}

std::vector<std::vector<JobId>> Instance::jobs_by_proc() const {
  std::vector<std::vector<JobId>> by_proc(num_procs);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    by_proc[initial[j]].push_back(static_cast<JobId>(j));
  }
  return by_proc;
}

bool Instance::unit_costs() const noexcept {
  return std::all_of(move_costs.begin(), move_costs.end(),
                     [](Cost c) { return c == 1; });
}

Instance make_instance(std::vector<Size> sizes, std::vector<ProcId> initial,
                       ProcId num_procs) {
  Instance inst;
  inst.move_costs.assign(sizes.size(), 1);
  inst.sizes = std::move(sizes);
  inst.initial = std::move(initial);
  inst.num_procs = num_procs;
  assert(!validate(inst));
  return inst;
}

Instance make_instance(std::vector<Size> sizes, std::vector<Cost> move_costs,
                       std::vector<ProcId> initial, ProcId num_procs) {
  Instance inst;
  inst.sizes = std::move(sizes);
  inst.move_costs = std::move(move_costs);
  inst.initial = std::move(initial);
  inst.num_procs = num_procs;
  assert(!validate(inst));
  return inst;
}

std::optional<std::string> validate(const Instance& instance) {
  if (instance.num_procs == 0) return "instance has no processors";
  const std::size_t n = instance.sizes.size();
  if (instance.move_costs.size() != n) {
    return "move_costs length (" + std::to_string(instance.move_costs.size()) +
           ") != number of jobs (" + std::to_string(n) + ")";
  }
  if (instance.initial.size() != n) {
    return "initial length (" + std::to_string(instance.initial.size()) +
           ") != number of jobs (" + std::to_string(n) + ")";
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (instance.sizes[j] < 0) {
      return "job " + std::to_string(j) + " has negative size";
    }
    if (instance.move_costs[j] < 0) {
      return "job " + std::to_string(j) + " has negative move cost";
    }
    if (instance.initial[j] >= instance.num_procs) {
      return "job " + std::to_string(j) + " initially on out-of-range processor " +
             std::to_string(instance.initial[j]);
    }
  }
  return std::nullopt;
}

}  // namespace lrb
