// Embedded metrics: relaxed-atomic counters, fixed-bucket latency
// histograms with exact percentiles, and a registry that snapshots to JSON.
//
// Hot-path contract: Counter::add and Histogram::record are lock-free
// (relaxed atomics only) and never allocate; snapshotting takes the
// registry's registration mutex but never blocks a writer, so recording
// stays wait-free while a snapshot is being cut. Metric objects are
// registered once (cold path, mutexed) and live for the registry's
// lifetime; hot paths hold plain references.
//
// Percentiles are exact, not bucket-interpolated: each histogram keeps a
// bounded reservoir of raw samples (a ring over the most recent
// `reservoir_capacity` values) and the snapshot sorts it and calls
// lrb::percentile_sorted. Up to `reservoir_capacity` recorded samples the
// reservoir holds every sample, so p50/p90/p99 are exact over the full
// history; past that they are exact over the retained window. The fixed
// log-scale buckets cover the full (unbounded) history for rate/shape
// dashboards.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lrb::obs {

/// Monotone event counter. add() is wait-free; value() is a relaxed load
/// (snapshots tolerate being a few events behind concurrent writers).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed level metric for quantities that go up AND down (resident cache
/// bytes, live entries). Same hot-path contract as Counter: wait-free
/// relaxed atomics, no allocation.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Upper bounds (inclusive) of the fixed latency buckets, in milliseconds;
/// the last bucket is the +inf overflow. Shared by every histogram so
/// snapshots are comparable across metrics.
inline constexpr double kLatencyBucketBoundsMs[] = {
    0.01, 0.02, 0.05, 0.1, 0.2,  0.5,  1.0,  2.0,   5.0,   10.0,
    20.0, 50.0, 100., 200., 500., 1e3,  2e3,  5e3,   1e4};
inline constexpr std::size_t kLatencyBuckets =
    sizeof(kLatencyBucketBoundsMs) / sizeof(double) + 1;  // + overflow

struct HistogramSnapshot {
  std::uint64_t count = 0;      ///< total samples ever recorded
  std::uint64_t retained = 0;   ///< reservoir samples the percentiles cover
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;            ///< over the retained reservoir
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::uint64_t buckets[kLatencyBuckets] = {};
};

/// Fixed-bucket latency histogram with an exact-percentile reservoir.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoir = 8192;

  explicit Histogram(std::size_t reservoir_capacity = kDefaultReservoir);

  /// Records one sample (milliseconds). Wait-free: one fetch_add plus two
  /// relaxed stores; negative samples are clamped to 0.
  void record(double ms) noexcept;

  /// Cuts a consistent-enough snapshot without blocking writers. Samples
  /// racing with the snapshot may be missed; committed samples are never
  /// misread (slots carry a sentinel until their value store lands).
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  // Samples are stored as bit-cast uint64 with an all-ones sentinel for
  // "slot claimed but value not yet visible", so a racing snapshot can
  // skip in-flight slots instead of reading garbage.
  static constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

  std::atomic<std::uint64_t> count_{0};
  std::vector<std::atomic<std::uint64_t>> reservoir_;
  std::atomic<std::uint64_t> bucket_counts_[kLatencyBuckets] = {};
};

/// Named metrics for one process (or one Server in tests). counter() /
/// histogram() register on first use under a mutex and return a stable
/// reference; hot paths call them once at setup and keep the reference.
class Registry {
 public:
  /// The process-wide default registry (what the tools export).
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::size_t reservoir_capacity = Histogram::kDefaultReservoir);

  /// Snapshot of every registered metric as a stable-key-order JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// retained, min, max, mean, p50, p90, p99, buckets: [...]}}}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;  // guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lrb::obs
