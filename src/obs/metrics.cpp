#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/stats.h"
#include "util/version.h"

namespace lrb::obs {

namespace {

std::size_t bucket_index(double ms) noexcept {
  const auto* begin = std::begin(kLatencyBucketBoundsMs);
  const auto* end = std::end(kLatencyBucketBoundsMs);
  return static_cast<std::size_t>(std::lower_bound(begin, end, ms) - begin);
}

}  // namespace

Histogram::Histogram(std::size_t reservoir_capacity)
    : reservoir_(std::max<std::size_t>(1, reservoir_capacity)) {
  for (auto& slot : reservoir_) {
    slot.store(kEmptySlot, std::memory_order_relaxed);
  }
}

void Histogram::record(double ms) noexcept {
  if (!(ms >= 0.0)) ms = 0.0;  // clamps negatives and NaN
  const std::uint64_t seq = count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = std::bit_cast<std::uint64_t>(ms);
  if (bits == kEmptySlot) bits = std::bit_cast<std::uint64_t>(0.0);
  reservoir_[seq % reservoir_.size()].store(bits, std::memory_order_relaxed);
  bucket_counts_[bucket_index(ms)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    snap.buckets[b] = bucket_counts_[b].load(std::memory_order_relaxed);
  }
  std::vector<double> samples;
  const std::size_t live = std::min<std::uint64_t>(snap.count, reservoir_.size());
  samples.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    const std::uint64_t bits = reservoir_[i].load(std::memory_order_relaxed);
    if (bits == kEmptySlot) continue;  // claimed but not yet stored
    samples.push_back(std::bit_cast<double>(bits));
  }
  snap.retained = samples.size();
  if (samples.empty()) return snap;
  std::sort(samples.begin(), samples.end());
  snap.min = samples.front();
  snap.max = samples.back();
  double sum = 0.0;
  for (double s : samples) sum += s;
  snap.mean = sum / static_cast<double>(samples.size());
  snap.p50 = percentile_sorted(samples, 0.50);
  snap.p90 = percentile_sorted(samples, 0.90);
  snap.p99 = percentile_sorted(samples, 0.99);
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::size_t reservoir_capacity) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(reservoir_capacity);
  return *slot;
}

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  // The schema tag lets Stats consumers detect incompatible snapshot
  // shapes; new metric rows are additive and do NOT bump it
  // (docs/serving.md).
  os << "{\n  \"schema\": \"" << kStatsSchema << "\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << gauge->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->snapshot();
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << s.count << ", \"retained\": " << s.retained << ", \"min\": "
       << s.min << ", \"max\": " << s.max << ", \"mean\": " << s.mean
       << ",\n      \"p50\": " << s.p50 << ", \"p90\": " << s.p90
       << ", \"p99\": " << s.p99 << ", \"buckets\": [";
    for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
      os << (b ? ", " : "") << s.buckets[b];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace lrb::obs
