#include "check/certify.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "core/lower_bounds.h"

namespace lrb {
namespace {

/// a * b with saturation instead of UB on overflow. Bounds in this library
/// stay far below the saturation point (sizes <= kInfSize / 4), so a
/// saturated product only ever appears on adversarial hand-made inputs,
/// where saturating keeps the comparison direction conservative.
[[nodiscard]] std::int64_t saturating_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return (a < 0) == (b < 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

[[nodiscard]] std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return a > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

void add_violation(SolutionCertificate& certificate, ViolationKind kind,
                   std::string detail) {
  certificate.violations.push_back(Violation{kind, std::move(detail)});
}

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kStructure: return "structure";
    case ViolationKind::kMakespanMismatch: return "makespan-mismatch";
    case ViolationKind::kMovesMismatch: return "moves-mismatch";
    case ViolationKind::kCostMismatch: return "cost-mismatch";
    case ViolationKind::kMoveBudget: return "move-budget";
    case ViolationKind::kCostBudget: return "cost-budget";
    case ViolationKind::kBelowLowerBound: return "below-lower-bound";
    case ViolationKind::kApproxBound: return "approx-bound";
    case ViolationKind::kRatioVsExact: return "ratio-vs-exact";
    case ViolationKind::kExactDisagreement: return "exact-disagreement";
  }
  return "unknown";
}

std::string SolutionCertificate::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) oss << '\n';
    oss << '[' << lrb::to_string(violations[i].kind) << "] "
        << violations[i].detail;
  }
  return oss.str();
}

SolutionCertificate certify_solution(const Instance& instance,
                                     const RebalanceResult& result,
                                     const CertifyOptions& options) {
  SolutionCertificate certificate;

  if (const auto problem = validate(instance)) {
    add_violation(certificate, ViolationKind::kStructure,
                  "invalid instance: " + *problem);
    return certificate;
  }
  if (const auto problem = validate(instance, result.assignment)) {
    add_violation(certificate, ViolationKind::kStructure,
                  "invalid assignment: " + *problem);
    return certificate;
  }

  // Recompute every reported quantity from the assignment alone.
  certificate.recomputed_makespan = makespan(instance, result.assignment);
  certificate.recomputed_moves = moves_used(instance, result.assignment);
  certificate.recomputed_cost = relocation_cost(instance, result.assignment);

  if (result.makespan != certificate.recomputed_makespan) {
    std::ostringstream oss;
    oss << "reported makespan " << result.makespan << " but assignment has "
        << certificate.recomputed_makespan;
    add_violation(certificate, ViolationKind::kMakespanMismatch, oss.str());
  }
  if (result.moves != certificate.recomputed_moves) {
    std::ostringstream oss;
    oss << "reported " << result.moves << " moves but assignment has "
        << certificate.recomputed_moves;
    add_violation(certificate, ViolationKind::kMovesMismatch, oss.str());
  }
  if (result.cost != certificate.recomputed_cost) {
    std::ostringstream oss;
    oss << "reported cost " << result.cost << " but assignment has "
        << certificate.recomputed_cost;
    add_violation(certificate, ViolationKind::kCostMismatch, oss.str());
  }

  if (certificate.recomputed_moves > options.max_moves) {
    std::ostringstream oss;
    oss << certificate.recomputed_moves << " moves exceed the budget k = "
        << options.max_moves;
    add_violation(certificate, ViolationKind::kMoveBudget, oss.str());
  }
  if (certificate.recomputed_cost > options.budget) {
    std::ostringstream oss;
    oss << "relocation cost " << certificate.recomputed_cost
        << " exceeds the budget B = " << options.budget;
    add_violation(certificate, ViolationKind::kCostBudget, oss.str());
  }

  if (options.check_lower_bound && instance.num_procs > 0) {
    const auto n = static_cast<std::int64_t>(instance.num_jobs());
    // A k-move solution has makespan >= OPT(k) >= combined_lower_bound(k);
    // a budget-B solution additionally >= budget_removal_bound(B).
    const std::int64_t k_eff = std::min(options.max_moves, n);
    Size lower = combined_lower_bound(instance, k_eff);
    std::string which = "combined_lower_bound(k=" + std::to_string(k_eff) + ")";
    if (options.budget != kInfCost) {
      const Size budget_lower = budget_removal_bound(instance, options.budget);
      if (budget_lower > lower) {
        lower = budget_lower;
        which =
            "budget_removal_bound(B=" + std::to_string(options.budget) + ")";
      }
    }
    certificate.lower_bound = lower;
    if (certificate.recomputed_makespan < lower) {
      std::ostringstream oss;
      oss << "makespan " << certificate.recomputed_makespan
          << " beats the certified lower bound " << lower << " (" << which
          << ")";
      add_violation(certificate, ViolationKind::kBelowLowerBound, oss.str());
    }
  }

  if (options.bound) {
    const RatioBound& bound = *options.bound;
    // den * makespan <= num * reference + den * additive, exactly.
    const std::int64_t lhs =
        saturating_mul(bound.den, certificate.recomputed_makespan);
    const std::int64_t rhs =
        saturating_add(saturating_mul(bound.num, bound.reference),
                       saturating_mul(bound.den, bound.additive));
    if (lhs > rhs) {
      std::ostringstream oss;
      oss << "makespan " << certificate.recomputed_makespan << " > ("
          << bound.num << "/" << bound.den << ") * "
          << (bound.reference_name.empty() ? "reference" : bound.reference_name)
          << " = " << bound.num << "/" << bound.den << " * " << bound.reference;
      if (bound.additive != 0) oss << " + " << bound.additive;
      add_violation(certificate, ViolationKind::kApproxBound, oss.str());
    }
  }

  return certificate;
}

CertifyOptions roster_certify_options(const std::string& algorithm,
                                      const Instance& instance, std::int64_t k,
                                      const RebalanceResult& result) {
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  const auto n = static_cast<std::int64_t>(instance.num_jobs());
  CertifyOptions options;
  options.max_moves = k;

  if (algorithm == "none") {
    // The identity never moves and never changes the makespan.
    options.max_moves = 0;
    options.bound = RatioBound{1, 1, instance.initial_makespan(), 0,
                               "initial makespan"};
  } else if (algorithm == "greedy" || algorithm == "best-of") {
    // Theorem 1's mechanism is a-priori checkable: after Step 1 the max load
    // is the Lemma 1 bound (<= lb), and each Step 2 placement lands on a
    // processor of load <= (W - s) / m, so every final load is at most
    // lb + (1 - 1/m) * lb. best-of returns the better of greedy and
    // m-partition, hence satisfies greedy's bound too.
    if (m > 0) {
      options.bound = RatioBound{2 * m - 1, m, combined_lower_bound(instance, k),
                                 0, "combined_lower_bound"};
    }
  } else if (algorithm == "m-partition" || algorithm == "mp-ls") {
    // Theorem 3's mechanism: PARTITION at the accepted threshold T (>= the
    // scan's certified starting lower bound >= max job) leaves every load
    // <= 1.5 * T. Local search only ever lowers the makespan.
    if (result.threshold > 0) {
      options.bound =
          RatioBound{3, 2, result.threshold, 0, "accepted threshold"};
    }
  } else if (algorithm == "lpt-full") {
    // Graham's bound for the unbounded-move reference schedule.
    options.max_moves = kInfSize;
    if (m > 0) {
      options.bound = RatioBound{2 * m - 1, m, combined_lower_bound(instance, n),
                                 0, "combined_lower_bound"};
    }
  }
  return options;
}

}  // namespace lrb
