// Reference implementation of the §4 PTAS configuration DP.
//
// This is the pre-overhaul engine, retained verbatim for differential
// checking: std::string state keys, one std::unordered_map per layer, full
// per-node prev/choice storage, linear class_of, and no branch-and-bound.
// The only change from the historical code is that each layer additionally
// keeps its states in a side vector so iteration is in *insertion order* -
// the canonical order the production engine (algo/ptas.cpp) also uses. That
// makes every observable of the two engines comparable bit-for-bit:
// acceptance decision, cost, state count (including the exact count at
// which a state_limit abort fires), and the reconstructed assignment.
//
// tools/lrb_fuzz --algo ptas and tests/test_ptas_dp.cpp drive both engines
// over the shared guess sequence (ptas_scan_start / ptas_next_guess /
// ptas_scan_stop) and fail on any divergence.

#pragma once

#include <cstddef>

#include "algo/ptas.h"
#include "core/instance.h"

namespace lrb {

/// Evaluates one guess with the reference DP. Mirrors
/// ptas_probe_guess(..., reconstruct=true) field for field.
[[nodiscard]] PtasGuessOutcome ptas_reference_guess(const Instance& instance,
                                                    Size guess, double eps,
                                                    Cost budget,
                                                    std::size_t state_limit);

}  // namespace lrb
