#include "check/ptas_reference.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lrb {
namespace {

// ---- The pre-overhaul DP, kept byte-for-byte except where noted. ----------

struct Discretization {
  Size guess = 0;
  double delta = 0.0;
  Size u = 1;
  Size w = 0;
  std::vector<Size> class_size;

  [[nodiscard]] int class_of(Size size) const {
    if (static_cast<double>(size) <= delta * static_cast<double>(guess)) {
      return -1;
    }
    // The historical linear scan (the production engine binary-searches).
    for (std::size_t t = 0; t < class_size.size(); ++t) {
      if (size <= class_size[t]) return static_cast<int>(t);
    }
    return -2;
  }
};

Discretization make_discretization(Size guess, double delta) {
  Discretization d;
  d.guess = guess;
  d.delta = delta;
  d.u = std::max<Size>(1, static_cast<Size>(std::floor(
                              delta * static_cast<double>(guess))));
  d.w = static_cast<Size>(
      std::floor((1.0 + 2.0 * delta) * static_cast<double>(guess)));
  double boundary = delta * static_cast<double>(guess);
  while (boundary < static_cast<double>(guess)) {
    boundary *= (1.0 + delta);
    d.class_size.push_back(
        std::min<Size>(guess, static_cast<Size>(std::ceil(boundary))));
  }
  return d;
}

struct ProcData {
  std::vector<std::int64_t> x;
  std::vector<std::vector<JobId>> class_jobs;
  std::vector<std::vector<Cost>> class_cost_prefix;
  std::vector<JobId> smalls;
  std::vector<Size> small_size_prefix;
  std::vector<Cost> small_cost_prefix;
  Size small_total = 0;

  [[nodiscard]] std::pair<Cost, std::size_t> small_trim(Size cap) const {
    const Size need = small_total - cap;
    if (need <= 0) return {0, 0};
    const auto it = std::lower_bound(small_size_prefix.begin(),
                                     small_size_prefix.end(), need);
    assert(it != small_size_prefix.end());
    const auto r =
        static_cast<std::size_t>(it - small_size_prefix.begin()) + 1;
    return {small_cost_prefix[r - 1], r};
  }
};

struct DpNode {
  Cost cost = kInfCost;
  std::string prev;
  std::vector<std::int32_t> choice;
  Size vmax = 0;
};

/// Insertion-ordered DP layer: the historical unordered_map plus a side
/// vector of keys in first-insertion order. This is the one deliberate
/// change from the historical code - hash-order iteration was never a
/// pinned contract, and canonicalizing both engines on insertion order is
/// what makes tie-broken parents (and thus reconstructed assignments)
/// comparable.
struct Layer {
  std::vector<std::string> order;
  std::unordered_map<std::string, DpNode> nodes;
};

std::string encode(const std::vector<std::int64_t>& counts,
                   std::int64_t need) {
  std::string key;
  key.resize((counts.size() + 1) * sizeof(std::int64_t));
  std::memcpy(key.data(), counts.data(),
              counts.size() * sizeof(std::int64_t));
  std::memcpy(key.data() + counts.size() * sizeof(std::int64_t), &need,
              sizeof(std::int64_t));
  return key;
}

PtasGuessOutcome run_guess(const Instance& instance, Size guess, double delta,
                           Cost budget, std::size_t state_limit) {
  PtasGuessOutcome out;
  const Discretization d = make_discretization(guess, delta);
  const ProcId m = instance.num_procs;
  const auto s = d.class_size.size();

  std::vector<int> job_class(instance.num_jobs());
  std::vector<std::int64_t> totals(s, 0);
  Size small_total_all = 0;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const int t = d.class_of(instance.sizes[j]);
    if (t == -2) return out;
    job_class[j] = t;
    if (t >= 0) {
      ++totals[static_cast<std::size_t>(t)];
    } else {
      small_total_all += instance.sizes[j];
    }
  }
  const std::int64_t v_need = (small_total_all + d.u - 1) / d.u;

  std::vector<ProcData> procs(m);
  {
    auto by_proc = instance.jobs_by_proc();
    for (ProcId p = 0; p < m; ++p) {
      auto& pd = procs[p];
      pd.x.assign(s, 0);
      pd.class_jobs.assign(s, {});
      for (JobId j : by_proc[p]) {
        const int t = job_class[j];
        if (t >= 0) {
          ++pd.x[static_cast<std::size_t>(t)];
          pd.class_jobs[static_cast<std::size_t>(t)].push_back(j);
        } else {
          pd.smalls.push_back(j);
          pd.small_total += instance.sizes[j];
        }
      }
      pd.class_cost_prefix.assign(s, {});
      for (std::size_t t = 0; t < s; ++t) {
        auto& jobs = pd.class_jobs[t];
        std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
          if (instance.move_costs[a] != instance.move_costs[b]) {
            return instance.move_costs[a] < instance.move_costs[b];
          }
          return a < b;
        });
        auto& prefix = pd.class_cost_prefix[t];
        prefix.reserve(jobs.size() + 1);
        prefix.push_back(0);
        for (JobId j : jobs) {
          prefix.push_back(prefix.back() + instance.move_costs[j]);
        }
      }
      std::sort(pd.smalls.begin(), pd.smalls.end(), [&](JobId a, JobId b) {
        const Size sa = instance.sizes[a], sb = instance.sizes[b];
        const Cost ca = instance.move_costs[a], cb = instance.move_costs[b];
        if ((sa == 0) != (sb == 0)) return sb == 0;
        const double ra = sa == 0 ? 0.0
                                  : static_cast<double>(ca) /
                                        static_cast<double>(sa);
        const double rb = sb == 0 ? 0.0
                                  : static_cast<double>(cb) /
                                        static_cast<double>(sb);
        if (ra != rb) return ra < rb;
        return a < b;
      });
      pd.small_size_prefix.reserve(pd.smalls.size());
      pd.small_cost_prefix.reserve(pd.smalls.size());
      Size acc_size = 0;
      Cost acc_cost = 0;
      for (JobId j : pd.smalls) {
        acc_size += instance.sizes[j];
        acc_cost += instance.move_costs[j];
        pd.small_size_prefix.push_back(acc_size);
        pd.small_cost_prefix.push_back(acc_cost);
      }
    }
  }

  std::vector<Layer> layers(m + 1);
  {
    DpNode root;
    root.cost = 0;
    std::string root_key = encode(totals, v_need);
    layers[0].nodes.emplace(root_key, std::move(root));
    layers[0].order.push_back(std::move(root_key));
  }
  std::size_t total_states = 1;

  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (const std::string& key : layers[p].order) {
      const DpNode& node = layers[p].nodes.at(key);
      std::vector<std::int64_t> rem(s);
      std::int64_t need = 0;
      std::memcpy(rem.data(), key.data(), s * sizeof(std::int64_t));
      std::memcpy(&need, key.data() + s * sizeof(std::int64_t),
                  sizeof(std::int64_t));

      std::vector<std::int32_t> xprime(s, 0);
      auto emit = [&](Size load_used) {
        const Size vmax = (d.w - load_used) / d.u;
        Cost cost = node.cost;
        for (std::size_t t = 0; t < s; ++t) {
          const auto have = pd.x[t];
          const auto want = static_cast<std::int64_t>(xprime[t]);
          if (have > want) {
            cost +=
                pd.class_cost_prefix[t][static_cast<std::size_t>(have - want)];
          }
        }
        cost += pd.small_trim(vmax * d.u + d.u).first;
        if (cost >= kInfCost || cost > budget) return;

        std::vector<std::int64_t> next_rem(s);
        for (std::size_t t = 0; t < s; ++t) {
          next_rem[t] = rem[t] - static_cast<std::int64_t>(xprime[t]);
        }
        const std::int64_t next_need = std::max<std::int64_t>(0, need - vmax);
        std::string next_key = encode(next_rem, next_need);
        auto [it, inserted] = layers[p + 1].nodes.try_emplace(next_key);
        if (inserted) {
          layers[p + 1].order.push_back(std::move(next_key));
          ++total_states;
        }
        if (cost < it->second.cost) {
          it->second.cost = cost;
          it->second.prev = key;
          it->second.choice = xprime;
          it->second.vmax = vmax;
        }
      };
      auto enumerate = [&](auto&& self, std::size_t t, Size load_used) -> void {
        if (total_states > state_limit) return;
        if (t == s) {
          emit(load_used);
          return;
        }
        for (std::int64_t cnt = 0;; ++cnt) {
          if (cnt > rem[t]) break;
          const Size load =
              load_used + static_cast<Size>(cnt) * d.class_size[t];
          if (load > d.w) break;
          xprime[t] = static_cast<std::int32_t>(cnt);
          self(self, t + 1, load);
        }
        xprime[t] = 0;
      };
      enumerate(enumerate, 0, 0);
      if (total_states > state_limit) {
        out.within_limit = false;
        out.states = total_states;
        return out;
      }
    }
  }
  out.states = total_states;

  const std::string final_key =
      encode(std::vector<std::int64_t>(s, 0), std::int64_t{0});
  const auto final_it = layers[m].nodes.find(final_key);
  if (final_it == layers[m].nodes.end()) return out;
  out.representable = true;
  out.cost = final_it->second.cost;
  if (out.cost > budget) return out;

  std::vector<std::vector<std::int32_t>> choice(m);
  std::vector<Size> vmax(m, 0);
  {
    std::string key = final_key;
    for (ProcId p = m; p-- > 0;) {
      const auto& node = layers[p + 1].nodes.at(key);
      choice[p] = node.choice;
      vmax[p] = node.vmax;
      key = node.prev;
    }
  }

  Assignment assignment = instance.initial;
  std::vector<std::vector<JobId>> evicted_by_class(s);
  std::vector<JobId> evicted_smalls;
  std::vector<Size> small_load(m, 0);
  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (std::size_t t = 0; t < s; ++t) {
      const auto surplus = pd.x[t] - static_cast<std::int64_t>(choice[p][t]);
      for (std::int64_t i = 0; i < surplus; ++i) {
        evicted_by_class[t].push_back(
            pd.class_jobs[t][static_cast<std::size_t>(i)]);
      }
    }
    const auto [trim_cost, trim_count] = pd.small_trim(vmax[p] * d.u + d.u);
    (void)trim_cost;
    for (std::size_t i = 0; i < trim_count; ++i) {
      evicted_smalls.push_back(pd.smalls[i]);
    }
    small_load[p] =
        pd.small_total -
        (trim_count == 0 ? 0 : pd.small_size_prefix[trim_count - 1]);
  }
  std::vector<std::size_t> pool_next(s, 0);
  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (std::size_t t = 0; t < s; ++t) {
      const auto deficit = static_cast<std::int64_t>(choice[p][t]) - pd.x[t];
      for (std::int64_t i = 0; i < deficit; ++i) {
        assert(pool_next[t] < evicted_by_class[t].size());
        assignment[evicted_by_class[t][pool_next[t]++]] = p;
      }
    }
  }
  for (std::size_t t = 0; t < s; ++t) {
    assert(pool_next[t] == evicted_by_class[t].size());
  }
  std::sort(evicted_smalls.begin(), evicted_smalls.end(),
            [&](JobId a, JobId b) {
              if (instance.sizes[a] != instance.sizes[b]) {
                return instance.sizes[a] > instance.sizes[b];
              }
              return a < b;
            });
  for (JobId j : evicted_smalls) {
    if (instance.sizes[j] == 0) {
      assignment[j] = instance.initial[j];
      continue;
    }
    bool placed = false;
    for (ProcId p = 0; p < m; ++p) {
      if (small_load[p] < vmax[p] * d.u) {
        small_load[p] += instance.sizes[j];
        assignment[j] = p;
        placed = true;
        break;
      }
    }
    assert(placed);
    if (!placed) return out;
  }
  out.assignment = std::move(assignment);
  out.constructed = true;
  return out;
}

}  // namespace

PtasGuessOutcome ptas_reference_guess(const Instance& instance, Size guess,
                                      double eps, Cost budget,
                                      std::size_t state_limit) {
  return run_guess(instance, guess, ptas_delta(eps), budget, state_limit);
}

}  // namespace lrb
