// Machine-checkable correctness certificates for rebalancing solutions.
//
// Every algorithm in this library carries a provable guarantee (GREEDY is
// (2 - 1/m)-approximate, M-PARTITION 1.5, the PTAS 1 + eps at cost <= B);
// this module turns those theorems into an oracle: given an Instance and a
// RebalanceResult, certify_solution recomputes every reported quantity from
// scratch, checks the budgets, checks the solution against the certified
// lower bounds of core/lower_bounds, and checks an optional a-priori
// approximation bound - all in exact integer arithmetic - returning a
// structured violation report instead of a bare bool. The fuzz driver
// (tools/lrb_fuzz) and the differential harness (check/differential) are
// built on top of it; docs/testing.md describes the contract.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

enum class ViolationKind {
  kStructure,          ///< instance or assignment fails structural validation
  kMakespanMismatch,   ///< reported makespan != recomputed from scratch
  kMovesMismatch,      ///< reported move count != recomputed
  kCostMismatch,       ///< reported relocation cost != recomputed
  kMoveBudget,         ///< recomputed moves exceed the declared k
  kCostBudget,         ///< recomputed cost exceeds the declared budget B
  kBelowLowerBound,    ///< makespan beats a certified lower bound on OPT
  kApproxBound,        ///< an a-priori approximation guarantee is violated
  kRatioVsExact,       ///< proven ratio violated against a certified optimum
  kExactDisagreement,  ///< two exact solvers disagree with each other
};

[[nodiscard]] const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kStructure;
  std::string detail;  ///< human-readable, includes the exact quantities
};

/// An exact rational a-priori guarantee:
///   den * makespan <= num * reference + den * additive.
/// All quantities are integers; e.g. GREEDY's (2 - 1/m) bound against the
/// combined lower bound is {num = 2m - 1, den = m, reference = lb}.
struct RatioBound {
  std::int64_t num = 1;
  std::int64_t den = 1;
  Size reference = 0;
  Size additive = 0;
  std::string reference_name;  ///< names the reference in violation reports
};

struct CertifyOptions {
  std::int64_t max_moves = kInfSize;  ///< the paper's k; kInfSize = unbounded
  Cost budget = kInfCost;             ///< the paper's B; kInfCost = unbounded
  /// Check makespan >= combined_lower_bound(k) (and, with a finite budget,
  /// >= budget_removal_bound(B)). A solution beating a certified lower bound
  /// means the lower bound - or the solution's accounting - is broken.
  bool check_lower_bound = true;
  std::optional<RatioBound> bound;  ///< a-priori approximation guarantee
};

struct SolutionCertificate {
  std::vector<Violation> violations;
  Size recomputed_makespan = 0;
  std::int64_t recomputed_moves = 0;
  Cost recomputed_cost = 0;
  Size lower_bound = 0;  ///< strongest certified lower bound applied (0 if none)

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One line per violation; empty string when ok().
  [[nodiscard]] std::string to_string() const;
};

/// Verifies `result` against `instance` under `options`. Never trusts a
/// reported quantity: loads, makespan, moves and cost are recomputed from
/// the assignment. All comparisons are exact (64-bit with overflow guards).
[[nodiscard]] SolutionCertificate certify_solution(
    const Instance& instance, const RebalanceResult& result,
    const CertifyOptions& options = {});

/// The a-priori certificate each standard roster algorithm must satisfy on
/// EVERY instance (no exact optimum needed):
///   "none"        moves = 0, makespan = initial makespan
///   "greedy"      moves <= k, m * makespan <= (2m - 1) * combined_lb(k)
///   "m-partition" moves <= k, 2 * makespan <= 3 * accepted threshold
///   "mp-ls"       same as m-partition (local search only improves)
///   "best-of"     moves <= k, greedy's bound (it returns the better of the
///                 two, so it is no worse than greedy)
///   "lpt-full"    moves unbounded, m * makespan <= (2m - 1) * combined_lb(n)
/// Unknown names get the universal checks only (budgets + lower bound).
[[nodiscard]] CertifyOptions roster_certify_options(
    const std::string& algorithm, const Instance& instance, std::int64_t k,
    const RebalanceResult& result);

}  // namespace lrb
