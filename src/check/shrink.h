// Delta-debugging minimizer for failing instances. Given an instance on
// which some violation reproduces (expressed as a predicate), greedily
// removes jobs (ddmin-style chunked passes), deletes processors together
// with their resident jobs, and shrinks job sizes and move costs toward
// zero - keeping every transformation only while the predicate still fails.
// The result is a locally minimal repro, typically a handful of jobs, that
// tools/lrb_fuzz writes to its corpus via core/io for replay.

#pragma once

#include <cstddef>
#include <functional>

#include "core/instance.h"

namespace lrb {

/// Returns true when the candidate instance still exhibits the violation
/// being minimized. Must be deterministic.
using InstancePredicate = std::function<bool(const Instance&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each one typically re-runs a full
  /// differential check).
  std::size_t max_evaluations = 20'000;
  /// Hard cap on whole passes over the transformation set.
  std::size_t max_rounds = 64;
};

struct ShrinkResult {
  Instance instance;              ///< minimized repro; still fails predicate
  std::size_t evaluations = 0;    ///< predicate calls spent
  std::size_t rounds = 0;         ///< fixpoint passes executed
};

/// Minimizes `start` under `still_fails`. `still_fails(start)` must be true;
/// the returned instance also satisfies it. Deterministic.
[[nodiscard]] ShrinkResult shrink_instance(const Instance& start,
                                           const InstancePredicate& still_fails,
                                           const ShrinkOptions& options = {});

}  // namespace lrb
