#include "check/shrink.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lrb {
namespace {

/// Copy of `instance` without the jobs whose indices are marked in `drop`.
Instance without_jobs(const Instance& instance, const std::vector<bool>& drop) {
  Instance out;
  out.num_procs = instance.num_procs;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    if (drop[j]) continue;
    out.sizes.push_back(instance.sizes[j]);
    out.move_costs.push_back(instance.move_costs[j]);
    out.initial.push_back(instance.initial[j]);
  }
  return out;
}

/// Copy of `instance` with processor `victim` deleted: its resident jobs go
/// away and higher processor ids shift down by one.
Instance without_proc(const Instance& instance, ProcId victim) {
  Instance out;
  out.num_procs = instance.num_procs - 1;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const ProcId home = instance.initial[j];
    if (home == victim) continue;
    out.sizes.push_back(instance.sizes[j]);
    out.move_costs.push_back(instance.move_costs[j]);
    out.initial.push_back(home > victim ? home - 1 : home);
  }
  return out;
}

class Shrinker {
 public:
  Shrinker(Instance current, const InstancePredicate& still_fails,
           const ShrinkOptions& options)
      : current_(std::move(current)),
        still_fails_(still_fails),
        options_(options) {}

  ShrinkResult run() {
    bool changed = true;
    while (changed && result_.rounds < options_.max_rounds && !exhausted()) {
      ++result_.rounds;
      changed = false;
      changed |= drop_job_chunks();
      changed |= drop_procs();
      changed |= shrink_values(/*sizes=*/true);
      changed |= shrink_values(/*sizes=*/false);
    }
    result_.instance = std::move(current_);
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool exhausted() const {
    return result_.evaluations >= options_.max_evaluations;
  }

  /// Evaluates the predicate on `candidate`; adopts it on failure-reproduced.
  bool try_adopt(Instance candidate) {
    if (exhausted()) return false;
    ++result_.evaluations;
    if (!still_fails_(candidate)) return false;
    current_ = std::move(candidate);
    return true;
  }

  /// ddmin over jobs: attempt to delete chunks, halving the chunk size until
  /// single jobs; restarts from large chunks after any success.
  bool drop_job_chunks() {
    bool any = false;
    for (std::size_t chunk = std::max<std::size_t>(current_.num_jobs() / 2, 1);
         chunk >= 1; chunk /= 2) {
      bool progressed = true;
      while (progressed && !exhausted()) {
        progressed = false;
        const std::size_t n = current_.num_jobs();
        for (std::size_t begin = 0; begin < n && !exhausted();
             begin += chunk) {
          if (current_.num_jobs() <= begin) break;
          std::vector<bool> drop(current_.num_jobs(), false);
          const std::size_t end = std::min(begin + chunk, current_.num_jobs());
          for (std::size_t j = begin; j < end; ++j) drop[j] = true;
          if (try_adopt(without_jobs(current_, drop))) {
            progressed = true;
            any = true;
            break;  // indices shifted; rescan at this chunk size
          }
        }
      }
      if (chunk == 1) break;
    }
    return any;
  }

  bool drop_procs() {
    bool any = false;
    bool progressed = true;
    while (progressed && !exhausted()) {
      progressed = false;
      for (ProcId p = current_.num_procs; p-- > 0 && !exhausted();) {
        if (current_.num_procs <= 1) break;
        if (try_adopt(without_proc(current_, p))) {
          progressed = true;
          any = true;
          break;
        }
      }
    }
    return any;
  }

  /// Shrinks sizes (or costs) per job toward zero: candidates 0, 1, v/2,
  /// v - 1, most aggressive first.
  bool shrink_values(bool sizes) {
    bool any = false;
    for (std::size_t j = 0; j < current_.num_jobs() && !exhausted(); ++j) {
      const std::int64_t value =
          sizes ? current_.sizes[j] : current_.move_costs[j];
      for (const std::int64_t candidate :
           {std::int64_t{0}, std::int64_t{1}, value / 2, value - 1}) {
        if (candidate < 0 || candidate >= value) continue;
        Instance trial = current_;
        if (sizes) {
          trial.sizes[j] = candidate;
        } else {
          trial.move_costs[j] = candidate;
        }
        if (try_adopt(std::move(trial))) {
          any = true;
          break;  // re-shrink this job only on the next round
        }
        if (exhausted()) break;
      }
    }
    return any;
  }

  Instance current_;
  const InstancePredicate& still_fails_;
  const ShrinkOptions& options_;
  ShrinkResult result_;
};

}  // namespace

ShrinkResult shrink_instance(const Instance& start,
                             const InstancePredicate& still_fails,
                             const ShrinkOptions& options) {
  assert(still_fails(start));
  return Shrinker(start, still_fails, options).run();
}

}  // namespace lrb
