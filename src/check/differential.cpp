#include "check/differential.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "algo/cost_greedy.h"
#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/local_search.h"
#include "algo/move_min.h"
#include "algo/ptas.h"
#include "algo/two_proc_exact.h"
#include "algo/unit_exact.h"
#include "core/lower_bounds.h"
#include "lp/gap.h"

namespace lrb {
namespace {

void add_violation(AlgorithmFinding& finding, ViolationKind kind,
                   const std::string& detail) {
  finding.certificate.violations.push_back(Violation{kind, detail});
}

/// den * makespan <= num * reference + den * additive as a violation check
/// against a certified optimum (kRatioVsExact rather than kApproxBound).
void check_ratio_vs_opt(AlgorithmFinding& finding, std::int64_t num,
                        std::int64_t den, Size opt, Size additive = 0) {
  const auto ms = finding.result.makespan;
  if (den * ms > num * opt + den * additive) {
    std::ostringstream oss;
    oss << "makespan " << ms << " > (" << num << "/" << den
        << ") * OPT = " << num << "/" << den << " * " << opt;
    if (additive != 0) oss << " + " << additive;
    add_violation(finding, ViolationKind::kRatioVsExact, oss.str());
  }
}

/// No feasible solution may beat a certified optimum for its constraints.
void check_not_below_opt(AlgorithmFinding& finding, Size opt,
                         const char* regime) {
  if (finding.result.makespan < opt) {
    std::ostringstream oss;
    oss << "makespan " << finding.result.makespan
        << " beats the certified optimum " << opt << " (" << regime << ")";
    add_violation(finding, ViolationKind::kRatioVsExact, oss.str());
  }
}

}  // namespace

bool DifferentialReport::ok() const {
  for (const auto& finding : findings) {
    if (!finding.certificate.ok()) return false;
  }
  return true;
}

std::vector<std::pair<std::string, ViolationKind>>
DifferentialReport::signatures() const {
  std::vector<std::pair<std::string, ViolationKind>> out;
  for (const auto& finding : findings) {
    for (const auto& violation : finding.certificate.violations) {
      std::pair<std::string, ViolationKind> sig{finding.algorithm,
                                                violation.kind};
      bool seen = false;
      for (const auto& existing : out) seen = seen || existing == sig;
      if (!seen) out.push_back(std::move(sig));
    }
  }
  return out;
}

std::string DifferentialReport::to_string() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& finding : findings) {
    for (const auto& violation : finding.certificate.violations) {
      if (!first) oss << '\n';
      first = false;
      oss << finding.algorithm << ": [" << lrb::to_string(violation.kind)
          << "] " << violation.detail;
    }
  }
  return oss.str();
}

DifferentialReport differential_check(const Instance& instance,
                                      const DifferentialOptions& options) {
  DifferentialReport report;

  if (const auto problem = validate(instance)) {
    AlgorithmFinding finding;
    finding.algorithm = "instance";
    finding.certificate.violations.push_back(
        Violation{ViolationKind::kStructure, *problem});
    report.findings.push_back(std::move(finding));
    return report;
  }

  const auto n = static_cast<std::int64_t>(instance.num_jobs());
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  const std::int64_t k = options.k;
  const bool small = instance.num_jobs() <= options.exact_max_jobs;

  // ---- the unit-cost roster (+ mp-ls), each against its a-priori contract.
  for (const auto& algo : standard_rebalancers()) {
    AlgorithmFinding finding;
    finding.algorithm = algo.name;
    finding.result = algo.run(instance, k);
    finding.certificate = certify_solution(
        instance, finding.result,
        roster_certify_options(algo.name, instance, k, finding.result));
    report.findings.push_back(std::move(finding));
  }
  {
    AlgorithmFinding finding;
    finding.algorithm = "mp-ls";
    finding.result = m_partition_ls_rebalance(instance, k);
    finding.certificate = certify_solution(
        instance, finding.result,
        roster_certify_options("mp-ls", instance, k, finding.result));
    report.findings.push_back(std::move(finding));
  }
  for (const auto& extra : options.extra) {
    AlgorithmFinding finding;
    finding.algorithm = extra.rebalancer.name;
    finding.result = extra.rebalancer.run(instance, k);
    CertifyOptions certify_options;
    if (extra.options) {
      certify_options = extra.options(instance, k, finding.result);
    } else {
      certify_options.max_moves = k;
    }
    finding.certificate =
        certify_solution(instance, finding.result, certify_options);
    report.findings.push_back(std::move(finding));
  }

  // ---- certified k-move optimum: branch-and-bound, or a known-OPT family.
  Size opt = 0;
  bool have_opt = false;
  if (small) {
    ExactOptions exact_options;
    exact_options.max_moves = k;
    exact_options.node_limit = options.exact_node_limit;
    const auto exact = exact_rebalance(instance, exact_options);
    if (exact.proven_optimal) {
      report.exact_available = true;
      report.exact_makespan = exact.best.makespan;
      opt = exact.best.makespan;
      have_opt = true;

      AlgorithmFinding finding;
      finding.algorithm = "exact";
      finding.result = exact.best;
      CertifyOptions certify_options;
      certify_options.max_moves = k;
      finding.certificate =
          certify_solution(instance, finding.result, certify_options);

      if (options.known_opt > 0 && options.known_opt != opt) {
        std::ostringstream oss;
        oss << "branch-and-bound optimum " << opt
            << " != the family's known optimum " << options.known_opt;
        add_violation(finding, ViolationKind::kExactDisagreement, oss.str());
      }

      // Independent exact solvers must agree with the branch-and-bound.
      if (const auto fast = equal_size_exact_rebalance(instance, k)) {
        if (fast->makespan != opt) {
          std::ostringstream oss;
          oss << "equal-size exact got " << fast->makespan
              << " but branch-and-bound proved " << opt;
          add_violation(finding, ViolationKind::kExactDisagreement, oss.str());
        }
      }
      if (m == 2) {
        if (const auto dp = two_proc_exact_rebalance(instance, k)) {
          if (dp->makespan != opt) {
            std::ostringstream oss;
            oss << "two-processor DP got " << dp->makespan
                << " but branch-and-bound proved " << opt;
            add_violation(finding, ViolationKind::kExactDisagreement,
                          oss.str());
          }
        }
      }

      // Move minimization at the optimal makespan: a <= k-move solution at
      // makespan OPT(k) exists, so the minimum move count is <= k and no
      // smaller than its own certified lower bound.
      const auto move_min = minimize_moves_exact(
          instance, opt, /*minimize_cost=*/false, options.exact_node_limit);
      if (move_min.proven_optimal) {
        if (!move_min.feasible || move_min.best.moves > k) {
          std::ostringstream oss;
          oss << "minimize_moves_exact at L = " << opt << " reported "
              << (move_min.feasible
                      ? std::to_string(move_min.best.moves) + " moves"
                      : std::string("infeasible"))
              << " but a <= " << k << "-move solution exists";
          add_violation(finding, ViolationKind::kExactDisagreement, oss.str());
        }
        if (move_min.feasible &&
            move_min.best.moves < move_min_lower_bound(instance, opt)) {
          std::ostringstream oss;
          oss << "minimize_moves_exact found " << move_min.best.moves
              << " moves, below move_min_lower_bound "
              << move_min_lower_bound(instance, opt);
          add_violation(finding, ViolationKind::kExactDisagreement, oss.str());
        }
        if (const auto greedy_moves = move_min_greedy(instance, opt)) {
          if (move_min.feasible && greedy_moves->moves != move_min.best.moves) {
            std::ostringstream oss;
            oss << "move_min_greedy claims optimal " << greedy_moves->moves
                << " moves but minimize_moves_exact proved "
                << move_min.best.moves;
            add_violation(finding, ViolationKind::kExactDisagreement,
                          oss.str());
          }
        }
      }
      report.findings.push_back(std::move(finding));
    }
  }
  if (!have_opt && options.known_opt > 0) {
    opt = options.known_opt;
    have_opt = true;
  }

  // ---- proven ratios against the certified optimum.
  if (have_opt) {
    for (auto& finding : report.findings) {
      if (finding.algorithm == "exact" || finding.algorithm == "instance") {
        continue;
      }
      if (finding.algorithm == "lpt-full") continue;  // unbounded moves
      check_not_below_opt(finding, opt, "k-move problem");
      if (finding.algorithm == "greedy" || finding.algorithm == "best-of") {
        check_ratio_vs_opt(finding, 2 * m - 1, m, opt);
      } else if (finding.algorithm == "m-partition" ||
                 finding.algorithm == "mp-ls") {
        check_ratio_vs_opt(finding, 3, 2, opt);
        if (finding.result.threshold > opt) {
          std::ostringstream oss;
          oss << "accepted threshold " << finding.result.threshold
              << " exceeds OPT = " << opt;
          add_violation(finding, ViolationKind::kRatioVsExact, oss.str());
        }
      }
    }
    // Graham's LPT bound needs the UNBOUNDED optimum, which the k-move
    // optimum only upper-bounds from above; prove it separately.
    if (small) {
      ExactOptions unbounded;
      unbounded.max_moves = n;
      unbounded.node_limit = options.exact_node_limit;
      const auto exact_full = exact_rebalance(instance, unbounded);
      if (exact_full.proven_optimal) {
        for (auto& finding : report.findings) {
          if (finding.algorithm != "lpt-full") continue;
          check_not_below_opt(finding, exact_full.best.makespan,
                              "unbounded-move problem");
          check_ratio_vs_opt(finding, 4 * m - 1, 3 * m,
                             exact_full.best.makespan);
        }
      }
    }
  }

  // ---- the budgeted (arbitrary-cost) algorithms.
  if (options.run_cost_algorithms && options.budget != kInfCost) {
    const Cost budget = options.budget;
    CertifyOptions budget_certify;
    budget_certify.budget = budget;

    auto run_budget_algo = [&](std::string name, RebalanceResult result) {
      AlgorithmFinding finding;
      finding.algorithm = std::move(name);
      finding.result = std::move(result);
      finding.certificate =
          certify_solution(instance, finding.result, budget_certify);
      report.findings.push_back(std::move(finding));
      return report.findings.size() - 1;
    };

    {
      CertifyOptions greedy_certify = budget_certify;
      // cost-greedy only ever applies improving moves.
      greedy_certify.bound =
          RatioBound{1, 1, instance.initial_makespan(), 0, "initial makespan"};
      AlgorithmFinding finding;
      finding.algorithm = "cost-greedy";
      finding.result = cost_greedy_rebalance(instance, budget);
      finding.certificate =
          certify_solution(instance, finding.result, greedy_certify);
      report.findings.push_back(std::move(finding));
    }

    CostPartitionOptions cp;
    cp.budget = budget;
    const auto cp_index =
        run_budget_algo("cost-partition", cost_partition_rebalance(instance, cp));
    // The LP-based baseline and the PTAS are exponential-ish in practice on
    // large or huge-size instances; exercise them on the small tier only
    // (which is also where their ratio checks have an exact optimum).
    std::size_t st_index = 0;
    bool st_ran = false;
    std::size_t ptas_index = 0;
    bool ptas_ran = false;
    if (small) {
      st_index = run_budget_algo("shmoys-tardos", st_rebalance(instance, budget));
      st_ran = true;
      PtasOptions ptas_options;
      ptas_options.budget = budget;
      ptas_options.eps = options.ptas_eps;
      const auto ptas = ptas_rebalance(instance, ptas_options);
      if (ptas.success) {
        ptas_index = run_budget_algo("ptas", ptas.result);
        ptas_ran = true;
      }
    }

    if (small) {
      ExactOptions exact_options;
      exact_options.budget = budget;
      exact_options.node_limit = options.exact_node_limit;
      const auto exact_budget = exact_rebalance(instance, exact_options);
      if (exact_budget.proven_optimal) {
        const Size opt_budget = exact_budget.best.makespan;
        check_not_below_opt(report.findings[cp_index], opt_budget,
                            "budget problem");
        // 1.5 * (1 + eps) * (1 + alpha) at the defaults eps = 0.05,
        // alpha = 0.02: exactly 3213/2000.
        check_ratio_vs_opt(report.findings[cp_index], 3213, 2000, opt_budget);
        if (st_ran) {
          check_not_below_opt(report.findings[st_index], opt_budget,
                              "budget problem");
          check_ratio_vs_opt(report.findings[st_index], 2, 1, opt_budget);
        }
        if (ptas_ran) {
          check_not_below_opt(report.findings[ptas_index], opt_budget,
                              "budget problem");
          // (1 + eps) * OPT plus one unit of discretization slack (the DP
          // rounds small loads to multiples of u >= 1).
          const auto num = static_cast<std::int64_t>(
              std::llround((1.0 + options.ptas_eps) * 1000.0));
          check_ratio_vs_opt(report.findings[ptas_index], num, 1000,
                             opt_budget, 1);
        }
      }
    }
  }

  return report;
}

}  // namespace lrb
