// Differential testing harness: run the whole algorithm roster on one
// instance, certify every result (check/certify), and - on instances small
// enough for the exact solvers - cross-check the approximation ratios and
// the exact solvers against each other:
//
//   * every roster algorithm passes its a-priori certificate;
//   * nothing beats the branch-and-bound optimum (or its proven ratio
//     against it): GREEDY within (2 - 1/m), M-PARTITION within 1.5 with an
//     accepted threshold <= OPT, the PTAS within (1 + eps) at cost <= B,
//     cost-PARTITION within 1.5 (1 + eps)(1 + alpha), Shmoys-Tardos within 2;
//   * the independent exact solvers agree: branch-and-bound vs the
//     equal-size polynomial algorithm vs the m = 2 subset-sum DP vs
//     minimize_moves_exact at the optimal makespan.
//
// The fuzz driver (tools/lrb_fuzz) calls this in a loop; the shrinker
// (check/shrink) re-runs it to decide whether a candidate still fails.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algo/rebalancer.h"
#include "check/certify.h"
#include "core/instance.h"

namespace lrb {

/// An extra algorithm to include in the differential run (e.g. a test-only
/// mutant). `options` derives its certificate; when null the universal
/// checks (budgets + lower bound) are applied.
struct CheckedRebalancer {
  NamedRebalancer rebalancer;
  std::function<CertifyOptions(const Instance&, std::int64_t k,
                               const RebalanceResult&)>
      options;
};

struct DifferentialOptions {
  std::int64_t k = 4;       ///< move budget for the unit-cost roster
  Cost budget = kInfCost;   ///< budget for the cost algorithms; kInfCost
                            ///< skips them entirely
  /// Known optimal makespan under k (e.g. from a tight family); 0 = unknown.
  /// When set, ratio checks run against it even without the exact solver.
  Size known_opt = 0;
  std::size_t exact_max_jobs = 12;  ///< run exact solvers up to this n
  std::uint64_t exact_node_limit = 4'000'000;
  double ptas_eps = 1.0;            ///< eps for the PTAS (small tier only)
  bool run_cost_algorithms = true;  ///< cost-partition / PTAS / ST / greedy
  std::vector<CheckedRebalancer> extra;  ///< e.g. fuzz mutants
};

struct AlgorithmFinding {
  std::string algorithm;
  RebalanceResult result;
  SolutionCertificate certificate;
};

struct DifferentialReport {
  std::vector<AlgorithmFinding> findings;
  bool exact_available = false;  ///< B&B proved the k-move optimum
  Size exact_makespan = 0;       ///< OPT(k) when exact_available

  [[nodiscard]] bool ok() const;
  /// Every (algorithm, violation-kind) pair present in the report; the fuzz
  /// shrinker uses these as the failure signature.
  [[nodiscard]] std::vector<std::pair<std::string, ViolationKind>> signatures()
      const;
  /// Multi-line human-readable summary of all violations ("" when ok()).
  [[nodiscard]] std::string to_string() const;
};

/// Runs the full differential check on one instance.
[[nodiscard]] DifferentialReport differential_check(
    const Instance& instance, const DifferentialOptions& options = {});

}  // namespace lrb
