#include "cache/canonical.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "solver/registry.h"

namespace lrb::cache {

namespace {

/// splitmix64 finalizer over a copy (util/rng.h keeps the streaming form).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

}  // namespace

CanonicalInstance canonicalize(const Instance& instance) {
  const std::size_t n = instance.num_jobs();
  const ProcId m = instance.num_procs;

  CanonicalInstance canon;
  canon.job_to_canonical.resize(n);
  canon.job_from_canonical.resize(n);
  canon.proc_to_canonical.resize(m);
  canon.proc_from_canonical.resize(m);

  // Jobs grouped by initial processor, sorted within each processor by
  // (size, move_cost); original index as a deterministic last tie-break
  // (interchangeable jobs — it cannot affect the canonical encoding).
  std::vector<std::vector<JobId>> by_proc(m);
  for (std::size_t j = 0; j < n; ++j) {
    by_proc[instance.initial[j]].push_back(static_cast<JobId>(j));
  }
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] < instance.sizes[b];
      }
      if (instance.move_costs[a] != instance.move_costs[b]) {
        return instance.move_costs[a] < instance.move_costs[b];
      }
      return a < b;
    });
  }

  // Processors ordered by their job multiset signature (lexicographic over
  // the sorted (size, cost) sequences), original id as the tie-break among
  // identically-loaded processors.
  std::vector<ProcId> proc_order(m);
  for (ProcId p = 0; p < m; ++p) proc_order[p] = p;
  const auto signature_less = [&](ProcId a, ProcId b) {
    const auto& ja = by_proc[a];
    const auto& jb = by_proc[b];
    const std::size_t common = std::min(ja.size(), jb.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (instance.sizes[ja[i]] != instance.sizes[jb[i]]) {
        return instance.sizes[ja[i]] < instance.sizes[jb[i]];
      }
      if (instance.move_costs[ja[i]] != instance.move_costs[jb[i]]) {
        return instance.move_costs[ja[i]] < instance.move_costs[jb[i]];
      }
    }
    if (ja.size() != jb.size()) return ja.size() < jb.size();
    return a < b;
  };
  std::sort(proc_order.begin(), proc_order.end(), signature_less);

  canon.instance.num_procs = m;
  canon.instance.sizes.reserve(n);
  canon.instance.move_costs.reserve(n);
  canon.instance.initial.reserve(n);
  for (ProcId c = 0; c < m; ++c) {
    const ProcId p = proc_order[c];
    canon.proc_from_canonical[c] = p;
    canon.proc_to_canonical[p] = c;
    for (const JobId j : by_proc[p]) {
      const auto slot = static_cast<JobId>(canon.instance.sizes.size());
      canon.job_to_canonical[j] = slot;
      canon.job_from_canonical[slot] = j;
      canon.instance.sizes.push_back(instance.sizes[j]);
      canon.instance.move_costs.push_back(instance.move_costs[j]);
      canon.instance.initial.push_back(c);
    }
  }
  return canon;
}

std::string encode_cache_key(const Instance& canonical,
                             const solver::SolverSpec& spec, std::int64_t k) {
  std::string out;
  out.reserve(32 + canonical.num_jobs() * 20);
  solver::encode_key_params(spec, &out);
  append_u64(out, static_cast<std::uint64_t>(k));
  append_u32(out, canonical.num_procs);
  append_u32(out, static_cast<std::uint32_t>(canonical.num_jobs()));
  for (std::size_t j = 0; j < canonical.num_jobs(); ++j) {
    append_u64(out, static_cast<std::uint64_t>(canonical.sizes[j]));
    append_u64(out, static_cast<std::uint64_t>(canonical.move_costs[j]));
    append_u32(out, canonical.initial[j]);
  }
  return out;
}

Fingerprint fingerprint(std::string_view bytes) {
  // Two decorrelated lanes over 8-byte words; each word is finalized with
  // mix64 before folding so single-bit input changes avalanche both lanes.
  std::uint64_t h1 = 0x9ae16a3b2f90404fULL ^ bytes.size();
  std::uint64_t h2 = 0xc949d7c7509e6557ULL + bytes.size();
  std::size_t i = 0;
  while (i + 8 <= bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, 8);
    h1 = mix64(h1 ^ mix64(w ^ 0x8ebc6af09c88c6e3ULL));
    h2 = mix64(h2 + mix64(w ^ 0x589965cc75374cc3ULL));
    i += 8;
  }
  std::uint64_t tail = 0;
  if (i < bytes.size()) {
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h1 = mix64(h1 ^ mix64(tail ^ 0x8ebc6af09c88c6e3ULL));
    h2 = mix64(h2 + mix64(tail ^ 0x589965cc75374cc3ULL));
  }
  Fingerprint fp;
  fp.hi = mix64(h1 ^ h2);
  fp.lo = mix64(h2 + (h1 << 1) + 0x9e3779b97f4a7c15ULL);
  return fp;
}

RebalanceResult map_to_original(const CanonicalInstance& canon,
                                const RebalanceResult& result) {
  assert(result.assignment.size() == canon.job_from_canonical.size());
  RebalanceResult mapped;
  mapped.makespan = result.makespan;
  mapped.moves = result.moves;
  mapped.cost = result.cost;
  mapped.threshold = result.threshold;
  mapped.assignment.resize(result.assignment.size());
  for (std::size_t c = 0; c < result.assignment.size(); ++c) {
    mapped.assignment[canon.job_from_canonical[c]] =
        canon.proc_from_canonical[result.assignment[c]];
  }
  return mapped;
}

Assignment map_assignment_to_canonical(const CanonicalInstance& canon,
                                       const Assignment& original) {
  assert(original.size() == canon.job_to_canonical.size());
  Assignment mapped(original.size());
  for (std::size_t j = 0; j < original.size(); ++j) {
    mapped[canon.job_to_canonical[j]] =
        canon.proc_to_canonical[original[j]];
  }
  return mapped;
}

}  // namespace lrb::cache
