// Sharded, byte-bounded LRU cache of canonical rebalancing solutions
// (docs/caching.md).
//
// Keys are 128-bit fingerprints over the canonical cache key bytes
// (cache/canonical.h); values are RebalanceResults in CANONICAL labels —
// callers map them back through their own recorded permutation. Every hit
// re-verifies the stored key bytes, so a fingerprint collision degrades to
// a miss instead of serving a wrong or mis-permuted plan.
//
// Concurrency: N mutex-guarded shards (fingerprint.hi selects the shard);
// a lookup touches exactly one shard mutex. Concurrent identical misses
// are single-flighted: the first caller becomes the leader and solves, the
// rest (under WaitMode::kBlock) block on the shard's condition variable
// and receive the leader's published result directly — a batch of
// identical requests racing in from many connections solves exactly once.
// Callers that must never park — anything running on (or help-draining)
// a ThreadPool worker, like the engine — probe with WaitMode::kNoBlock
// and solve uncached instead of waiting; see lookup_or_begin.
//
// Capacity: max_bytes is divided evenly across shards; each shard evicts
// from its own LRU tail while over budget. Accounted bytes per entry =
// key bytes + assignment bytes + a fixed bookkeeping estimate, exported
// live as the cache.bytes / cache.entries gauges.
//
// Metrics (obs registry): cache.hits, cache.misses, cache.evictions,
// cache.inserts, cache.single_flight_waits, cache.single_flight_bypass
// counters; cache.bytes, cache.entries gauges.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/canonical.h"
#include "core/assignment.h"
#include "obs/metrics.h"

namespace lrb::cache {

struct CacheOptions {
  /// Total byte budget across all shards. Must be > 0 (a zero-byte cache
  /// is expressed by not constructing one).
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Shard count; rounded up to a power of two, at least 1.
  std::size_t shards = 8;
  /// Metrics sink for the cache.* counters/gauges.
  obs::Registry* metrics = &obs::Registry::global();
};

class SolutionCache {
 public:
  explicit SolutionCache(CacheOptions options = {});

  SolutionCache(const SolutionCache&) = delete;
  SolutionCache& operator=(const SolutionCache&) = delete;

  /// Outcome of a single-flight probe.
  struct Probe {
    /// True: `result` holds the cached canonical solution (either from the
    /// LRU store or handed over by a concurrent leader).
    bool hit = false;
    /// True: this caller is the leader for the key and MUST call publish()
    /// (or cancel() on failure) exactly once. False with !hit: solve
    /// without caching (fingerprint collision with an in-flight leader —
    /// pathological, but never blocks and never shares a wrong result).
    bool leader = false;
    RebalanceResult result;
  };

  /// How a probe treats an identical key already being solved by another
  /// thread.
  enum class WaitMode {
    /// Block on the shard cv until that leader publishes or cancels.
    kBlock,
    /// Never block: report a plain miss with no leadership, so the caller
    /// solves uncached (the leader still publishes for future probes).
    /// MANDATORY for callers running on — or help-draining tasks of — a
    /// ThreadPool worker: a leader that help-drains while solving can pop
    /// a task that would wait on a *different* key's leader, and two such
    /// leaders waiting on each other's keys is a permanent wait-for cycle.
    kNoBlock,
  };

  /// Single-flight probe: hit, leader duty, or (rarely) solve-uncached.
  /// Under WaitMode::kBlock, blocks while an identical key is being
  /// solved by another thread; under kNoBlock it never blocks.
  [[nodiscard]] Probe lookup_or_begin(const Fingerprint& fp,
                                      std::string_view key,
                                      WaitMode wait = WaitMode::kBlock);

  /// Publishes the leader's result: inserts it into the LRU store (evicting
  /// while over budget) and wakes every waiter with a copy.
  void publish(const Fingerprint& fp, std::string_view key,
               const RebalanceResult& result);

  /// Abandons leadership without a result; one waiter is promoted to
  /// leader, the rest keep waiting.
  void cancel(const Fingerprint& fp, std::string_view key);

  /// Plain probe without single-flight registration (tests, read paths).
  [[nodiscard]] std::optional<RebalanceResult> lookup(const Fingerprint& fp,
                                                      std::string_view key);

  /// Plain insert without single-flight (tests, warm-up tooling).
  void insert(const Fingerprint& fp, std::string_view key,
              const RebalanceResult& result);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Live totals across shards (exact; takes every shard mutex).
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t entries() const;

  /// Accounted footprint of one entry (exposed for the accounting tests).
  [[nodiscard]] static std::size_t entry_bytes(std::size_t key_size,
                                               std::size_t num_jobs);

 private:
  struct Entry {
    Fingerprint fp;
    std::string key;
    RebalanceResult result;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Single-flight rendezvous for one in-flight key. Waiters hold a
  /// shared_ptr so a published result survives even if it is evicted
  /// before they wake.
  struct InFlight {
    std::string key;
    bool done = false;
    bool cancelled = false;
    RebalanceResult result;
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    LruList lru;  ///< front = most recently used
    std::unordered_map<Fingerprint, LruList::iterator, FingerprintHash> map;
    std::unordered_map<Fingerprint, std::shared_ptr<InFlight>,
                       FingerprintHash>
        inflight;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const Fingerprint& fp) noexcept {
    return *shards_[fp.hi & shard_mask_];
  }
  void insert_locked(Shard& shard, const Fingerprint& fp,
                     std::string_view key, const RebalanceResult& result);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t shard_capacity_ = 0;

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& inserts_;
  obs::Counter& single_flight_waits_;
  obs::Counter& single_flight_bypass_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

}  // namespace lrb::cache
