#include "cache/solution_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace lrb::cache {

SolutionCache::SolutionCache(CacheOptions options)
    : hits_(options.metrics->counter("cache.hits")),
      misses_(options.metrics->counter("cache.misses")),
      evictions_(options.metrics->counter("cache.evictions")),
      inserts_(options.metrics->counter("cache.inserts")),
      single_flight_waits_(
          options.metrics->counter("cache.single_flight_waits")),
      single_flight_bypass_(
          options.metrics->counter("cache.single_flight_bypass")),
      bytes_gauge_(options.metrics->gauge("cache.bytes")),
      entries_gauge_(options.metrics->gauge("cache.entries")) {
  const std::size_t shards =
      std::bit_ceil(std::max<std::size_t>(1, options.shards));
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
  shard_capacity_ = std::max<std::size_t>(1, options.max_bytes / shards);
}

std::size_t SolutionCache::entry_bytes(std::size_t key_size,
                                       std::size_t num_jobs) {
  // Key bytes + assignment payload + a flat estimate for the list node,
  // hash slot and Entry header. The estimate keeps accounting deterministic
  // across allocators; what matters is that it is an upper-ish bound that
  // makes max_bytes a real cap on resident growth.
  constexpr std::size_t kBookkeeping = 128;
  return key_size + num_jobs * sizeof(ProcId) + kBookkeeping;
}

void SolutionCache::insert_locked(Shard& shard, const Fingerprint& fp,
                                  std::string_view key,
                                  const RebalanceResult& result) {
  const std::size_t cost = entry_bytes(key.size(), result.assignment.size());
  if (cost > shard_capacity_) return;  // would evict everything and not fit

  if (const auto it = shard.map.find(fp); it != shard.map.end()) {
    // Refresh (or, under fingerprint collision, overwrite) the entry.
    shard.bytes -= it->second->bytes;
    bytes_gauge_.add(-static_cast<std::int64_t>(it->second->bytes));
    entries_gauge_.add(-1);
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }

  while (shard.bytes + cost > shard_capacity_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    bytes_gauge_.add(-static_cast<std::int64_t>(victim.bytes));
    entries_gauge_.add(-1);
    evictions_.add(1);
    shard.map.erase(victim.fp);
    shard.lru.pop_back();
  }

  Entry entry;
  entry.fp = fp;
  entry.key.assign(key.data(), key.size());
  entry.result = result;
  entry.bytes = cost;
  shard.lru.push_front(std::move(entry));
  shard.map[fp] = shard.lru.begin();
  shard.bytes += cost;
  bytes_gauge_.add(static_cast<std::int64_t>(cost));
  entries_gauge_.add(1);
  inserts_.add(1);
}

SolutionCache::Probe SolutionCache::lookup_or_begin(const Fingerprint& fp,
                                                    std::string_view key,
                                                    WaitMode wait) {
  Shard& shard = shard_for(fp);
  std::unique_lock lock(shard.mutex);
  for (;;) {
    if (const auto it = shard.map.find(fp); it != shard.map.end()) {
      if (it->second->key == key) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.add(1);
        Probe probe;
        probe.hit = true;
        probe.result = it->second->result;
        return probe;
      }
      // Fingerprint collision with a different key: miss; the leader path
      // below will overwrite the colliding entry on publish.
    }
    const auto flight = shard.inflight.find(fp);
    if (flight == shard.inflight.end()) {
      auto entry = std::make_shared<InFlight>();
      entry->key.assign(key.data(), key.size());
      shard.inflight.emplace(fp, std::move(entry));
      misses_.add(1);
      Probe probe;
      probe.leader = true;
      return probe;
    }
    if (flight->second->key != key) {
      // Collision with someone else's in-flight solve. Never block on a
      // result that is not ours: solve uncached.
      misses_.add(1);
      return Probe{};
    }
    // Identical solve in flight.
    if (wait == WaitMode::kNoBlock) {
      // The caller may not park (see WaitMode): solve uncached. The
      // duplicate work is bounded by the leader's publish window and
      // results stay identical because solves are deterministic.
      single_flight_bypass_.add(1);
      misses_.add(1);
      return Probe{};
    }
    single_flight_waits_.add(1);
    auto handle = flight->second;
    shard.cv.wait(lock, [&] { return handle->done || handle->cancelled; });
    if (handle->done) {
      hits_.add(1);
      Probe probe;
      probe.hit = true;
      probe.result = handle->result;
      return probe;
    }
    // Leader cancelled: loop and race to become the new leader.
  }
}

void SolutionCache::publish(const Fingerprint& fp, std::string_view key,
                            const RebalanceResult& result) {
  Shard& shard = shard_for(fp);
  {
    std::lock_guard lock(shard.mutex);
    insert_locked(shard, fp, key, result);
    const auto flight = shard.inflight.find(fp);
    if (flight != shard.inflight.end() && flight->second->key == key) {
      flight->second->result = result;
      flight->second->done = true;
      shard.inflight.erase(flight);
    }
  }
  shard.cv.notify_all();
}

void SolutionCache::cancel(const Fingerprint& fp, std::string_view key) {
  Shard& shard = shard_for(fp);
  {
    std::lock_guard lock(shard.mutex);
    const auto flight = shard.inflight.find(fp);
    if (flight != shard.inflight.end() && flight->second->key == key) {
      flight->second->cancelled = true;
      shard.inflight.erase(flight);
    }
  }
  shard.cv.notify_all();
}

std::optional<RebalanceResult> SolutionCache::lookup(const Fingerprint& fp,
                                                     std::string_view key) {
  Shard& shard = shard_for(fp);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(fp);
  if (it == shard.map.end() || it->second->key != key) {
    misses_.add(1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.add(1);
  return it->second->result;
}

void SolutionCache::insert(const Fingerprint& fp, std::string_view key,
                           const RebalanceResult& result) {
  Shard& shard = shard_for(fp);
  std::lock_guard lock(shard.mutex);
  insert_locked(shard, fp, key, result);
}

std::size_t SolutionCache::bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->bytes;
  }
  return total;
}

std::size_t SolutionCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

}  // namespace lrb::cache
