// Instance canonicalization for the solution cache (docs/caching.md).
//
// Two instances that differ only by a relabeling of processors and/or jobs
// describe the same rebalancing problem. canonicalize() maps an Instance to
// a normal form that is invariant under both relabelings:
//
//   1. within each processor, jobs are sorted by (size, move_cost);
//   2. processors are sorted by their job multiset signature — the sorted
//      sequence of (size, move_cost) pairs they initially hold;
//   3. jobs are renumbered in processor-major order.
//
// The permutations connecting the caller's labeling to the canonical one
// are recorded, so a plan computed for the canonical instance can be mapped
// back to the original labels (map_to_original). Jobs with identical
// (size, move_cost, initial processor) are interchangeable; ties are broken
// by original index, which only affects which interchangeable job gets
// which canonical slot, never the canonical encoding itself.
//
// fingerprint() is a 128-bit hash over the canonical byte encoding plus the
// solve parameters. The cache treats it as a shard/bucket key only: every
// hit re-verifies the full key bytes, so even a 128-bit collision can never
// serve a wrong or mis-permuted result.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/types.h"
#include "solver/spec.h"

namespace lrb::cache {

/// 128-bit cache fingerprint. Equality-comparable and shard-indexable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// An instance in canonical labels plus the permutations back to the
/// caller's labels.
struct CanonicalInstance {
  Instance instance;  ///< canonically relabeled jobs and processors

  /// job_to_canonical[j] = canonical slot of original job j.
  std::vector<JobId> job_to_canonical;
  /// job_from_canonical[c] = original job in canonical slot c.
  std::vector<JobId> job_from_canonical;
  /// proc_to_canonical[p] = canonical id of original processor p.
  std::vector<ProcId> proc_to_canonical;
  /// proc_from_canonical[c] = original processor with canonical id c.
  std::vector<ProcId> proc_from_canonical;
};

/// Canonicalizes `instance`. Deterministic; invariant under job/processor
/// relabeling of the input (same canonical encoding, different recorded
/// permutations). The input must pass lrb::validate.
[[nodiscard]] CanonicalInstance canonicalize(const Instance& instance);

/// Byte encoding of the canonical instance plus the solve parameters —
/// what the cache fingerprints and stores for exact hit verification. The
/// solver portion of the key (stable wire id + normalized parameters) is
/// encoded by the registry (solver::encode_key_params), so backends that
/// ignore a knob share one entry across its values (docs/caching.md).
[[nodiscard]] std::string encode_cache_key(const Instance& canonical,
                                           const solver::SolverSpec& spec,
                                           std::int64_t k);

/// 128-bit fingerprint of arbitrary bytes (two decorrelated 64-bit lanes,
/// splitmix64-style finalization).
[[nodiscard]] Fingerprint fingerprint(std::string_view bytes);

/// Maps a plan computed for the canonical instance back to the original
/// labeling: assignment entries permute through the recorded job/processor
/// permutations; makespan, moves, cost and threshold are invariant under
/// the mapping and are copied verbatim.
[[nodiscard]] RebalanceResult map_to_original(const CanonicalInstance& canon,
                                              const RebalanceResult& result);

/// Inverse direction (used by the round-trip property tests): maps an
/// assignment over original labels to canonical labels.
[[nodiscard]] Assignment map_assignment_to_canonical(
    const CanonicalInstance& canon, const Assignment& original);

}  // namespace lrb::cache
