// Online scheduler with bounded rebalancing: arrivals are placed greedily on
// the least-loaded processor (Graham's rule - 2 - 1/m competitive for pure
// arrivals), departures free their load, and at any point the caller may
// invoke an lrb rebalancer on the current configuration with a move budget.
// This is the paper's problem embedded in its motivating dynamic setting:
// without rebalancing, departures erode Graham's guarantee; with a few moves
// every round the schedule tracks the offline optimum again.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb::online {

class OnlineScheduler {
 public:
  explicit OnlineScheduler(ProcId num_procs);

  /// Places the job on the least-loaded processor; returns its handle
  /// (dense, reused after departures).
  std::size_t on_arrive(Size size, Cost move_cost = 1);

  /// Removes the job; its processor sheds the load. The handle must be
  /// alive.
  void on_depart(std::size_t handle);

  /// Runs `policy` (any lrb rebalancer) on the current configuration with
  /// move budget k and applies the returned assignment. Returns the result
  /// (moves counted against the CURRENT placement).
  RebalanceResult rebalance(
      const std::function<RebalanceResult(const Instance&, std::int64_t)>&
          policy,
      std::int64_t k);

  [[nodiscard]] Size makespan() const;
  [[nodiscard]] const std::vector<Size>& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] std::size_t num_alive() const noexcept { return num_alive_; }
  [[nodiscard]] ProcId num_procs() const noexcept {
    return static_cast<ProcId>(loads_.size());
  }

  /// The alive jobs as an Instance whose initial assignment is the current
  /// placement (the rebalancing snapshot). `handles` receives the scheduler
  /// handle of each snapshot job (same order) when non-null.
  [[nodiscard]] Instance snapshot(std::vector<std::size_t>* handles = nullptr) const;

  /// Certified lower bound on any placement of the alive jobs:
  /// max(ceil-average, largest alive job).
  [[nodiscard]] Size offline_bound() const;

 private:
  struct Slot {
    Size size = 0;
    Cost move_cost = 1;
    ProcId proc = 0;
    bool alive = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_slots_;
  std::vector<Size> loads_;
  std::size_t num_alive_ = 0;
};

}  // namespace lrb::online
