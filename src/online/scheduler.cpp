#include "online/scheduler.h"

#include <algorithm>
#include <cassert>

#include "core/lower_bounds.h"

namespace lrb::online {

OnlineScheduler::OnlineScheduler(ProcId num_procs) : loads_(num_procs, 0) {
  assert(num_procs >= 1);
}

std::size_t OnlineScheduler::on_arrive(Size size, Cost move_cost) {
  assert(size >= 0 && move_cost >= 0);
  const auto target = static_cast<ProcId>(
      std::min_element(loads_.begin(), loads_.end()) - loads_.begin());
  std::size_t handle;
  if (!free_slots_.empty()) {
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    handle = slots_.size();
    slots_.emplace_back();
  }
  slots_[handle] = {size, move_cost, target, true};
  loads_[target] += size;
  ++num_alive_;
  return handle;
}

void OnlineScheduler::on_depart(std::size_t handle) {
  assert(handle < slots_.size() && slots_[handle].alive);
  loads_[slots_[handle].proc] -= slots_[handle].size;
  slots_[handle].alive = false;
  free_slots_.push_back(handle);
  --num_alive_;
}

Instance OnlineScheduler::snapshot(std::vector<std::size_t>* handles) const {
  Instance inst;
  inst.num_procs = num_procs();
  inst.sizes.reserve(num_alive_);
  inst.move_costs.reserve(num_alive_);
  inst.initial.reserve(num_alive_);
  if (handles != nullptr) {
    handles->clear();
    handles->reserve(num_alive_);
  }
  for (std::size_t h = 0; h < slots_.size(); ++h) {
    if (!slots_[h].alive) continue;
    inst.sizes.push_back(slots_[h].size);
    inst.move_costs.push_back(slots_[h].move_cost);
    inst.initial.push_back(slots_[h].proc);
    if (handles != nullptr) handles->push_back(h);
  }
  return inst;
}

RebalanceResult OnlineScheduler::rebalance(
    const std::function<RebalanceResult(const Instance&, std::int64_t)>& policy,
    std::int64_t k) {
  std::vector<std::size_t> handles;
  const auto inst = snapshot(&handles);
  auto result = policy(inst, k);
  assert(!validate(inst, result.assignment));
  for (std::size_t j = 0; j < handles.size(); ++j) {
    auto& slot = slots_[handles[j]];
    if (slot.proc != result.assignment[j]) {
      loads_[slot.proc] -= slot.size;
      slot.proc = result.assignment[j];
      loads_[slot.proc] += slot.size;
    }
  }
  return result;
}

Size OnlineScheduler::makespan() const {
  return *std::max_element(loads_.begin(), loads_.end());
}

Size OnlineScheduler::offline_bound() const {
  Size total = 0;
  Size biggest = 0;
  for (const auto& slot : slots_) {
    if (!slot.alive) continue;
    total += slot.size;
    biggest = std::max(biggest, slot.size);
  }
  const auto m = static_cast<Size>(loads_.size());
  return std::max((total + m - 1) / m, biggest);
}

}  // namespace lrb::online
