// Online job traces: interleaved arrivals and departures, the dynamic
// setting the paper's abstract opens with ("in most real world scenarios
// the load is a dynamic measure, the initial assignment may not remain
// optimal with time"). Arrivals are placed greedily; departures punch holes
// that erode any placement - which is exactly when bounded rebalancing
// earns its keep.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace lrb::online {

enum class EventKind { kArrive, kDepart };

struct Event {
  EventKind kind = EventKind::kArrive;
  /// For arrivals: the job's size and relocation cost.
  Size size = 0;
  Cost move_cost = 1;
  /// For departures: the index (into the trace's arrival order) of the job
  /// that leaves. Guaranteed to reference a job that is alive at that point.
  std::size_t arrival_index = 0;
};

struct TraceOptions {
  std::size_t num_events = 1000;
  /// Probability that an event is a departure (when any job is alive).
  double departure_fraction = 0.4;
  Size min_size = 1;
  Size max_size = 100;
  Cost min_cost = 1;
  Cost max_cost = 1;
  /// Departures pick a random alive job; with bias_large_departures the
  /// victim is the LARGEST alive job half the time (adversarial-ish: the
  /// holes left behind are big).
  bool bias_large_departures = false;
};

/// Generates a well-formed trace (departures always reference alive jobs).
/// Deterministic in (options, seed).
[[nodiscard]] std::vector<Event> random_trace(const TraceOptions& options,
                                              std::uint64_t seed);

/// Validates departure references (every departure names a job that arrived
/// earlier and has not departed yet).
[[nodiscard]] bool trace_is_well_formed(const std::vector<Event>& trace);

}  // namespace lrb::online
