#include "online/trace.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/rng.h"

namespace lrb::online {

std::vector<Event> random_trace(const TraceOptions& options,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> trace;
  trace.reserve(options.num_events);
  // Alive set: arrival indices + sizes (for the biased victim choice).
  std::vector<std::size_t> alive;
  std::vector<Size> alive_size;
  std::size_t arrivals = 0;

  for (std::size_t e = 0; e < options.num_events; ++e) {
    const bool depart =
        !alive.empty() && rng.bernoulli(options.departure_fraction);
    if (depart) {
      std::size_t pick;
      if (options.bias_large_departures && rng.bernoulli(0.5)) {
        pick = static_cast<std::size_t>(
            std::max_element(alive_size.begin(), alive_size.end()) -
            alive_size.begin());
      } else {
        pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<Size>(alive.size()) - 1));
      }
      Event event;
      event.kind = EventKind::kDepart;
      event.arrival_index = alive[pick];
      trace.push_back(event);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      alive_size.erase(alive_size.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      Event event;
      event.kind = EventKind::kArrive;
      event.size = rng.uniform_int(options.min_size, options.max_size);
      event.move_cost = rng.uniform_int(options.min_cost, options.max_cost);
      event.arrival_index = arrivals;
      trace.push_back(event);
      alive.push_back(arrivals);
      alive_size.push_back(event.size);
      ++arrivals;
    }
  }
  assert(trace_is_well_formed(trace));
  return trace;
}

bool trace_is_well_formed(const std::vector<Event>& trace) {
  std::vector<char> alive;  // indexed by arrival order
  for (const auto& event : trace) {
    if (event.kind == EventKind::kArrive) {
      if (event.arrival_index != alive.size()) return false;
      alive.push_back(1);
    } else {
      if (event.arrival_index >= alive.size()) return false;
      if (alive[event.arrival_index] == 0) return false;
      alive[event.arrival_index] = 0;
    }
  }
  return true;
}

}  // namespace lrb::online
