#include "engine/batch_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace lrb::engine {

RebalanceResult solve_serial_reference(const solver::SolverSpec& spec,
                                       const Instance& instance,
                                       std::int64_t k) {
  return solver::solve_serial(spec, instance, k);
}

RebalanceResult cached_serial_reference(const solver::SolverSpec& spec,
                                        const Instance& instance,
                                        std::int64_t k) {
  const cache::CanonicalInstance canon = cache::canonicalize(instance);
  const RebalanceResult canonical =
      solver::solve_serial(spec, canon.instance, k);
  return cache::map_to_original(canon, canonical);
}

BatchSolver::BatchSolver(BatchOptions options)
    : options_(options),
      pool_(options.workers),
      solved_counter_(options_.metrics->counter("engine.instances_solved")),
      batch_counter_(options_.metrics->counter("engine.batches")),
      solve_latency_ms_(
          options_.metrics->histogram("engine.solve_latency_ms")) {
  if (options_.cache_bytes > 0) {
    cache::CacheOptions cache_options;
    cache_options.max_bytes = options_.cache_bytes;
    cache_options.shards = options_.cache_shards;
    cache_options.metrics = options_.metrics;
    cache_ = std::make_unique<cache::SolutionCache>(cache_options);
  }
  // One warmed arena per worker plus one for the submitting thread (it
  // helps drain the queue while blocked in parallel_for).
  std::lock_guard lock(scratch_mutex_);
  free_scratch_.reserve(pool_.size() + 1);
  for (std::size_t i = 0; i < pool_.size() + 1; ++i) {
    auto scratch = std::make_unique<Scratch>();
    scratch->warm(options_.warm_jobs, options_.warm_procs);
    free_scratch_.push_back(std::move(scratch));
  }
}

BatchSolver::ScratchLease::ScratchLease(BatchSolver& owner) : owner_(owner) {
  {
    std::lock_guard lock(owner_.scratch_mutex_);
    if (!owner_.free_scratch_.empty()) {
      scratch_ = std::move(owner_.free_scratch_.back());
      owner_.free_scratch_.pop_back();
    }
  }
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<Scratch>();
    scratch_->warm(owner_.options_.warm_jobs, owner_.options_.warm_procs);
  }
}

BatchSolver::ScratchLease::~ScratchLease() {
  std::lock_guard lock(owner_.scratch_mutex_);
  owner_.free_scratch_.push_back(std::move(scratch_));
}

RebalanceResult BatchSolver::run_item(Scratch& scratch, const TickItem& item) {
  const Instance& instance = *item.instance;
  solver::SolveContext ctx;
  ctx.pool = &pool_;
  ctx.intra_parallel_min_jobs = options_.intra_parallel_min_jobs;
  ctx.m_partition = &scratch.m_partition;
  ctx.ptas = &scratch.ptas;
  ctx.ptas_wave = &scratch.ptas_wave;
  RebalanceResult result = solver::solve(item.spec, instance, item.k, ctx);
#ifndef NDEBUG
  // Recheck the reported makespan against the assignment using the arena's
  // load buffer (no allocation once warmed).
  scratch.loads.assign(instance.num_procs, 0);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    scratch.loads[result.assignment[j]] += instance.sizes[j];
  }
  Size max_load = 0;
  for (Size load : scratch.loads) max_load = std::max(max_load, load);
  assert(max_load == result.makespan);
#endif
  return result;
}

RebalanceResult BatchSolver::solve_canonical(
    const TickItem& item, const cache::CanonicalInstance& canon,
    const cache::Fingerprint& fp, std::string_view key) {
  // kNoBlock is load-bearing: this runs on pool workers (solve_items
  // phase 2) and on threads whose run_item help-drains nested
  // parallel_for tasks. Parking either on the single-flight cv can
  // deadlock — a leader help-draining another tick's probe task would
  // wait on that key's leader, which may be waiting on ours. A duplicate
  // in-flight key therefore solves uncached instead of waiting.
  auto probe = cache_->lookup_or_begin(
      fp, key, cache::SolutionCache::WaitMode::kNoBlock);
  if (probe.hit) return std::move(probe.result);

  TickItem canonical_item = item;
  canonical_item.instance = &canon.instance;
  canonical_item.spec.params = solver::normalized_params(item.spec);
  RebalanceResult result;
  try {
    ScratchLease lease(*this);
    result = run_item(lease.get(), canonical_item);
  } catch (...) {
    // Never strand single-flight waiters: hand leadership to one of them.
    if (probe.leader) cache_->cancel(fp, key);
    throw;
  }
  solved_counter_.add(1);
  if (probe.leader) cache_->publish(fp, key, result);
  return result;
}

RebalanceResult BatchSolver::solve_item(const TickItem& item) {
  auto results = solve_items(std::span<const TickItem>(&item, 1));
  return std::move(results.front());
}

RebalanceResult BatchSolver::solve_one(const Instance& instance,
                                       std::int64_t k) {
  TickItem item;
  item.instance = &instance;
  item.k = k;
  item.spec = options_.spec;
  const auto begin = std::chrono::steady_clock::now();
  RebalanceResult result;
  if (cache_ != nullptr) {
    const cache::CanonicalInstance canon = cache::canonicalize(instance);
    const std::string key =
        cache::encode_cache_key(canon.instance, item.spec, item.k);
    const cache::Fingerprint fp = cache::fingerprint(key);
    result = cache::map_to_original(canon, solve_canonical(item, canon, fp, key));
  } else {
    ScratchLease lease(*this);
    result = run_item(lease.get(), item);
    solved_counter_.add(1);
  }
  const auto end = std::chrono::steady_clock::now();
  solve_latency_ms_.record(
      std::chrono::duration<double, std::milli>(end - begin).count());
  return result;
}

std::vector<RebalanceResult> BatchSolver::solve_items_cached(
    std::span<const TickItem> items, std::vector<double>* latencies_ms) {
  using Clock = std::chrono::steady_clock;
  const std::size_t n = items.size();
  std::vector<RebalanceResult> results(n);
  if (latencies_ms != nullptr) latencies_ms->assign(n, 0.0);

  // Phase 1: canonicalize every item and derive its cache key.
  std::vector<cache::CanonicalInstance> canons(n);
  std::vector<std::string> keys(n);
  std::vector<cache::Fingerprint> fps(n);
  std::vector<double> canon_ms(n, 0.0);
  parallel_for(pool_, 0, n, [&](std::size_t i) {
    const auto begin = Clock::now();
    const TickItem& item = items[i];
    canons[i] = cache::canonicalize(*item.instance);
    keys[i] = cache::encode_cache_key(canons[i].instance, item.spec, item.k);
    fps[i] = cache::fingerprint(keys[i]);
    canon_ms[i] =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();
  });

  // Batch dedup: items with byte-identical keys share one solve. rep[i] is
  // the first item with item i's key; only representatives hit the cache.
  std::vector<std::size_t> rep(n);
  std::vector<std::size_t> uniques;
  {
    std::unordered_map<std::string_view, std::size_t> first;
    first.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = first.emplace(keys[i], i);
      rep[i] = it->second;
      if (inserted) uniques.push_back(i);
    }
  }

  // Phase 2: probe-or-solve each representative (canonical labels). The
  // solve time is recorded into the histogram here, once per
  // representative — duplicates must not re-record it below, or batches
  // with many duplicates inflate engine.solve_latency_ms.
  std::vector<RebalanceResult> canonical_results(n);
  std::vector<double> solve_ms(n, 0.0);
  parallel_for(pool_, 0, uniques.size(), [&](std::size_t u) {
    const std::size_t i = uniques[u];
    const auto begin = Clock::now();
    canonical_results[i] = solve_canonical(items[i], canons[i], fps[i],
                                           keys[i]);
    solve_ms[i] =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();
    solve_latency_ms_.record(canon_ms[i] + solve_ms[i]);
  });

  // Phase 3: fan out through each item's own recorded permutation. A
  // duplicate's own cost is just its canonicalization; the shared solve
  // was already attributed to the representative.
  parallel_for(pool_, 0, n, [&](std::size_t i) {
    results[i] = cache::map_to_original(canons[i], canonical_results[rep[i]]);
    const double ms =
        rep[i] == i ? canon_ms[i] + solve_ms[i] : canon_ms[i];
    if (rep[i] != i) solve_latency_ms_.record(ms);
    if (latencies_ms != nullptr) (*latencies_ms)[i] = ms;
  });
  return results;
}

std::vector<RebalanceResult> BatchSolver::solve_items(
    std::span<const TickItem> items, std::vector<double>* latencies_ms) {
  batch_counter_.add(1);
  if (cache_ != nullptr) return solve_items_cached(items, latencies_ms);
  std::vector<RebalanceResult> results(items.size());
  if (latencies_ms != nullptr) {
    latencies_ms->assign(items.size(), 0.0);
  }
  parallel_for(pool_, 0, items.size(), [&](std::size_t i) {
    const auto begin = std::chrono::steady_clock::now();
    {
      ScratchLease lease(*this);
      results[i] = run_item(lease.get(), items[i]);
    }
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    solved_counter_.add(1);
    solve_latency_ms_.record(ms);
    if (latencies_ms != nullptr) (*latencies_ms)[i] = ms;
  });
  return results;
}

std::vector<RebalanceResult> BatchSolver::solve(
    const std::vector<Instance>& instances,
    const std::vector<std::int64_t>& ks, std::vector<double>* latencies_ms) {
  assert(instances.size() == ks.size());
  std::vector<TickItem> items(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    items[i].instance = &instances[i];
    items[i].k = ks[i];
    items[i].spec = options_.spec;
  }
  return solve_items(items, latencies_ms);
}

}  // namespace lrb::engine
