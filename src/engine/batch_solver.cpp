#include "engine/batch_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "algo/rebalancer.h"

namespace lrb::engine {

const char* algo_name(Algo algo) {
  switch (algo) {
    case Algo::kGreedy:
      return "greedy";
    case Algo::kMPartition:
      return "m-partition";
    case Algo::kBestOf:
      return "best-of";
    case Algo::kPtas:
      return "ptas";
  }
  return "?";
}

bool parse_algo(std::string_view name, Algo* out) {
  if (name == "greedy") {
    *out = Algo::kGreedy;
  } else if (name == "m-partition") {
    *out = Algo::kMPartition;
  } else if (name == "best-of") {
    *out = Algo::kBestOf;
  } else if (name == "ptas") {
    *out = Algo::kPtas;
  } else {
    return false;
  }
  return true;
}

RebalanceResult solve_serial_reference(Algo algo, const Instance& instance,
                                       std::int64_t k, Cost ptas_budget,
                                       double ptas_eps) {
  switch (algo) {
    case Algo::kGreedy:
      return greedy_rebalance(instance, k);
    case Algo::kMPartition:
      return m_partition_rebalance(instance, k);
    case Algo::kBestOf:
      return best_of_rebalance(instance, k);
    case Algo::kPtas:
      break;
  }
  PtasOptions options;
  options.budget = ptas_budget;
  options.eps = ptas_eps;
  return ptas_rebalance(instance, options).result;
}

BatchSolver::BatchSolver(BatchOptions options)
    : options_(options),
      pool_(options.workers),
      solved_counter_(options_.metrics->counter("engine.instances_solved")),
      batch_counter_(options_.metrics->counter("engine.batches")),
      solve_latency_ms_(
          options_.metrics->histogram("engine.solve_latency_ms")) {
  // One warmed arena per worker plus one for the submitting thread (it
  // helps drain the queue while blocked in parallel_for).
  std::lock_guard lock(scratch_mutex_);
  free_scratch_.reserve(pool_.size() + 1);
  for (std::size_t i = 0; i < pool_.size() + 1; ++i) {
    auto scratch = std::make_unique<Scratch>();
    scratch->warm(options_.warm_jobs, options_.warm_procs);
    free_scratch_.push_back(std::move(scratch));
  }
}

BatchSolver::ScratchLease::ScratchLease(BatchSolver& owner) : owner_(owner) {
  {
    std::lock_guard lock(owner_.scratch_mutex_);
    if (!owner_.free_scratch_.empty()) {
      scratch_ = std::move(owner_.free_scratch_.back());
      owner_.free_scratch_.pop_back();
    }
  }
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<Scratch>();
    scratch_->warm(owner_.options_.warm_jobs, owner_.options_.warm_procs);
  }
}

BatchSolver::ScratchLease::~ScratchLease() {
  std::lock_guard lock(owner_.scratch_mutex_);
  owner_.free_scratch_.push_back(std::move(scratch_));
}

RebalanceResult BatchSolver::run_m_partition(Scratch& scratch,
                                             const Instance& instance,
                                             std::int64_t k) {
  // Both branches return bit-identical results; the split is purely a
  // performance decision (chunk setup costs more than a small serial scan).
  if (pool_.size() > 1 &&
      instance.num_jobs() >= options_.intra_parallel_min_jobs) {
    return m_partition_rebalance_parallel(instance, k, pool_);
  }
  return m_partition_rebalance(instance, k, scratch.m_partition);
}

RebalanceResult BatchSolver::run_algo(Scratch& scratch,
                                      const TickItem& item) {
  const Instance& instance = *item.instance;
  const std::int64_t k = item.k;
  RebalanceResult result;
  switch (item.algo) {
    case Algo::kGreedy:
      result = greedy_rebalance(instance, k);
      break;
    case Algo::kMPartition:
      result = run_m_partition(scratch, instance, k);
      break;
    case Algo::kBestOf: {
      // Same tie-break as best_of_rebalance: PARTITION wins ties.
      auto greedy = greedy_rebalance(instance, k);
      auto partition = run_m_partition(scratch, instance, k);
      result = partition.makespan <= greedy.makespan ? std::move(partition)
                                                     : std::move(greedy);
      break;
    }
    case Algo::kPtas: {
      PtasOptions opt;
      opt.budget = item.ptas_budget;
      opt.eps = item.ptas_eps;
      auto ptas = (pool_.size() > 1 &&
                   instance.num_jobs() >= options_.intra_parallel_min_jobs)
                      ? ptas_rebalance_parallel(instance, opt, pool_,
                                                scratch.ptas_wave)
                      : ptas_rebalance(instance, opt, scratch.ptas);
      result = std::move(ptas.result);
      break;
    }
  }
#ifndef NDEBUG
  // Recheck the reported makespan against the assignment using the arena's
  // load buffer (no allocation once warmed).
  scratch.loads.assign(instance.num_procs, 0);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    scratch.loads[result.assignment[j]] += instance.sizes[j];
  }
  Size max_load = 0;
  for (Size load : scratch.loads) max_load = std::max(max_load, load);
  assert(max_load == result.makespan);
#endif
  return result;
}

RebalanceResult BatchSolver::solve_one(const Instance& instance,
                                       std::int64_t k) {
  TickItem item;
  item.instance = &instance;
  item.k = k;
  item.algo = options_.algo;
  item.ptas_budget = options_.ptas_budget;
  item.ptas_eps = options_.ptas_eps;
  const auto begin = std::chrono::steady_clock::now();
  RebalanceResult result;
  {
    ScratchLease lease(*this);
    result = run_algo(lease.get(), item);
  }
  const auto end = std::chrono::steady_clock::now();
  solved_counter_.add(1);
  solve_latency_ms_.record(
      std::chrono::duration<double, std::milli>(end - begin).count());
  return result;
}

std::vector<RebalanceResult> BatchSolver::solve_items(
    std::span<const TickItem> items, std::vector<double>* latencies_ms) {
  batch_counter_.add(1);
  std::vector<RebalanceResult> results(items.size());
  if (latencies_ms != nullptr) {
    latencies_ms->assign(items.size(), 0.0);
  }
  parallel_for(pool_, 0, items.size(), [&](std::size_t i) {
    const auto begin = std::chrono::steady_clock::now();
    {
      ScratchLease lease(*this);
      results[i] = run_algo(lease.get(), items[i]);
    }
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    solved_counter_.add(1);
    solve_latency_ms_.record(ms);
    if (latencies_ms != nullptr) (*latencies_ms)[i] = ms;
  });
  return results;
}

std::vector<RebalanceResult> BatchSolver::solve(
    const std::vector<Instance>& instances,
    const std::vector<std::int64_t>& ks, std::vector<double>* latencies_ms) {
  assert(instances.size() == ks.size());
  std::vector<TickItem> items(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    items[i].instance = &instances[i];
    items[i].k = ks[i];
    items[i].algo = options_.algo;
    items[i].ptas_budget = options_.ptas_budget;
    items[i].ptas_eps = options_.ptas_eps;
  }
  return solve_items(items, latencies_ms);
}

}  // namespace lrb::engine
