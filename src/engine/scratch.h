// Per-worker reusable working memory for the batch engine.

#pragma once

#include <cstddef>
#include <vector>

#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "core/types.h"

namespace lrb::engine {

/// One worker's arena, checked out of the BatchSolver's pool for the
/// duration of a single solve. `warm` pre-sizes every buffer so that
/// steady-state solving of instances within the warmed bounds performs no
/// heap allocation in the M-PARTITION scan (see docs/performance.md for
/// what the arena contract does and does not cover).
struct Scratch {
  MPartitionScratch m_partition;
  PtasScratch ptas;                 ///< serial PTAS guess-scan arena
  std::vector<PtasScratch> ptas_wave;  ///< wave-parallel PTAS slot arenas
  std::vector<Size> loads;  ///< per-processor loads for result rechecks

  void warm(std::size_t max_jobs, ProcId max_procs) {
    m_partition.warm(max_jobs, max_procs);
    ptas.warm(max_jobs, max_procs);
    loads.reserve(max_procs);
    // ptas_wave slots are sized (and warmed by first use) lazily in
    // BatchSolver::run_algo: the wave count depends on the pool size.
  }
};

}  // namespace lrb::engine
