// The parallel batch-solving engine: fans a stream of rebalancing
// instances across a ThreadPool with per-worker reusable Scratch arenas,
// and switches large instances to the intra-instance parallel paths
// (chunked M-PARTITION threshold scan, wave-parallel PTAS guess scan) on
// the same pool.
//
// Backend selection is a solver::SolverSpec resolved through the solver
// registry (solver/registry.h, docs/solvers.md); the engine itself
// contains no per-algorithm dispatch — it only supplies the pool and the
// scratch arenas to the registry's solve().
//
// Determinism contract: for a fixed (instances, ks, spec) input, solve()
// returns results byte-identical to calling the serial entry points one
// instance at a time, for every worker count and across repeated runs.
// Both intra-instance parallel paths are bit-identical to their serial
// counterparts by construction (see m_partition.h / ptas.h), and
// inter-instance parallelism never reorders results: slot i of the output
// is always instance i's result.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "cache/canonical.h"
#include "cache/solution_cache.h"
#include "core/assignment.h"
#include "core/instance.h"
#include "core/types.h"
#include "engine/scratch.h"
#include "obs/metrics.h"
#include "solver/registry.h"
#include "util/thread_pool.h"

namespace lrb::engine {

/// The serial reference every concurrent path is checked against: the
/// registry's serial entry point for `spec` (no pool, no arenas). Shared
/// by lrb_batch --check, lrb_load --check and the tests.
[[nodiscard]] RebalanceResult solve_serial_reference(
    const solver::SolverSpec& spec, const Instance& instance, std::int64_t k);

/// The serial reference for every CACHE-ENABLED path: canonicalize, solve
/// the canonical instance serially, and map the plan back through the
/// recorded permutations (docs/caching.md). The cache-enabled engine is
/// byte-identical to this — on a cold miss and on a warm hit alike — so
/// checkers compare against it whenever the cache is on. For an instance
/// that is already in canonical form it coincides with
/// solve_serial_reference.
[[nodiscard]] RebalanceResult cached_serial_reference(
    const solver::SolverSpec& spec, const Instance& instance, std::int64_t k);

struct BatchOptions {
  std::size_t workers = 0;  ///< pool size; 0 = hardware concurrency
  /// Backend + parameters for solve()/solve_one(); per-item entry points
  /// carry their own spec.
  solver::SolverSpec spec;
  /// Instances with at least this many jobs also use the intra-instance
  /// parallel scans. Purely a performance knob: both paths are
  /// bit-identical to the serial ones.
  std::size_t intra_parallel_min_jobs = std::size_t{1} << 14;
  /// Arena pre-sizing: instances within these bounds never reallocate in
  /// the scan hot path.
  std::size_t warm_jobs = std::size_t{1} << 12;
  ProcId warm_procs = 64;
  /// Metrics sink ("engine.*" counters and latency histogram). Defaults to
  /// the process-wide registry; tests and embedding servers may pass their
  /// own. Never read on a path that affects results.
  obs::Registry* metrics = &obs::Registry::global();
  /// Byte budget for the canonicalizing solution cache; 0 disables it.
  /// With the cache on, every solve goes canonicalize → probe → (solve
  /// canonical on miss) → map back, so results are byte-identical to
  /// cached_serial_reference whether they were served cold or warm.
  std::size_t cache_bytes = 0;
  /// Shard count for the solution cache (rounded up to a power of two).
  std::size_t cache_shards = 8;
};

class BatchSolver {
 public:
  explicit BatchSolver(BatchOptions options = {});

  [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
  [[nodiscard]] const BatchOptions& options() const noexcept {
    return options_;
  }

  /// Solves instance i with move budget ks[i] (ks.size() must equal
  /// instances.size()). Slot i of the returned vector is instance i's
  /// result. When `latencies_ms` is non-null it is resized and filled with
  /// each instance's wall-clock solve latency in milliseconds. With the
  /// cache enabled, items deduplicated within the batch report only their
  /// own canonicalization time; the shared solve is attributed to the
  /// first item with that key.
  [[nodiscard]] std::vector<RebalanceResult> solve(
      const std::vector<Instance>& instances,
      const std::vector<std::int64_t>& ks,
      std::vector<double>* latencies_ms = nullptr);

  /// One request of a serving tick: a borrowed instance plus a per-request
  /// solver spec (the serving layer mixes backends within a tick).
  struct TickItem {
    const Instance* instance = nullptr;
    std::int64_t k = 0;
    solver::SolverSpec spec;
  };

  /// Same determinism contract over borrowed instances with per-item
  /// parameters: the tick entry point used by the serving layer
  /// (src/svc), which coalesces in-flight requests without copying their
  /// instances. All instance pointers must be non-null.
  [[nodiscard]] std::vector<RebalanceResult> solve_items(
      std::span<const TickItem> items,
      std::vector<double>* latencies_ms = nullptr);

  /// Solves a single instance on the calling thread (intra-instance
  /// parallelism still uses the pool for large instances).
  [[nodiscard]] RebalanceResult solve_one(const Instance& instance,
                                          std::int64_t k);

  /// One-item tick with per-item parameters: the streaming-session replan
  /// entry (svc session handlers run it inline on their reactor thread).
  /// Identical to solve_items over a single-element span, so it carries
  /// the same determinism contract and the same cache-awareness.
  [[nodiscard]] RebalanceResult solve_item(const TickItem& item);

  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }
  /// The embedded solution cache, or nullptr when cache_bytes == 0.
  [[nodiscard]] cache::SolutionCache* solution_cache() noexcept {
    return cache_.get();
  }

 private:
  /// RAII lease on a Scratch arena from the free list. The list is
  /// self-healing: an empty list mints a fresh arena, so helping workers
  /// re-entering solve paths can never deadlock on arenas.
  class ScratchLease {
   public:
    explicit ScratchLease(BatchSolver& owner);
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    [[nodiscard]] Scratch& get() noexcept { return *scratch_; }

   private:
    BatchSolver& owner_;
    std::unique_ptr<Scratch> scratch_;
  };

  /// Runs the item through the registry with this engine's pool and the
  /// leased arenas, plus a debug-build makespan recheck.
  [[nodiscard]] RebalanceResult run_item(Scratch& scratch,
                                         const TickItem& item);
  /// Probe-or-solve for one canonicalized item; returns the result in
  /// CANONICAL labels. Probes with WaitMode::kNoBlock — it runs on (or
  /// help-drains into) pool workers, which must never park on the
  /// single-flight cv — so a key another thread is already solving is
  /// solved uncached here rather than waited for.
  [[nodiscard]] RebalanceResult solve_canonical(
      const TickItem& item, const cache::CanonicalInstance& canon,
      const cache::Fingerprint& fp, std::string_view key);
  [[nodiscard]] std::vector<RebalanceResult> solve_items_cached(
      std::span<const TickItem> items, std::vector<double>* latencies_ms);

  BatchOptions options_;
  ThreadPool pool_;
  std::unique_ptr<cache::SolutionCache> cache_;
  std::mutex scratch_mutex_;
  std::vector<std::unique_ptr<Scratch>> free_scratch_;
  // Engine observability (hot-path wait-free; see obs/metrics.h).
  obs::Counter& solved_counter_;
  obs::Counter& batch_counter_;
  obs::Histogram& solve_latency_ms_;
};

}  // namespace lrb::engine
