#include "knapsack/knapsack.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lrb {
namespace {

// Shared DP core on (possibly scaled) integer sizes. `sizes[i]` is item i's
// weight in DP units; capacity likewise. Reconstructs the chosen set.
KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          std::span<const Size> sizes, Size capacity) {
  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(std::max<Size>(capacity, 0));
  // best[w]: max value using a prefix of items with total scaled size <= w.
  std::vector<Cost> best(cap + 1, 0);
  // take[i * (cap+1) + w]: whether item i is taken at budget w.
  std::vector<char> take(n * (cap + 1), 0);

  for (std::size_t i = 0; i < n; ++i) {
    const Size w_i = sizes[i];
    const Cost v_i = items[i].value;
    if (w_i > capacity) continue;
    char* take_row = take.data() + i * (cap + 1);
    // Descending weight loop keeps each item 0/1.
    for (std::size_t w = cap; w + 1 > static_cast<std::size_t>(w_i); --w) {
      const Cost candidate = best[w - static_cast<std::size_t>(w_i)] + v_i;
      if (candidate > best[w]) {
        best[w] = candidate;
        take_row[w] = 1;
      }
      if (w == 0) break;
    }
  }

  KnapsackSolution solution;
  solution.value = best[cap];
  std::size_t w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i * (cap + 1) + w]) {
      solution.chosen.push_back(i);
      solution.size += items[i].size;  // report TRUE size, not scaled
      w -= static_cast<std::size_t>(sizes[i]);
    }
  }
  std::reverse(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

}  // namespace

KnapsackSolution knapsack_exact(std::span<const KnapsackItem> items,
                                Size capacity) {
  assert(capacity >= 0);
  std::vector<Size> sizes(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    assert(items[i].size >= 0);
    assert(items[i].value >= 0);
    sizes[i] = items[i].size;
  }
  return solve_dp(items, sizes, capacity);
}

KnapsackSolution knapsack_greedy(std::span<const KnapsackItem> items,
                                 Size capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // value/size descending; zero-size items first (infinite density).
    const auto& ia = items[a];
    const auto& ib = items[b];
    if ((ia.size == 0) != (ib.size == 0)) return ia.size == 0;
    if (ia.size == 0) return ia.value > ib.value;
    return static_cast<double>(ia.value) * static_cast<double>(ib.size) >
           static_cast<double>(ib.value) * static_cast<double>(ia.size);
  });
  KnapsackSolution solution;
  for (std::size_t i : order) {
    if (solution.size + items[i].size <= capacity) {
      solution.size += items[i].size;
      solution.value += items[i].value;
      solution.chosen.push_back(i);
    }
  }
  std::sort(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

KnapsackSolution knapsack_size_relaxed(std::span<const KnapsackItem> items,
                                       Size capacity, double eps) {
  assert(eps > 0.0);
  assert(capacity >= 0);
  if (items.empty() || capacity == 0) {
    // Only zero-size items can be kept; take them all (values >= 0).
    KnapsackSolution solution;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].size == 0) {
        solution.chosen.push_back(i);
        solution.value += items[i].value;
      }
    }
    return solution;
  }
  const auto n = static_cast<double>(items.size());
  const Size unit = std::max<Size>(
      1, static_cast<Size>(std::floor(eps * static_cast<double>(capacity) / n)));
  std::vector<Size> scaled(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    scaled[i] = items[i].size / unit;  // round DOWN: never excludes OPT's set
  }
  const Size scaled_cap = capacity / unit;
  auto solution = solve_dp(items, scaled, scaled_cap);
  // True size exceeds the scaled size by < unit per item, so
  // size <= scaled_cap*unit + n*unit <= capacity + eps*capacity.
  return solution;
}

KnapsackSolution knapsack_auto(std::span<const KnapsackItem> items,
                               Size capacity, double eps,
                               std::size_t max_cells) {
  const auto cells = static_cast<std::size_t>(std::max<Size>(capacity, 0) + 1) *
                     std::max<std::size_t>(items.size(), 1);
  if (cells <= max_cells) return knapsack_exact(items, capacity);
  return knapsack_size_relaxed(items, capacity, eps);
}

}  // namespace lrb
