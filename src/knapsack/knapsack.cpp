#include "knapsack/knapsack.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lrb {
namespace {

// Shared DP core on (possibly scaled) integer sizes. `sizes[i]` is item i's
// weight in DP units; capacity likewise. Reconstructs the chosen set. All
// working memory lives in `sc` (bit-packed take matrix: one bit per
// item x budget cell).
KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          std::span<const Size> sizes, Size capacity,
                          KnapsackScratch& sc) {
  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(std::max<Size>(capacity, 0));
  // best[w]: max value using a prefix of items with total scaled size <= w.
  sc.best.assign(cap + 1, 0);
  const std::size_t row_words = (cap + 1 + 63) / 64;
  sc.take.assign(n * row_words, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const Size w_i = sizes[i];
    const Cost v_i = items[i].value;
    if (w_i > capacity) continue;
    std::uint64_t* take_row = sc.take.data() + i * row_words;
    // Descending weight loop keeps each item 0/1.
    for (std::size_t w = cap; w + 1 > static_cast<std::size_t>(w_i); --w) {
      const Cost candidate = sc.best[w - static_cast<std::size_t>(w_i)] + v_i;
      if (candidate > sc.best[w]) {
        sc.best[w] = candidate;
        take_row[w / 64] |= std::uint64_t{1} << (w % 64);
      }
      if (w == 0) break;
    }
  }

  KnapsackSolution solution;
  solution.value = sc.best[cap];
  std::size_t w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if ((sc.take[i * row_words + w / 64] >> (w % 64)) & 1u) {
      solution.chosen.push_back(i);
      solution.size += items[i].size;  // report TRUE size, not scaled
      w -= static_cast<std::size_t>(sizes[i]);
    }
  }
  std::reverse(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

}  // namespace

KnapsackSolution knapsack_exact(std::span<const KnapsackItem> items,
                                Size capacity, KnapsackScratch* scratch) {
  assert(capacity >= 0);
  KnapsackScratch local;
  KnapsackScratch& sc = scratch != nullptr ? *scratch : local;
  sc.scaled_sizes.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    assert(items[i].size >= 0);
    assert(items[i].value >= 0);
    sc.scaled_sizes[i] = items[i].size;
  }
  return solve_dp(items, sc.scaled_sizes, capacity, sc);
}

KnapsackSolution knapsack_greedy(std::span<const KnapsackItem> items,
                                 Size capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // value/size descending; zero-size items first (infinite density).
    const auto& ia = items[a];
    const auto& ib = items[b];
    if ((ia.size == 0) != (ib.size == 0)) return ia.size == 0;
    if (ia.size == 0) return ia.value > ib.value;
    return static_cast<double>(ia.value) * static_cast<double>(ib.size) >
           static_cast<double>(ib.value) * static_cast<double>(ia.size);
  });
  KnapsackSolution solution;
  for (std::size_t i : order) {
    if (solution.size + items[i].size <= capacity) {
      solution.size += items[i].size;
      solution.value += items[i].value;
      solution.chosen.push_back(i);
    }
  }
  std::sort(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

KnapsackSolution knapsack_size_relaxed(std::span<const KnapsackItem> items,
                                       Size capacity, double eps,
                                       KnapsackScratch* scratch) {
  assert(eps > 0.0);
  assert(capacity >= 0);
  if (items.empty() || capacity == 0) {
    // Only zero-size items can be kept; take them all (values >= 0).
    KnapsackSolution solution;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].size == 0) {
        solution.chosen.push_back(i);
        solution.value += items[i].value;
      }
    }
    return solution;
  }
  const auto n = static_cast<double>(items.size());
  const Size unit = std::max<Size>(
      1, static_cast<Size>(std::floor(eps * static_cast<double>(capacity) / n)));
  KnapsackScratch local;
  KnapsackScratch& sc = scratch != nullptr ? *scratch : local;
  sc.scaled_sizes.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    sc.scaled_sizes[i] = items[i].size / unit;  // round DOWN: keeps OPT's set
  }
  const Size scaled_cap = capacity / unit;
  auto solution = solve_dp(items, sc.scaled_sizes, scaled_cap, sc);
  // True size exceeds the scaled size by < unit per item, so
  // size <= scaled_cap*unit + n*unit <= capacity + eps*capacity.
  return solution;
}

KnapsackSolution knapsack_auto(std::span<const KnapsackItem> items,
                               Size capacity, double eps,
                               std::size_t max_cells,
                               KnapsackScratch* scratch) {
  // (capacity+1) * n with overflow checking: a saturated product means the
  // exact DP table could never be allocated, so route to the relaxed DP
  // (the historical wrapping product could alias huge capacities back into
  // the "small" range and wrongly pick knapsack_exact).
  const auto cap1 =
      static_cast<std::size_t>(std::max<Size>(capacity, 0)) + 1;
  const std::size_t n = std::max<std::size_t>(items.size(), 1);
  std::size_t cells = 0;
  const bool saturated = __builtin_mul_overflow(cap1, n, &cells);
  if (!saturated && cells <= max_cells) {
    return knapsack_exact(items, capacity, scratch);
  }
  return knapsack_size_relaxed(items, capacity, eps, scratch);
}

}  // namespace lrb
