// 0/1 knapsack routines used by the arbitrary-cost PARTITION (SPAA'03 §3.2)
// and the PTAS (§4).
//
// The rebalancing use case is always "choose which jobs to KEEP on a
// processor": maximize the total kept value (= relocation cost saved)
// subject to the kept total size fitting under a load cap. The removal cost
// is then (total value - kept value).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace lrb {

struct KnapsackItem {
  Size size = 0;
  Cost value = 0;
};

/// Reusable DP buffers. The `take` matrix is bit-packed (one bit per
/// item x budget cell, 8x smaller than the historical byte matrix) and both
/// buffers are retained across calls, so repeat solves of instances within
/// previously seen bounds perform no heap allocation. Pass one by pointer
/// to the routines below; nullptr means "use a call-local scratch".
struct KnapsackScratch {
  std::vector<Cost> best;            ///< (cap+1) running best values
  std::vector<std::uint64_t> take;   ///< n rows of ceil((cap+1)/64) words
  std::vector<Size> scaled_sizes;    ///< per-item DP weights
};

struct KnapsackSolution {
  Cost value = 0;                    ///< total value of chosen items
  Size size = 0;                     ///< total size of chosen items
  std::vector<std::size_t> chosen;   ///< indices into the input span, ascending
};

/// Exact DP over capacity: O(n * capacity) time and O(n * capacity) bits of
/// choice bookkeeping. Requires capacity >= 0; items with size > capacity
/// are never chosen. Intended for capacity up to ~1e6 * n cells.
[[nodiscard]] KnapsackSolution knapsack_exact(std::span<const KnapsackItem> items,
                                              Size capacity,
                                              KnapsackScratch* scratch = nullptr);

/// Greedy by value/size ratio (items with size 0 first). No approximation
/// guarantee by itself; used as a warm start and by the fractional bounds.
[[nodiscard]] KnapsackSolution knapsack_greedy(std::span<const KnapsackItem> items,
                                               Size capacity);

/// Size-relaxed PTAS in the paper's sense (§3.2): returns a set with
///   value >= exact optimum at `capacity`, and
///   size  <= (1 + eps) * capacity.
/// Works by rounding sizes DOWN to multiples of eps*capacity/n and running
/// the exact DP on the scaled sizes; O(n^2 / eps). eps > 0.
[[nodiscard]] KnapsackSolution knapsack_size_relaxed(
    std::span<const KnapsackItem> items, Size capacity, double eps,
    KnapsackScratch* scratch = nullptr);

/// Picks knapsack_exact when the DP table is small (<= max_cells), else
/// knapsack_size_relaxed(eps). The returned set always has
/// size <= (1 + eps) * capacity and value >= the exact optimum at capacity.
/// The cell count is computed with overflow checking: capacities whose
/// (capacity+1)*n product would wrap route to the relaxed DP instead of
/// aliasing into the exact one.
[[nodiscard]] KnapsackSolution knapsack_auto(std::span<const KnapsackItem> items,
                                             Size capacity, double eps,
                                             std::size_t max_cells = 1u << 24,
                                             KnapsackScratch* scratch = nullptr);

}  // namespace lrb
