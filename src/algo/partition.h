// Algorithm PARTITION from SPAA'03 §3: the 1.5-approximation for load
// rebalancing, given a guess T of the optimal makespan.
//
// Jobs of size strictly greater than T/2 are "large". With L_T large jobs,
// m_L processors holding at least one and L_E = L_T - m_L extras:
//
//   Step 1: on every processor keep only its smallest large job (L_E
//           removals).
//   Step 2: per processor compute
//             a_i = min #small jobs to drop so remaining small total <= T/2
//             b_i = min #jobs to drop so remaining total <= T
//             c_i = a_i - b_i.
//   Step 3: select the L_T processors with smallest c_i (ties prefer
//           processors holding a large job); drop the a_i largest small jobs
//           from each.
//   Step 4: from the other m - L_T processors drop the b_i largest jobs.
//           (When b_i >= 1 this always evicts the processor's large job, if
//           any, because the large job is its largest; when b_i = 0 a large
//           job that already fits within T stays put, which only saves
//           moves and keeps that processor's load <= T.) Removed large jobs
//           go to distinct large-free selected processors.
//   Step 5: place the large jobs from Step 1 on the remaining large-free
//           selected processors.
//   Step 6: place the removed small jobs greedily (largest first) on the
//           currently min-loaded processor.
//
// Counting slots: with g selected processors holding large jobs and h
// non-selected large jobs evicted in Step 4, g + h <= m_L, so the
// L_T - g = L_E + (m_L - g) large-free selected slots always suffice for the
// L_E + h placements. The construction therefore succeeds structurally for
// ANY T with L_T <= m; whether the implied number of removals is within the
// move budget is the caller's acceptance test (see m_partition.h).
//
// Guarantees (tested): if T >= OPT then total removals <= the moves of any
// optimal k-move solution (Lemmas 3-4), and the final makespan is at most
// max-load <= T/2 + max(T, max_job) on large-carrying processors and
// <= avg + T/2 elsewhere - i.e. <= 1.5 * OPT whenever T <= OPT holds too
// (Theorems 2-3).

#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct PartitionOutcome {
  /// False iff more large jobs than processors (T certainly below OPT).
  bool feasible = false;
  /// The rebalanced solution (valid only when feasible).
  RebalanceResult result;
  /// Total job removals performed in Steps 1-4: the paper's acceptance
  /// quantity k-hat. Actual relocations (result.moves) never exceed it.
  std::int64_t removals = 0;
  Size threshold = 0;
  std::int64_t large_total = 0;  ///< L_T
  std::int64_t large_extra = 0;  ///< L_E
  std::vector<std::int64_t> a;   ///< per-processor a_i
  std::vector<std::int64_t> b;   ///< per-processor b_i
};

/// Runs PARTITION at the given makespan guess. threshold >= 0.
[[nodiscard]] PartitionOutcome partition_rebalance_at(const Instance& instance,
                                                      Size threshold);

}  // namespace lrb
