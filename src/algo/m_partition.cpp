#include "algo/m_partition.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "algo/thresholds.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

/// Fenwick tree over c-values (c = a_i - b_i, in [-max_abs, max_abs]),
/// answering "sum of the t smallest stored values" in O(log n).
class CSelector {
 public:
  explicit CSelector(std::int64_t max_abs)
      : offset_(max_abs),
        size_(static_cast<std::size_t>(2 * max_abs + 2)),
        cnt_(size_ + 1, 0),
        sum_(size_ + 1, 0) {
    log_ = 0;
    while ((std::size_t{1} << (log_ + 1)) <= size_) ++log_;
  }

  void add(std::int64_t c, std::int64_t delta) {
    for (std::size_t i = index(c); i <= size_; i += i & (~i + 1)) {
      cnt_[i] += delta;
      sum_[i] += delta * c;
    }
  }

  /// Sum of the t smallest values currently stored; t must not exceed the
  /// stored count.
  [[nodiscard]] std::int64_t smallest_sum(std::int64_t t) const {
    if (t <= 0) return 0;
    std::size_t pos = 0;
    std::int64_t cnt = 0;
    std::int64_t sum = 0;
    for (int b = static_cast<int>(log_); b >= 0; --b) {
      const std::size_t next = pos + (std::size_t{1} << b);
      if (next <= size_ && cnt + cnt_[next] < t) {
        pos = next;
        cnt += cnt_[next];
        sum += sum_[next];
      }
    }
    // pos = largest index whose prefix holds < t values; the t-th smallest
    // value is the one stored at index pos + 1.
    const std::int64_t boundary_value =
        static_cast<std::int64_t>(pos + 1) - offset_ - 1;
    return sum + (t - cnt) * boundary_value;
  }

 private:
  [[nodiscard]] std::size_t index(std::int64_t c) const {
    const std::int64_t i = c + offset_ + 1;
    assert(i >= 1 && static_cast<std::size_t>(i) <= size_);
    return static_cast<std::size_t>(i);
  }

  std::int64_t offset_;
  std::size_t size_;
  std::size_t log_;
  std::vector<std::int64_t> cnt_;
  std::vector<std::int64_t> sum_;
};

/// Per-processor static data plus the (a_i, b_i) pair at the current guess.
struct ProcState {
  std::vector<Size> prefix;  ///< prefix[l-1] = sum of the l smallest jobs
  std::int64_t num_jobs = 0;
  std::int64_t num_large = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::vector<Size> sizes_asc;
};

/// Recomputes (num_large, a, b) of one processor at guess T via three
/// binary searches; O(log n_p).
void refresh(ProcState& ps, Size T) {
  const auto& q = ps.sizes_asc;
  // #small = #{ j : 2*q_j <= T }.
  const auto small_end = std::upper_bound(
      q.begin(), q.end(), T, [](Size t, Size s) { return t < 2 * s; });
  const auto r = static_cast<std::int64_t>(small_end - q.begin());
  ps.num_large = ps.num_jobs - r;
  // a: longest small prefix with 2*sum <= T.
  const auto small_keep = static_cast<std::int64_t>(
      std::upper_bound(ps.prefix.begin(), ps.prefix.begin() + r, T,
                       [](Size t, Size s) { return t < 2 * s; }) -
      ps.prefix.begin());
  ps.a = r - small_keep;
  // b: the post-Step-1 job list is the small prefix plus (if any large) the
  // smallest large job, i.e. the full ascending prefix of length r(+1).
  const std::int64_t eff = r + (ps.num_large > 0 ? 1 : 0);
  const auto all_keep = static_cast<std::int64_t>(
      std::upper_bound(ps.prefix.begin(), ps.prefix.begin() + eff, T) -
      ps.prefix.begin());
  ps.b = eff - all_keep;
}

struct Acceptance {
  Size threshold = 0;
  std::int64_t removals = 0;
  std::size_t guesses = 0;
};

RebalanceResult commit(const Instance& instance, const Acceptance& accepted,
                       Size start, MPartitionStats* stats) {
  auto outcome = partition_rebalance_at(instance, accepted.threshold);
  assert(outcome.feasible);
  assert(outcome.removals == accepted.removals);
  if (stats != nullptr) {
    stats->accepted_threshold = accepted.threshold;
    stats->start_threshold = start;
    stats->removals = outcome.removals;
    stats->guesses_evaluated = accepted.guesses;
  }
  return std::move(outcome.result);
}

}  // namespace

RebalanceResult m_partition_rebalance(const Instance& instance, std::int64_t k,
                                      MPartitionStats* stats) {
  assert(k >= 0);
  const auto n = static_cast<std::int64_t>(instance.num_jobs());
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  const Size start = combined_lower_bound(instance, k);

  // Static per-processor data.
  std::vector<ProcState> procs(instance.num_procs);
  {
    auto by_proc = instance.jobs_by_proc();
    for (ProcId p = 0; p < instance.num_procs; ++p) {
      auto& jobs = by_proc[p];
      std::sort(jobs.begin(), jobs.end(), [&](JobId x, JobId y) {
        return instance.sizes[x] < instance.sizes[y];
      });
      auto& ps = procs[p];
      ps.num_jobs = static_cast<std::int64_t>(jobs.size());
      ps.sizes_asc.reserve(jobs.size());
      ps.prefix.reserve(jobs.size());
      Size acc = 0;
      for (JobId j : jobs) {
        ps.sizes_asc.push_back(instance.sizes[j]);
        acc += instance.sizes[j];
        ps.prefix.push_back(acc);
      }
    }
  }

  // Events: any threshold at which one processor's state can change.
  struct Event {
    Size value;
    ProcId proc;
  };
  std::vector<Event> events;
  events.reserve(3 * static_cast<std::size_t>(n));
  for (ProcId p = 0; p < instance.num_procs; ++p) {
    const auto& ps = procs[p];
    for (std::size_t l = 0; l < ps.sizes_asc.size(); ++l) {
      const Size flip = 2 * ps.sizes_asc[l];
      const Size bstep = ps.prefix[l];
      const Size astep = 2 * ps.prefix[l];
      if (flip > start) events.push_back({flip, p});
      if (bstep > start) events.push_back({bstep, p});
      if (astep > start) events.push_back({astep, p});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    return x.value < y.value;
  });

  // Aggregate state at the current guess.
  CSelector selector(n + 1);
  std::int64_t large_total = 0;
  std::int64_t procs_with_large = 0;
  std::int64_t sum_b = 0;
  for (auto& ps : procs) {
    refresh(ps, start);
    large_total += ps.num_large;
    if (ps.num_large > 0) ++procs_with_large;
    sum_b += ps.b;
    selector.add(ps.a - ps.b, +1);
  }

  auto k_hat = [&]() -> std::int64_t {
    if (large_total > m) return kInfSize;  // guess certainly below OPT
    return (large_total - procs_with_large) + sum_b +
           selector.smallest_sum(large_total);
  };

  std::size_t guesses = 1;
  if (k_hat() <= k) {
    return commit(instance, {start, k_hat(), guesses}, start, stats);
  }

  std::size_t i = 0;
  while (i < events.size()) {
    const Size value = events[i].value;
    // Apply every event at this threshold, touching each processor once.
    while (i < events.size() && events[i].value == value) {
      auto& ps = procs[events[i].proc];
      large_total -= ps.num_large;
      if (ps.num_large > 0) --procs_with_large;
      sum_b -= ps.b;
      selector.add(ps.a - ps.b, -1);
      refresh(ps, value);
      large_total += ps.num_large;
      if (ps.num_large > 0) ++procs_with_large;
      sum_b += ps.b;
      selector.add(ps.a - ps.b, +1);
      ++i;
    }
    ++guesses;
    const std::int64_t kh = k_hat();
    if (kh <= k) {
      return commit(instance, {value, kh, guesses}, start, stats);
    }
  }
  // Unreachable: at the largest candidate every processor fits within T and
  // no job is large, so k_hat = 0 <= k.
  assert(false && "M-PARTITION scan failed to terminate");
  return no_move_result(instance);
}

RebalanceResult m_partition_rebalance_reference(const Instance& instance,
                                                std::int64_t k,
                                                MPartitionStats* stats) {
  assert(k >= 0);
  const Size start = combined_lower_bound(instance, k);
  std::vector<Size> candidates = candidate_thresholds(instance);
  // Evaluate at the lower bound first, then at every candidate above it.
  std::vector<Size> guesses;
  guesses.push_back(start);
  for (Size c : candidates) {
    if (c > start) guesses.push_back(c);
  }
  std::size_t evaluated = 0;
  for (Size guess : guesses) {
    ++evaluated;
    auto outcome = partition_rebalance_at(instance, guess);
    if (!outcome.feasible) continue;
    if (outcome.removals <= k) {
      if (stats != nullptr) {
        stats->accepted_threshold = guess;
        stats->start_threshold = start;
        stats->removals = outcome.removals;
        stats->guesses_evaluated = evaluated;
      }
      return std::move(outcome.result);
    }
  }
  assert(false && "reference M-PARTITION scan failed to terminate");
  return no_move_result(instance);
}

}  // namespace lrb
