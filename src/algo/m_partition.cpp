#include "algo/m_partition.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <span>
#include <vector>

#include "algo/thresholds.h"
#include "core/lower_bounds.h"
#include "util/thread_pool.h"

namespace lrb {

void MPartitionScratch::warm(std::size_t max_jobs, ProcId max_procs) {
  jobs.reserve(max_jobs);
  sizes_asc.reserve(max_jobs);
  prefix.reserve(max_jobs);
  offset.reserve(static_cast<std::size_t>(max_procs) + 1);
  cursor.reserve(static_cast<std::size_t>(max_procs) + 1);
  events.reserve(3 * max_jobs);
  num_large.reserve(max_procs);
  a.reserve(max_procs);
  b.reserve(max_procs);
  // CSelector over c in [-(n+1), n+1] uses 2*(n+1)+2 Fenwick slots plus the
  // unused index 0.
  sel_cnt.reserve(2 * (max_jobs + 1) + 3);
  sel_sum.reserve(2 * (max_jobs + 1) + 3);
}

namespace {

/// Fenwick tree over c-values (c = a_i - b_i, in [-max_abs, max_abs]),
/// answering "sum of the t smallest stored values" in O(log n). Storage is
/// borrowed from the caller so arenas (MPartitionScratch) can reuse it
/// across instances without reallocating.
class CSelector {
 public:
  CSelector(std::vector<std::int64_t>& cnt, std::vector<std::int64_t>& sum,
            std::int64_t max_abs)
      : offset_(max_abs),
        size_(static_cast<std::size_t>(2 * max_abs + 2)),
        cnt_(cnt),
        sum_(sum) {
    cnt_.assign(size_ + 1, 0);
    sum_.assign(size_ + 1, 0);
    log_ = 0;
    while ((std::size_t{1} << (log_ + 1)) <= size_) ++log_;
  }

  void add(std::int64_t c, std::int64_t delta) {
    for (std::size_t i = index(c); i <= size_; i += i & (~i + 1)) {
      cnt_[i] += delta;
      sum_[i] += delta * c;
    }
  }

  /// Sum of the t smallest values currently stored; t must not exceed the
  /// stored count.
  [[nodiscard]] std::int64_t smallest_sum(std::int64_t t) const {
    if (t <= 0) return 0;
    std::size_t pos = 0;
    std::int64_t cnt = 0;
    std::int64_t sum = 0;
    for (int b = static_cast<int>(log_); b >= 0; --b) {
      const std::size_t next = pos + (std::size_t{1} << b);
      if (next <= size_ && cnt + cnt_[next] < t) {
        pos = next;
        cnt += cnt_[next];
        sum += sum_[next];
      }
    }
    // pos = largest index whose prefix holds < t values; the t-th smallest
    // value is the one stored at index pos + 1.
    const std::int64_t boundary_value =
        static_cast<std::int64_t>(pos + 1) - offset_ - 1;
    return sum + (t - cnt) * boundary_value;
  }

 private:
  [[nodiscard]] std::size_t index(std::int64_t c) const {
    const std::int64_t i = c + offset_ + 1;
    assert(i >= 1 && static_cast<std::size_t>(i) <= size_);
    return static_cast<std::size_t>(i);
  }

  std::int64_t offset_;
  std::size_t size_;
  std::size_t log_;
  std::vector<std::int64_t>& cnt_;
  std::vector<std::int64_t>& sum_;
};

/// Processor p's ascending-size segment of one of the flat per-job arrays.
std::span<const Size> segment(const std::vector<Size>& flat,
                              const MPartitionScratch& s, ProcId p) {
  return std::span<const Size>(flat.data() + s.offset[p],
                               s.offset[p + 1] - s.offset[p]);
}

/// Fills the scratch's static scan data: job ids grouped per processor
/// (counting sort) and sorted by ascending size, flat size / prefix-sum
/// segments, and the value-sorted event list of thresholds above `start`.
void build_static(const Instance& instance, Size start, MPartitionScratch& s) {
  const std::size_t n = instance.num_jobs();
  const ProcId m = instance.num_procs;
  s.offset.assign(static_cast<std::size_t>(m) + 1, 0);
  for (ProcId p : instance.initial) ++s.offset[p + 1];
  for (ProcId p = 0; p < m; ++p) s.offset[p + 1] += s.offset[p];
  s.cursor.assign(s.offset.begin(), s.offset.end() - 1);
  s.jobs.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    s.jobs[s.cursor[instance.initial[j]]++] = static_cast<JobId>(j);
  }
  s.sizes_asc.resize(n);
  s.prefix.resize(n);
  s.events.clear();
  s.events.reserve(3 * n);
  for (ProcId p = 0; p < m; ++p) {
    const auto lo = static_cast<std::ptrdiff_t>(s.offset[p]);
    const auto hi = static_cast<std::ptrdiff_t>(s.offset[p + 1]);
    std::sort(s.jobs.begin() + lo, s.jobs.begin() + hi,
              [&](JobId x, JobId y) {
                if (instance.sizes[x] != instance.sizes[y]) {
                  return instance.sizes[x] < instance.sizes[y];
                }
                return x < y;
              });
    Size acc = 0;
    for (auto t = lo; t < hi; ++t) {
      const auto u = static_cast<std::size_t>(t);
      s.sizes_asc[u] = instance.sizes[s.jobs[u]];
      acc += s.sizes_asc[u];
      s.prefix[u] = acc;
    }
    append_threshold_events(segment(s.sizes_asc, s, p), segment(s.prefix, s, p),
                            p, start, s.events);
  }
  std::sort(s.events.begin(), s.events.end(),
            [](const ThresholdEvent& x, const ThresholdEvent& y) {
              return x.value < y.value;
            });
}

struct ProcSnapshot {
  std::int64_t num_large = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Recomputes (num_large, a, b) of one processor at guess T via three
/// binary searches; O(log n_p). Pure in (segment data, T) — the property
/// that lets parallel chunks recompute their entry state exactly.
ProcSnapshot refresh_at(std::span<const Size> q, std::span<const Size> pref,
                        Size T) {
  ProcSnapshot out;
  const auto num_jobs = static_cast<std::int64_t>(q.size());
  // #small = #{ j : 2*q_j <= T }.
  const auto r = static_cast<std::int64_t>(
      std::upper_bound(q.begin(), q.end(), T,
                       [](Size t, Size sz) { return t < 2 * sz; }) -
      q.begin());
  out.num_large = num_jobs - r;
  // a: longest small prefix with 2*sum <= T.
  const auto small_keep = static_cast<std::int64_t>(
      std::upper_bound(pref.begin(), pref.begin() + r, T,
                       [](Size t, Size sz) { return t < 2 * sz; }) -
      pref.begin());
  out.a = r - small_keep;
  // b: the post-Step-1 job list is the small prefix plus (if any large) the
  // smallest large job, i.e. the full ascending prefix of length r(+1).
  const std::int64_t eff = r + (out.num_large > 0 ? 1 : 0);
  const auto all_keep = static_cast<std::int64_t>(
      std::upper_bound(pref.begin(), pref.begin() + eff, T) - pref.begin());
  out.b = eff - all_keep;
  return out;
}

/// Aggregate scan state at the current guess. Per-processor vectors and the
/// Fenwick storage are borrowed, so the serial path binds them to the
/// scratch arena while parallel chunks bind stack-local buffers.
struct ScanState {
  ScanState(std::vector<std::int64_t>& nl, std::vector<std::int64_t>& av,
            std::vector<std::int64_t>& bv, std::vector<std::int64_t>& cnt,
            std::vector<std::int64_t>& sum, std::int64_t max_abs)
      : num_large(nl), a(av), b(bv), selector(cnt, sum, max_abs) {}

  /// Initializes every processor at guess T; the result is a pure function
  /// of (static data, T).
  void init(const MPartitionScratch& s, ProcId procs, Size T) {
    num_large.assign(procs, 0);
    a.assign(procs, 0);
    b.assign(procs, 0);
    large_total = 0;
    procs_with_large = 0;
    sum_b = 0;
    for (ProcId p = 0; p < procs; ++p) {
      const ProcSnapshot ps =
          refresh_at(segment(s.sizes_asc, s, p), segment(s.prefix, s, p), T);
      num_large[p] = ps.num_large;
      a[p] = ps.a;
      b[p] = ps.b;
      large_total += ps.num_large;
      if (ps.num_large > 0) ++procs_with_large;
      sum_b += ps.b;
      selector.add(ps.a - ps.b, +1);
    }
  }

  /// Advances processor p to guess T (one threshold event).
  void apply(const MPartitionScratch& s, ProcId p, Size T) {
    large_total -= num_large[p];
    if (num_large[p] > 0) --procs_with_large;
    sum_b -= b[p];
    selector.add(a[p] - b[p], -1);
    const ProcSnapshot ps =
        refresh_at(segment(s.sizes_asc, s, p), segment(s.prefix, s, p), T);
    num_large[p] = ps.num_large;
    a[p] = ps.a;
    b[p] = ps.b;
    large_total += ps.num_large;
    if (ps.num_large > 0) ++procs_with_large;
    sum_b += ps.b;
    selector.add(ps.a - ps.b, +1);
  }

  [[nodiscard]] std::int64_t k_hat(std::int64_t m) const {
    if (large_total > m) return kInfSize;  // guess certainly below OPT
    return (large_total - procs_with_large) + sum_b +
           selector.smallest_sum(large_total);
  }

  std::vector<std::int64_t>& num_large;
  std::vector<std::int64_t>& a;
  std::vector<std::int64_t>& b;
  CSelector selector;
  std::int64_t large_total = 0;
  std::int64_t procs_with_large = 0;
  std::int64_t sum_b = 0;
};

struct Acceptance {
  Size threshold = 0;
  std::int64_t removals = 0;
  std::size_t guesses = 0;
};

RebalanceResult commit(const Instance& instance, const Acceptance& accepted,
                       Size start, MPartitionStats* stats) {
  auto outcome = partition_rebalance_at(instance, accepted.threshold);
  assert(outcome.feasible);
  assert(outcome.removals == accepted.removals);
  if (stats != nullptr) {
    stats->accepted_threshold = accepted.threshold;
    stats->start_threshold = start;
    stats->removals = outcome.removals;
    stats->guesses_evaluated = accepted.guesses;
  }
  return std::move(outcome.result);
}

/// The serial incremental sweep over the scratch's prepared event list,
/// starting from (and first evaluating) the certified lower bound.
RebalanceResult sweep_serial(const Instance& instance, std::int64_t k,
                             Size start, MPartitionScratch& s,
                             MPartitionStats* stats) {
  const auto n = static_cast<std::int64_t>(instance.num_jobs());
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  ScanState state(s.num_large, s.a, s.b, s.sel_cnt, s.sel_sum, n + 1);
  state.init(s, instance.num_procs, start);

  std::size_t guesses = 1;
  {
    const std::int64_t kh = state.k_hat(m);
    if (kh <= k) return commit(instance, {start, kh, guesses}, start, stats);
  }

  std::size_t i = 0;
  while (i < s.events.size()) {
    const Size value = s.events[i].value;
    // Apply every event at this threshold, touching each processor once.
    while (i < s.events.size() && s.events[i].value == value) {
      state.apply(s, s.events[i].proc, value);
      ++i;
    }
    ++guesses;
    const std::int64_t kh = state.k_hat(m);
    if (kh <= k) return commit(instance, {value, kh, guesses}, start, stats);
  }
  // Unreachable: at the largest candidate every processor fits within T and
  // no job is large, so k_hat = 0 <= k.
  assert(false && "M-PARTITION scan failed to terminate");
  return no_move_result(instance);
}

}  // namespace

RebalanceResult m_partition_rebalance(const Instance& instance, std::int64_t k,
                                      MPartitionStats* stats) {
  MPartitionScratch scratch;
  return m_partition_rebalance(instance, k, scratch, stats);
}

RebalanceResult m_partition_rebalance(const Instance& instance, std::int64_t k,
                                      MPartitionScratch& scratch,
                                      MPartitionStats* stats) {
  assert(k >= 0);
  const Size start = combined_lower_bound(instance, k);
  build_static(instance, start, scratch);
  return sweep_serial(instance, k, start, scratch, stats);
}

RebalanceResult m_partition_rebalance_parallel(const Instance& instance,
                                               std::int64_t k, ThreadPool& pool,
                                               MPartitionStats* stats,
                                               std::size_t chunks) {
  assert(k >= 0);
  const auto n = static_cast<std::int64_t>(instance.num_jobs());
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  const Size start = combined_lower_bound(instance, k);
  MPartitionScratch s;
  build_static(instance, start, s);

  // Distinct candidate values; chunk boundaries never split a value, so
  // every chunk evaluates whole guesses only.
  std::vector<std::size_t> first_event;
  first_event.reserve(s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (i == 0 || s.events[i].value != s.events[i - 1].value) {
      first_event.push_back(i);
    }
  }
  const std::size_t distinct = first_event.size();

  std::size_t num_chunks = chunks;
  if (num_chunks == 0) {
    // Automatic: the chunked scan only pays off when there is real work to
    // split; small instances keep the cheaper incremental serial sweep.
    constexpr std::size_t kMinEventsForParallel = 4096;
    num_chunks = (pool.size() > 1 && s.events.size() >= kMinEventsForParallel)
                     ? 2 * pool.size()
                     : 1;
  }
  num_chunks = std::max<std::size_t>(std::min(num_chunks, distinct), 1);
  if (num_chunks <= 1) return sweep_serial(instance, k, start, s, stats);

  // The certified lower bound is evaluated first, serially, exactly as the
  // serial scan does (guess #1).
  {
    ScanState state(s.num_large, s.a, s.b, s.sel_cnt, s.sel_sum, n + 1);
    state.init(s, instance.num_procs, start);
    const std::int64_t kh = state.k_hat(m);
    if (kh <= k) return commit(instance, {start, kh, 1}, start, stats);
  }

  struct ChunkHit {
    bool accepted = false;
    Size value = 0;
    std::int64_t removals = 0;
    std::size_t distinct_index = 0;  ///< 0-based rank among distinct values
  };
  std::vector<ChunkHit> hits(num_chunks);
  // Lowest chunk index that accepted so far: chunks strictly above a winner
  // can stop early; chunks below it must still finish (they may find an
  // earlier — i.e. the true serial — acceptance).
  std::atomic<std::size_t> winner{num_chunks};

  parallel_for(pool, 0, num_chunks, [&](std::size_t c) {
    const std::size_t d_lo = c * distinct / num_chunks;
    const std::size_t d_hi = (c + 1) * distinct / num_chunks;
    if (d_lo >= d_hi) return;
    if (winner.load(std::memory_order_acquire) < c) return;
    const std::size_t e_lo = first_event[d_lo];
    const std::size_t e_hi =
        d_hi < distinct ? first_event[d_hi] : s.events.size();

    std::vector<std::int64_t> nl, av, bv, cnt, sum;
    ScanState state(nl, av, bv, cnt, sum, n + 1);
    // Entry state: scan state at a threshold is a pure function of the
    // threshold, so initializing every processor at the chunk's first value
    // reproduces the serial sweep's state there exactly.
    std::size_t d = d_lo;
    Size value = s.events[e_lo].value;
    state.init(s, instance.num_procs, value);
    std::size_t i = e_lo;
    while (i < e_hi && s.events[i].value == value) ++i;  // folded into init
    for (;;) {
      const std::int64_t kh = state.k_hat(m);
      if (kh <= k) {
        hits[c] = {true, value, kh, d};
        std::size_t cur = winner.load(std::memory_order_relaxed);
        while (c < cur && !winner.compare_exchange_weak(
                              cur, c, std::memory_order_release,
                              std::memory_order_relaxed)) {
        }
        return;
      }
      if (i >= e_hi) return;
      value = s.events[i].value;
      while (i < e_hi && s.events[i].value == value) {
        state.apply(s, s.events[i].proc, value);
        ++i;
      }
      ++d;
      if ((d & 63) == 0 && winner.load(std::memory_order_relaxed) < c) return;
    }
  });

  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (hits[c].accepted) {
      // Serial guess count: 1 for the start threshold plus one per distinct
      // value up to and including the accepted one.
      return commit(instance,
                    {hits[c].value, hits[c].removals,
                     hits[c].distinct_index + 2},
                    start, stats);
    }
  }
  assert(false && "M-PARTITION parallel scan failed to terminate");
  return no_move_result(instance);
}

RebalanceResult m_partition_rebalance_reference(const Instance& instance,
                                                std::int64_t k,
                                                MPartitionStats* stats) {
  assert(k >= 0);
  const Size start = combined_lower_bound(instance, k);
  std::vector<Size> candidates = candidate_thresholds(instance);
  // Evaluate at the lower bound first, then at every candidate above it.
  std::vector<Size> guesses;
  guesses.push_back(start);
  for (Size c : candidates) {
    if (c > start) guesses.push_back(c);
  }
  std::size_t evaluated = 0;
  for (Size guess : guesses) {
    ++evaluated;
    auto outcome = partition_rebalance_at(instance, guess);
    if (!outcome.feasible) continue;
    if (outcome.removals <= k) {
      if (stats != nullptr) {
        stats->accepted_threshold = guess;
        stats->start_threshold = start;
        stats->removals = outcome.removals;
        stats->guesses_evaluated = evaluated;
      }
      return std::move(outcome.result);
    }
  }
  assert(false && "reference M-PARTITION scan failed to terminate");
  return no_move_result(instance);
}

}  // namespace lrb
