#include "algo/greedy.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>
#include <vector>

namespace lrb {

RebalanceResult greedy_rebalance(const Instance& instance, std::int64_t k,
                                 GreedyOrder order, GreedyStats* stats) {
  assert(k >= 0);
  Assignment assignment = instance.initial;
  std::vector<Size> load = instance.initial_loads();

  // Step 1: k removals, largest job off the heaviest processor. Jobs per
  // processor are pre-sorted descending; `next[p]` walks that order.
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] > instance.sizes[b];
      }
      return a < b;
    });
  }
  std::vector<std::size_t> next(instance.num_procs, 0);
  // Max-heap with lazy deletion: entries are (load, proc) snapshots.
  std::priority_queue<std::pair<Size, ProcId>> max_heap;
  for (ProcId p = 0; p < instance.num_procs; ++p) max_heap.emplace(load[p], p);

  std::vector<JobId> removed;
  removed.reserve(static_cast<std::size_t>(std::min<std::int64_t>(
      k, static_cast<std::int64_t>(instance.num_jobs()))));
  for (std::int64_t step = 0; step < k && !max_heap.empty();) {
    const auto [snapshot, p] = max_heap.top();
    if (snapshot != load[p]) {  // stale
      max_heap.pop();
      continue;
    }
    if (next[p] >= by_proc[p].size()) {
      // The heaviest processor has no jobs left: every processor is empty
      // of removable work at or above this load; stop early.
      break;
    }
    max_heap.pop();
    const JobId victim = by_proc[p][next[p]++];
    load[p] -= instance.sizes[victim];
    removed.push_back(victim);
    max_heap.emplace(load[p], p);
    ++step;
  }

  if (stats != nullptr) {
    stats->removed = static_cast<std::int64_t>(removed.size());
    stats->g1 = *std::max_element(load.begin(), load.end());
  }

  // Step 2: reinsert in the requested order onto the min-loaded processor.
  switch (order) {
    case GreedyOrder::kAsRemoved:
      break;
    case GreedyOrder::kLargestFirst:
      std::stable_sort(removed.begin(), removed.end(), [&](JobId a, JobId b) {
        return instance.sizes[a] > instance.sizes[b];
      });
      break;
    case GreedyOrder::kSmallestFirst:
      std::stable_sort(removed.begin(), removed.end(), [&](JobId a, JobId b) {
        return instance.sizes[a] < instance.sizes[b];
      });
      break;
  }
  using Entry = std::pair<Size, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> min_heap;
  for (ProcId p = 0; p < instance.num_procs; ++p) min_heap.emplace(load[p], p);
  for (JobId j : removed) {
    auto [l, p] = min_heap.top();
    min_heap.pop();
    assignment[j] = p;
    min_heap.emplace(l + instance.sizes[j], p);
  }
  return finalize_result(instance, std::move(assignment));
}

}  // namespace lrb
