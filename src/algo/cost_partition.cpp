#include "algo/cost_partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>
#include <vector>

#include "core/lower_bounds.h"
#include "knapsack/knapsack.h"

namespace lrb {
namespace {

struct ProcPlan {
  Cost a_cost = 0;
  Cost b_cost = 0;
  Cost c = 0;
  bool has_large = false;
  std::vector<JobId> a_remove;  ///< jobs the a-plan evicts
  std::vector<JobId> b_remove;  ///< jobs the b-plan evicts
};

struct Attempt {
  bool feasible = false;        ///< false iff L_T > m
  Cost planned_cost = kInfCost;
  Assignment assignment;
};

Attempt attempt_guess(const Instance& instance, Size A,
                      const CostPartitionOptions& options,
                      KnapsackScratch& knapsack_scratch) {
  Attempt out;
  const ProcId m = instance.num_procs;
  auto is_large = [&](JobId j) { return 2 * instance.sizes[j] > A; };

  auto by_proc = instance.jobs_by_proc();
  std::int64_t large_total = 0;
  for (const auto& jobs : by_proc) {
    for (JobId j : jobs) large_total += is_large(j) ? 1 : 0;
  }
  if (large_total > static_cast<std::int64_t>(m)) return out;  // A < OPT

  // The size-relaxed knapsack needs a strictly positive eps.
  const double eps = options.eps > 0 ? options.eps : 0.01;

  std::vector<ProcPlan> plans(m);
  for (ProcId p = 0; p < m; ++p) {
    auto& plan = plans[p];
    std::vector<JobId> larges;
    std::vector<JobId> smalls;
    for (JobId j : by_proc[p]) (is_large(j) ? larges : smalls).push_back(j);
    plan.has_large = !larges.empty();

    // --- a-plan: keep the costliest large job, knapsack the smalls to A/2.
    if (!larges.empty()) {
      const JobId keep = *std::max_element(
          larges.begin(), larges.end(), [&](JobId x, JobId y) {
            if (instance.move_costs[x] != instance.move_costs[y]) {
              return instance.move_costs[x] < instance.move_costs[y];
            }
            return x > y;  // deterministic: lowest id among equals kept
          });
      for (JobId j : larges) {
        if (j != keep) {
          plan.a_remove.push_back(j);
          plan.a_cost += instance.move_costs[j];
        }
      }
    }
    {
      std::vector<KnapsackItem> items(smalls.size());
      Cost total_cost = 0;
      for (std::size_t i = 0; i < smalls.size(); ++i) {
        items[i] = {instance.sizes[smalls[i]], instance.move_costs[smalls[i]]};
        total_cost += items[i].value;
      }
      const auto kept = knapsack_auto(items, A / 2, eps,
                                      options.max_knapsack_cells,
                                      &knapsack_scratch);
      plan.a_cost += total_cost - kept.value;
      std::vector<char> keep_flag(smalls.size(), 0);
      for (std::size_t i : kept.chosen) keep_flag[i] = 1;
      for (std::size_t i = 0; i < smalls.size(); ++i) {
        if (keep_flag[i] == 0) plan.a_remove.push_back(smalls[i]);
      }
    }

    // --- b-plan: knapsack over ALL the processor's jobs to cap A.
    {
      const auto& jobs = by_proc[p];
      std::vector<KnapsackItem> items(jobs.size());
      Cost total_cost = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        items[i] = {instance.sizes[jobs[i]], instance.move_costs[jobs[i]]};
        total_cost += items[i].value;
      }
      const auto kept = knapsack_auto(items, A, eps,
                                      options.max_knapsack_cells,
                                      &knapsack_scratch);
      plan.b_cost = total_cost - kept.value;
      std::vector<char> keep_flag(jobs.size(), 0);
      for (std::size_t i : kept.chosen) keep_flag[i] = 1;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (keep_flag[i] == 0) plan.b_remove.push_back(jobs[i]);
      }
    }
    plan.c = plan.a_cost - plan.b_cost;
  }

  // Select the L_T processors with smallest c (ties prefer large-holders).
  std::vector<ProcId> procs(m);
  std::iota(procs.begin(), procs.end(), ProcId{0});
  std::sort(procs.begin(), procs.end(), [&](ProcId x, ProcId y) {
    if (plans[x].c != plans[y].c) return plans[x].c < plans[y].c;
    if (plans[x].has_large != plans[y].has_large) return plans[x].has_large;
    return x < y;
  });
  std::vector<char> selected(m, 0);
  for (std::int64_t i = 0; i < large_total; ++i) {
    selected[procs[static_cast<std::size_t>(i)]] = 1;
  }

  // Execute plans.
  Assignment assignment = instance.initial;
  std::vector<Size> load = instance.initial_loads();
  std::vector<char> holds_large(m, 0);
  for (ProcId p = 0; p < m; ++p) holds_large[p] = plans[p].has_large;
  std::vector<JobId> pending_large;
  std::vector<JobId> pending_small;
  Cost planned = 0;
  for (ProcId p = 0; p < m; ++p) {
    const auto& remove = selected[p] != 0 ? plans[p].a_remove : plans[p].b_remove;
    planned += selected[p] != 0 ? plans[p].a_cost : plans[p].b_cost;
    bool large_kept = plans[p].has_large;
    for (JobId j : remove) {
      load[p] -= instance.sizes[j];
      if (is_large(j)) {
        pending_large.push_back(j);
      } else {
        pending_small.push_back(j);
      }
    }
    if (selected[p] == 0) {
      // The b-plan may have evicted this processor's only remaining large.
      large_kept = false;
      for (JobId j : by_proc[p]) {
        if (is_large(j) &&
            std::find(remove.begin(), remove.end(), j) == remove.end()) {
          large_kept = true;
        }
      }
    }
    holds_large[p] = large_kept;
  }

  // Evicted large jobs go to distinct large-free SELECTED processors.
  std::vector<ProcId> slots;
  for (ProcId p = 0; p < m; ++p) {
    if (selected[p] != 0 && holds_large[p] == 0) slots.push_back(p);
  }
  assert(pending_large.size() <= slots.size());
  for (std::size_t i = 0; i < pending_large.size(); ++i) {
    assignment[pending_large[i]] = slots[i];
    load[slots[i]] += instance.sizes[pending_large[i]];
  }

  // Evicted small jobs: largest first onto the min-loaded processor.
  std::sort(pending_small.begin(), pending_small.end(), [&](JobId x, JobId y) {
    if (instance.sizes[x] != instance.sizes[y]) {
      return instance.sizes[x] > instance.sizes[y];
    }
    return x < y;
  });
  using Entry = std::pair<Size, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (ProcId p = 0; p < m; ++p) heap.emplace(load[p], p);
  for (JobId j : pending_small) {
    auto [l, p] = heap.top();
    heap.pop();
    assignment[j] = p;
    heap.emplace(l + instance.sizes[j], p);
  }

  out.feasible = true;
  out.planned_cost = planned;
  out.assignment = std::move(assignment);
  return out;
}

}  // namespace

RebalanceResult cost_partition_rebalance(const Instance& instance,
                                         const CostPartitionOptions& options,
                                         CostPartitionStats* stats) {
  assert(options.budget >= 0);
  assert(options.alpha > 0);
  Size guess = std::max({max_job_bound(instance), average_load_bound(instance),
                         budget_removal_bound(instance, options.budget),
                         Size{1}});
  std::size_t evaluated = 0;
  KnapsackScratch knapsack_scratch;  // DP buffers shared across all guesses
  for (;;) {
    ++evaluated;
    auto attempt = attempt_guess(instance, guess, options, knapsack_scratch);
    if (attempt.feasible && attempt.planned_cost <= options.budget) {
      if (stats != nullptr) {
        stats->accepted_guess = guess;
        stats->planned_cost = attempt.planned_cost;
        stats->guesses_evaluated = evaluated;
      }
      auto result = finalize_result(instance, std::move(attempt.assignment), guess);
      assert(result.cost <= options.budget);
      return result;
    }
    // Geometric step; guaranteed to terminate because at a sufficiently
    // large guess no job is large and every processor already fits (zero
    // planned cost).
    const auto stepped = static_cast<Size>(
        std::ceil(static_cast<double>(guess) * (1.0 + options.alpha)));
    guess = std::max(guess + 1, stepped);
  }
}

}  // namespace lrb
