// Algorithm GREEDY from SPAA'03 §2: the (2 - 1/m)-approximation for the
// unit-cost load rebalancing problem in O(n log n).
//
//   Step 1: repeat k times - remove the largest job from the currently
//           max-loaded processor.
//   Step 2: place the removed jobs, each onto the currently min-loaded
//           processor, in an arbitrary order.
//
// Theorem 1 shows the ratio 2 - 1/m is tight; the reinsertion order only
// affects constants on benign instances, so we expose it for the tightness
// experiment (E1).

#pragma once

#include <cstdint>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

enum class GreedyOrder {
  kAsRemoved,      ///< FIFO: first removed is first reinserted
  kLargestFirst,   ///< LPT-style: usually best in practice
  kSmallestFirst,  ///< adversarial for Theorem 1's tight family
};

struct GreedyStats {
  /// Max load after Step 1 (the paper's G1). Lemma 1: G1 <= OPT, so this is
  /// a per-run certified lower bound on the optimum.
  Size g1 = 0;
  /// #jobs actually removed in Step 1 (< k if processors ran out of jobs).
  std::int64_t removed = 0;
};

/// Runs GREEDY with move budget k. The result relocates at most k jobs.
[[nodiscard]] RebalanceResult greedy_rebalance(
    const Instance& instance, std::int64_t k,
    GreedyOrder order = GreedyOrder::kLargestFirst,
    GreedyStats* stats = nullptr);

}  // namespace lrb
