// The move minimization problem (SPAA'03 §5, Theorem 5): given a target
// load L, find the minimum number of relocations (or minimum relocation
// cost) that brings every processor's load to at most L. Deciding whether
// ANY finite answer exists is NP-hard (reduction from PARTITION), so the
// greedy routine may fail on feasible instances; the exact routine is
// branch-and-bound for small instances.

#pragma once

#include <cstdint>
#include <optional>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// Sum over processors of the minimum number of jobs that must leave each
/// processor for its load to reach <= max_load. A certified lower bound on
/// the move count of ANY solution (and on OPT's moves when OPT <= max_load).
[[nodiscard]] std::int64_t move_min_lower_bound(const Instance& instance,
                                                Size max_load);

/// Greedy upper bound: per-processor minimal eviction (keep the largest
/// fitting ascending prefix), then first-fit-decreasing placement into
/// residual capacities. On success the answer equals move_min_lower_bound,
/// i.e. it is PROVABLY optimal; on failure returns nullopt (the instance
/// may or may not be feasible - that is exactly the hard question).
[[nodiscard]] std::optional<RebalanceResult> move_min_greedy(
    const Instance& instance, Size max_load);

struct MoveMinResult {
  bool feasible = false;
  RebalanceResult best;        ///< valid only when feasible
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
};

/// Exact minimum-move solution via branch-and-bound (small instances).
/// When minimize_cost is true the objective is total relocation cost
/// instead of the move count.
[[nodiscard]] MoveMinResult minimize_moves_exact(
    const Instance& instance, Size max_load, bool minimize_cost = false,
    std::uint64_t node_limit = 50'000'000);

}  // namespace lrb
