#include "algo/move_min.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace lrb {
namespace {

/// Per-processor minimal evictions: keeping the longest ascending-size
/// prefix with sum <= max_load is the unique minimum-cardinality choice.
/// Returns evicted job ids (empty per processor when it already fits).
std::vector<std::vector<JobId>> minimal_evictions(const Instance& instance,
                                                  Size max_load) {
  auto by_proc = instance.jobs_by_proc();
  std::vector<std::vector<JobId>> evicted(instance.num_procs);
  for (ProcId p = 0; p < instance.num_procs; ++p) {
    auto& jobs = by_proc[p];
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] < instance.sizes[b];
      }
      return a < b;
    });
    Size kept = 0;
    std::size_t l = 0;
    while (l < jobs.size() && kept + instance.sizes[jobs[l]] <= max_load) {
      kept += instance.sizes[jobs[l]];
      ++l;
    }
    evicted[p].assign(jobs.begin() + static_cast<std::ptrdiff_t>(l), jobs.end());
  }
  return evicted;
}

}  // namespace

std::int64_t move_min_lower_bound(const Instance& instance, Size max_load) {
  const auto evicted = minimal_evictions(instance, max_load);
  std::int64_t total = 0;
  for (const auto& e : evicted) total += static_cast<std::int64_t>(e.size());
  return total;
}

std::optional<RebalanceResult> move_min_greedy(const Instance& instance,
                                               Size max_load) {
  const auto evicted_by_proc = minimal_evictions(instance, max_load);
  Assignment assignment = instance.initial;
  std::vector<Size> load = instance.initial_loads();
  std::vector<JobId> homeless;
  for (ProcId p = 0; p < instance.num_procs; ++p) {
    for (JobId j : evicted_by_proc[p]) {
      load[p] -= instance.sizes[j];
      homeless.push_back(j);
    }
  }
  // First-fit decreasing into residual capacity max_load - load[p].
  std::sort(homeless.begin(), homeless.end(), [&](JobId a, JobId b) {
    if (instance.sizes[a] != instance.sizes[b]) {
      return instance.sizes[a] > instance.sizes[b];
    }
    return a < b;
  });
  for (JobId j : homeless) {
    bool placed = false;
    for (ProcId p = 0; p < instance.num_procs; ++p) {
      if (p == instance.initial[j]) continue;  // never fits back (see header)
      if (load[p] + instance.sizes[j] <= max_load) {
        load[p] += instance.sizes[j];
        assignment[j] = p;
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return finalize_result(instance, std::move(assignment));
}

namespace {

struct MoveSearcher {
  const Instance& inst;
  Size cap;
  bool minimize_cost;
  std::uint64_t node_limit;

  std::vector<JobId> order;
  std::vector<Size> load;
  std::vector<std::int64_t> homes_left;
  Assignment current;
  Assignment best_assignment;
  Cost best_objective = kInfCost;  // moves or cost, per minimize_cost
  Cost objective = 0;
  std::uint64_t nodes = 0;
  bool aborted = false;
  bool found = false;

  MoveSearcher(const Instance& instance, Size max_load, bool by_cost,
               std::uint64_t limit)
      : inst(instance), cap(max_load), minimize_cost(by_cost),
        node_limit(limit) {
    order.resize(inst.num_jobs());
    std::iota(order.begin(), order.end(), JobId{0});
    std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      if (inst.sizes[a] != inst.sizes[b]) return inst.sizes[a] > inst.sizes[b];
      return a < b;
    });
    load.assign(inst.num_procs, 0);
    homes_left.assign(inst.num_procs, 0);
    for (ProcId p : inst.initial) ++homes_left[p];
    current = inst.initial;
  }

  [[nodiscard]] Cost price(JobId j) const {
    return minimize_cost ? inst.move_costs[j] : Cost{1};
  }

  void dfs(std::size_t idx) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (objective >= best_objective) return;
    if (idx == order.size()) {
      best_objective = objective;
      best_assignment = current;
      found = true;
      return;
    }
    const JobId j = order[idx];
    const Size s = inst.sizes[j];
    const ProcId home = inst.initial[j];
    --homes_left[home];

    std::vector<ProcId> cands;
    cands.reserve(inst.num_procs);
    if (load[home] + s <= cap) cands.push_back(home);
    std::vector<ProcId> others;
    for (ProcId p = 0; p < inst.num_procs; ++p) {
      if (p != home && load[p] + s <= cap) others.push_back(p);
    }
    std::sort(others.begin(), others.end(), [&](ProcId x, ProcId y) {
      if (load[x] != load[y]) return load[x] < load[y];
      return x < y;
    });
    Size last_symmetric_load = -1;
    for (ProcId p : others) {
      if (homes_left[p] == 0) {
        if (load[p] == last_symmetric_load) continue;
        last_symmetric_load = load[p];
      }
      cands.push_back(p);
    }

    for (ProcId p : cands) {
      const bool is_move = p != home;
      if (is_move && objective + price(j) >= best_objective) continue;
      load[p] += s;
      current[j] = p;
      if (is_move) objective += price(j);
      dfs(idx + 1);
      if (is_move) objective -= price(j);
      load[p] -= s;
      current[j] = home;
      if (aborted) break;
    }
    ++homes_left[home];
  }
};

}  // namespace

MoveMinResult minimize_moves_exact(const Instance& instance, Size max_load,
                                   bool minimize_cost,
                                   std::uint64_t node_limit) {
  MoveMinResult result;
  MoveSearcher searcher(instance, max_load, minimize_cost, node_limit);

  // Warm start: when the greedy construction succeeds it is optimal for the
  // move-count objective and an upper bound for the cost objective.
  if (auto greedy = move_min_greedy(instance, max_load)) {
    searcher.best_objective = minimize_cost ? greedy->cost : greedy->moves;
    searcher.best_assignment = greedy->assignment;
    searcher.found = true;
    if (!minimize_cost) {
      // Matches move_min_lower_bound, so it is already certified optimal.
      result.feasible = true;
      result.proven_optimal = true;
      result.best = std::move(*greedy);
      return result;
    }
  }

  searcher.dfs(0);
  result.nodes = searcher.nodes;
  result.proven_optimal = !searcher.aborted;
  result.feasible = searcher.found;
  if (searcher.found) {
    result.best = finalize_result(instance, std::move(searcher.best_assignment));
  }
  return result;
}

}  // namespace lrb
