#include "algo/exact.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

struct Searcher {
  const Instance& inst;
  const ExactOptions& opt;
  std::vector<JobId> order;            // jobs, descending size
  std::vector<Size> load;              // current partial loads
  std::vector<std::int64_t> homes_left;  // #remaining jobs whose initial proc is p
  Assignment current;
  Assignment best_assignment;
  Size best_makespan = kInfSize;
  Size floor_bound = 0;  // ceil-average: cannot do better than this
  std::int64_t moves = 0;
  Cost cost = 0;
  std::uint64_t nodes = 0;
  bool aborted = false;

  explicit Searcher(const Instance& instance, const ExactOptions& options)
      : inst(instance), opt(options) {
    order.resize(inst.num_jobs());
    std::iota(order.begin(), order.end(), JobId{0});
    std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      if (inst.sizes[a] != inst.sizes[b]) return inst.sizes[a] > inst.sizes[b];
      return a < b;
    });
    load.assign(inst.num_procs, 0);
    homes_left.assign(inst.num_procs, 0);
    for (ProcId p : inst.initial) ++homes_left[p];
    current = inst.initial;
    floor_bound = average_load_bound(inst);
  }

  void seed_incumbent(const RebalanceResult& candidate) {
    if (candidate.moves <= opt.max_moves && candidate.cost <= opt.budget &&
        candidate.makespan < best_makespan) {
      best_makespan = candidate.makespan;
      best_assignment = candidate.assignment;
    }
  }

  [[nodiscard]] Size current_max() const {
    Size mx = 0;
    for (Size l : load) mx = std::max(mx, l);
    return mx;
  }

  void dfs(std::size_t idx, Size cur_max) {
    if (aborted) return;
    if (++nodes > opt.node_limit) {
      aborted = true;
      return;
    }
    if (cur_max >= best_makespan) return;  // cannot strictly improve
    if (idx == order.size()) {
      best_makespan = cur_max;
      best_assignment = current;
      return;
    }
    const JobId j = order[idx];
    const Size s = inst.sizes[j];
    const ProcId home = inst.initial[j];
    --homes_left[home];

    // Candidate processors: home first (free), then others by ascending
    // load, skipping duplicates among processors that are fully symmetric
    // for the remaining jobs (equal load, no remaining job's home).
    std::vector<ProcId> cands;
    cands.reserve(inst.num_procs);
    cands.push_back(home);
    std::vector<ProcId> others;
    others.reserve(inst.num_procs);
    for (ProcId p = 0; p < inst.num_procs; ++p) {
      if (p != home) others.push_back(p);
    }
    std::sort(others.begin(), others.end(), [&](ProcId x, ProcId y) {
      if (load[x] != load[y]) return load[x] < load[y];
      return x < y;
    });
    Size last_symmetric_load = -1;
    for (ProcId p : others) {
      if (homes_left[p] == 0) {
        if (load[p] == last_symmetric_load) continue;  // interchangeable
        last_symmetric_load = load[p];
      }
      cands.push_back(p);
    }

    for (ProcId p : cands) {
      const bool is_move = p != home;
      if (is_move && (moves + 1 > opt.max_moves || cost + inst.move_costs[j] > opt.budget)) {
        continue;
      }
      if (load[p] + s >= best_makespan) continue;
      load[p] += s;
      current[j] = p;
      if (is_move) {
        ++moves;
        cost += inst.move_costs[j];
      }
      dfs(idx + 1, std::max(cur_max, load[p]));
      if (is_move) {
        --moves;
        cost -= inst.move_costs[j];
      }
      load[p] -= s;
      current[j] = home;
      if (best_makespan <= floor_bound) break;  // certified optimal already
      if (aborted) break;
    }
    ++homes_left[home];
  }
};

}  // namespace

ExactResult exact_rebalance(const Instance& instance,
                            const ExactOptions& options) {
  assert(options.max_moves >= 0);
  assert(options.budget >= 0);
  Searcher searcher(instance, options);

  // Warm starts keep the search shallow: identity, GREEDY and M-PARTITION
  // (the latter two when the move budget is the binding constraint).
  searcher.seed_incumbent(no_move_result(instance));
  {
    const auto k = std::min<std::int64_t>(
        options.max_moves, static_cast<std::int64_t>(instance.num_jobs()));
    searcher.seed_incumbent(greedy_rebalance(instance, k));
    searcher.seed_incumbent(m_partition_rebalance(instance, k));
  }

  searcher.dfs(0, 0);

  ExactResult result;
  result.nodes = searcher.nodes;
  result.proven_optimal = !searcher.aborted;
  result.best = finalize_result(instance, std::move(searcher.best_assignment));
  assert(result.best.makespan == searcher.best_makespan);
  return result;
}

}  // namespace lrb
