// Polynomial-time exact rebalancing for equal-size jobs (the unit-size model
// of Rudolph et al. [13] and Ghosh et al. [4] that the paper generalizes
// away from). With all sizes equal the makespan is size * (max job count),
// so the optimum is the smallest count cap t such that the total excess
// above t fits both within the move budget k and within the total deficit
// below t. O(n + m log m).

#pragma once

#include <cstdint>
#include <optional>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// Exact optimum when every job has the same size; std::nullopt otherwise.
[[nodiscard]] std::optional<RebalanceResult> equal_size_exact_rebalance(
    const Instance& instance, std::int64_t k);

}  // namespace lrb
