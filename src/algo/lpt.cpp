#include "algo/lpt.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <vector>

namespace lrb {

RebalanceResult list_schedule(const Instance& instance,
                              std::span<const JobId> order) {
  assert(order.size() == instance.num_jobs());
  Assignment assignment(instance.num_jobs(), 0);
  // Min-heap of (load, proc); ties resolve to the lowest processor id so the
  // result is deterministic.
  using Entry = std::pair<Size, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (ProcId p = 0; p < instance.num_procs; ++p) heap.emplace(0, p);
  for (JobId j : order) {
    auto [load, p] = heap.top();
    heap.pop();
    assignment[j] = p;
    heap.emplace(load + instance.sizes[j], p);
  }
  return finalize_result(instance, std::move(assignment));
}

RebalanceResult lpt_schedule(const Instance& instance) {
  std::vector<JobId> order(instance.num_jobs());
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (instance.sizes[a] != instance.sizes[b]) {
      return instance.sizes[a] > instance.sizes[b];
    }
    return a < b;
  });
  return list_schedule(instance, order);
}

}  // namespace lrb
