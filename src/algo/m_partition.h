// Algorithm M-PARTITION from SPAA'03 §3.1: PARTITION without knowing OPT.
//
// The execution of PARTITION is piecewise-constant in the guess T between
// the candidate thresholds of thresholds.h. M-PARTITION scans candidates
// upward from a certified lower bound and commits to the first guess whose
// implied removal count k-hat is within the move budget k. Because
// k-hat(OPT) <= k (Lemmas 3-4: PARTITION never removes more jobs than an
// optimal k-move schedule), the accepted guess is <= OPT and the resulting
// makespan is <= 1.5 * OPT (Theorem 3).
//
// Three implementations are provided:
//  - m_partition_rebalance: the paper's O(n log n) scheme. k-hat is
//    maintained incrementally: each threshold event touches exactly one
//    processor's (a_i, b_i) or one job's large/small classification, and
//    "sum of the L_T smallest c_i" is answered by a Fenwick tree indexed by
//    c-value. One full PARTITION run happens only at the accepted guess.
//    An overload takes an MPartitionScratch arena so that repeat solving
//    (the batch engine's steady state) performs no heap allocation in the
//    scan.
//  - m_partition_rebalance_parallel: splits the sorted candidate range into
//    chunks and scans each chunk on a ThreadPool. Scan state at a threshold
//    is a pure function of the threshold, so every chunk recomputes its
//    entry state independently and the first accepting chunk (in value
//    order) yields results — and stats — bit-identical to the serial scan
//    for any chunk/worker count.
//  - m_partition_rebalance_reference: re-runs PARTITION at every candidate
//    (O(n^2 log n) worst case). Used for differential testing.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/partition.h"
#include "algo/thresholds.h"
#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

class ThreadPool;

struct MPartitionStats {
  Size accepted_threshold = 0;    ///< the committed OPT guess (<= OPT)
  Size start_threshold = 0;       ///< scan start (certified lower bound)
  std::int64_t removals = 0;      ///< k-hat at the accepted guess
  std::size_t guesses_evaluated = 0;
};

/// Reusable working set for the threshold scan. Every per-instance buffer
/// of m_partition_rebalance lands in these vectors, so a warmed scratch
/// makes steady-state solving allocation-free in the scan hot path (the
/// certified lower bound and the single committed PARTITION construction
/// still allocate their own small temporaries / the returned assignment).
struct MPartitionScratch {
  // Static per-instance data: job ids grouped by processor and sorted by
  // ascending size, with flat size / prefix-sum segments per processor.
  std::vector<JobId> jobs;
  std::vector<Size> sizes_asc;
  std::vector<Size> prefix;
  std::vector<std::size_t> offset;  ///< m + 1 segment boundaries
  std::vector<std::size_t> cursor;  ///< counting-sort fill positions
  std::vector<ThresholdEvent> events;
  // Mutable per-processor scan state at the current guess.
  std::vector<std::int64_t> num_large;
  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
  // Fenwick-tree storage for the c-selector.
  std::vector<std::int64_t> sel_cnt;
  std::vector<std::int64_t> sel_sum;

  /// Pre-sizes every buffer for instances up to (max_jobs, max_procs);
  /// solving any instance within those bounds then never reallocates.
  void warm(std::size_t max_jobs, ProcId max_procs);
};

/// The O(n log n) M-PARTITION. Relocates at most k jobs; makespan is at
/// most 1.5 * OPT(k).
[[nodiscard]] RebalanceResult m_partition_rebalance(const Instance& instance,
                                                    std::int64_t k,
                                                    MPartitionStats* stats = nullptr);

/// Scratch-arena variant: bit-identical to the plain overload, but all scan
/// buffers live in (and are reused from) `scratch`.
[[nodiscard]] RebalanceResult m_partition_rebalance(const Instance& instance,
                                                    std::int64_t k,
                                                    MPartitionScratch& scratch,
                                                    MPartitionStats* stats = nullptr);

/// Parallel threshold scan over `pool`. `chunks` fixes the number of scan
/// chunks (0 = automatic: fall back to the serial scan for small instances,
/// otherwise ~2 chunks per worker). Results and stats are bit-identical to
/// m_partition_rebalance for every chunk and worker count.
[[nodiscard]] RebalanceResult m_partition_rebalance_parallel(
    const Instance& instance, std::int64_t k, ThreadPool& pool,
    MPartitionStats* stats = nullptr, std::size_t chunks = 0);

/// Reference implementation: full PARTITION per candidate threshold.
[[nodiscard]] RebalanceResult m_partition_rebalance_reference(
    const Instance& instance, std::int64_t k, MPartitionStats* stats = nullptr);

}  // namespace lrb
