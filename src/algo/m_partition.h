// Algorithm M-PARTITION from SPAA'03 §3.1: PARTITION without knowing OPT.
//
// The execution of PARTITION is piecewise-constant in the guess T between
// the candidate thresholds of thresholds.h. M-PARTITION scans candidates
// upward from a certified lower bound and commits to the first guess whose
// implied removal count k-hat is within the move budget k. Because
// k-hat(OPT) <= k (Lemmas 3-4: PARTITION never removes more jobs than an
// optimal k-move schedule), the accepted guess is <= OPT and the resulting
// makespan is <= 1.5 * OPT (Theorem 3).
//
// Two implementations are provided:
//  - m_partition_rebalance: the paper's O(n log n) scheme. k-hat is
//    maintained incrementally: each threshold event touches exactly one
//    processor's (a_i, b_i) or one job's large/small classification, and
//    "sum of the L_T smallest c_i" is answered by a Fenwick tree indexed by
//    c-value. One full PARTITION run happens only at the accepted guess.
//  - m_partition_rebalance_reference: re-runs PARTITION at every candidate
//    (O(n^2 log n) worst case). Used for differential testing.

#pragma once

#include <cstdint>

#include "algo/partition.h"
#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct MPartitionStats {
  Size accepted_threshold = 0;    ///< the committed OPT guess (<= OPT)
  Size start_threshold = 0;       ///< scan start (certified lower bound)
  std::int64_t removals = 0;      ///< k-hat at the accepted guess
  std::size_t guesses_evaluated = 0;
};

/// The O(n log n) M-PARTITION. Relocates at most k jobs; makespan is at
/// most 1.5 * OPT(k).
[[nodiscard]] RebalanceResult m_partition_rebalance(const Instance& instance,
                                                    std::int64_t k,
                                                    MPartitionStats* stats = nullptr);

/// Reference implementation: full PARTITION per candidate threshold.
[[nodiscard]] RebalanceResult m_partition_rebalance_reference(
    const Instance& instance, std::int64_t k, MPartitionStats* stats = nullptr);

}  // namespace lrb
