#include "algo/unit_exact.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lrb {

std::optional<RebalanceResult> equal_size_exact_rebalance(
    const Instance& instance, std::int64_t k) {
  assert(k >= 0);
  if (instance.num_jobs() == 0) return no_move_result(instance);
  const Size s = instance.sizes.front();
  for (Size size : instance.sizes) {
    if (size != s) return std::nullopt;
  }
  const auto m = static_cast<std::int64_t>(instance.num_procs);
  const auto n = static_cast<std::int64_t>(instance.num_jobs());

  std::vector<std::int64_t> count(instance.num_procs, 0);
  for (ProcId p : instance.initial) ++count[p];

  // feasible(t): can all counts be brought to <= t with at most k moves?
  auto moves_needed = [&](std::int64_t t) {
    std::int64_t excess = 0;
    std::int64_t deficit = 0;
    for (std::int64_t c : count) {
      excess += std::max<std::int64_t>(0, c - t);
      deficit += std::max<std::int64_t>(0, t - c);
    }
    return std::pair(excess, deficit);
  };
  auto feasible = [&](std::int64_t t) {
    const auto [excess, deficit] = moves_needed(t);
    return excess <= k && excess <= deficit;
  };

  // The fractional floor ceil(n/m) is always reachable capacity-wise; binary
  // search the smallest feasible cap in [ceil(n/m), max count].
  std::int64_t lo = (n + m - 1) / m;
  std::int64_t hi = *std::max_element(count.begin(), count.end());
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::int64_t t = lo;
  assert(feasible(t));

  // Construct: shed arbitrary jobs from processors above t into processors
  // below t.
  Assignment assignment = instance.initial;
  std::vector<std::int64_t> over = count;  // mutable working counts
  std::vector<JobId> evicted;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const ProcId p = instance.initial[j];
    if (over[p] > t) {
      --over[p];
      evicted.push_back(static_cast<JobId>(j));
    }
  }
  ProcId receiver = 0;
  for (JobId j : evicted) {
    while (over[receiver] >= t) ++receiver;
    assignment[j] = receiver;
    ++over[receiver];
  }
  auto result = finalize_result(instance, std::move(assignment));
  assert(result.makespan == s * t || instance.num_jobs() == 0);
  assert(result.moves <= k);
  return result;
}

}  // namespace lrb
