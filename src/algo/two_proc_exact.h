// Exact load rebalancing on TWO processors in pseudo-polynomial time.
//
// With m = 2 the makespan is max(X, total - X) where X is processor 0's
// final load, so the problem reduces to: which values of X are reachable
// with at most k moves? A subset-sum style DP computes, for every X, the
// MINIMUM number of moves realizing it - O(n * total) time, O(n * total)
// bits for reconstruction. Practical to n in the hundreds with moderate
// sizes, i.e. far beyond the branch-and-bound's reach; used to push the
// approximation-ratio experiments to larger instances.

#pragma once

#include <cstdint>
#include <optional>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// Exact optimum for instances with exactly 2 processors; nullopt otherwise
/// (or when the DP table would exceed max_cells).
[[nodiscard]] std::optional<RebalanceResult> two_proc_exact_rebalance(
    const Instance& instance, std::int64_t k,
    std::size_t max_cells = std::size_t{1} << 28);

}  // namespace lrb
