#include "algo/partition.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace lrb {
namespace {

/// Longest prefix of `prefix_sums` (1-based cumulative sums) whose value,
/// scaled by `scale`, stays within `cap`. Returns the number of kept items.
std::size_t longest_fitting_prefix(const std::vector<Size>& prefix_sums,
                                   Size cap, Size scale) {
  // prefix_sums[l-1] = sum of the l smallest items; find max l with
  // scale * sum <= cap. Sums are nondecreasing, so binary search applies.
  std::size_t lo = 0, hi = prefix_sums.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (scale * prefix_sums[mid - 1] <= cap) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

PartitionOutcome partition_rebalance_at(const Instance& instance,
                                        Size threshold) {
  assert(threshold >= 0);
  const Size T = threshold;
  const ProcId m = instance.num_procs;

  PartitionOutcome out;
  out.threshold = T;

  // Per-processor jobs ascending by size; the small set at T is a prefix.
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] < instance.sizes[b];
      }
      return a < b;
    });
  }
  auto is_large = [&](JobId j) { return 2 * instance.sizes[j] > T; };

  Assignment assignment = instance.initial;
  std::vector<JobId> pending_large;  // removed large jobs awaiting placement
  std::vector<JobId> pending_small;  // removed small jobs for Step 6
  std::int64_t removals = 0;

  // ---- Step 1: keep only the smallest large job per processor. ----
  std::int64_t large_total = 0;
  std::vector<char> has_large(m, 0);
  for (ProcId p = 0; p < m; ++p) {
    auto& jobs = by_proc[p];
    // Large jobs are the ascending suffix starting at first_large.
    std::size_t first_large = jobs.size();
    while (first_large > 0 && is_large(jobs[first_large - 1])) --first_large;
    const std::size_t num_large = jobs.size() - first_large;
    large_total += static_cast<std::int64_t>(num_large);
    has_large[p] = num_large > 0;
    // Evict every large job beyond the smallest one.
    for (std::size_t i = first_large + 1; i < jobs.size(); ++i) {
      pending_large.push_back(jobs[i]);
      ++removals;
    }
    if (num_large > 1) jobs.resize(first_large + 1);
  }
  out.large_total = large_total;
  out.large_extra = static_cast<std::int64_t>(pending_large.size());

  if (large_total > static_cast<std::int64_t>(m)) {
    // More large jobs than processors: no assignment has makespan <= T.
    out.feasible = false;
    return out;
  }

  // ---- Step 2: a_i, b_i, c_i from ascending prefix sums. ----
  out.a.assign(m, 0);
  out.b.assign(m, 0);
  std::vector<std::int64_t> c(m, 0);
  std::vector<std::size_t> small_count(m, 0);
  for (ProcId p = 0; p < m; ++p) {
    const auto& jobs = by_proc[p];
    std::vector<Size> sums;
    sums.reserve(jobs.size());
    Size acc = 0;
    for (JobId j : jobs) {
      acc += instance.sizes[j];
      sums.push_back(acc);
    }
    const std::size_t n_small = jobs.size() - (has_large[p] ? 1 : 0);
    small_count[p] = n_small;
    // a_i: over the small prefix only, cap T/2 (compare 2*sum <= T).
    std::vector<Size> small_sums(sums.begin(),
                                 sums.begin() + static_cast<std::ptrdiff_t>(n_small));
    const std::size_t keep_small = longest_fitting_prefix(small_sums, T, 2);
    out.a[p] = static_cast<std::int64_t>(n_small - keep_small);
    // b_i: over all jobs (including the kept large one), cap T.
    const std::size_t keep_all = longest_fitting_prefix(sums, T, 1);
    out.b[p] = static_cast<std::int64_t>(jobs.size() - keep_all);
    c[p] = out.a[p] - out.b[p];
  }

  // ---- Step 3: pick the L_T processors with smallest c_i. ----
  std::vector<ProcId> procs(m);
  std::iota(procs.begin(), procs.end(), ProcId{0});
  std::sort(procs.begin(), procs.end(), [&](ProcId x, ProcId y) {
    if (c[x] != c[y]) return c[x] < c[y];
    if (has_large[x] != has_large[y]) return has_large[x] > has_large[y];
    return x < y;
  });
  std::vector<char> selected(m, 0);
  for (std::int64_t i = 0; i < large_total; ++i) selected[procs[static_cast<std::size_t>(i)]] = 1;

  std::vector<ProcId> free_slots;  // selected, currently large-free
  for (ProcId p = 0; p < m; ++p) {
    if (selected[p] != 0) {
      if (has_large[p] == 0) free_slots.push_back(p);
      // Drop the a_i largest small jobs (suffix of the small prefix).
      auto& jobs = by_proc[p];
      const std::size_t n_small = small_count[p];
      const auto drop = static_cast<std::size_t>(out.a[p]);
      for (std::size_t i = n_small - drop; i < n_small; ++i) {
        pending_small.push_back(jobs[i]);
        ++removals;
      }
      jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(n_small - drop),
                 jobs.begin() + static_cast<std::ptrdiff_t>(n_small));
    }
  }

  // ---- Step 4: trim non-selected processors to <= T. ----
  for (ProcId p = 0; p < m; ++p) {
    if (selected[p] != 0) continue;
    auto& jobs = by_proc[p];
    const auto drop = static_cast<std::size_t>(out.b[p]);
    for (std::size_t i = jobs.size() - drop; i < jobs.size(); ++i) {
      const JobId j = jobs[i];
      if (is_large(j)) {
        pending_large.push_back(j);
      } else {
        pending_small.push_back(j);
      }
      ++removals;
    }
    jobs.resize(jobs.size() - drop);
  }

  // ---- Steps 4b & 5: place all pending large jobs on distinct slots. ----
  assert(pending_large.size() <= free_slots.size());
  std::vector<Size> load(m, 0);
  for (ProcId p = 0; p < m; ++p) {
    for (JobId j : by_proc[p]) load[p] += instance.sizes[j];
    for (JobId j : by_proc[p]) assignment[j] = p;  // unchanged, re-stamped
  }
  for (std::size_t i = 0; i < pending_large.size(); ++i) {
    const ProcId slot = free_slots[i];
    assignment[pending_large[i]] = slot;
    load[slot] += instance.sizes[pending_large[i]];
  }

  // ---- Step 6: min-load greedy for the removed small jobs, largest first.
  std::sort(pending_small.begin(), pending_small.end(), [&](JobId x, JobId y) {
    if (instance.sizes[x] != instance.sizes[y]) {
      return instance.sizes[x] > instance.sizes[y];
    }
    return x < y;
  });
  using Entry = std::pair<Size, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> min_heap;
  for (ProcId p = 0; p < m; ++p) min_heap.emplace(load[p], p);
  for (JobId j : pending_small) {
    auto [l, p] = min_heap.top();
    min_heap.pop();
    assignment[j] = p;
    min_heap.emplace(l + instance.sizes[j], p);
  }

  out.feasible = true;
  out.removals = removals;
  out.result = finalize_result(instance, std::move(assignment), T);
  return out;
}

}  // namespace lrb
