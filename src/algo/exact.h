// OPTIMAL: exact branch-and-bound for the load rebalancing problem, used as
// ground truth in the approximation-ratio experiments (the problem is
// NP-hard, so this is for small instances only; ~n <= 16).
//
// Minimizes makespan subject to (a) at most `max_moves` relocated jobs and
// (b) total relocation cost at most `budget`. Either constraint may be left
// unbounded.

#pragma once

#include <cstdint>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct ExactOptions {
  std::int64_t max_moves = kInfSize;  ///< the paper's k (unit-cost problem)
  Cost budget = kInfCost;             ///< the paper's B (arbitrary costs)
  std::uint64_t node_limit = 50'000'000;
};

struct ExactResult {
  RebalanceResult best;
  /// True iff the search space was exhausted within node_limit, i.e. `best`
  /// is a certified optimum.
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
};

/// Branch-and-bound over jobs in descending size order. Prunes on the
/// incumbent makespan, the move/cost budgets, the ceil-average lower bound,
/// and collapses processors that are symmetric for the remaining jobs
/// (equal load and initial home of no remaining job).
[[nodiscard]] ExactResult exact_rebalance(const Instance& instance,
                                          const ExactOptions& options = {});

}  // namespace lrb
