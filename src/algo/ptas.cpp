#include "algo/ptas.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lower_bounds.h"
#include "util/thread_pool.h"

namespace lrb {
namespace {

/// delta chosen so that (1 + 3*delta) * (1 + delta) <= 1 + eps, i.e. the
/// construction slack times the guess granularity stays within the target.
double delta_for(double eps) {
  const double delta = (std::sqrt(16.0 + 12.0 * eps) - 4.0) / 6.0;
  return std::min(delta, 1.0);
}

struct Discretization {
  Size guess = 0;       // the makespan guess A-hat
  double delta = 0.0;
  Size u = 1;           // small-load rounding unit
  Size w = 0;           // per-processor DP load cap, floor((1+2delta)*A)
  std::vector<Size> class_size;  // L_t (rounded-up class ceilings)

  /// Class of a job size, or -1 when small (size <= delta * guess).
  [[nodiscard]] int class_of(Size size) const {
    if (static_cast<double>(size) <= delta * static_cast<double>(guess)) {
      return -1;
    }
    for (std::size_t t = 0; t < class_size.size(); ++t) {
      if (size <= class_size[t]) return static_cast<int>(t);
    }
    return -2;  // larger than the guess itself: guess below max job
  }
};

Discretization make_discretization(Size guess, double delta) {
  Discretization d;
  d.guess = guess;
  d.delta = delta;
  d.u = std::max<Size>(1, static_cast<Size>(std::floor(
                              delta * static_cast<double>(guess))));
  d.w = static_cast<Size>(
      std::floor((1.0 + 2.0 * delta) * static_cast<double>(guess)));
  double boundary = delta * static_cast<double>(guess);
  while (boundary < static_cast<double>(guess)) {
    boundary *= (1.0 + delta);
    d.class_size.push_back(
        std::min<Size>(guess, static_cast<Size>(std::ceil(boundary))));
  }
  return d;
}

struct ProcData {
  std::vector<std::int64_t> x;  // current large-class counts
  // Per class: this processor's class-t job ids sorted by ascending cost,
  // plus cost prefix sums (prefix[r] = cost of evicting the r cheapest).
  std::vector<std::vector<JobId>> class_jobs;
  std::vector<std::vector<Cost>> class_cost_prefix;
  // Small jobs sorted by ascending cost/size ratio with size/cost prefixes.
  std::vector<JobId> smalls;
  std::vector<Size> small_size_prefix;  // prefix[r] = size of r cheapest-ratio
  std::vector<Cost> small_cost_prefix;
  Size small_total = 0;

  /// Cost of evicting small jobs (ascending ratio) until the remaining
  /// small load is <= cap; also reports how many jobs go.
  [[nodiscard]] std::pair<Cost, std::size_t> small_trim(Size cap) const {
    const Size need = small_total - cap;
    if (need <= 0) return {0, 0};
    const auto it = std::lower_bound(small_size_prefix.begin(),
                                     small_size_prefix.end(), need);
    assert(it != small_size_prefix.end());
    const auto r = static_cast<std::size_t>(it - small_size_prefix.begin()) + 1;
    return {small_cost_prefix[r - 1], r};
  }
};

struct DpNode {
  Cost cost = kInfCost;
  std::string prev;                  // key in the previous layer
  std::vector<std::int32_t> choice;  // the x' vector used for this processor
  Size vmax = 0;                     // small capacity (in units) granted
};

std::string encode(const std::vector<std::int64_t>& counts, std::int64_t need) {
  std::string key;
  key.resize((counts.size() + 1) * sizeof(std::int64_t));
  std::memcpy(key.data(), counts.data(), counts.size() * sizeof(std::int64_t));
  std::memcpy(key.data() + counts.size() * sizeof(std::int64_t), &need,
              sizeof(std::int64_t));
  return key;
}

struct GuessOutcome {
  bool representable = false;  // guess >= max job and DP stayed in limits
  bool within_limit = true;
  bool constructed = false;    // assignment successfully reconstructed
  Cost cost = kInfCost;
  Assignment assignment;
  std::size_t states = 0;
};

GuessOutcome run_guess(const Instance& instance, Size guess, double delta,
                       Cost budget, std::size_t state_limit) {
  GuessOutcome out;
  const Discretization d = make_discretization(guess, delta);
  const ProcId m = instance.num_procs;
  const auto s = d.class_size.size();

  // Classify jobs; bail out if any job exceeds the guess entirely.
  std::vector<int> job_class(instance.num_jobs());
  std::vector<std::int64_t> totals(s, 0);
  Size small_total_all = 0;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const int t = d.class_of(instance.sizes[j]);
    if (t == -2) return out;  // guess < max job: certainly below OPT
    job_class[j] = t;
    if (t >= 0) {
      ++totals[static_cast<std::size_t>(t)];
    } else {
      small_total_all += instance.sizes[j];
    }
  }
  const std::int64_t v_need = (small_total_all + d.u - 1) / d.u;

  // Per-processor removal bookkeeping.
  std::vector<ProcData> procs(m);
  {
    auto by_proc = instance.jobs_by_proc();
    for (ProcId p = 0; p < m; ++p) {
      auto& pd = procs[p];
      pd.x.assign(s, 0);
      pd.class_jobs.assign(s, {});
      for (JobId j : by_proc[p]) {
        const int t = job_class[j];
        if (t >= 0) {
          ++pd.x[static_cast<std::size_t>(t)];
          pd.class_jobs[static_cast<std::size_t>(t)].push_back(j);
        } else {
          pd.smalls.push_back(j);
          pd.small_total += instance.sizes[j];
        }
      }
      pd.class_cost_prefix.assign(s, {});
      for (std::size_t t = 0; t < s; ++t) {
        auto& jobs = pd.class_jobs[t];
        std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
          if (instance.move_costs[a] != instance.move_costs[b]) {
            return instance.move_costs[a] < instance.move_costs[b];
          }
          return a < b;
        });
        auto& prefix = pd.class_cost_prefix[t];
        prefix.reserve(jobs.size() + 1);
        prefix.push_back(0);
        for (JobId j : jobs) {
          prefix.push_back(prefix.back() + instance.move_costs[j]);
        }
      }
      std::sort(pd.smalls.begin(), pd.smalls.end(), [&](JobId a, JobId b) {
        // ascending cost/size; zero-size jobs last (never worth evicting).
        const Size sa = instance.sizes[a], sb = instance.sizes[b];
        const Cost ca = instance.move_costs[a], cb = instance.move_costs[b];
        if ((sa == 0) != (sb == 0)) return sb == 0;
        const double ra = sa == 0 ? 0.0
                                  : static_cast<double>(ca) / static_cast<double>(sa);
        const double rb = sb == 0 ? 0.0
                                  : static_cast<double>(cb) / static_cast<double>(sb);
        if (ra != rb) return ra < rb;
        return a < b;
      });
      pd.small_size_prefix.reserve(pd.smalls.size());
      pd.small_cost_prefix.reserve(pd.smalls.size());
      Size acc_size = 0;
      Cost acc_cost = 0;
      for (JobId j : pd.smalls) {
        acc_size += instance.sizes[j];
        acc_cost += instance.move_costs[j];
        pd.small_size_prefix.push_back(acc_size);
        pd.small_cost_prefix.push_back(acc_cost);
      }
    }
  }

  // Forward sparse DP over processors.
  using Layer = std::unordered_map<std::string, DpNode>;
  std::vector<Layer> layers(m + 1);
  {
    DpNode root;
    root.cost = 0;
    layers[0].emplace(encode(totals, v_need), std::move(root));
  }
  std::size_t total_states = 1;

  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (const auto& [key, node] : layers[p]) {
      // Decode the state.
      std::vector<std::int64_t> rem(s);
      std::int64_t need = 0;
      std::memcpy(rem.data(), key.data(), s * sizeof(std::int64_t));
      std::memcpy(&need, key.data() + s * sizeof(std::int64_t),
                  sizeof(std::int64_t));

      // Enumerate x' vectors with x'_t <= rem_t and sum x'_t L_t <= W.
      std::vector<std::int32_t> xprime(s, 0);
      auto emit = [&](Size load_used) {
        const Size vmax = (d.w - load_used) / d.u;
        // Removal cost: per class evict the cheapest surplus, then trim
        // smalls to vmax*u + u.
        Cost cost = node.cost;
        for (std::size_t t = 0; t < s; ++t) {
          const auto have = pd.x[t];
          const auto want = static_cast<std::int64_t>(xprime[t]);
          if (have > want) {
            cost += pd.class_cost_prefix[t][static_cast<std::size_t>(have - want)];
          }
        }
        cost += pd.small_trim(vmax * d.u + d.u).first;
        if (cost >= kInfCost || cost > budget) return;

        std::vector<std::int64_t> next_rem(s);
        for (std::size_t t = 0; t < s; ++t) {
          next_rem[t] = rem[t] - static_cast<std::int64_t>(xprime[t]);
        }
        const std::int64_t next_need = std::max<std::int64_t>(0, need - vmax);
        const std::string next_key = encode(next_rem, next_need);
        auto [it, inserted] = layers[p + 1].try_emplace(next_key);
        if (inserted) ++total_states;
        if (cost < it->second.cost) {
          it->second.cost = cost;
          it->second.prev = key;
          it->second.choice = xprime;
          it->second.vmax = vmax;
        }
      };
      // Recursive enumeration over classes (iterative via explicit lambda).
      auto enumerate = [&](auto&& self, std::size_t t, Size load_used) -> void {
        if (total_states > state_limit) return;
        if (t == s) {
          emit(load_used);
          return;
        }
        for (std::int64_t cnt = 0;; ++cnt) {
          if (cnt > rem[t]) break;
          const Size load = load_used + static_cast<Size>(cnt) * d.class_size[t];
          if (load > d.w) break;
          xprime[t] = static_cast<std::int32_t>(cnt);
          self(self, t + 1, load);
        }
        xprime[t] = 0;
      };
      enumerate(enumerate, 0, 0);
      if (total_states > state_limit) {
        out.within_limit = false;
        out.states = total_states;
        return out;
      }
    }
  }
  out.states = total_states;

  // Accept iff the all-consumed state was reached within budget.
  const std::string final_key =
      encode(std::vector<std::int64_t>(s, 0), std::int64_t{0});
  const auto final_it = layers[m].find(final_key);
  if (final_it == layers[m].end()) return out;
  out.representable = true;
  out.cost = final_it->second.cost;
  if (out.cost > budget) return out;

  // ---- Reconstruct the assignment. ----
  // Walk layers backward to recover each processor's choice.
  std::vector<std::vector<std::int32_t>> choice(m);
  std::vector<Size> vmax(m, 0);
  {
    std::string key = final_key;
    for (ProcId p = m; p-- > 0;) {
      const auto& node = layers[p + 1].at(key);
      choice[p] = node.choice;
      vmax[p] = node.vmax;
      key = node.prev;
    }
  }

  Assignment assignment = instance.initial;
  std::vector<std::vector<JobId>> evicted_by_class(s);
  std::vector<JobId> evicted_smalls;
  std::vector<Size> small_load(m, 0);
  // Phase 1: evictions per the DP plan.
  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (std::size_t t = 0; t < s; ++t) {
      const auto surplus =
          pd.x[t] - static_cast<std::int64_t>(choice[p][t]);
      for (std::int64_t i = 0; i < surplus; ++i) {
        evicted_by_class[t].push_back(pd.class_jobs[t][static_cast<std::size_t>(i)]);
      }
    }
    const auto [trim_cost, trim_count] = pd.small_trim(vmax[p] * d.u + d.u);
    (void)trim_cost;
    for (std::size_t i = 0; i < trim_count; ++i) {
      evicted_smalls.push_back(pd.smalls[i]);
    }
    small_load[p] = pd.small_total -
                    (trim_count == 0 ? 0 : pd.small_size_prefix[trim_count - 1]);
  }
  // Phase 2: fill large-class deficits from the per-class pools.
  std::vector<std::size_t> pool_next(s, 0);
  for (ProcId p = 0; p < m; ++p) {
    const auto& pd = procs[p];
    for (std::size_t t = 0; t < s; ++t) {
      const auto deficit = static_cast<std::int64_t>(choice[p][t]) - pd.x[t];
      for (std::int64_t i = 0; i < deficit; ++i) {
        assert(pool_next[t] < evicted_by_class[t].size());
        assignment[evicted_by_class[t][pool_next[t]++]] = p;
      }
    }
  }
  for (std::size_t t = 0; t < s; ++t) {
    assert(pool_next[t] == evicted_by_class[t].size());
  }
  // Phase 3: evicted smalls go to any processor below its granted small
  // capacity vmax*u (one always exists; see header).
  std::sort(evicted_smalls.begin(), evicted_smalls.end(), [&](JobId a, JobId b) {
    if (instance.sizes[a] != instance.sizes[b]) {
      return instance.sizes[a] > instance.sizes[b];
    }
    return a < b;
  });
  for (JobId j : evicted_smalls) {
    if (instance.sizes[j] == 0) {
      assignment[j] = instance.initial[j];  // zero-size: place back, free
      continue;
    }
    bool placed = false;
    for (ProcId p = 0; p < m; ++p) {
      if (small_load[p] < vmax[p] * d.u) {
        small_load[p] += instance.sizes[j];
        assignment[j] = p;
        placed = true;
        break;
      }
    }
    assert(placed);
    if (!placed) return out;  // defensive; cannot happen per the invariant
  }
  out.assignment = std::move(assignment);
  out.constructed = true;
  return out;
}

}  // namespace

PtasResult ptas_rebalance(const Instance& instance, const PtasOptions& options) {
  assert(options.eps > 0);
  assert(options.budget >= 0);
  const double delta = delta_for(options.eps);

  PtasResult result;
  result.result = no_move_result(instance);
  if (instance.num_jobs() == 0) {
    result.success = true;
    return result;
  }

  Size guess = std::max({max_job_bound(instance), average_load_bound(instance),
                         budget_removal_bound(instance, options.budget),
                         Size{1}});
  const Size hard_stop =
      2 * std::max<Size>(instance.initial_makespan(), Size{1}) + 2;
  while (guess <= hard_stop) {
    ++result.guesses_evaluated;
    auto outcome =
        run_guess(instance, guess, delta, options.budget, options.state_limit);
    result.states = outcome.states;
    if (!outcome.within_limit) {
      result.success = false;
      return result;
    }
    if (outcome.constructed && outcome.cost <= options.budget) {
      result.success = true;
      result.accepted_guess = guess;
      result.result = finalize_result(instance, std::move(outcome.assignment), guess);
      assert(result.result.cost <= options.budget);
      return result;
    }
    const auto stepped = static_cast<Size>(std::ceil(
        static_cast<double>(guess) * (1.0 + delta)));
    guess = std::max(guess + 1, stepped);
  }
  // The identity plan is representable at guess >= the initial makespan, so
  // reaching here indicates a logic error for sane inputs.
  assert(false && "PTAS guess scan exhausted");
  return result;
}

PtasResult ptas_rebalance_parallel(const Instance& instance,
                                   const PtasOptions& options, ThreadPool& pool,
                                   std::size_t wave) {
  assert(options.eps > 0);
  assert(options.budget >= 0);
  const double delta = delta_for(options.eps);

  PtasResult result;
  result.result = no_move_result(instance);
  if (instance.num_jobs() == 0) {
    result.success = true;
    return result;
  }
  if (wave == 0) wave = std::max<std::size_t>(2 * pool.size(), 2);

  Size guess = std::max({max_job_bound(instance), average_load_bound(instance),
                         budget_removal_bound(instance, options.budget),
                         Size{1}});
  const Size hard_stop =
      2 * std::max<Size>(instance.initial_makespan(), Size{1}) + 2;
  std::vector<Size> guesses;
  std::vector<GuessOutcome> outcomes;
  while (guess <= hard_stop) {
    // Next `wave` guesses of the serial sequence, evaluated speculatively.
    guesses.clear();
    while (guess <= hard_stop && guesses.size() < wave) {
      guesses.push_back(guess);
      const auto stepped = static_cast<Size>(
          std::ceil(static_cast<double>(guess) * (1.0 + delta)));
      guess = std::max(guess + 1, stepped);
    }
    outcomes.assign(guesses.size(), GuessOutcome{});
    parallel_for(pool, 0, guesses.size(), [&](std::size_t i) {
      outcomes[i] = run_guess(instance, guesses[i], delta, options.budget,
                              options.state_limit);
    });
    // Process outcomes in sequence order: the first decisive one wins,
    // exactly as the serial scan would have decided, and later speculative
    // evaluations are discarded (they never count towards the stats).
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      ++result.guesses_evaluated;
      result.states = outcomes[i].states;
      if (!outcomes[i].within_limit) {
        result.success = false;
        return result;
      }
      if (outcomes[i].constructed && outcomes[i].cost <= options.budget) {
        result.success = true;
        result.accepted_guess = guesses[i];
        result.result = finalize_result(
            instance, std::move(outcomes[i].assignment), guesses[i]);
        assert(result.result.cost <= options.budget);
        return result;
      }
    }
  }
  assert(false && "PTAS guess scan exhausted");
  return result;
}

}  // namespace lrb
