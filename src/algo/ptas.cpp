#include "algo/ptas.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "core/lower_bounds.h"
#include "util/thread_pool.h"

namespace lrb {
namespace {

/// Layer indices are uint32 (FlatIndexTable payloads), so the effective
/// state cap leaves headroom below the kEmpty sentinel.
constexpr std::size_t kMaxStates = FlatIndexTable::kEmpty - 2;

/// The discretization of one guess. `class_size` lives in the scratch so
/// repeat guesses reuse its storage.
struct Disc {
  Size guess = 0;
  double delta = 0.0;
  Size u = 1;  ///< small-load rounding unit
  Size w = 0;  ///< per-processor DP load cap, floor((1+2delta)*A)
  const std::vector<Size>* class_size = nullptr;

  /// Class of a job size, or -1 when small (size <= delta * guess), or -2
  /// when larger than the guess itself. The class ceilings are sorted
  /// ascending, so the first class that fits is found by binary search.
  [[nodiscard]] int class_of(Size size) const {
    if (static_cast<double>(size) <= delta * static_cast<double>(guess)) {
      return -1;
    }
    const auto it =
        std::lower_bound(class_size->begin(), class_size->end(), size);
    if (it == class_size->end()) return -2;
    return static_cast<int>(it - class_size->begin());
  }
};

Disc make_disc(Size guess, double delta, std::vector<Size>& class_size) {
  Disc d;
  d.guess = guess;
  d.delta = delta;
  d.u = std::max<Size>(1, static_cast<Size>(std::floor(
                              delta * static_cast<double>(guess))));
  d.w = static_cast<Size>(
      std::floor((1.0 + 2.0 * delta) * static_cast<double>(guess)));
  class_size.clear();
  double boundary = delta * static_cast<double>(guess);
  while (boundary < static_cast<double>(guess)) {
    boundary *= (1.0 + delta);
    class_size.push_back(
        std::min<Size>(guess, static_cast<Size>(std::ceil(boundary))));
  }
  d.class_size = &class_size;
  return d;
}

/// Cost of evicting processor p's small jobs (ascending cost/size ratio)
/// until the remaining small load is <= cap; also reports how many jobs go.
std::pair<Cost, std::size_t> small_trim(const PtasScratch& s, ProcId p,
                                        Size cap) {
  const Size need = s.small_total[p] - cap;
  if (need <= 0) return {0, 0};
  const auto begin = s.small_size_prefix.begin() +
                     static_cast<std::ptrdiff_t>(s.small_off[p]);
  const auto end = s.small_size_prefix.begin() +
                   static_cast<std::ptrdiff_t>(s.small_off[p + 1]);
  const auto it = std::lower_bound(begin, end, need);
  assert(it != end);
  const auto r = static_cast<std::size_t>(it - begin) + 1;
  return {s.small_cost_prefix[s.small_off[p] + r - 1], r};
}

/// Evaluates the configuration DP at one guess. All working memory lives in
/// `scratch`; with `want_assignment` false nothing is heap-allocated within
/// warmed bounds. Iteration over a layer is in state insertion order and
/// ties relax by strict cost improvement - the determinism contract shared
/// with check/ptas_reference (see ptas.h).
PtasGuessOutcome run_guess(const Instance& instance, Size guess, double delta,
                           Cost budget, std::size_t state_limit,
                           PtasScratch& sc, bool want_assignment) {
  PtasGuessOutcome out;
  const Disc d = make_disc(guess, delta, sc.class_size);
  const ProcId m = instance.num_procs;
  const std::size_t n = instance.num_jobs();
  const std::size_t s = sc.class_size.size();
  const std::size_t eff_limit = std::min(state_limit, kMaxStates);

  // ---- Classify jobs; bail out if any job exceeds the guess entirely. ----
  sc.job_class.resize(n);
  sc.totals.assign(s, 0);
  sc.small_total.assign(m, 0);
  sc.proc_count.assign(static_cast<std::size_t>(m) * s, 0);
  sc.small_off.assign(m + 1, 0);
  Size small_total_all = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const int t = d.class_of(instance.sizes[j]);
    if (t == -2) return out;  // guess < max job: certainly below OPT
    sc.job_class[j] = t;
    const auto p = instance.initial[j];
    if (t >= 0) {
      ++sc.totals[static_cast<std::size_t>(t)];
      ++sc.proc_count[static_cast<std::size_t>(p) * s +
                      static_cast<std::size_t>(t)];
    } else {
      sc.small_total[p] += instance.sizes[j];
      small_total_all += instance.sizes[j];
      ++sc.small_off[p + 1];
    }
  }
  const std::int64_t v_need = (small_total_all + d.u - 1) / d.u;

  // ---- Per-processor flattened removal bookkeeping. ----
  const std::size_t segs = static_cast<std::size_t>(m) * s;
  sc.class_off.resize(segs + 1);
  sc.class_off[0] = 0;
  for (std::size_t i = 0; i < segs; ++i) {
    sc.class_off[i + 1] =
        sc.class_off[i] + static_cast<std::size_t>(sc.proc_count[i]);
  }
  for (ProcId p = 0; p < m; ++p) sc.small_off[p + 1] += sc.small_off[p];
  const std::size_t num_large = sc.class_off[segs];
  const std::size_t num_small = sc.small_off[m];
  sc.class_jobs.resize(num_large);
  sc.smalls.resize(num_small);
  sc.cursor.assign(sc.class_off.begin(), sc.class_off.end() - 1);
  {
    // Second pass places ids in (proc, class) segments; small segments are
    // filled through small_off copies kept in the tail of `cursor`.
    sc.cursor.insert(sc.cursor.end(), sc.small_off.begin(),
                     sc.small_off.end() - 1);
    std::size_t* class_cursor = sc.cursor.data();
    std::size_t* small_cursor = sc.cursor.data() + segs;
    for (std::size_t j = 0; j < n; ++j) {
      const int t = sc.job_class[j];
      const auto p = static_cast<std::size_t>(instance.initial[j]);
      if (t >= 0) {
        sc.class_jobs[class_cursor[p * s + static_cast<std::size_t>(t)]++] =
            static_cast<JobId>(j);
      } else {
        sc.smalls[small_cursor[p]++] = static_cast<JobId>(j);
      }
    }
  }
  // Per class: this processor's class-t job ids sorted by ascending cost,
  // plus cost prefix sums (prefix[r] = cost of evicting the r cheapest).
  sc.prefix_off.resize(segs + 1);
  sc.class_prefix.resize(num_large + segs + 1);
  for (std::size_t seg = 0; seg < segs; ++seg) {
    const auto begin = sc.class_jobs.begin() +
                       static_cast<std::ptrdiff_t>(sc.class_off[seg]);
    const auto end = sc.class_jobs.begin() +
                     static_cast<std::ptrdiff_t>(sc.class_off[seg + 1]);
    std::sort(begin, end, [&](JobId a, JobId b) {
      if (instance.move_costs[a] != instance.move_costs[b]) {
        return instance.move_costs[a] < instance.move_costs[b];
      }
      return a < b;
    });
    sc.prefix_off[seg] = sc.class_off[seg] + seg;
    Cost acc = 0;
    sc.class_prefix[sc.prefix_off[seg]] = 0;
    std::size_t r = 1;
    for (auto it = begin; it != end; ++it, ++r) {
      acc += instance.move_costs[*it];
      sc.class_prefix[sc.prefix_off[seg] + r] = acc;
    }
  }
  sc.prefix_off[segs] = num_large + segs;
  // Small jobs sorted by ascending cost/size ratio with size/cost prefixes.
  sc.small_size_prefix.resize(num_small);
  sc.small_cost_prefix.resize(num_small);
  for (ProcId p = 0; p < m; ++p) {
    const auto begin =
        sc.smalls.begin() + static_cast<std::ptrdiff_t>(sc.small_off[p]);
    const auto end =
        sc.smalls.begin() + static_cast<std::ptrdiff_t>(sc.small_off[p + 1]);
    std::sort(begin, end, [&](JobId a, JobId b) {
      // ascending cost/size; zero-size jobs last (never worth evicting).
      const Size sa = instance.sizes[a], sb = instance.sizes[b];
      const Cost ca = instance.move_costs[a], cb = instance.move_costs[b];
      if ((sa == 0) != (sb == 0)) return sb == 0;
      const double ra = sa == 0 ? 0.0
                                : static_cast<double>(ca) /
                                      static_cast<double>(sa);
      const double rb = sb == 0 ? 0.0
                                : static_cast<double>(cb) /
                                      static_cast<double>(sb);
      if (ra != rb) return ra < rb;
      return a < b;
    });
    Size acc_size = 0;
    Cost acc_cost = 0;
    for (std::size_t i = sc.small_off[p]; i < sc.small_off[p + 1]; ++i) {
      acc_size += instance.sizes[sc.smalls[i]];
      acc_cost += instance.move_costs[sc.smalls[i]];
      sc.small_size_prefix[i] = acc_size;
      sc.small_cost_prefix[i] = acc_cost;
    }
  }

  // ---- Forward sparse DP over processors. ----
  // State key = (remaining class counts, remaining small cover need) packed
  // into codec.words() words; nodes are (cost, parent index) in per-layer
  // arenas; a flat table indexes each layer by key.
  sc.maxima.assign(sc.totals.begin(), sc.totals.end());
  sc.maxima.push_back(v_need);
  sc.codec.plan(sc.maxima);
  const std::size_t kw = sc.codec.words();
  sc.key_words.resize(kw);
  sc.rem.resize(s + 1);
  sc.next_vals.resize(s + 1);
  sc.tail_min.resize(s + 1);
  if (sc.layers.size() < static_cast<std::size_t>(m) + 1) {
    sc.layers.resize(static_cast<std::size_t>(m) + 1);
  }
  {
    auto& root = sc.layers[0];
    root.keys.resize(kw);
    sc.codec.encode(sc.maxima, root.keys.data());  // totals + v_need
    root.cost.assign(1, 0);
    root.parent.assign(1, FlatIndexTable::kEmpty);
  }
  std::size_t total_states = 1;

  for (ProcId p = 0; p < m; ++p) {
    auto& src = sc.layers[p];
    auto& dst = sc.layers[p + 1];
    dst.keys.clear();
    dst.cost.clear();
    dst.parent.clear();
    dst.table.reset(src.cost.size());
    const std::int64_t* have =
        sc.proc_count.data() + static_cast<std::size_t>(p) * s;
    const Cost* prefix = sc.class_prefix.data();
    const std::size_t* poff = sc.prefix_off.data() +
                              static_cast<std::size_t>(p) * s;
    const Size* L = sc.class_size.data();
    // Optimistic lower bound on this processor's small-trim cost: the trim
    // at the maximal possible capacity (load 0). Constant per processor.
    const Cost small_lb = small_trim(sc, p, (d.w / d.u) * d.u + d.u).first;

    const auto key_equals = [&](std::uint32_t i) {
      return std::memcmp(dst.keys.data() + static_cast<std::size_t>(i) * kw,
                         sc.key_words.data(), kw * sizeof(std::uint64_t)) == 0;
    };
    const auto key_hash = [&](std::uint32_t i) {
      return hash_words(dst.keys.data() + static_cast<std::size_t>(i) * kw,
                        kw);
    };

    for (std::uint32_t si = 0; si < src.cost.size(); ++si) {
      // Decode the state: rem[0..s) class counts, rem[s] = small need.
      sc.codec.decode(src.keys.data() + static_cast<std::size_t>(si) * kw,
                      sc.rem);
      const std::int64_t need = sc.rem[s];
      const Cost node_cost = src.cost[si];

      // Branch-and-bound suffix bound: cheapest possible eviction cost for
      // classes t.. assuming each alone gets the full cap W. Any completion
      // of a partial vector costs at least partial + tail_min[t] + small_lb,
      // so branches over budget prune exactly the transitions the unpruned
      // DP would reject at emit - state counts cannot change.
      sc.tail_min[s] = 0;
      for (std::size_t t = s; t-- > 0;) {
        const std::int64_t cap_cnt =
            std::min<std::int64_t>(sc.rem[t], d.w / L[t]);
        const Cost lb =
            have[t] > cap_cnt
                ? prefix[poff[t] + static_cast<std::size_t>(have[t] - cap_cnt)]
                : 0;
        sc.tail_min[t] = sc.tail_min[t + 1] + lb;
      }

      const auto emit = [&](Size load_used, Cost partial) {
        const Size vmax = (d.w - load_used) / d.u;
        const Cost cost = partial + small_trim(sc, p, vmax * d.u + d.u).first;
        if (cost >= kInfCost || cost > budget) return;
        sc.next_vals[s] = std::max<std::int64_t>(0, need - vmax);
        sc.codec.encode(sc.next_vals, sc.key_words.data());
        const std::uint64_t h = hash_words(sc.key_words.data(), kw);
        const auto fresh = static_cast<std::uint32_t>(dst.cost.size());
        const auto [idx, inserted] =
            dst.table.find_or_insert(h, fresh, key_equals, key_hash);
        if (inserted) {
          dst.keys.insert(dst.keys.end(), sc.key_words.begin(),
                          sc.key_words.end());
          dst.cost.push_back(cost);
          dst.parent.push_back(si);
          ++total_states;
        } else if (cost < dst.cost[idx]) {
          dst.cost[idx] = cost;
          dst.parent[idx] = si;
        }
      };
      // Enumerate x' vectors with x'_t <= rem_t and sum x'_t L_t <= W,
      // depth-first in ascending count order (the shared enumeration order).
      const auto enumerate = [&](auto&& self, std::size_t t, Size load_used,
                                 Cost partial) -> void {
        if (total_states > eff_limit) return;
        if (t == s) {
          emit(load_used, partial);
          return;
        }
        if (partial + sc.tail_min[t] + small_lb > budget) return;  // B&B cut
        for (std::int64_t cnt = 0;; ++cnt) {
          if (cnt > sc.rem[t]) break;
          const Size load = load_used + static_cast<Size>(cnt) * L[t];
          if (load > d.w) break;
          sc.next_vals[t] = sc.rem[t] - cnt;
          const Cost evict =
              have[t] > cnt
                  ? prefix[poff[t] + static_cast<std::size_t>(have[t] - cnt)]
                  : 0;
          self(self, t + 1, load, partial + evict);
        }
      };
      enumerate(enumerate, 0, 0, node_cost);
      if (total_states > eff_limit) {
        out.within_limit = false;
        out.states = total_states;
        return out;
      }
    }
  }
  out.states = total_states;

  // ---- Accept iff the all-consumed state was reached within budget. ----
  std::uint32_t final_idx;
  {
    std::fill(sc.next_vals.begin(), sc.next_vals.end(), 0);
    sc.codec.encode(sc.next_vals, sc.key_words.data());
    const auto& last = sc.layers[m];
    final_idx = last.table.find(
        hash_words(sc.key_words.data(), kw), [&](std::uint32_t i) {
          return std::memcmp(
                     last.keys.data() + static_cast<std::size_t>(i) * kw,
                     sc.key_words.data(), kw * sizeof(std::uint64_t)) == 0;
        });
  }
  if (final_idx == FlatIndexTable::kEmpty) return out;
  out.representable = true;
  out.cost = sc.layers[m].cost[final_idx];
  if (out.cost > budget) return out;
  if (!want_assignment) {
    out.constructed = true;  // the caller asked only for the decision
    return out;
  }

  // ---- Reconstruct the assignment. ----
  // Walk parent indices backward; each processor's choice vector is the
  // difference of adjacent state keys, and its granted small capacity
  // follows from the choice's load.
  std::vector<std::uint32_t> chain(static_cast<std::size_t>(m) + 1);
  chain[m] = final_idx;
  for (ProcId p = m; p-- > 0;) {
    chain[p] = sc.layers[p + 1].parent[chain[p + 1]];
  }
  std::vector<std::int64_t> state_a(s + 1);
  std::vector<std::int64_t> state_b(s + 1);
  std::vector<std::vector<std::int64_t>> choice(m);
  std::vector<Size> vmax(m, 0);
  for (ProcId p = 0; p < m; ++p) {
    sc.codec.decode(
        sc.layers[p].keys.data() + static_cast<std::size_t>(chain[p]) * kw,
        state_a);
    sc.codec.decode(sc.layers[p + 1].keys.data() +
                        static_cast<std::size_t>(chain[p + 1]) * kw,
                    state_b);
    choice[p].resize(s);
    Size load_used = 0;
    for (std::size_t t = 0; t < s; ++t) {
      choice[p][t] = state_a[t] - state_b[t];
      assert(choice[p][t] >= 0);
      load_used += static_cast<Size>(choice[p][t]) * sc.class_size[t];
    }
    vmax[p] = (d.w - load_used) / d.u;
  }

  Assignment assignment = instance.initial;
  std::vector<std::vector<JobId>> evicted_by_class(s);
  std::vector<JobId> evicted_smalls;
  std::vector<Size> small_load(m, 0);
  // Phase 1: evictions per the DP plan.
  for (ProcId p = 0; p < m; ++p) {
    for (std::size_t t = 0; t < s; ++t) {
      const std::size_t seg = static_cast<std::size_t>(p) * s + t;
      const auto surplus = sc.proc_count[seg] - choice[p][t];
      for (std::int64_t i = 0; i < surplus; ++i) {
        evicted_by_class[t].push_back(
            sc.class_jobs[sc.class_off[seg] + static_cast<std::size_t>(i)]);
      }
    }
    const auto [trim_cost, trim_count] =
        small_trim(sc, p, vmax[p] * d.u + d.u);
    (void)trim_cost;
    for (std::size_t i = 0; i < trim_count; ++i) {
      evicted_smalls.push_back(sc.smalls[sc.small_off[p] + i]);
    }
    small_load[p] =
        sc.small_total[p] -
        (trim_count == 0
             ? 0
             : sc.small_size_prefix[sc.small_off[p] + trim_count - 1]);
  }
  // Phase 2: fill large-class deficits from the per-class pools.
  std::vector<std::size_t> pool_next(s, 0);
  for (ProcId p = 0; p < m; ++p) {
    for (std::size_t t = 0; t < s; ++t) {
      const std::size_t seg = static_cast<std::size_t>(p) * s + t;
      const auto deficit = choice[p][t] - sc.proc_count[seg];
      for (std::int64_t i = 0; i < deficit; ++i) {
        assert(pool_next[t] < evicted_by_class[t].size());
        assignment[evicted_by_class[t][pool_next[t]++]] = p;
      }
    }
  }
  for (std::size_t t = 0; t < s; ++t) {
    assert(pool_next[t] == evicted_by_class[t].size());
  }
  // Phase 3: evicted smalls go to any processor below its granted small
  // capacity vmax*u (one always exists; see header).
  std::sort(evicted_smalls.begin(), evicted_smalls.end(),
            [&](JobId a, JobId b) {
              if (instance.sizes[a] != instance.sizes[b]) {
                return instance.sizes[a] > instance.sizes[b];
              }
              return a < b;
            });
  for (JobId j : evicted_smalls) {
    if (instance.sizes[j] == 0) {
      assignment[j] = instance.initial[j];  // zero-size: place back, free
      continue;
    }
    bool placed = false;
    for (ProcId p = 0; p < m; ++p) {
      if (small_load[p] < vmax[p] * d.u) {
        small_load[p] += instance.sizes[j];
        assignment[j] = p;
        placed = true;
        break;
      }
    }
    assert(placed);
    if (!placed) return out;  // defensive; cannot happen per the invariant
  }
  out.assignment = std::move(assignment);
  out.constructed = true;
  return out;
}

}  // namespace

double ptas_delta(double eps) {
  // delta chosen so that (1 + 3*delta) * (1 + delta) <= 1 + eps, i.e. the
  // construction slack times the guess granularity stays within the target.
  const double delta = (std::sqrt(16.0 + 12.0 * eps) - 4.0) / 6.0;
  return std::min(delta, 1.0);
}

Size ptas_scan_start(const Instance& instance, Cost budget) {
  return std::max({max_job_bound(instance), average_load_bound(instance),
                   budget_removal_bound(instance, budget), Size{1}});
}

Size ptas_next_guess(Size guess, double delta) {
  const auto stepped = static_cast<Size>(
      std::ceil(static_cast<double>(guess) * (1.0 + delta)));
  return std::max(guess + 1, stepped);
}

Size ptas_scan_stop(const Instance& instance) {
  return 2 * std::max<Size>(instance.initial_makespan(), Size{1}) + 2;
}

void PtasScratch::warm(std::size_t max_jobs, ProcId max_procs,
                       std::size_t max_classes) {
  const std::size_t segs = static_cast<std::size_t>(max_procs) * max_classes;
  job_class.reserve(max_jobs);
  totals.reserve(max_classes);
  class_size.reserve(max_classes);
  proc_count.reserve(segs);
  class_jobs.reserve(max_jobs);
  class_off.reserve(segs + 1);
  class_prefix.reserve(max_jobs + segs + 1);
  prefix_off.reserve(segs + 1);
  smalls.reserve(max_jobs);
  small_off.reserve(static_cast<std::size_t>(max_procs) + 1);
  small_size_prefix.reserve(max_jobs);
  small_cost_prefix.reserve(max_jobs);
  small_total.reserve(max_procs);
  cursor.reserve(segs + max_procs);
  if (layers.size() < static_cast<std::size_t>(max_procs) + 1) {
    layers.resize(static_cast<std::size_t>(max_procs) + 1);
  }
  rem.reserve(max_classes + 1);
  next_vals.reserve(max_classes + 1);
  tail_min.reserve(max_classes + 1);
  key_words.reserve(8);
  maxima.reserve(max_classes + 1);
}

PtasGuessOutcome ptas_probe_guess(const Instance& instance, Size guess,
                                  double eps, Cost budget,
                                  std::size_t state_limit, PtasScratch& scratch,
                                  bool reconstruct) {
  return run_guess(instance, guess, ptas_delta(eps), budget, state_limit,
                   scratch, reconstruct);
}

PtasResult ptas_rebalance(const Instance& instance,
                          const PtasOptions& options) {
  PtasScratch scratch;
  return ptas_rebalance(instance, options, scratch);
}

PtasResult ptas_rebalance(const Instance& instance, const PtasOptions& options,
                          PtasScratch& scratch) {
  assert(options.eps > 0);
  assert(options.budget >= 0);
  const double delta = ptas_delta(options.eps);

  PtasResult result;
  result.result = no_move_result(instance);
  if (instance.num_jobs() == 0) {
    result.success = true;
    return result;
  }

  Size guess = ptas_scan_start(instance, options.budget);
  const Size hard_stop = ptas_scan_stop(instance);
  while (guess <= hard_stop) {
    ++result.guesses_evaluated;
    auto outcome = run_guess(instance, guess, delta, options.budget,
                             options.state_limit, scratch,
                             /*want_assignment=*/true);
    result.states = outcome.states;
    if (!outcome.within_limit) {
      result.success = false;
      return result;
    }
    if (outcome.constructed && outcome.cost <= options.budget) {
      result.success = true;
      result.accepted_guess = guess;
      result.result =
          finalize_result(instance, std::move(outcome.assignment), guess);
      assert(result.result.cost <= options.budget);
      return result;
    }
    guess = ptas_next_guess(guess, delta);
  }
  // The identity plan is representable at guess >= the initial makespan, so
  // reaching here indicates a logic error for sane inputs.
  assert(false && "PTAS guess scan exhausted");
  return result;
}

PtasResult ptas_rebalance_parallel(const Instance& instance,
                                   const PtasOptions& options, ThreadPool& pool,
                                   std::size_t wave) {
  std::vector<PtasScratch> scratches;
  return ptas_rebalance_parallel(instance, options, pool, scratches, wave);
}

PtasResult ptas_rebalance_parallel(const Instance& instance,
                                   const PtasOptions& options, ThreadPool& pool,
                                   std::vector<PtasScratch>& scratches,
                                   std::size_t wave) {
  assert(options.eps > 0);
  assert(options.budget >= 0);
  const double delta = ptas_delta(options.eps);

  PtasResult result;
  result.result = no_move_result(instance);
  if (instance.num_jobs() == 0) {
    result.success = true;
    return result;
  }
  if (wave == 0) wave = std::max<std::size_t>(2 * pool.size(), 2);
  if (scratches.size() < wave) scratches.resize(wave);

  Size guess = ptas_scan_start(instance, options.budget);
  const Size hard_stop = ptas_scan_stop(instance);
  std::vector<Size> guesses;
  std::vector<PtasGuessOutcome> outcomes;
  while (guess <= hard_stop) {
    // Next `wave` guesses of the serial sequence, evaluated speculatively.
    guesses.clear();
    while (guess <= hard_stop && guesses.size() < wave) {
      guesses.push_back(guess);
      guess = ptas_next_guess(guess, delta);
    }
    outcomes.assign(guesses.size(), PtasGuessOutcome{});
    parallel_for(pool, 0, guesses.size(), [&](std::size_t i) {
      // Wave slot i always uses scratches[i]: deterministic reuse no matter
      // which worker runs the slot.
      outcomes[i] = run_guess(instance, guesses[i], delta, options.budget,
                              options.state_limit, scratches[i],
                              /*want_assignment=*/true);
    });
    // Process outcomes in sequence order: the first decisive one wins,
    // exactly as the serial scan would have decided, and later speculative
    // evaluations are discarded (they never count towards the stats).
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      ++result.guesses_evaluated;
      result.states = outcomes[i].states;
      if (!outcomes[i].within_limit) {
        result.success = false;
        return result;
      }
      if (outcomes[i].constructed && outcomes[i].cost <= options.budget) {
        result.success = true;
        result.accepted_guess = guesses[i];
        result.result = finalize_result(
            instance, std::move(outcomes[i].assignment), guesses[i]);
        assert(result.result.cost <= options.budget);
        return result;
      }
    }
  }
  assert(false && "PTAS guess scan exhausted");
  return result;
}

}  // namespace lrb
