// Budget-aware local search: a post-optimization pass over any rebalancing
// solution. The paper's algorithms stop once their guarantee is met
// (M-PARTITION in particular often leaves budget unused - see the tight
// example, where it provably makes no moves at ratio 1.5); this pass spends
// the remaining budget on strictly-improving relocations and swaps.
//
// Move accounting is against the ORIGINAL initial assignment: re-routing an
// already-moved job costs nothing extra, and sending a moved job home
// refunds its move/cost. The search only ever reduces the makespan and
// never exceeds the budgets, so "algorithm + local search" inherits the
// algorithm's approximation guarantee.

#pragma once

#include <cstdint>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct LocalSearchOptions {
  std::int64_t max_moves = kInfSize;  ///< total moves allowed (vs initial)
  Cost budget = kInfCost;             ///< total relocation cost allowed
  int max_rounds = 256;               ///< hard cap on improvement rounds
};

struct LocalSearchStats {
  int rounds = 0;           ///< improving rounds applied
  std::int64_t relocations = 0;  ///< single-job improving steps
  std::int64_t swaps = 0;        ///< pairwise improving steps
};

/// Improves `start` in place-semantics (returns a new result). The returned
/// makespan is <= start.makespan, moves <= max_moves, cost <= budget.
/// `start` must itself satisfy the budgets.
[[nodiscard]] RebalanceResult local_search_improve(
    const Instance& instance, const RebalanceResult& start,
    const LocalSearchOptions& options, LocalSearchStats* stats = nullptr);

/// Convenience: M-PARTITION followed by local search under the same k.
[[nodiscard]] RebalanceResult m_partition_ls_rebalance(const Instance& instance,
                                                       std::int64_t k);

}  // namespace lrb
