#include "algo/cost_greedy.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lrb {

RebalanceResult cost_greedy_rebalance(const Instance& instance, Cost budget) {
  assert(budget >= 0);
  Assignment assignment = instance.initial;
  std::vector<Size> load = instance.initial_loads();
  Cost spent = 0;

  // Bounded by n moves: each accepted move relocates a distinct job (moving
  // a job twice is never chosen because the second move would have to
  // strictly improve again from its new home, which the loop re-evaluates
  // on fresh loads - still possible in principle, so cap iterations).
  const std::size_t max_steps = 4 * instance.num_jobs() + 16;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const ProcId peak = static_cast<ProcId>(
        std::max_element(load.begin(), load.end()) - load.begin());
    const ProcId valley = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    if (peak == valley) break;

    // Best affordable job on the peak: maximize size/cost; the move must
    // leave the valley strictly below the old peak.
    JobId best = 0;
    bool found = false;
    double best_leverage = -1.0;
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      if (assignment[j] != peak || instance.sizes[j] == 0) continue;
      // Refund accounting: moving a job back toward its initial home can
      // only happen if peak == initial, in which case cost is 0 already.
      const Cost price =
          valley == instance.initial[j] ? -instance.move_costs[j]
          : assignment[j] == instance.initial[j] ? instance.move_costs[j]
                                                 : 0;
      if (spent + price > budget) continue;
      if (load[valley] + instance.sizes[j] >= load[peak]) continue;
      const double leverage =
          static_cast<double>(instance.sizes[j]) /
          static_cast<double>(std::max<Cost>(1, instance.move_costs[j]));
      if (!found || leverage > best_leverage) {
        best = static_cast<JobId>(j);
        best_leverage = leverage;
        found = true;
      }
    }
    if (!found) break;
    const Cost price =
        valley == instance.initial[best] ? -instance.move_costs[best]
        : assignment[best] == instance.initial[best] ? instance.move_costs[best]
                                                     : 0;
    spent += price;
    load[peak] -= instance.sizes[best];
    load[valley] += instance.sizes[best];
    assignment[best] = valley;
  }

  auto result = finalize_result(instance, std::move(assignment));
  assert(result.cost <= budget);
  assert(result.cost == spent);
  return result;
}

}  // namespace lrb
