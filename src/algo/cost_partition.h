// PARTITION for arbitrary relocation costs (SPAA'03 §3.2): minimize the
// makespan subject to a total relocation budget B, achieving a factor of
// 1.5 * (1 + eps) * (1 + alpha) where eps is the knapsack relaxation and
// alpha the geometric guess step.
//
// At a makespan guess A, a_i / b_i become minimum-COST removals computed by
// knapsack ("keep the maximum-cost subset under the load cap"):
//   a_i: remove all large jobs except the single costliest one, plus small
//        jobs so the remaining small total is <= A/2;
//   b_i: remove any jobs so the remaining total is <= A (the kept set can
//        contain at most one large job since two would exceed A).
// The L_T processors with smallest c_i = a_i - b_i execute their a_i plan,
// the rest their b_i plan; evicted large jobs go to distinct large-free
// selected processors, evicted small jobs go to the min-loaded processor.
// The guess is accepted once the planned removal cost is within B; at any
// A >= OPT the plan never costs more than the optimal budget-B schedule
// (Lemma 7), so the accepted guess is at most (1 + alpha) * OPT.

#pragma once

#include <cstddef>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

struct CostPartitionOptions {
  Cost budget = 0;      ///< the paper's B
  double eps = 0.05;    ///< knapsack size relaxation (0 => exact when small)
  double alpha = 0.02;  ///< geometric step between makespan guesses
  std::size_t max_knapsack_cells = std::size_t{1} << 22;
};

struct CostPartitionStats {
  Size accepted_guess = 0;
  Cost planned_cost = 0;  ///< sum of executed a_i / b_i plans (>= actual)
  std::size_t guesses_evaluated = 0;
};

/// Runs the §3.2 algorithm. The returned solution always has
/// relocation cost <= budget.
[[nodiscard]] RebalanceResult cost_partition_rebalance(
    const Instance& instance, const CostPartitionOptions& options,
    CostPartitionStats* stats = nullptr);

}  // namespace lrb
