// Candidate OPT thresholds for M-PARTITION (SPAA'03 §3.1, Lemma 5).
//
// PARTITION's behaviour at a guess T depends only on:
//   - which jobs are large (size strictly > T/2),
//   - each processor's a_i (small jobs to drop so the remaining small total
//     is <= T/2),
//   - each processor's b_i (jobs to drop so the remaining total is <= T).
//
// With per-processor sizes q_1 <= ... <= q_r and prefix sums S_l, the small
// set at T is exactly an ascending-size prefix, so every change point of
// (L_T, a_i, b_i) is one of:
//   2*q_j   (job j flips small <-> large),
//   S_l     (b_i steps: the longest prefix with sum <= T grows),
//   2*S_l   (a_i steps: the longest small prefix with sum <= T/2 grows).
// That is at most 3n values (Lemma 5 gives the same bound).

#pragma once

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace lrb {

/// All candidate thresholds, sorted ascending and deduplicated.
/// PARTITION's execution is constant for T between consecutive candidates.
[[nodiscard]] std::vector<Size> candidate_thresholds(const Instance& instance);

/// One change point of the M-PARTITION scan: at threshold `value` the scan
/// state (L_T, a_i, b_i) of processor `proc` may step.
struct ThresholdEvent {
  Size value;
  ProcId proc;
};

/// Appends every change point of one processor that lies strictly above
/// `floor`, given its ascending job sizes and their prefix sums: 2*q_j
/// (large/small flip), S_l (b_i step), 2*S_l (a_i step) — Lemma 5's <= 3n
/// candidates across all processors. Values are appended unsorted.
void append_threshold_events(std::span<const Size> sizes_asc,
                             std::span<const Size> prefix, ProcId proc,
                             Size floor, std::vector<ThresholdEvent>& out);

}  // namespace lrb
