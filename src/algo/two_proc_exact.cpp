#include "algo/two_proc_exact.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace lrb {

std::optional<RebalanceResult> two_proc_exact_rebalance(
    const Instance& instance, std::int64_t k, std::size_t max_cells) {
  assert(k >= 0);
  if (instance.num_procs != 2) return std::nullopt;
  const std::size_t n = instance.num_jobs();
  const Size total = instance.total_size();
  const auto width = static_cast<std::size_t>(total) + 1;
  if (n > 0 && width * n > max_cells) return std::nullopt;

  constexpr std::int32_t kUnreachable = std::numeric_limits<std::int32_t>::max();
  // moves_to[x]: min #moves so that the processed prefix of jobs
  // contributes exactly x to processor 0's load.
  std::vector<std::int32_t> moves_to(width, kUnreachable);
  moves_to[0] = 0;
  // choice[j * width + x] = 1 iff job j goes to processor 0 on the optimal
  // path reaching prefix-load x after processing job j.
  std::vector<char> choice(n * width, 0);

  for (std::size_t j = 0; j < n; ++j) {
    const auto s = static_cast<std::size_t>(instance.sizes[j]);
    const std::int32_t stay0 = instance.initial[j] == 0 ? 0 : 1;
    const std::int32_t stay1 = instance.initial[j] == 1 ? 0 : 1;
    std::vector<std::int32_t> next(width, kUnreachable);
    char* row = choice.data() + j * width;
    for (std::size_t x = 0; x < width; ++x) {
      if (moves_to[x] == kUnreachable) continue;
      // Option A: job j on processor 1 (prefix load unchanged).
      if (moves_to[x] + stay1 < next[x]) {
        next[x] = moves_to[x] + stay1;
        row[x] = 0;
      }
      // Option B: job j on processor 0.
      const std::size_t y = x + s;
      if (y < width && moves_to[x] + stay0 < next[y]) {
        next[y] = moves_to[x] + stay0;
        row[y] = 1;
      }
    }
    moves_to.swap(next);
  }

  // Best reachable X within the move budget.
  Size best_makespan = kInfSize;
  std::size_t best_x = 0;
  for (std::size_t x = 0; x < width; ++x) {
    if (moves_to[x] == kUnreachable || moves_to[x] > k) continue;
    const Size makespan =
        std::max<Size>(static_cast<Size>(x), total - static_cast<Size>(x));
    if (makespan < best_makespan) {
      best_makespan = makespan;
      best_x = x;
    }
  }
  assert(best_makespan < kInfSize);  // the identity is always reachable

  // Reconstruct the assignment by walking the choice rows backwards.
  Assignment assignment(n, 0);
  std::size_t x = best_x;
  for (std::size_t j = n; j-- > 0;) {
    if (choice[j * width + x] != 0) {
      assignment[j] = 0;
      x -= static_cast<std::size_t>(instance.sizes[j]);
    } else {
      assignment[j] = 1;
    }
  }
  assert(x == 0);
  auto result = finalize_result(instance, std::move(assignment));
  assert(result.makespan == best_makespan);
  assert(result.moves <= k);
  return result;
}

}  // namespace lrb
