#include "algo/rebalancer.h"

#include "algo/greedy.h"
#include "algo/lpt.h"
#include "algo/m_partition.h"

namespace lrb {

RebalanceResult best_of_rebalance(const Instance& instance, std::int64_t k) {
  auto greedy = greedy_rebalance(instance, k);
  auto partition = m_partition_rebalance(instance, k);
  return partition.makespan <= greedy.makespan ? std::move(partition)
                                               : std::move(greedy);
}

std::vector<NamedRebalancer> standard_rebalancers() {
  return {
      {"none",
       [](const Instance& inst, std::int64_t) { return no_move_result(inst); }},
      {"greedy",
       [](const Instance& inst, std::int64_t k) {
         return greedy_rebalance(inst, k);
       }},
      {"m-partition",
       [](const Instance& inst, std::int64_t k) {
         return m_partition_rebalance(inst, k);
       }},
      {"best-of",
       [](const Instance& inst, std::int64_t k) {
         return best_of_rebalance(inst, k);
       }},
      {"lpt-full",
       [](const Instance& inst, std::int64_t) { return lpt_schedule(inst); }},
  };
}

}  // namespace lrb
