#include "algo/local_search.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "algo/m_partition.h"

namespace lrb {
namespace {

struct State {
  const Instance& inst;
  Assignment assignment;
  std::vector<Size> load;
  std::int64_t moves;
  Cost cost;

  explicit State(const Instance& instance, const RebalanceResult& start)
      : inst(instance),
        assignment(start.assignment),
        load(loads(instance, start.assignment)),
        moves(start.moves),
        cost(start.cost) {}

  /// Move-count / cost deltas of rerouting job j to processor q.
  [[nodiscard]] std::int64_t move_delta(JobId j, ProcId q) const {
    const bool was_moved = assignment[j] != inst.initial[j];
    const bool will_move = q != inst.initial[j];
    return (will_move ? 1 : 0) - (was_moved ? 1 : 0);
  }
  [[nodiscard]] Cost cost_delta(JobId j, ProcId q) const {
    return static_cast<Cost>(move_delta(j, q)) * inst.move_costs[j];
  }

  void apply(JobId j, ProcId q) {
    moves += move_delta(j, q);
    cost += cost_delta(j, q);
    load[assignment[j]] -= inst.sizes[j];
    load[q] += inst.sizes[j];
    assignment[j] = q;
  }
};

}  // namespace

RebalanceResult local_search_improve(const Instance& instance,
                                     const RebalanceResult& start,
                                     const LocalSearchOptions& options,
                                     LocalSearchStats* stats) {
  assert(start.moves <= options.max_moves);
  assert(start.cost <= options.budget);
  State state(instance, start);
  LocalSearchStats local;

  // Jobs per current processor, maintained lazily (rebuilt each round; the
  // round count is small and bounded).
  for (int round = 0; round < options.max_rounds; ++round) {
    const ProcId peak = static_cast<ProcId>(
        std::max_element(state.load.begin(), state.load.end()) -
        state.load.begin());
    const Size peak_load = state.load[peak];
    if (peak_load == 0) break;

    std::vector<JobId> on_peak;
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      if (state.assignment[j] == peak && instance.sizes[j] > 0) {
        on_peak.push_back(static_cast<JobId>(j));
      }
    }

    // --- single-job relocations: j leaves the peak, lands strictly below
    // the old peak load, budgets permitting. Choose the lowest landing.
    JobId best_job = 0;
    ProcId best_target = kNoProc;
    Size best_landing = peak_load;
    for (JobId j : on_peak) {
      for (ProcId q = 0; q < instance.num_procs; ++q) {
        if (q == peak) continue;
        const Size landing = state.load[q] + instance.sizes[j];
        if (landing >= peak_load) continue;
        if (state.moves + state.move_delta(j, q) > options.max_moves) continue;
        if (state.cost + state.cost_delta(j, q) > options.budget) continue;
        if (landing < best_landing ||
            (landing == best_landing && best_target != kNoProc &&
             state.move_delta(j, q) < state.move_delta(best_job, best_target))) {
          best_job = j;
          best_target = q;
          best_landing = landing;
        }
      }
    }
    if (best_target != kNoProc) {
      state.apply(best_job, best_target);
      ++local.relocations;
      ++local.rounds;
      continue;
    }

    // --- swaps: big job off the peak for a smaller one from elsewhere;
    // both ends must finish strictly below the old peak.
    JobId swap_a = 0, swap_b = 0;
    ProcId swap_q = kNoProc;
    Size best_worst = peak_load;
    for (JobId a : on_peak) {
      for (std::size_t b = 0; b < instance.num_jobs(); ++b) {
        const ProcId q = state.assignment[b];
        if (q == peak) continue;
        const JobId jb = static_cast<JobId>(b);
        if (instance.sizes[a] <= instance.sizes[jb]) continue;
        const Size new_peak =
            peak_load - instance.sizes[a] + instance.sizes[jb];
        const Size new_other =
            state.load[q] - instance.sizes[jb] + instance.sizes[a];
        const Size worst = std::max(new_peak, new_other);
        if (worst >= peak_load) continue;
        const std::int64_t dm =
            state.move_delta(a, q) + state.move_delta(jb, peak);
        const Cost dc = state.cost_delta(a, q) + state.cost_delta(jb, peak);
        if (state.moves + dm > options.max_moves) continue;
        if (state.cost + dc > options.budget) continue;
        if (worst < best_worst) {
          best_worst = worst;
          swap_a = a;
          swap_b = jb;
          swap_q = q;
        }
      }
    }
    if (swap_q != kNoProc) {
      state.apply(swap_a, swap_q);
      state.apply(swap_b, peak);
      ++local.swaps;
      ++local.rounds;
      continue;
    }
    break;  // no improving step
  }

  if (stats != nullptr) *stats = local;
  auto result = finalize_result(instance, std::move(state.assignment),
                                start.threshold);
  assert(result.makespan <= start.makespan);
  assert(result.moves <= options.max_moves);
  assert(result.cost <= options.budget);
  return result;
}

RebalanceResult m_partition_ls_rebalance(const Instance& instance,
                                         std::int64_t k) {
  const auto base = m_partition_rebalance(instance, k);
  LocalSearchOptions options;
  options.max_moves = k;
  return local_search_improve(instance, base, options);
}

}  // namespace lrb
