// A natural cost-aware greedy baseline for the budgeted problem (§3.2's
// setting): repeatedly move the job with the best size-per-cost leverage off
// the heaviest processor onto the lightest one, while the budget lasts. No
// worst-case guarantee (unlike cost-PARTITION's 1.5(1+eps)) - it exists so
// the experiment tables can show what the sophisticated algorithm buys.

#pragma once

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// Budgeted greedy: at each step, from the currently max-loaded processor,
/// choose the affordable job maximizing size/cost whose relocation to the
/// min-loaded processor strictly lowers that processor pair's peak; stop
/// when no affordable improving move exists. Cost never exceeds `budget`.
[[nodiscard]] RebalanceResult cost_greedy_rebalance(const Instance& instance,
                                                    Cost budget);

}  // namespace lrb
