// Graham's list scheduling / LPT [Graham 1966], the classical makespan
// heuristics the paper builds on. These ignore the initial assignment (they
// solve the k = n "full rebalance" problem) and serve as the unconstrained
// baseline in the experiment suite.

#pragma once

#include <span>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// Longest Processing Time first: sort jobs descending, place each on the
/// currently least-loaded processor. 4/3 - 1/(3m) approximation for
/// unconstrained makespan; O(n log n).
[[nodiscard]] RebalanceResult lpt_schedule(const Instance& instance);

/// Graham's online list scheduling in the given order (2 - 1/m approx).
/// `order` must be a permutation of all job ids.
[[nodiscard]] RebalanceResult list_schedule(const Instance& instance,
                                            std::span<const JobId> order);

}  // namespace lrb
