#include "algo/thresholds.h"

#include <algorithm>

namespace lrb {

std::vector<Size> candidate_thresholds(const Instance& instance) {
  std::vector<Size> candidates;
  candidates.reserve(3 * instance.num_jobs() + 1);
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      return instance.sizes[a] < instance.sizes[b];
    });
    Size prefix = 0;
    for (JobId j : jobs) {
      const Size s = instance.sizes[j];
      prefix += s;
      candidates.push_back(2 * s);      // classification flip
      candidates.push_back(prefix);     // b_i step
      candidates.push_back(2 * prefix); // a_i step
    }
  }
  candidates.push_back(0);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace lrb
