#include "algo/thresholds.h"

#include <algorithm>
#include <cassert>

namespace lrb {

void append_threshold_events(std::span<const Size> sizes_asc,
                             std::span<const Size> prefix, ProcId proc,
                             Size floor, std::vector<ThresholdEvent>& out) {
  assert(sizes_asc.size() == prefix.size());
  for (std::size_t l = 0; l < sizes_asc.size(); ++l) {
    const Size flip = 2 * sizes_asc[l];
    const Size bstep = prefix[l];
    const Size astep = 2 * prefix[l];
    if (flip > floor) out.push_back({flip, proc});
    if (bstep > floor) out.push_back({bstep, proc});
    if (astep > floor) out.push_back({astep, proc});
  }
}

std::vector<Size> candidate_thresholds(const Instance& instance) {
  std::vector<Size> candidates;
  candidates.reserve(3 * instance.num_jobs() + 1);
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      return instance.sizes[a] < instance.sizes[b];
    });
    Size prefix = 0;
    for (JobId j : jobs) {
      const Size s = instance.sizes[j];
      prefix += s;
      candidates.push_back(2 * s);      // classification flip
      candidates.push_back(prefix);     // b_i step
      candidates.push_back(2 * prefix); // a_i step
    }
  }
  candidates.push_back(0);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace lrb
