// A uniform facade over the unit-cost rebalancing algorithms, plus a
// registry used by the quality benches and the simulator's policy layer.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

/// A named k-move rebalancer: produces a solution relocating at most k jobs.
struct NamedRebalancer {
  std::string name;
  std::function<RebalanceResult(const Instance&, std::int64_t k)> run;
};

/// The library's standard algorithm roster:
///   "none"        - identity (k ignored)
///   "greedy"      - §2 GREEDY, 2 - 1/m approximation
///   "m-partition" - §3.1 M-PARTITION, 1.5 approximation
///   "best-of"     - better of greedy and m-partition
///   "lpt-full"    - Graham LPT ignoring the move budget (quality ceiling,
///                   moves unbounded; included for reference curves only)
[[nodiscard]] std::vector<NamedRebalancer> standard_rebalancers();

/// Better makespan of GREEDY and M-PARTITION (both within the k budget).
[[nodiscard]] RebalanceResult best_of_rebalance(const Instance& instance,
                                                std::int64_t k);

}  // namespace lrb
