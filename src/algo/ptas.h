// The PTAS for load rebalancing with arbitrary relocation costs and budget B
// (SPAA'03 §4): returns a solution of relocation cost <= B whose makespan is
// at most (1 + eps) * OPT(B), in time polynomial for fixed eps (but heavily
// exponential in 1/eps - use small instances or coarse eps).
//
// Implementation follows the paper's discretized dynamic program with one
// exact simplification: the paper's DP chooses each processor's rounded
// small-load capacity V' explicitly and threads an exact global budget V
// through the state. Since removal cost is non-increasing in V' and larger
// capacity only helps the final small-job placement, the maximal feasible
// capacity V'max = (W - sum of large class sizes) / u dominates every other
// choice; the V dimension therefore collapses to a saturating "small-load
// still to cover" counter. This changes no guarantee (our DP cost is <= the
// paper's DP cost, which is <= the optimal budget-B cost at a guess
// >= OPT-hat) and shrinks the state space considerably.
//
//   guess Â (geometric scan, step 1+delta, from certified lower bounds)
//   delta = eps / 5, u = max(1, floor(delta * Â)), W = (1 + 2*delta) * Â
//   large jobs (> delta * Â) round UP into classes L_t = ceil(delta*(1+delta)^t * Â)
//   DP over processors: state = (remaining class counts, remaining small
//   cover need); per processor enumerate class vectors with sum L <= W,
//   charge greedy removal cost (cheapest jobs per class; small jobs by
//   ascending cost/size ratio down to V'max*u + u).
//
// Final loads are <= W + u = (1 + 3*delta) * Â <= (1 + eps) * OPT for the
// accepted guess (Lemma 11 plus the guess granularity).
//
// Engine notes (see docs/performance.md, "PTAS state representation"): DP
// states are packed fixed-width integer keys (util/packed_key.h) living in
// per-layer arenas indexed by a flat open-addressing table
// (util/flat_hash.h); nodes carry only a cost and a uint32 parent index,
// and the per-processor choice vector is re-derived during reconstruction
// by differencing adjacent state keys. The class-vector enumeration is
// incremental branch-and-bound: partial eviction cost plus an optimistic
// remaining-classes bound prunes branches whose every completion would
// exceed the budget - exactly the transitions the unpruned DP would reject,
// so acceptance decisions, costs, state counts, and reconstructed
// assignments are bit-identical to the retained reference implementation
// (check/ptas_reference.h). Iteration over a layer is in state insertion
// order, which both engines share; that order is the determinism contract
// the differential suite (tools/lrb_fuzz --algo ptas) enforces.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/flat_hash.h"
#include "util/packed_key.h"

namespace lrb {

class ThreadPool;

struct PtasOptions {
  Cost budget = kInfCost;  ///< the paper's B; kInfCost = unconstrained
  double eps = 1.0;        ///< target guarantee (1 + eps)
  std::size_t state_limit = 2'000'000;  ///< sparse-DP safety valve
};

struct PtasResult {
  /// False iff the state limit was exceeded (instance too large for the
  /// chosen eps); `result` is then the best fallback (identity).
  bool success = false;
  RebalanceResult result;
  Size accepted_guess = 0;
  std::size_t states = 0;         ///< DP states materialized (last guess)
  std::size_t guesses_evaluated = 0;
};

/// Reusable working memory for the PTAS DP. Every per-guess buffer -
/// classification, per-processor flattened class/small data, key codec,
/// layer arenas, hash tables, and enumeration temporaries - lives here, so
/// a warmed scratch makes the steady-state guess scan allocation-free: the
/// first solve of a given shape grows the arenas, repeats reuse them (the
/// same discipline as MPartitionScratch; the accepted guess's one-off
/// assignment reconstruction still allocates the returned solution).
struct PtasScratch {
  // ---- classification ----
  std::vector<std::int32_t> job_class;   ///< class of each job (-1 small)
  std::vector<std::int64_t> totals;      ///< global class counts
  std::vector<Size> class_size;          ///< rounded class ceilings L_t
  // ---- per-processor flattened segments ----
  std::vector<std::int64_t> proc_count;  ///< m*s large counts x_p[t]
  std::vector<JobId> class_jobs;         ///< large jobs by (proc, class, cost)
  std::vector<std::size_t> class_off;    ///< m*s+1 segment boundaries
  std::vector<Cost> class_prefix;        ///< per-segment eviction prefix sums
  std::vector<std::size_t> prefix_off;   ///< m*s+1 prefix segment boundaries
  std::vector<JobId> smalls;             ///< small jobs by (proc, cost/size)
  std::vector<std::size_t> small_off;    ///< m+1 segment boundaries
  std::vector<Size> small_size_prefix;
  std::vector<Cost> small_cost_prefix;
  std::vector<Size> small_total;         ///< m per-processor small loads
  std::vector<std::size_t> cursor;       ///< counting-sort fill positions
  // ---- DP state storage ----
  PackedKeyCodec codec;
  struct DpLayer {
    std::vector<std::uint64_t> keys;   ///< codec.words() words per state
    std::vector<Cost> cost;
    std::vector<std::uint32_t> parent; ///< index into the previous layer
    FlatIndexTable table;
  };
  std::vector<DpLayer> layers;           ///< m+1, reused across guesses
  // ---- enumeration temporaries ----
  std::vector<std::int64_t> rem;         ///< decoded source state
  std::vector<std::int64_t> next_vals;   ///< child state fields being built
  std::vector<Cost> tail_min;            ///< optimistic eviction cost suffix
  std::vector<std::uint64_t> key_words;
  std::vector<std::int64_t> maxima;      ///< codec planning input

  /// Pre-sizes the per-job / per-processor buffers for instances up to
  /// (max_jobs, max_procs) with up to `max_classes` large-size classes
  /// (~48 covers eps >= 0.25). DP layer arenas size themselves on first
  /// use and are retained, so repeat solves stay allocation-free.
  void warm(std::size_t max_jobs, ProcId max_procs,
            std::size_t max_classes = 48);
};

/// One DP guess evaluated in isolation - the unit the scan, the benchmark
/// harness (bench/bench_ptas), and the differential suite all speak.
struct PtasGuessOutcome {
  bool representable = false;  ///< guess >= max job and DP stayed in limits
  bool within_limit = true;
  bool constructed = false;    ///< assignment successfully reconstructed
  Cost cost = kInfCost;
  std::size_t states = 0;
  Assignment assignment;
};

[[nodiscard]] PtasResult ptas_rebalance(const Instance& instance,
                                        const PtasOptions& options);

/// Scratch-arena variant: bit-identical to the plain overload, but all DP
/// buffers live in (and are reused from) `scratch`.
[[nodiscard]] PtasResult ptas_rebalance(const Instance& instance,
                                        const PtasOptions& options,
                                        PtasScratch& scratch);

/// Wave-parallel guess scan over `pool`: the same deterministic guess
/// sequence is evaluated `wave` guesses at a time (0 = automatic, ~2 per
/// worker) and the speculative outcomes are processed in sequence order, so
/// the result — and every stats field — is bit-identical to ptas_rebalance
/// for any wave size and worker count.
[[nodiscard]] PtasResult ptas_rebalance_parallel(const Instance& instance,
                                                 const PtasOptions& options,
                                                 ThreadPool& pool,
                                                 std::size_t wave = 0);

/// Scratch variant of the wave-parallel scan: wave slot i always uses
/// `scratches[i]` (the vector is resized to the wave count), so per-worker
/// reuse is deterministic and repeat solves reuse warmed arenas.
[[nodiscard]] PtasResult ptas_rebalance_parallel(
    const Instance& instance, const PtasOptions& options, ThreadPool& pool,
    std::vector<PtasScratch>& scratches, std::size_t wave = 0);

// ---- test / bench / differential hooks ------------------------------------

/// The guess-granularity delta for a target eps:
/// (1 + 3*delta) * (1 + delta) <= 1 + eps.
[[nodiscard]] double ptas_delta(double eps);

/// First guess of the scan (certified lower bounds), its geometric
/// successor, and the scan's hard stop. Shared by the serial scan, the
/// wave-parallel scan, and the reference implementation so the three can
/// never drift apart.
[[nodiscard]] Size ptas_scan_start(const Instance& instance, Cost budget);
[[nodiscard]] Size ptas_next_guess(Size guess, double delta);
[[nodiscard]] Size ptas_scan_stop(const Instance& instance);

/// Evaluates a single guess of the DP. With `reconstruct` false the
/// accepted assignment is not rebuilt, which keeps the call allocation-free
/// within warmed scratch bounds (the property tests/test_ptas_dp.cpp
/// asserts with an allocation-counting hook).
[[nodiscard]] PtasGuessOutcome ptas_probe_guess(const Instance& instance,
                                                Size guess, double eps,
                                                Cost budget,
                                                std::size_t state_limit,
                                                PtasScratch& scratch,
                                                bool reconstruct = false);

}  // namespace lrb
