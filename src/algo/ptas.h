// The PTAS for load rebalancing with arbitrary relocation costs and budget B
// (SPAA'03 §4): returns a solution of relocation cost <= B whose makespan is
// at most (1 + eps) * OPT(B), in time polynomial for fixed eps (but heavily
// exponential in 1/eps - use small instances or coarse eps).
//
// Implementation follows the paper's discretized dynamic program with one
// exact simplification: the paper's DP chooses each processor's rounded
// small-load capacity V' explicitly and threads an exact global budget V
// through the state. Since removal cost is non-increasing in V' and larger
// capacity only helps the final small-job placement, the maximal feasible
// capacity V'max = (W - sum of large class sizes) / u dominates every other
// choice; the V dimension therefore collapses to a saturating "small-load
// still to cover" counter. This changes no guarantee (our DP cost is <= the
// paper's DP cost, which is <= the optimal budget-B cost at a guess
// >= OPT-hat) and shrinks the state space considerably.
//
//   guess Â (geometric scan, step 1+delta, from certified lower bounds)
//   delta = eps / 5, u = max(1, floor(delta * Â)), W = (1 + 2*delta) * Â
//   large jobs (> delta * Â) round UP into classes L_t = ceil(delta*(1+delta)^t * Â)
//   DP over processors: state = (remaining class counts, remaining small
//   cover need); per processor enumerate class vectors with sum L <= W,
//   charge greedy removal cost (cheapest jobs per class; small jobs by
//   ascending cost/size ratio down to V'max*u + u).
//
// Final loads are <= W + u = (1 + 3*delta) * Â <= (1 + eps) * OPT for the
// accepted guess (Lemma 11 plus the guess granularity).

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/assignment.h"
#include "core/instance.h"

namespace lrb {

class ThreadPool;

struct PtasOptions {
  Cost budget = kInfCost;  ///< the paper's B; kInfCost = unconstrained
  double eps = 1.0;        ///< target guarantee (1 + eps)
  std::size_t state_limit = 2'000'000;  ///< sparse-DP safety valve
};

struct PtasResult {
  /// False iff the state limit was exceeded (instance too large for the
  /// chosen eps); `result` is then the best fallback (identity).
  bool success = false;
  RebalanceResult result;
  Size accepted_guess = 0;
  std::size_t states = 0;         ///< DP states materialized (last guess)
  std::size_t guesses_evaluated = 0;
};

[[nodiscard]] PtasResult ptas_rebalance(const Instance& instance,
                                        const PtasOptions& options);

/// Wave-parallel guess scan over `pool`: the same deterministic guess
/// sequence is evaluated `wave` guesses at a time (0 = automatic, ~2 per
/// worker) and the speculative outcomes are processed in sequence order, so
/// the result — and every stats field — is bit-identical to ptas_rebalance
/// for any wave size and worker count.
[[nodiscard]] PtasResult ptas_rebalance_parallel(const Instance& instance,
                                                 const PtasOptions& options,
                                                 ThreadPool& pool,
                                                 std::size_t wave = 0);

}  // namespace lrb
