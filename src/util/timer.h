// Monotonic wall-clock stopwatch for the experiment harness.

#pragma once

#include <chrono>

namespace lrb {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lrb
