#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace lrb {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  // Compute the span in the unsigned domain: hi - lo would overflow the
  // signed type when the bounds straddle most of the int64 range.
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((*this)());
  }
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                       r % range);
    }
  }
}

double Rng::normal() noexcept {
  for (;;) {
    const double u = 2.0 * uniform01() - 1.0;
    const double v = 2.0 * uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -std::log(u) / rate;
}

double Rng::pareto(double alpha, double xmin) noexcept {
  assert(alpha > 0.0 && xmin > 0.0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xmin / std::pow(u, 1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lrb
