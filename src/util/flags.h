// A minimal command-line flag parser for the lrb tools: accepts
// "--key value" and "--key=value" pairs plus bare positional arguments.
// Unknown keys are collected so tools can reject typos explicitly.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lrb {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Keys that were parsed; lets a tool verify every flag was meaningful.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lrb
