// A flat open-addressing hash index over externally stored keys.
//
// FlatIndexTable maps 64-bit hashes to uint32_t payload indices with linear
// probing over a power-of-two slot array. It never stores keys itself: the
// caller keeps keys in its own arena (e.g. packed key words appended to a
// flat vector) and supplies two callables,
//
//   equals(index)  - does the stored key at `index` equal the probe key?
//   hash_of(index) - recompute the stored key's hash (used when growing),
//
// so the per-state overhead is exactly 4 bytes per slot at <= 0.7 load
// factor. reset() keeps the slot capacity, which makes repeat use (the DP
// layers of algo/ptas.*) allocation-free in steady state.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lrb {

class FlatIndexTable {
 public:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// Clears the table, pre-sizing for `expected` keys. Slot storage is
  /// reused when already large enough.
  void reset(std::size_t expected = 0) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap *= 2;
    if (slots_.size() < cap) {
      slots_.assign(cap, kEmpty);
    } else {
      std::fill(slots_.begin(), slots_.end(), kEmpty);
    }
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Looks up the key with hash `hash`; if absent, records `fresh` as its
  /// payload index. Returns {payload index, inserted}. `equals(i)` must
  /// answer "does payload i hold the probe key"; `hash_of(i)` must return
  /// payload i's hash (only called when the table grows).
  template <class EqFn, class HashOfFn>
  std::pair<std::uint32_t, bool> find_or_insert(std::uint64_t hash,
                                                std::uint32_t fresh,
                                                EqFn&& equals,
                                                HashOfFn&& hash_of) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow(hash_of);
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    for (;;) {
      const std::uint32_t stored = slots_[slot];
      if (stored == kEmpty) {
        slots_[slot] = fresh;
        ++size_;
        return {fresh, true};
      }
      if (equals(stored)) return {stored, false};
      slot = (slot + 1) & mask;
    }
  }

  /// Lookup only: returns the payload index or kEmpty.
  template <class EqFn>
  [[nodiscard]] std::uint32_t find(std::uint64_t hash, EqFn&& equals) const {
    if (slots_.empty()) return kEmpty;
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    for (;;) {
      const std::uint32_t stored = slots_[slot];
      if (stored == kEmpty || equals(stored)) return stored;
      slot = (slot + 1) & mask;
    }
  }

 private:
  template <class HashOfFn>
  void grow(HashOfFn&& hash_of) {
    scratch_.swap(slots_);
    slots_.assign(std::max<std::size_t>(scratch_.size() * 2, 16), kEmpty);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint32_t stored : scratch_) {
      if (stored == kEmpty) continue;
      std::size_t slot = static_cast<std::size_t>(hash_of(stored)) & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = stored;
    }
  }

  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> scratch_;  ///< old slots during growth
  std::size_t size_ = 0;
};

}  // namespace lrb
