#include "util/thread_pool.h"

#include <cassert>
#include <chrono>

namespace lrb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    assert(!stop_ && "submit() after shutdown");
    queue_.push(std::move(packaged));
  }
  cv_task_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++in_flight_;
  }
  task();
  {
    std::lock_guard lock(mutex_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();  // exceptions are captured into the packaged_task's future
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  std::vector<std::future<void>> futures;
  futures.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    futures.push_back(pool.submit([i, &body] { body(i); }));
  }
  // Help drain the queue while waiting. Without this, a pool task that
  // itself calls parallel_for would park its worker on futures whose tasks
  // can never be scheduled once every worker is parked the same way.
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool.try_run_one()) {
        // Queue empty: our iteration is running on another thread.
        f.wait();
      }
    }
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace lrb
