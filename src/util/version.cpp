#include "util/version.h"

#include <cstdio>

namespace lrb {

void print_version(const char* tool) {
#ifndef LRB_BUILD_TYPE
#define LRB_BUILD_TYPE "unknown"
#endif
#ifdef NDEBUG
  constexpr const char* kAsserts = "asserts off";
#else
  constexpr const char* kAsserts = "asserts on";
#endif
  std::printf("%s lrb/%s (%s, %s)\n", tool, kLrbVersion, LRB_BUILD_TYPE,
              kAsserts);
  std::printf("wire protocol: v%u (sessions: v%u)\n",
              static_cast<unsigned>(kWireVersion),
              static_cast<unsigned>(kWireVersionV2));
  std::printf("stats schema: %s\n", kStatsSchema);
  std::printf("bench schemas: %s %s %s %s %s\n", kEngineBenchSchema,
              kPtasBenchSchema, kSvcBenchSchema, kSvcBenchProfilesSchema,
              kCacheBenchSchema);
}

}  // namespace lrb
