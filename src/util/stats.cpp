#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lrb {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  OnlineStats acc;
  for (double v : sorted) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double geomean(std::span<const double> samples) {
  assert(!samples.empty());
  double log_sum = 0.0;
  for (double v : samples) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::string format_double(double v, int digits) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

}  // namespace lrb
