// Streaming and batch summary statistics used by the benchmark harness and
// the simulator's metric collection.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lrb {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples. Suitable for long simulation runs.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a sample vector, including exact percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary from the samples (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Exact percentile (linear interpolation between order statistics) of an
/// ALREADY SORTED sample vector. Total on all inputs so histogram
/// snapshots can call it unconditionally: an empty span yields 0.0, q
/// outside [0, 1] (including +-inf) is clamped to the nearest endpoint,
/// and a NaN q is treated as 0 (the minimum).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Geometric mean; all samples must be positive.
[[nodiscard]] double geomean(std::span<const double> samples);

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent. Used by the runtime-scaling experiment (E4) to verify the
/// O(n log n) claim (exponent close to 1 on an n-vs-time/(log n) plot).
[[nodiscard]] double loglog_slope(std::span<const double> x,
                                  std::span<const double> y);

/// Human-readable "1.23e+04"-free formatting used by the experiment tables:
/// trims trailing zeros, keeps `digits` significant digits.
[[nodiscard]] std::string format_double(double v, int digits = 4);

}  // namespace lrb
