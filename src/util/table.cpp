#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

#include "util/stats.h"

namespace lrb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

Table& Table::row() {
  assert(rows_.empty() || rows_.back().size() == header_.size());
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  assert(!rows_.empty());
  assert(rows_.back().size() < header_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(double v, int digits) { return add(format_double(v, digits)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(bool v) { return add(std::string(v ? "yes" : "no")); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace lrb
