// A small fixed-size thread pool with a blocking task queue and a
// parallel_for helper, used by the batch-solving engine (src/engine), the
// benchmark sweeps and the parallel fuzz driver.
//
// Design notes (C++ Core Guidelines CP.*): tasks are plain std::function
// thunks; submission after shutdown is a programmer error (asserted); the
// destructor joins all workers (draining any still-queued work first), so
// the pool is exception-safe to scope. parallel_for lets a blocked caller
// help drain the queue (try_run_one), which makes nested parallel_for calls
// issued from inside pool tasks deadlock-free: a worker waiting on inner
// iterations executes them itself instead of parking its slot.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lrb {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Runs one queued task on the calling thread if one is immediately
  /// available; returns false when the queue was empty. Lets blocked
  /// submitters contribute cycles instead of parking (see parallel_for).
  bool try_run_one();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool's workers, blocking
/// until all iterations complete. Iterations must be independent. The
/// calling thread helps drain the queue while it waits, so nesting
/// parallel_for inside a pool task cannot deadlock.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace lrb
