// A small fixed-size thread pool with a blocking task queue and a
// parallel_for helper, used by the benchmark sweeps to evaluate independent
// experiment cells concurrently.
//
// Design notes (C++ Core Guidelines CP.*): tasks are plain std::function
// thunks; submission after shutdown is a programmer error (asserted); the
// destructor joins all workers, so the pool is exception-safe to scope.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lrb {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool's workers, blocking
/// until all iterations complete. Iterations must be independent.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace lrb
