// Packed fixed-width integer keys for sparse dynamic programs.
//
// A PackedKeyCodec plans a bit layout for a tuple of non-negative integer
// fields with known inclusive maxima: field t gets bit_width(max_t) bits,
// packed LSB-first in field order across as many 64-bit words as needed.
// Class-count DP states (the PTAS of algo/ptas.*) need ceil(log2(n+1))
// bits per class, so a typical state fits one or two words where the old
// representation spent (s+1) * 8 bytes of std::string.
//
// When the tight layout overflows 128 bits the codec falls back to
// byte-aligned fields (each width rounded up to a multiple of 8) - the
// "small byte-array key" regime: slightly larger, but field extraction
// stays cheap and the encode/decode code path is identical. Both layouts
// are exact: encode/decode round-trips every value in range.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lrb {

/// Mixes `count` words into one 64-bit hash (splitmix64-style finalizer per
/// word). Deterministic across platforms and runs: no seeding.
[[nodiscard]] inline std::uint64_t hash_words(const std::uint64_t* words,
                                              std::size_t count) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t x = words[i] + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  return h;
}

class PackedKeyCodec {
 public:
  /// Plans a layout for fields with inclusive maxima `maxima` (all >= 0).
  /// Reuses internal storage: re-planning does not allocate once the field
  /// count has been seen before.
  void plan(std::span<const std::int64_t> maxima) {
    fields_.clear();
    std::size_t total_bits = 0;
    for (const std::int64_t max : maxima) {
      assert(max >= 0);
      total_bits += width_of(max);
    }
    byte_aligned_ = total_bits > 2 * 64;
    std::size_t bit = 0;
    for (const std::int64_t max : maxima) {
      std::uint32_t width = width_of(max);
      if (byte_aligned_) width = (width + 7u) & ~7u;
      fields_.push_back(Field{static_cast<std::uint32_t>(bit), width});
      bit += width;
    }
    words_ = bit == 0 ? 1 : (bit + 63) / 64;
  }

  [[nodiscard]] std::size_t words() const noexcept { return words_; }
  [[nodiscard]] std::size_t num_fields() const noexcept {
    return fields_.size();
  }
  /// True when the tight layout overflowed and byte-aligned fields are in
  /// use (the fallback regime).
  [[nodiscard]] bool byte_aligned() const noexcept { return byte_aligned_; }

  /// Encodes `values` (values[i] in [0, maxima[i]]) into `out[0..words())`.
  void encode(std::span<const std::int64_t> values, std::uint64_t* out) const {
    assert(values.size() == fields_.size());
    for (std::size_t w = 0; w < words_; ++w) out[w] = 0;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      const Field f = fields_[i];
      if (f.width == 0) continue;
      const auto v = static_cast<std::uint64_t>(values[i]);
      assert(f.width == 64 || v < (std::uint64_t{1} << f.width));
      const std::size_t word = f.bit / 64;
      const std::size_t shift = f.bit % 64;
      out[word] |= v << shift;
      if (shift + f.width > 64) {
        out[word + 1] |= v >> (64 - shift);
      }
    }
  }

  [[nodiscard]] std::int64_t decode_field(const std::uint64_t* in,
                                          std::size_t i) const {
    const Field f = fields_[i];
    if (f.width == 0) return 0;
    const std::size_t word = f.bit / 64;
    const std::size_t shift = f.bit % 64;
    std::uint64_t v = in[word] >> shift;
    if (shift + f.width > 64) {
      v |= in[word + 1] << (64 - shift);
    }
    const std::uint64_t mask =
        f.width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << f.width) - 1;
    return static_cast<std::int64_t>(v & mask);
  }

  /// Decodes every field into `out` (out.size() == num_fields()).
  void decode(const std::uint64_t* in, std::span<std::int64_t> out) const {
    assert(out.size() == fields_.size());
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out[i] = decode_field(in, i);
    }
  }

 private:
  struct Field {
    std::uint32_t bit = 0;    ///< first bit position in the key
    std::uint32_t width = 0;  ///< bits occupied (0 iff the field max is 0)
  };

  [[nodiscard]] static std::uint32_t width_of(std::int64_t max) {
    std::uint32_t width = 0;
    auto v = static_cast<std::uint64_t>(max);
    while (v != 0) {
      ++width;
      v >>= 1;
    }
    return width;
  }

  std::vector<Field> fields_;
  std::size_t words_ = 1;
  bool byte_aligned_ = false;
};

}  // namespace lrb
