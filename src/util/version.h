// Build/version identification shared by every CLI tool, plus the wire and
// bench schema version constants, so load-test reports and fuzz repros are
// attributable to an exact binary ("which build produced this number?").

#pragma once

#include <cstdint>

namespace lrb {

/// Library version (kept in sync with the CMake project VERSION).
inline constexpr char kLrbVersion[] = "1.0.0";

/// Version field of the lrb_serve binary wire protocol (see svc/wire.h and
/// docs/serving.md). Bump on any incompatible frame or payload change.
inline constexpr std::uint16_t kWireVersion = 1;
/// Protocol level of the streaming-session frames (SessionOpen/SessionDelta
/// /SessionPlan/SessionStats/SessionClose — docs/streaming.md). Version-1
/// frames are unchanged and still accepted; a frame's version field must
/// match its message type's protocol level.
inline constexpr std::uint16_t kWireVersionV2 = 2;

/// Schema tag of the Stats JSON snapshot (obs::Registry::to_json), carried
/// in the snapshot's "schema" key and documented by lrb_serve --help.
inline constexpr char kStatsSchema[] = "lrb-stats-v1";

/// Schema tags of the committed machine-readable bench baselines.
inline constexpr char kEngineBenchSchema[] = "lrb-engine-bench-v1";
inline constexpr char kPtasBenchSchema[] = "lrb-ptas-bench-v1";
inline constexpr char kSvcBenchSchema[] = "lrb-svc-bench-v1";
/// Wrapper schema of bench/BENCH_svc.json: one lrb-svc-bench-v1 report per
/// serving profile ("reactors_1", "reactors_4"), so the committed baseline
/// records how the sharded front-end scales (docs/performance.md).
inline constexpr char kSvcBenchProfilesSchema[] = "lrb-svc-bench-v2";
inline constexpr char kCacheBenchSchema[] = "lrb-cache-bench-v1";

/// Prints "<tool> lrb/<version> (<build type>, asserts on|off)" plus the
/// wire/bench schema versions to stdout. Every tool maps --version here.
void print_version(const char* tool);

}  // namespace lrb
