// Deterministic random number generation for lrb.
//
// Every randomized component in the library (generators, simulator, property
// tests, benchmark sweeps) takes an explicit 64-bit seed and derives its
// stream from this engine, so experiment rows are exactly reproducible across
// runs and machines.
//
// The engine is xoshiro256++ (Blackman & Vigna), seeded via splitmix64 as the
// authors recommend. It satisfies std::uniform_random_bit_generator, so it
// also composes with <random> distributions when needed.

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace lrb {

/// One step of the splitmix64 sequence starting at `x`; also used to
/// decorrelate user-supplied seeds (e.g. seed + stream index).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine. Cheap to copy; 256 bits of state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state from a single 64-bit value via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    // 53 high bits -> double mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept;

  /// Exponential variate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Pareto variate with shape alpha and scale xmin (heavy-tailed; the
  /// classical model for process lifetimes, Harchol-Balter & Downey).
  [[nodiscard]] double pareto(double alpha, double xmin) noexcept;

  /// A fresh engine whose stream is decorrelated from this one; use to hand
  /// independent streams to parallel workers.
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle of a span, driven by `rng`.
template <typename T>
void shuffle(std::span<T> items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Samples from {0, .., n-1} with probability proportional to rank^-alpha
/// (Zipf / power law). Precomputes the CDF once; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace lrb
