#include "util/flags.h"

#include <cstdlib>

namespace lrb {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> Flags::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& key,
                          const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace lrb
