// Streaming rebalance sessions: the stateful heart of the wire-v2 session
// protocol (docs/streaming.md).
//
// A ClusterSession tracks a live cluster: jobs and processors carry stable
// client-chosen 64-bit ids, the session maintains the current assignment
// and per-processor loads, and every applied delta (arrival, departure,
// load change, processor add/remove/drain) updates that state in O(1)
// amortized. Drift is tracked as "current makespan vs. the recomputed
// lower bounds of core/lower_bounds"; when the configured RebalanceTrigger
// fires (imbalance ratio, delta count, or an explicit Replan delta), the
// session plans a bounded-move repair through a caller-supplied solve
// function (the server wires engine::BatchSolver here; the replay
// reference wires engine::solve_serial_reference / cached_serial_reference)
// and applies only the resulting *move diff*.
//
// Determinism contract: ClusterSession is a pure function of
// (initial instance, trigger config, delta sequence, solve function).
// The server and stream::replay_serial_reference run this exact code over
// the same inputs, so every emitted SessionPlan and every post-apply state
// digest is byte-comparable between them — the same contract the
// svc/cache/chaos layers already enforce for one-shot Solves.
//
// Rejected deltas are first-class: a delta referencing an unknown job or
// processor (or any other invalid transition) is rejected WITHOUT mutating
// state, consumes its sequence slot, and the session continues. Both sides
// of the replay comparison reject identically, so rejection is part of the
// deterministic transcript, not an out-of-band failure.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/types.h"
#include "solver/spec.h"

namespace lrb::stream {

/// Sentinel processor id for job arrivals: "place on the least-loaded
/// processor" (ties broken by lowest processor id).
inline constexpr std::uint64_t kAutoPlace = ~std::uint64_t{0};

enum class DeltaKind : std::uint8_t {
  kJobArrive = 1,   ///< new job `id` of `size`/`move_cost` on `proc`
  kJobDepart = 2,   ///< job `id` leaves the cluster
  kJobUpdate = 3,   ///< job `id`'s size becomes `size` (absolute, not delta)
  kProcAdd = 4,     ///< new empty processor `id`
  kProcRemove = 5,  ///< processor `id` leaves; must be empty (else rejected)
  kProcDrain = 6,   ///< force-move every job off `id`, then remove it
  kReplan = 7,      ///< explicit client-requested rebalance
};

[[nodiscard]] const char* delta_kind_name(DeltaKind kind);

/// One streamed state change. `id` names a job for the kJob* kinds and a
/// processor for the kProc* kinds; unused fields are ignored (and must be
/// encoded as zero / kAutoPlace on the wire so frames stay byte-stable).
struct Delta {
  DeltaKind kind = DeltaKind::kReplan;
  std::uint64_t id = 0;
  Size size = 0;       ///< kJobArrive / kJobUpdate
  Cost move_cost = 1;  ///< kJobArrive
  std::uint64_t proc = kAutoPlace;  ///< kJobArrive target
};

/// When the session replans. Checked after every applied delta, in this
/// order: delta_count first, then imbalance (at most one fires per delta;
/// kProcDrain and kReplan plan unconditionally).
struct TriggerConfig {
  /// Replan backend + parameters (solver registry, docs/solvers.md).
  solver::SolverSpec spec;
  /// Absolute move budget per replan; 0 = derive from move_frac.
  std::uint32_t move_budget = 0;
  /// Budget as a fraction of live jobs: k = max(1, floor(frac * n)).
  double move_frac = 0.25;
  /// Fire when makespan > ratio * max(lower_bound, 1); 0 disables.
  double imbalance_ratio = 0.0;
  /// Fire every N applied deltas; 0 disables.
  std::uint32_t delta_count = 0;
};

/// Validates a trigger config (finite fractions in range, plus the solver
/// registry's own parameter validation for the spec).
/// Returns an error description or nullopt when valid.
[[nodiscard]] std::optional<std::string> validate_trigger(
    const TriggerConfig& config);

enum class PlanReason : std::uint8_t {
  kImbalance = 1,   ///< makespan drifted past imbalance_ratio * lower bound
  kDeltaCount = 2,  ///< delta_count applied deltas since the last plan
  kExplicit = 3,    ///< client sent DeltaKind::kReplan
  kDrain = 4,       ///< forced moves evacuating a drained processor
};

[[nodiscard]] const char* plan_reason_name(PlanReason reason);

/// One relocation in a plan, in stable ids.
struct PlanMove {
  std::uint64_t job = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// The move diff streamed back to the client (wire type kSessionPlan).
/// Already applied to the session state when emitted.
struct SessionPlan {
  std::uint64_t plan_seq = 0;          ///< 1-based, per session
  std::uint64_t triggered_by_seq = 0;  ///< delta seq that fired the trigger
  PlanReason reason = PlanReason::kExplicit;
  Size makespan_before = 0;
  Size makespan_after = 0;
  std::vector<PlanMove> moves;
};

/// Solve hook: (instance, k, spec) -> result. The instance is the
/// session's live state in dense slot labels; the returned assignment
/// must be in the same labels (engine entry points qualify).
using SolveFn = std::function<RebalanceResult(
    const Instance&, std::int64_t, const solver::SolverSpec&)>;

/// Outcome of applying one delta.
struct StepResult {
  bool applied = false;
  std::string error;  ///< non-empty iff the delta was rejected
  /// Plans fired by this delta (a drain plus a trigger can emit two).
  std::vector<SessionPlan> plans;
};

/// Point-in-time session summary (wire type kSessionStatsOk).
struct SessionStats {
  std::uint64_t num_procs = 0;
  std::uint64_t num_jobs = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_rejected = 0;
  std::uint64_t plans_emitted = 0;
  std::uint64_t moves_total = 0;
  std::uint64_t last_seq = 0;
  Size makespan = 0;
  Size lower_bound = 0;
  std::uint64_t digest = 0;
};

class ClusterSession {
 public:
  /// An empty session (no jobs, no processors). open() is the real entry
  /// point; the default exists so owners can hold a session as a movable
  /// slot (e.g. the server's per-reactor session tables).
  ClusterSession() = default;

  /// Opens a session from an initial instance (must pass lrb::validate)
  /// and a trigger config (must pass validate_trigger). Jobs get stable
  /// ids 0..n-1 and processors 0..m-1, matching their instance indices.
  [[nodiscard]] static std::optional<ClusterSession> open(
      const Instance& initial, const TriggerConfig& config,
      std::string* error);

  /// Applies delta `seq` (sequence numbers are assigned by the caller,
  /// start at 1, and must only move forward). Evaluates triggers and runs
  /// any resulting replan through `solve`. Deterministic given identical
  /// call sequences and solve functions.
  [[nodiscard]] StepResult step(const Delta& delta, std::uint64_t seq,
                                const SolveFn& solve);

  /// Makespan of the current assignment.
  [[nodiscard]] Size makespan() const;

  /// max(average_load_bound, max_job_bound) of the live state, recomputed
  /// via core/lower_bounds — the drift denominator of the imbalance
  /// trigger and the bound reported in every ack.
  [[nodiscard]] Size lower_bound() const;

  /// 64-bit fingerprint (cache/canonical.h hash) of the canonical state
  /// encoding: processors and jobs sorted by stable id, plus the makespan.
  /// Included in every ack so checkers compare state, not just plans.
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] SessionStats stats() const;

  [[nodiscard]] std::size_t num_jobs() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t num_procs() const noexcept {
    return procs_.size();
  }
  [[nodiscard]] const TriggerConfig& trigger() const noexcept {
    return config_;
  }

  /// The live state as an Instance in dense slot labels (jobs/processors
  /// in internal slot order). What replans solve; exposed for tests.
  [[nodiscard]] Instance snapshot() const;

 private:
  struct JobRec {
    std::uint64_t id = 0;
    Size size = 0;
    Cost move_cost = 1;
    std::size_t proc_slot = 0;
  };
  struct ProcRec {
    std::uint64_t id = 0;
    Size load = 0;
  };

  [[nodiscard]] std::string apply(const Delta& delta, StepResult* result,
                                  std::uint64_t seq);
  /// Least-loaded processor (ties: lowest id), optionally excluding one
  /// slot. Returns procs_.size() when every processor is excluded.
  [[nodiscard]] std::size_t least_loaded_slot(std::size_t exclude_slot) const;
  void remove_job_slot(std::size_t slot);
  void remove_proc_slot(std::size_t slot);
  /// Runs one bounded-move replan and applies + records the move diff.
  [[nodiscard]] SessionPlan replan(PlanReason reason, std::uint64_t seq,
                                   const SolveFn& solve);
  void evaluate_triggers(std::uint64_t seq, const SolveFn& solve,
                         StepResult* result);

  TriggerConfig config_;
  std::vector<JobRec> jobs_;    ///< dense slots; swap-removed on departure
  std::vector<ProcRec> procs_;  ///< dense slots; swap-removed on removal
  std::unordered_map<std::uint64_t, std::size_t> job_slots_;
  std::unordered_map<std::uint64_t, std::size_t> proc_slots_;

  std::uint64_t deltas_applied_ = 0;
  std::uint64_t deltas_rejected_ = 0;
  std::uint64_t plans_emitted_ = 0;
  std::uint64_t moves_total_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint32_t deltas_since_plan_ = 0;
};

}  // namespace lrb::stream
