#include "stream/replay.h"

#include "engine/batch_solver.h"

namespace lrb::stream {

SolveFn serial_reference_solver(bool cached) {
  if (cached) {
    return [](const Instance& instance, std::int64_t k,
              const solver::SolverSpec& spec) {
      return engine::cached_serial_reference(spec, instance, k);
    };
  }
  return [](const Instance& instance, std::int64_t k,
            const solver::SolverSpec& spec) {
    return engine::solve_serial_reference(spec, instance, k);
  };
}

ReplayResult replay_serial_reference(const Instance& initial,
                                     const TriggerConfig& config,
                                     std::span<const Delta> deltas,
                                     const ReplayOptions& options) {
  ReplayResult result;
  auto session = ClusterSession::open(initial, config, &result.error);
  if (!session) return result;
  const SolveFn solve = serial_reference_solver(options.cached);
  result.open_makespan = session->makespan();
  result.open_lower_bound = session->lower_bound();
  result.open_digest = session->digest();
  result.steps.reserve(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const std::uint64_t seq = i + 1;
    StepResult step = session->step(deltas[i], seq, solve);
    ReplayStep replayed;
    replayed.seq = seq;
    replayed.applied = step.applied;
    replayed.error = std::move(step.error);
    replayed.plans = std::move(step.plans);
    replayed.makespan = session->makespan();
    replayed.lower_bound = session->lower_bound();
    replayed.digest = session->digest();
    result.steps.push_back(std::move(replayed));
  }
  result.final_stats = session->stats();
  result.ok = true;
  return result;
}

}  // namespace lrb::stream
