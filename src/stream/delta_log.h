// Plain-text serialization of streaming-session inputs, so session repros
// can be checked in, diffed, and replayed (tests/corpus/*.lrbd), plus the
// converter from src/online/trace event streams into delta logs.
//
// Format (whitespace-separated, '#' comments allowed):
//
//   lrb-delta-log 1
//   trigger <backend> <move_budget> <move_frac> <imbalance_ratio>
//           <delta_count> <budget|inf> <eps>             (one line)
//   (<backend> is a solver-registry name; aliases are accepted on read,
//    the canonical name is always written — docs/solvers.md)
//   lrb-instance 1                     # embedded core/io instance section
//   procs <m>
//   jobs <n>
//   <size> <move_cost> <initial_proc>  # one line per job
//   deltas <count>
//   arrive <job_id> <size> <move_cost> <proc|auto>
//   depart <job_id>
//   update <job_id> <size>
//   proc-add <proc_id>
//   proc-remove <proc_id>
//   proc-drain <proc_id>
//   replan
//
// A delta log is the complete input of stream::replay_serial_reference:
// one file = one deterministic session transcript.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "online/trace.h"
#include "stream/session.h"

namespace lrb::stream {

inline constexpr char kDeltaLogSchema[] = "lrb-delta-log 1";

struct DeltaLog {
  Instance initial;
  TriggerConfig trigger;
  std::vector<Delta> deltas;
};

void write_delta_log(std::ostream& os, const DeltaLog& log);
[[nodiscard]] std::string delta_log_to_string(const DeltaLog& log);

/// Parses a delta log; returns nullopt (and sets *error if non-null) on
/// malformed input. Structural only — deltas referencing unknown ids parse
/// fine and are rejected (deterministically) at replay time.
[[nodiscard]] std::optional<DeltaLog> read_delta_log(
    std::istream& is, std::string* error = nullptr);
[[nodiscard]] std::optional<DeltaLog> delta_log_from_string(
    const std::string& text, std::string* error = nullptr);

/// Converts an online trace into a delta log over `initial`: arrivals
/// become kJobArrive deltas with auto-placement and stable job ids
/// `initial.num_jobs() + arrival_index`; departures become kJobDepart of
/// the same ids. The trigger config rides along unchanged.
[[nodiscard]] DeltaLog delta_log_from_trace(
    const Instance& initial, const std::vector<online::Event>& events,
    const TriggerConfig& trigger);

}  // namespace lrb::stream
