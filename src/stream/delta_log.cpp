#include "stream/delta_log.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/io.h"
#include "solver/registry.h"

namespace lrb::stream {

namespace {

constexpr const char* kMagic = "lrb-delta-log";

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Token stream that skips '#'-to-end-of-line comments (the same lexical
/// rules as core/io, so instance sections and delta lines mix freely).
class TokenReader {
 public:
  explicit TokenReader(std::istream& is) : is_(is) {}

  bool next(std::string& token) {
    while (is_ >> token) {
      if (token[0] == '#') {
        std::string rest;
        std::getline(is_, rest);
        continue;
      }
      return true;
    }
    return false;
  }

  bool next_u64(std::uint64_t& out) {
    std::string token;
    if (!next(token)) return false;
    try {
      std::size_t pos = 0;
      out = std::stoull(token, &pos);
      return pos == token.size() && token[0] != '-';
    } catch (...) {
      return false;
    }
  }

  bool next_i64(std::int64_t& out) {
    std::string token;
    if (!next(token)) return false;
    try {
      std::size_t pos = 0;
      out = std::stoll(token, &pos);
      return pos == token.size();
    } catch (...) {
      return false;
    }
  }

  bool next_double(double& out) {
    std::string token;
    if (!next(token)) return false;
    try {
      std::size_t pos = 0;
      out = std::stod(token, &pos);
      return pos == token.size();
    } catch (...) {
      return false;
    }
  }

 private:
  std::istream& is_;
};

void write_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void write_delta_log(std::ostream& os, const DeltaLog& log) {
  os << kMagic << " 1\n";
  os << "trigger " << solver::backend_name(log.trigger.spec.backend) << ' '
     << log.trigger.move_budget << ' ';
  write_double(os, log.trigger.move_frac);
  os << ' ';
  write_double(os, log.trigger.imbalance_ratio);
  os << ' ' << log.trigger.delta_count << ' ';
  if (log.trigger.spec.params.budget >= kInfCost) {
    os << "inf";
  } else {
    os << log.trigger.spec.params.budget;
  }
  os << ' ';
  write_double(os, log.trigger.spec.params.eps);
  os << '\n';
  write_instance(os, log.initial);
  os << "deltas " << log.deltas.size() << '\n';
  for (const Delta& delta : log.deltas) {
    os << delta_kind_name(delta.kind);
    switch (delta.kind) {
      case DeltaKind::kJobArrive:
        os << ' ' << delta.id << ' ' << delta.size << ' ' << delta.move_cost
           << ' ';
        if (delta.proc == kAutoPlace) {
          os << "auto";
        } else {
          os << delta.proc;
        }
        break;
      case DeltaKind::kJobDepart:
      case DeltaKind::kProcAdd:
      case DeltaKind::kProcRemove:
      case DeltaKind::kProcDrain:
        os << ' ' << delta.id;
        break;
      case DeltaKind::kJobUpdate:
        os << ' ' << delta.id << ' ' << delta.size;
        break;
      case DeltaKind::kReplan:
        break;
    }
    os << '\n';
  }
}

std::string delta_log_to_string(const DeltaLog& log) {
  std::ostringstream oss;
  write_delta_log(oss, log);
  return oss.str();
}

std::optional<DeltaLog> read_delta_log(std::istream& is, std::string* error) {
  TokenReader reader(is);
  std::string token;
  std::uint64_t version = 0;
  if (!reader.next(token) || token != kMagic || !reader.next_u64(version) ||
      version != 1) {
    fail(error, "bad delta log header (want 'lrb-delta-log 1')");
    return std::nullopt;
  }
  DeltaLog log;
  if (!reader.next(token) || token != "trigger" || !reader.next(token)) {
    fail(error, "bad 'trigger' line");
    return std::nullopt;
  }
  // Canonical names AND registry aliases are accepted here; write_delta_log
  // always emits the canonical name.
  if (!solver::parse_backend(token, &log.trigger.spec.backend)) {
    fail(error, "unknown trigger algo '" + token + "'");
    return std::nullopt;
  }
  std::uint64_t move_budget = 0;
  std::uint64_t delta_count = 0;
  if (!reader.next_u64(move_budget) ||
      !reader.next_double(log.trigger.move_frac) ||
      !reader.next_double(log.trigger.imbalance_ratio) ||
      !reader.next_u64(delta_count)) {
    fail(error, "bad 'trigger' line");
    return std::nullopt;
  }
  log.trigger.move_budget = static_cast<std::uint32_t>(move_budget);
  log.trigger.delta_count = static_cast<std::uint32_t>(delta_count);
  if (!reader.next(token)) {
    fail(error, "bad 'trigger' line");
    return std::nullopt;
  }
  if (token == "inf") {
    log.trigger.spec.params.budget = kInfCost;
  } else {
    try {
      std::size_t pos = 0;
      log.trigger.spec.params.budget = std::stoll(token, &pos);
      if (pos != token.size()) throw std::invalid_argument(token);
    } catch (...) {
      fail(error, "bad solver budget '" + token + "'");
      return std::nullopt;
    }
  }
  if (!reader.next_double(log.trigger.spec.params.eps)) {
    fail(error, "bad 'trigger' line");
    return std::nullopt;
  }
  if (const auto problem = validate_trigger(log.trigger)) {
    fail(error, *problem);
    return std::nullopt;
  }
  auto initial = read_instance(is, error);
  if (!initial) return std::nullopt;
  log.initial = std::move(*initial);
  std::uint64_t count = 0;
  if (!reader.next(token) || token != "deltas" || !reader.next_u64(count)) {
    fail(error, "bad 'deltas' line");
    return std::nullopt;
  }
  log.deltas.reserve(std::min<std::uint64_t>(count, 1 << 20));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.next(token)) {
      fail(error, "truncated delta list at entry " + std::to_string(i));
      return std::nullopt;
    }
    Delta delta;
    bool ok = true;
    if (token == "arrive") {
      delta.kind = DeltaKind::kJobArrive;
      std::string proc;
      ok = reader.next_u64(delta.id) && reader.next_i64(delta.size) &&
           reader.next_i64(delta.move_cost) && reader.next(proc);
      if (ok) {
        if (proc == "auto") {
          delta.proc = kAutoPlace;
        } else {
          try {
            std::size_t pos = 0;
            delta.proc = std::stoull(proc, &pos);
            ok = pos == proc.size() && proc[0] != '-';
          } catch (...) {
            ok = false;
          }
        }
      }
    } else if (token == "depart") {
      delta.kind = DeltaKind::kJobDepart;
      ok = reader.next_u64(delta.id);
    } else if (token == "update") {
      delta.kind = DeltaKind::kJobUpdate;
      ok = reader.next_u64(delta.id) && reader.next_i64(delta.size);
    } else if (token == "proc-add") {
      delta.kind = DeltaKind::kProcAdd;
      ok = reader.next_u64(delta.id);
    } else if (token == "proc-remove") {
      delta.kind = DeltaKind::kProcRemove;
      ok = reader.next_u64(delta.id);
    } else if (token == "proc-drain") {
      delta.kind = DeltaKind::kProcDrain;
      ok = reader.next_u64(delta.id);
    } else if (token == "replan") {
      delta.kind = DeltaKind::kReplan;
    } else {
      fail(error, "unknown delta kind '" + token + "'");
      return std::nullopt;
    }
    if (!ok) {
      fail(error, "bad '" + token + "' delta at entry " + std::to_string(i));
      return std::nullopt;
    }
    log.deltas.push_back(delta);
  }
  return log;
}

std::optional<DeltaLog> delta_log_from_string(const std::string& text,
                                              std::string* error) {
  std::istringstream iss(text);
  return read_delta_log(iss, error);
}

DeltaLog delta_log_from_trace(const Instance& initial,
                              const std::vector<online::Event>& events,
                              const TriggerConfig& trigger) {
  DeltaLog log;
  log.initial = initial;
  log.trigger = trigger;
  log.deltas.reserve(events.size());
  const std::uint64_t base = initial.num_jobs();
  std::uint64_t arrivals = 0;
  for (const online::Event& event : events) {
    Delta delta;
    if (event.kind == online::EventKind::kArrive) {
      delta.kind = DeltaKind::kJobArrive;
      delta.id = base + arrivals++;
      delta.size = event.size;
      delta.move_cost = event.move_cost;
      delta.proc = kAutoPlace;
    } else {
      delta.kind = DeltaKind::kJobDepart;
      delta.id = base + event.arrival_index;
    }
    log.deltas.push_back(delta);
  }
  return log;
}

}  // namespace lrb::stream
