#include "stream/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "cache/canonical.h"
#include "core/lower_bounds.h"
#include "solver/registry.h"

namespace lrb::stream {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

}  // namespace

const char* delta_kind_name(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kJobArrive:
      return "arrive";
    case DeltaKind::kJobDepart:
      return "depart";
    case DeltaKind::kJobUpdate:
      return "update";
    case DeltaKind::kProcAdd:
      return "proc-add";
    case DeltaKind::kProcRemove:
      return "proc-remove";
    case DeltaKind::kProcDrain:
      return "proc-drain";
    case DeltaKind::kReplan:
      return "replan";
  }
  return "?";
}

const char* plan_reason_name(PlanReason reason) {
  switch (reason) {
    case PlanReason::kImbalance:
      return "imbalance";
    case PlanReason::kDeltaCount:
      return "delta-count";
    case PlanReason::kExplicit:
      return "explicit";
    case PlanReason::kDrain:
      return "drain";
  }
  return "?";
}

std::optional<std::string> validate_trigger(const TriggerConfig& config) {
  if (config.move_budget == 0 &&
      !(config.move_frac > 0.0 && config.move_frac <= 1.0)) {
    return "move_frac must be in (0, 1] when move_budget is 0";
  }
  if (!(config.imbalance_ratio >= 0.0) ||
      !std::isfinite(config.imbalance_ratio)) {
    return "imbalance_ratio must be finite and >= 0";
  }
  if (const auto problem = solver::validate_spec(config.spec)) {
    return problem;
  }
  return std::nullopt;
}

std::optional<ClusterSession> ClusterSession::open(const Instance& initial,
                                                  const TriggerConfig& config,
                                                  std::string* error) {
  auto fail = [&](std::string what) -> std::optional<ClusterSession> {
    if (error != nullptr) *error = std::move(what);
    return std::nullopt;
  };
  if (const auto problem = validate(initial)) return fail(*problem);
  if (const auto problem = validate_trigger(config)) return fail(*problem);
  ClusterSession session;
  session.config_ = config;
  session.procs_.reserve(initial.num_procs);
  for (ProcId p = 0; p < initial.num_procs; ++p) {
    session.procs_.push_back({p, 0});
    session.proc_slots_.emplace(p, p);
  }
  const std::size_t n = initial.num_jobs();
  session.jobs_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    JobRec job;
    job.id = j;
    job.size = initial.sizes[j];
    job.move_cost = initial.move_costs[j];
    job.proc_slot = initial.initial[j];
    session.procs_[job.proc_slot].load += job.size;
    session.job_slots_.emplace(job.id, session.jobs_.size());
    session.jobs_.push_back(job);
  }
  return session;
}

Size ClusterSession::makespan() const {
  Size makespan = 0;
  for (const ProcRec& proc : procs_) makespan = std::max(makespan, proc.load);
  return makespan;
}

Size ClusterSession::lower_bound() const {
  const Instance live = snapshot();
  return std::max(average_load_bound(live), max_job_bound(live));
}

Instance ClusterSession::snapshot() const {
  Instance live;
  live.num_procs = static_cast<ProcId>(procs_.size());
  const std::size_t n = jobs_.size();
  live.sizes.reserve(n);
  live.move_costs.reserve(n);
  live.initial.reserve(n);
  for (const JobRec& job : jobs_) {
    live.sizes.push_back(job.size);
    live.move_costs.push_back(job.move_cost);
    live.initial.push_back(static_cast<ProcId>(job.proc_slot));
  }
  return live;
}

std::uint64_t ClusterSession::digest() const {
  // Canonical encoding: stable ids in sorted order, so the digest is
  // invariant under the internal (history-dependent) slot layout.
  std::string bytes;
  bytes.reserve(16 + procs_.size() * 8 + jobs_.size() * 32);
  bytes.append("lrb-session-state");
  std::vector<std::size_t> proc_order(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) proc_order[i] = i;
  std::sort(proc_order.begin(), proc_order.end(),
            [&](std::size_t a, std::size_t b) {
              return procs_[a].id < procs_[b].id;
            });
  put_u64(bytes, procs_.size());
  for (const std::size_t slot : proc_order) put_u64(bytes, procs_[slot].id);
  std::vector<std::size_t> job_order(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) job_order[i] = i;
  std::sort(job_order.begin(), job_order.end(),
            [&](std::size_t a, std::size_t b) {
              return jobs_[a].id < jobs_[b].id;
            });
  put_u64(bytes, jobs_.size());
  for (const std::size_t slot : job_order) {
    const JobRec& job = jobs_[slot];
    put_u64(bytes, job.id);
    put_i64(bytes, job.size);
    put_i64(bytes, job.move_cost);
    put_u64(bytes, procs_[job.proc_slot].id);
  }
  put_i64(bytes, makespan());
  const cache::Fingerprint fp = cache::fingerprint(bytes);
  return fp.hi ^ fp.lo;
}

SessionStats ClusterSession::stats() const {
  SessionStats stats;
  stats.num_procs = procs_.size();
  stats.num_jobs = jobs_.size();
  stats.deltas_applied = deltas_applied_;
  stats.deltas_rejected = deltas_rejected_;
  stats.plans_emitted = plans_emitted_;
  stats.moves_total = moves_total_;
  stats.last_seq = last_seq_;
  stats.makespan = makespan();
  stats.lower_bound = lower_bound();
  stats.digest = digest();
  return stats;
}

std::size_t ClusterSession::least_loaded_slot(std::size_t exclude_slot) const {
  std::size_t best = procs_.size();
  for (std::size_t slot = 0; slot < procs_.size(); ++slot) {
    if (slot == exclude_slot) continue;
    if (best == procs_.size() || procs_[slot].load < procs_[best].load ||
        (procs_[slot].load == procs_[best].load &&
         procs_[slot].id < procs_[best].id)) {
      best = slot;
    }
  }
  return best;
}

void ClusterSession::remove_job_slot(std::size_t slot) {
  job_slots_.erase(jobs_[slot].id);
  const std::size_t last = jobs_.size() - 1;
  if (slot != last) {
    jobs_[slot] = jobs_[last];
    job_slots_[jobs_[slot].id] = slot;
  }
  jobs_.pop_back();
}

void ClusterSession::remove_proc_slot(std::size_t slot) {
  assert(procs_[slot].load == 0);
  proc_slots_.erase(procs_[slot].id);
  const std::size_t last = procs_.size() - 1;
  if (slot != last) {
    procs_[slot] = procs_[last];
    proc_slots_[procs_[slot].id] = slot;
    // Jobs referencing the moved processor follow it to its new slot.
    for (JobRec& job : jobs_) {
      if (job.proc_slot == last) job.proc_slot = slot;
    }
  }
  procs_.pop_back();
}

std::string ClusterSession::apply(const Delta& delta, StepResult* result,
                                  std::uint64_t seq) {
  switch (delta.kind) {
    case DeltaKind::kJobArrive: {
      if (delta.size < 0) return "negative job size";
      if (delta.move_cost < 0) return "negative move cost";
      if (job_slots_.count(delta.id) != 0) {
        return "job id already exists: " + std::to_string(delta.id);
      }
      std::size_t target;
      if (delta.proc == kAutoPlace) {
        target = least_loaded_slot(procs_.size());
      } else {
        const auto it = proc_slots_.find(delta.proc);
        if (it == proc_slots_.end()) {
          return "unknown processor: " + std::to_string(delta.proc);
        }
        target = it->second;
      }
      JobRec job;
      job.id = delta.id;
      job.size = delta.size;
      job.move_cost = delta.move_cost;
      job.proc_slot = target;
      procs_[target].load += job.size;
      job_slots_.emplace(job.id, jobs_.size());
      jobs_.push_back(job);
      return {};
    }
    case DeltaKind::kJobDepart: {
      const auto it = job_slots_.find(delta.id);
      if (it == job_slots_.end()) {
        return "unknown job: " + std::to_string(delta.id);
      }
      const std::size_t slot = it->second;
      procs_[jobs_[slot].proc_slot].load -= jobs_[slot].size;
      remove_job_slot(slot);
      return {};
    }
    case DeltaKind::kJobUpdate: {
      if (delta.size < 0) return "negative job size";
      const auto it = job_slots_.find(delta.id);
      if (it == job_slots_.end()) {
        return "unknown job: " + std::to_string(delta.id);
      }
      JobRec& job = jobs_[it->second];
      procs_[job.proc_slot].load += delta.size - job.size;
      job.size = delta.size;
      return {};
    }
    case DeltaKind::kProcAdd: {
      if (delta.id == kAutoPlace) return "reserved processor id";
      if (proc_slots_.count(delta.id) != 0) {
        return "processor id already exists: " + std::to_string(delta.id);
      }
      proc_slots_.emplace(delta.id, procs_.size());
      procs_.push_back({delta.id, 0});
      return {};
    }
    case DeltaKind::kProcRemove: {
      const auto it = proc_slots_.find(delta.id);
      if (it == proc_slots_.end()) {
        return "unknown processor: " + std::to_string(delta.id);
      }
      if (procs_[it->second].load != 0) {
        return "processor not empty (use proc-drain): " +
               std::to_string(delta.id);
      }
      if (procs_.size() == 1) return "cannot remove the last processor";
      remove_proc_slot(it->second);
      return {};
    }
    case DeltaKind::kProcDrain: {
      const auto it = proc_slots_.find(delta.id);
      if (it == proc_slots_.end()) {
        return "unknown processor: " + std::to_string(delta.id);
      }
      if (procs_.size() == 1) return "cannot drain the last processor";
      const std::size_t victim = it->second;
      SessionPlan plan;
      plan.reason = PlanReason::kDrain;
      plan.triggered_by_seq = seq;
      plan.makespan_before = makespan();
      // Evacuation order: largest job first (ties: lowest id), each to the
      // least-loaded surviving processor (ties: lowest id). Deterministic,
      // and ignores the move budget: a drain is an operational necessity,
      // not an optimization (docs/streaming.md).
      std::vector<std::size_t> evict;
      for (std::size_t slot = 0; slot < jobs_.size(); ++slot) {
        if (jobs_[slot].proc_slot == victim) evict.push_back(slot);
      }
      std::sort(evict.begin(), evict.end(), [&](std::size_t a, std::size_t b) {
        if (jobs_[a].size != jobs_[b].size) {
          return jobs_[a].size > jobs_[b].size;
        }
        return jobs_[a].id < jobs_[b].id;
      });
      for (const std::size_t slot : evict) {
        const std::size_t target = least_loaded_slot(victim);
        JobRec& job = jobs_[slot];
        procs_[victim].load -= job.size;
        procs_[target].load += job.size;
        plan.moves.push_back(
            {job.id, procs_[victim].id, procs_[target].id});
        job.proc_slot = target;
      }
      plan.makespan_after = makespan();
      remove_proc_slot(victim);
      if (!plan.moves.empty()) {
        plan.plan_seq = ++plans_emitted_;
        moves_total_ += plan.moves.size();
        deltas_since_plan_ = 0;
        result->plans.push_back(std::move(plan));
      }
      return {};
    }
    case DeltaKind::kReplan:
      return {};  // handled by step()
  }
  return "unknown delta kind";
}

SessionPlan ClusterSession::replan(PlanReason reason, std::uint64_t seq,
                                   const SolveFn& solve) {
  SessionPlan plan;
  plan.reason = reason;
  plan.triggered_by_seq = seq;
  plan.makespan_before = makespan();
  const Instance live = snapshot();
  std::int64_t k;
  if (config_.move_budget > 0) {
    k = config_.move_budget;
  } else {
    k = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               config_.move_frac * static_cast<double>(jobs_.size())));
  }
  const RebalanceResult result = solve(live, k, config_.spec);
  assert(result.assignment.size() == jobs_.size());
  for (std::size_t slot = 0; slot < jobs_.size(); ++slot) {
    const std::size_t target = result.assignment[slot];
    JobRec& job = jobs_[slot];
    if (target == job.proc_slot) continue;
    procs_[job.proc_slot].load -= job.size;
    procs_[target].load += job.size;
    plan.moves.push_back(
        {job.id, procs_[job.proc_slot].id, procs_[target].id});
    job.proc_slot = target;
  }
  plan.makespan_after = makespan();
  plan.plan_seq = ++plans_emitted_;
  moves_total_ += plan.moves.size();
  deltas_since_plan_ = 0;
  return plan;
}

void ClusterSession::evaluate_triggers(std::uint64_t seq, const SolveFn& solve,
                                       StepResult* result) {
  if (config_.delta_count > 0 && deltas_since_plan_ >= config_.delta_count) {
    result->plans.push_back(replan(PlanReason::kDeltaCount, seq, solve));
    return;
  }
  if (config_.imbalance_ratio > 0.0) {
    const Size bound = std::max<Size>(lower_bound(), 1);
    if (static_cast<double>(makespan()) >
        config_.imbalance_ratio * static_cast<double>(bound)) {
      result->plans.push_back(replan(PlanReason::kImbalance, seq, solve));
    }
  }
}

StepResult ClusterSession::step(const Delta& delta, std::uint64_t seq,
                                const SolveFn& solve) {
  StepResult result;
  last_seq_ = seq;
  if (delta.kind == DeltaKind::kReplan) {
    ++deltas_applied_;
    ++deltas_since_plan_;
    result.applied = true;
    result.plans.push_back(replan(PlanReason::kExplicit, seq, solve));
    return result;
  }
  std::string error = apply(delta, &result, seq);
  if (!error.empty()) {
    ++deltas_rejected_;
    result.error = std::move(error);
    return result;
  }
  ++deltas_applied_;
  ++deltas_since_plan_;
  result.applied = true;
  evaluate_triggers(seq, solve, &result);
  return result;
}

}  // namespace lrb::stream
