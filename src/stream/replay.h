// The serial replay reference for streaming sessions: replays an
// (initial instance, delta log, trigger config) tuple one delta at a time
// through a ClusterSession wired to the engine's serial reference solver,
// so every plan a concurrent multi-reactor server streams — and every
// post-apply session state digest — is byte-comparable to this function's
// output. The streaming analogue of engine::solve_serial_reference.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "stream/session.h"

namespace lrb::stream {

/// The solve hook the reference uses: engine::solve_serial_reference, or
/// engine::cached_serial_reference when `cached` is set (checkers pass the
/// cache-enabledness of the server under test). Also handed to reference
/// mirrors that step a session incrementally (svc::run_session_stream).
[[nodiscard]] SolveFn serial_reference_solver(bool cached);

struct ReplayOptions {
  /// Compare against the cache-enabled reference
  /// (engine::cached_serial_reference) instead of the plain serial one.
  bool cached = false;
};

/// The reference transcript of one delta: what a server ack for this delta
/// must agree with, byte for byte, after re-encoding.
struct ReplayStep {
  std::uint64_t seq = 0;
  bool applied = false;
  std::string error;  ///< rejection text when !applied
  std::vector<SessionPlan> plans;
  Size makespan = 0;
  Size lower_bound = 0;
  std::uint64_t digest = 0;  ///< post-apply session state digest
};

struct ReplayResult {
  bool ok = false;
  std::string error;  ///< set when the open itself failed
  /// Post-open state (what a SessionOpenOk reply must carry).
  Size open_makespan = 0;
  Size open_lower_bound = 0;
  std::uint64_t open_digest = 0;
  std::vector<ReplayStep> steps;  ///< one per delta, seq = index + 1
  SessionStats final_stats;
};

/// Replays the deltas serially (seq = index + 1) against a fresh session.
/// Pure function of its arguments — the determinism oracle for every
/// concurrent streaming path (lrb_stream --check, tests, chaos).
[[nodiscard]] ReplayResult replay_serial_reference(
    const Instance& initial, const TriggerConfig& config,
    std::span<const Delta> deltas, const ReplayOptions& options = {});

}  // namespace lrb::stream
