// First-order diffusive load balancing (Hu et al. [7], cited in the paper's
// introduction): continuous loads relax toward the average via
//   x_i(t+1) = x_i(t) + alpha * sum_{j in N(i)} (x_j(t) - x_i(t)).
// Converges to the uniform average for 0 < alpha < 1/max_degree on any
// connected graph. The accumulated per-edge net flow is the migration plan
// a job-granular scheme then has to realize - which is exactly where the
// k-move formulation of the SPAA'03 paper bites: flow is fractional, jobs
// are not.

#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/types.h"
#include "diffusion/graph.h"

namespace lrb::diffusion {

struct DiffusionOptions {
  /// Step size; <= 0 means "auto": 1 / (max_degree + 1).
  double alpha = 0.0;
  int max_iterations = 10'000;
  /// Stop when max |x_i - avg| <= tolerance.
  double tolerance = 1e-6;
};

struct DiffusionResult {
  std::vector<double> loads;  ///< continuous loads after the last iteration
  int iterations = 0;
  bool converged = false;
  /// Net flow over each edge (u < v); positive = u sent load to v.
  std::map<std::pair<ProcId, ProcId>, double> net_flow;
  double residual = 0.0;  ///< final max |x_i - avg|
};

/// Runs first-order diffusion from the given integral loads.
[[nodiscard]] DiffusionResult diffuse(const ProcessorGraph& graph,
                                      const std::vector<Size>& loads,
                                      const DiffusionOptions& options = {});

}  // namespace lrb::diffusion
