#include "diffusion/local_exchange.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lrb::diffusion {

LocalExchangeResult local_exchange_rebalance(
    const Instance& instance, const ProcessorGraph& graph,
    const LocalExchangeOptions& options) {
  assert(!lrb::validate(instance));
  assert(!validate(graph));
  assert(graph.num_procs() == instance.num_procs);

  Assignment assignment = instance.initial;
  std::vector<Size> load = instance.initial_loads();
  // Jobs per processor, kept sorted descending by size so transfers try the
  // biggest movable job first (fewer migrations for the same relief).
  std::vector<std::vector<JobId>> on_proc(instance.num_procs);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    on_proc[instance.initial[j]].push_back(static_cast<JobId>(j));
  }
  for (auto& jobs : on_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] > instance.sizes[b];
      }
      return a < b;
    });
  }
  std::int64_t moves = 0;  // #jobs currently away from home

  const auto edges = graph.edges();
  LocalExchangeResult out;
  // Every transfer strictly decreases sum(load^2), so the dynamics are
  // finite even without the round cap; the cap guards pathological inputs.
  for (int round = 0; round < options.max_rounds; ++round) {
    bool any_transfer = false;
    for (const auto& [a, b] : edges) {
      for (;;) {
        const ProcId heavy = load[a] >= load[b] ? a : b;
        const ProcId light = heavy == a ? b : a;
        if (load[heavy] == load[light]) break;
        // Largest job on `heavy` that strictly lowers max(pair) and fits
        // the move budget.
        bool transferred = false;
        auto& jobs = on_proc[heavy];
        for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
          const JobId j = jobs[idx];
          const Size s = instance.sizes[j];
          if (s == 0 || load[light] + s >= load[heavy]) continue;
          const std::int64_t delta =
              (light != instance.initial[j] ? 1 : 0) -
              (heavy != instance.initial[j] ? 1 : 0);
          if (moves + delta > options.max_moves) continue;
          // Apply.
          jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(idx));
          auto& dest = on_proc[light];
          dest.insert(std::lower_bound(dest.begin(), dest.end(), j,
                                       [&](JobId x, JobId y) {
                                         if (instance.sizes[x] !=
                                             instance.sizes[y]) {
                                           return instance.sizes[x] >
                                                  instance.sizes[y];
                                         }
                                         return x < y;
                                       }),
                      j);
          load[heavy] -= s;
          load[light] += s;
          assignment[j] = light;
          moves += delta;
          transferred = true;
          any_transfer = true;
          break;
        }
        if (!transferred) break;
      }
    }
    out.rounds = round + 1;
    if (!any_transfer) {
      out.quiescent = true;
      break;
    }
  }

  out.result = finalize_result(instance, std::move(assignment));
  assert(out.result.moves == moves);
  assert(out.result.moves <= options.max_moves);
  return out;
}

}  // namespace lrb::diffusion
