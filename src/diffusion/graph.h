// Processor proximity graphs for the neighborhood-constrained balancing
// schemes the paper's introduction cites (Hu et al. [7] diffusion, Ghosh et
// al. [4] local balancing): processes may only migrate to NEARBY processors.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace lrb::diffusion {

/// An undirected processor graph as adjacency lists (no self-loops, no
/// parallel edges; neighbor lists kept sorted).
struct ProcessorGraph {
  std::vector<std::vector<ProcId>> neighbors;

  [[nodiscard]] ProcId num_procs() const {
    return static_cast<ProcId>(neighbors.size());
  }
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] std::size_t max_degree() const;
  /// Sorted unique (u, v) pairs with u < v.
  [[nodiscard]] std::vector<std::pair<ProcId, ProcId>> edges() const;
};

/// Structural validation: symmetric, sorted, in-range, loop-free.
[[nodiscard]] std::optional<std::string> validate(const ProcessorGraph& graph);

[[nodiscard]] ProcessorGraph ring_graph(ProcId m);
[[nodiscard]] ProcessorGraph complete_graph(ProcId m);
/// rows x cols torus (wrap-around grid); degenerate dimensions collapse to
/// rings/paths correctly.
[[nodiscard]] ProcessorGraph torus_graph(ProcId rows, ProcId cols);
/// d-dimensional hypercube (2^d processors).
[[nodiscard]] ProcessorGraph hypercube_graph(int dimensions);

}  // namespace lrb::diffusion
