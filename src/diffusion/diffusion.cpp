#include "diffusion/diffusion.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lrb::diffusion {

DiffusionResult diffuse(const ProcessorGraph& graph,
                        const std::vector<Size>& loads,
                        const DiffusionOptions& options) {
  assert(!validate(graph));
  assert(loads.size() == graph.neighbors.size());
  DiffusionResult result;
  result.loads.assign(loads.begin(), loads.end());
  if (loads.empty()) {
    result.converged = true;
    return result;
  }

  const double alpha =
      options.alpha > 0
          ? options.alpha
          : 1.0 / (static_cast<double>(graph.max_degree()) + 1.0);
  const double total =
      std::accumulate(result.loads.begin(), result.loads.end(), 0.0);
  const double average = total / static_cast<double>(result.loads.size());

  std::vector<double> next(result.loads.size());
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double residual = 0.0;
    for (std::size_t i = 0; i < result.loads.size(); ++i) {
      residual = std::max(residual, std::abs(result.loads[i] - average));
    }
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
    // One synchronous step; record the per-edge flows it implies.
    for (std::size_t i = 0; i < result.loads.size(); ++i) {
      double delta = 0.0;
      for (ProcId j : graph.neighbors[i]) {
        delta += result.loads[j] - result.loads[i];
      }
      next[i] = result.loads[i] + alpha * delta;
    }
    for (ProcId u = 0; u < graph.num_procs(); ++u) {
      for (ProcId v : graph.neighbors[u]) {
        if (u >= v) continue;
        // Flow u -> v this step: alpha * (x_u - x_v).
        result.net_flow[{u, v}] += alpha * (result.loads[u] - result.loads[v]);
      }
    }
    result.loads.swap(next);
    result.iterations = iter + 1;
  }
  if (!result.converged) {
    double residual = 0.0;
    for (double x : result.loads) {
      residual = std::max(residual, std::abs(x - average));
    }
    result.residual = residual;
    result.converged = residual <= options.tolerance;
  }
  return result;
}

}  // namespace lrb::diffusion
