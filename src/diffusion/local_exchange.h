// Job-granular local balancing on a proximity graph, in the spirit of Ghosh
// et al. [4] (and Rudolph et al. [13] for unit jobs), cited by the paper as
// the local/few-moves predecessors of its global k-move formulation.
//
// Rounds proceed over the graph's edges in a fixed order; across each edge
// the heavier endpoint sends jobs to the lighter one whenever that strictly
// lowers the pair's maximum. With unit jobs this is exactly the classic
// local balancing dynamics (converges to neighboring loads differing by at
// most 1, i.e. max within diameter of the average); with arbitrary sizes it
// is a heuristic whose residual imbalance the bench compares against the
// paper's global algorithms.

#pragma once

#include <cstdint>

#include "core/assignment.h"
#include "core/instance.h"
#include "diffusion/graph.h"

namespace lrb::diffusion {

struct LocalExchangeOptions {
  int max_rounds = 1000;
  /// Optional cap on total migrations (the paper's k); kInfSize = unbounded.
  std::int64_t max_moves = kInfSize;
};

struct LocalExchangeResult {
  RebalanceResult result;
  int rounds = 0;       ///< rounds until quiescent (or the cap)
  bool quiescent = false;  ///< no edge had an improving transfer
};

/// Runs local exchange from the instance's initial assignment. The final
/// assignment moves at most options.max_moves jobs.
[[nodiscard]] LocalExchangeResult local_exchange_rebalance(
    const Instance& instance, const ProcessorGraph& graph,
    const LocalExchangeOptions& options = {});

}  // namespace lrb::diffusion
