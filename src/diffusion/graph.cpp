#include "diffusion/graph.h"

#include <algorithm>
#include <cassert>

namespace lrb::diffusion {

std::size_t ProcessorGraph::num_edges() const {
  std::size_t total = 0;
  for (const auto& adj : neighbors) total += adj.size();
  return total / 2;
}

std::size_t ProcessorGraph::max_degree() const {
  std::size_t degree = 0;
  for (const auto& adj : neighbors) degree = std::max(degree, adj.size());
  return degree;
}

std::vector<std::pair<ProcId, ProcId>> ProcessorGraph::edges() const {
  std::vector<std::pair<ProcId, ProcId>> out;
  for (ProcId u = 0; u < num_procs(); ++u) {
    for (ProcId v : neighbors[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::optional<std::string> validate(const ProcessorGraph& graph) {
  const ProcId m = graph.num_procs();
  for (ProcId u = 0; u < m; ++u) {
    const auto& adj = graph.neighbors[u];
    if (!std::is_sorted(adj.begin(), adj.end())) {
      return "neighbors of " + std::to_string(u) + " not sorted";
    }
    if (std::adjacent_find(adj.begin(), adj.end()) != adj.end()) {
      return "parallel edge at " + std::to_string(u);
    }
    for (ProcId v : adj) {
      if (v >= m) return "out-of-range neighbor of " + std::to_string(u);
      if (v == u) return "self-loop at " + std::to_string(u);
      const auto& back = graph.neighbors[v];
      if (!std::binary_search(back.begin(), back.end(), u)) {
        return "asymmetric edge " + std::to_string(u) + "-" + std::to_string(v);
      }
    }
  }
  return std::nullopt;
}

namespace {

void add_edge(ProcessorGraph& graph, ProcId u, ProcId v) {
  if (u == v) return;
  auto& a = graph.neighbors[u];
  if (!std::binary_search(a.begin(), a.end(), v)) {
    a.insert(std::upper_bound(a.begin(), a.end(), v), v);
    auto& b = graph.neighbors[v];
    b.insert(std::upper_bound(b.begin(), b.end(), u), u);
  }
}

}  // namespace

ProcessorGraph ring_graph(ProcId m) {
  assert(m >= 1);
  ProcessorGraph graph;
  graph.neighbors.resize(m);
  for (ProcId u = 0; u < m; ++u) {
    add_edge(graph, u, static_cast<ProcId>((u + 1) % m));
  }
  assert(!validate(graph));
  return graph;
}

ProcessorGraph complete_graph(ProcId m) {
  assert(m >= 1);
  ProcessorGraph graph;
  graph.neighbors.resize(m);
  for (ProcId u = 0; u < m; ++u) {
    for (ProcId v = static_cast<ProcId>(u + 1); v < m; ++v) {
      add_edge(graph, u, v);
    }
  }
  assert(!validate(graph));
  return graph;
}

ProcessorGraph torus_graph(ProcId rows, ProcId cols) {
  assert(rows >= 1 && cols >= 1);
  ProcessorGraph graph;
  graph.neighbors.resize(static_cast<std::size_t>(rows) * cols);
  auto id = [cols](ProcId r, ProcId c) {
    return static_cast<ProcId>(r * cols + c);
  };
  for (ProcId r = 0; r < rows; ++r) {
    for (ProcId c = 0; c < cols; ++c) {
      add_edge(graph, id(r, c), id(r, static_cast<ProcId>((c + 1) % cols)));
      add_edge(graph, id(r, c), id(static_cast<ProcId>((r + 1) % rows), c));
    }
  }
  assert(!validate(graph));
  return graph;
}

ProcessorGraph hypercube_graph(int dimensions) {
  assert(dimensions >= 0 && dimensions < 20);
  const auto m = static_cast<ProcId>(1u << dimensions);
  ProcessorGraph graph;
  graph.neighbors.resize(m);
  for (ProcId u = 0; u < m; ++u) {
    for (int bit = 0; bit < dimensions; ++bit) {
      add_edge(graph, u, static_cast<ProcId>(u ^ (1u << bit)));
    }
  }
  assert(!validate(graph));
  return graph;
}

}  // namespace lrb::diffusion
