#include "lp/gap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "lp/matching.h"
#include "lp/simplex.h"

namespace lrb {
namespace {

constexpr double kFracTol = 1e-7;

}  // namespace

GapInstance gap_from_rebalancing(const Instance& instance) {
  GapInstance gap;
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_procs;
  gap.processing.assign(n, std::vector<Size>(m, 0));
  gap.cost.assign(n, std::vector<Cost>(m, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      gap.processing[i][j] = instance.sizes[i];
      gap.cost[i][j] = j == instance.initial[i] ? 0 : instance.move_costs[i];
    }
  }
  return gap;
}

GapLpResult gap_lp_min_cost(const GapInstance& gap, Size T) {
  GapLpResult out;
  const std::size_t n = gap.num_jobs();
  const std::size_t m = gap.num_machines();
  if (n == 0) {
    out.feasible = true;
    return out;
  }

  // Variable compression: only pairs with p_ij <= T exist.
  std::vector<std::vector<int>> var(n, std::vector<int>(m, -1));
  std::size_t num_vars = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < m; ++j) {
      if (gap.processing[i][j] <= T) {
        var[i][j] = static_cast<int>(num_vars++);
        any = true;
      }
    }
    if (!any) return out;  // job i cannot run anywhere within T
  }

  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (var[i][j] >= 0) {
        lp.objective[static_cast<std::size_t>(var[i][j])] =
            static_cast<double>(gap.cost[i][j]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {  // each job fully assigned
    std::vector<double> row(num_vars, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      if (var[i][j] >= 0) row[static_cast<std::size_t>(var[i][j])] = 1.0;
    }
    lp.add_eq(std::move(row), 1.0);
  }
  // Machine capacity, scaled by 1/T so every coefficient is in [0, 1]:
  // with raw processing times the tableau mixes O(T) entries (T can be
  // ~2^32 or more) with the O(1) assignment rows, and the simplex's
  // absolute tolerances stop discriminating - pivots stall. Scaling a
  // <= row by a positive constant leaves the feasible set unchanged.
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> row(num_vars, 0.0);
    const double scale = T > 0 ? 1.0 / static_cast<double>(T) : 1.0;
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (var[i][j] >= 0) {
        row[static_cast<std::size_t>(var[i][j])] =
            static_cast<double>(gap.processing[i][j]) * scale;
        any = true;
      }
    }
    if (any) lp.add_le(std::move(row), T > 0 ? 1.0 : 0.0);
  }

  const auto solution = solve_lp(lp);
  if (solution.status != LpStatus::kOptimal) return out;
  out.feasible = true;
  out.cost = solution.objective;
  out.x.assign(n, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (var[i][j] >= 0) {
        out.x[i][j] = solution.x[static_cast<std::size_t>(var[i][j])];
      }
    }
  }
  return out;
}

std::optional<GapRounded> shmoys_tardos_round(const GapInstance& gap, Size T,
                                              const GapLpResult& lp) {
  if (!lp.feasible) return std::nullopt;
  const std::size_t n = gap.num_jobs();
  const std::size_t m = gap.num_machines();
  if (n == 0) return GapRounded{};

  // Build slots per machine: jobs sorted by processing time DESCENDING are
  // poured into unit-capacity slots; every (job, slot) pair that receives a
  // positive fraction becomes a matching edge. The pouring order guarantees
  // that slot v+1's jobs are no larger than anything in slot v, which is
  // what caps the rounded machine load at T + max p (see [14]).
  struct Slot {
    std::size_t machine;
  };
  std::vector<Slot> slots;
  std::vector<MatchingEdge> edges;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::size_t> jobs;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (lp.x[i][j] > kFracTol) {
        jobs.push_back(i);
        total += lp.x[i][j];
      }
    }
    if (jobs.empty()) continue;
    std::sort(jobs.begin(), jobs.end(), [&](std::size_t a, std::size_t b) {
      if (gap.processing[a][j] != gap.processing[b][j]) {
        return gap.processing[a][j] > gap.processing[b][j];
      }
      return a < b;
    });
    const auto k_j = static_cast<std::size_t>(std::ceil(total - kFracTol));
    const std::size_t slot_base = slots.size();
    for (std::size_t v = 0; v < k_j; ++v) slots.push_back({j});
    std::size_t slot = 0;
    double slot_used = 0.0;
    for (std::size_t i : jobs) {
      double remaining = lp.x[i][j];
      bool edge_added_for_current_slot = false;
      while (remaining > kFracTol) {
        assert(slot < k_j);
        const double take = std::min(remaining, 1.0 - slot_used);
        if (take > kFracTol && !edge_added_for_current_slot) {
          edges.push_back({i, slot_base + slot, gap.cost[i][j]});
        }
        remaining -= take;
        slot_used += take;
        if (slot_used >= 1.0 - kFracTol) {
          ++slot;
          slot_used = 0.0;
          edge_added_for_current_slot = false;
        } else {
          edge_added_for_current_slot = true;
        }
      }
    }
  }

  const auto matching = min_cost_matching(n, slots.size(), edges);
  if (!matching.has_value()) return std::nullopt;

  GapRounded rounded;
  rounded.machine_of_job.assign(n, 0);
  std::vector<Size> load(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = slots[matching->match[i]].machine;
    rounded.machine_of_job[i] = j;
    rounded.total_cost += gap.cost[i][j];
    load[j] += gap.processing[i][j];
  }
  rounded.makespan = load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  assert(rounded.total_cost == matching->total_cost);
  // Shmoys-Tardos guarantee: load <= T + max allowed processing < 2T.
  assert(rounded.makespan <= 2 * T);
  (void)T;
  return rounded;
}

GapResult gap_shmoys_tardos(const GapInstance& gap, Cost budget) {
  GapResult result;
  const std::size_t n = gap.num_jobs();
  const std::size_t m = gap.num_machines();
  if (n == 0 || m == 0) {
    result.feasible = n == 0 && m > 0;
    return result;
  }

  Size lo = 0;
  Size hi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Size cheapest = kInfSize;
    for (std::size_t j = 0; j < m; ++j) {
      cheapest = std::min(cheapest, gap.processing[i][j]);
    }
    lo = std::max(lo, cheapest);  // every job must run somewhere
    hi += cheapest == kInfSize ? 0 : cheapest;
  }
  hi = std::max(hi, lo);

  auto fits = [&](Size T) {
    const auto lp = gap_lp_min_cost(gap, T);
    return lp.feasible && lp.cost <= static_cast<double>(budget) + 1e-6;
  };
  if (!fits(hi)) return result;  // even the loosest target busts the budget
  while (lo < hi) {
    const Size mid = lo + (hi - lo) / 2;
    if (fits(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  const auto lp = gap_lp_min_cost(gap, lo);
  auto rounded = shmoys_tardos_round(gap, lo, lp);
  if (!rounded.has_value()) return result;
  result.feasible = true;
  result.lp_target = lo;
  result.rounded = std::move(*rounded);
  return result;
}

RebalanceResult st_rebalance(const Instance& instance, Cost budget) {
  const auto gap = gap_from_rebalancing(instance);
  const auto result = gap_shmoys_tardos(gap, budget);
  if (!result.feasible) return no_move_result(instance);
  Assignment assignment(instance.num_jobs());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<ProcId>(result.rounded.machine_of_job[i]);
  }
  auto out = finalize_result(instance, std::move(assignment), result.lp_target);
  // The rounded cost can exceed neither the LP budget nor, therefore, B.
  assert(out.cost <= budget);
  return out;
}

}  // namespace lrb
