// The generalized assignment problem (GAP) and the Shmoys-Tardos
// LP-rounding 2-approximation [14] - the baseline the paper cites as the
// previously best known algorithm for load rebalancing ("simply set c_ij = 0
// if job i currently resides on machine j, and c_ij = 1 otherwise").
//
// gap_shmoys_tardos finds the smallest makespan target T whose assignment
// LP has cost <= B, then rounds the fractional solution via the slot
// construction + min-cost bipartite matching. The result has cost <= B and
// makespan <= 2 * OPT(B).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/types.h"

namespace lrb {

/// A GAP instance: job i on machine j takes processing[i][j] time and costs
/// cost[i][j] to assign.
struct GapInstance {
  std::vector<std::vector<Size>> processing;  ///< [job][machine]
  std::vector<std::vector<Cost>> cost;        ///< [job][machine]

  [[nodiscard]] std::size_t num_jobs() const { return processing.size(); }
  [[nodiscard]] std::size_t num_machines() const {
    return processing.empty() ? 0 : processing.front().size();
  }
};

/// The paper's reduction: load rebalancing as GAP with machine-independent
/// processing times and cost 0 on the initial machine.
[[nodiscard]] GapInstance gap_from_rebalancing(const Instance& instance);

struct GapLpResult {
  bool feasible = false;
  double cost = 0.0;
  /// x[i][j]: fractional assignment (only jobs with processing <= T get
  /// nonzero entries).
  std::vector<std::vector<double>> x;
};

/// Solves the assignment LP at makespan target T: minimize total cost s.t.
/// every job fully assigned, machine loads <= T, x_ij = 0 when p_ij > T.
[[nodiscard]] GapLpResult gap_lp_min_cost(const GapInstance& gap, Size T);

struct GapRounded {
  std::vector<std::size_t> machine_of_job;
  Cost total_cost = 0;
  Size makespan = 0;
};

/// Shmoys-Tardos rounding of a fractional LP solution at target T:
/// cost <= ceil(LP cost), makespan <= T + max p_ij < 2T.
[[nodiscard]] std::optional<GapRounded> shmoys_tardos_round(
    const GapInstance& gap, Size T, const GapLpResult& lp);

struct GapResult {
  bool feasible = false;
  Size lp_target = 0;  ///< smallest T whose LP fits the budget
  GapRounded rounded;
};

/// End-to-end baseline: binary search the smallest T with LP cost <= budget,
/// then round. Guarantees cost <= budget and makespan <= 2 * OPT(budget).
[[nodiscard]] GapResult gap_shmoys_tardos(const GapInstance& gap, Cost budget);

/// Adapter running the baseline on a rebalancing instance (budget = B, or
/// k for unit costs) and reporting in the library's result format.
[[nodiscard]] RebalanceResult st_rebalance(const Instance& instance,
                                           Cost budget);

}  // namespace lrb
