// A dense two-phase primal simplex solver for small linear programs.
//
// Built as the substrate for the Shmoys-Tardos generalized-assignment
// baseline [14] that the paper compares against ("the best positive result
// known is the 2-approximation ... via linear programming"). The LPs it
// solves here have a few hundred variables, so a dense tableau with Bland's
// anti-cycling rule is simple and robust.
//
// Problem form: minimize c^T x subject to per-row constraints
//   a_r^T x (<= | = | >=) b_r  and  x >= 0.

#pragma once

#include <cstddef>
#include <vector>

namespace lrb {

enum class Relation { kLe, kEq, kGe };

struct LpConstraint {
  std::vector<double> coeffs;  ///< one per variable
  Relation relation = Relation::kLe;
  double rhs = 0.0;
};

struct LinearProgram {
  std::vector<double> objective;  ///< minimize objective . x
  std::vector<LpConstraint> constraints;

  [[nodiscard]] std::size_t num_vars() const { return objective.size(); }

  /// Convenience builders.
  void add_le(std::vector<double> coeffs, double rhs);
  void add_ge(std::vector<double> coeffs, double rhs);
  void add_eq(std::vector<double> coeffs, double rhs);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kStalled };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Two-phase dense simplex. Deterministic; tolerance 1e-9. Badly scaled
/// inputs (coefficients spanning many orders of magnitude) can defeat the
/// tolerance checks and stall the pivot loop; after an internal pivot limit
/// the solver gives up with kStalled rather than spinning forever. Callers
/// should normalize rows to comparable magnitudes (see gap_lp_min_cost).
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp);

}  // namespace lrb
