#include "lp/matching.h"

#include <cassert>
#include <limits>
#include <queue>

namespace lrb {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

}  // namespace

std::optional<MatchingResult> min_cost_matching(
    std::size_t num_left, std::size_t num_right,
    const std::vector<MatchingEdge>& edges) {
  if (num_left > num_right) return std::nullopt;
  // Min-cost flow on: source -> left (cap 1, cost 0), left -> right (cap 1,
  // edge cost), right -> sink (cap 1, cost 0); augment num_left units via
  // Dijkstra with potentials (all costs >= 0 initially).
  const std::size_t source = num_left + num_right;
  const std::size_t sink = source + 1;
  const std::size_t vertices = sink + 1;

  struct Arc {
    std::size_t to;
    std::int64_t cap;
    std::int64_t cost;
    std::size_t rev;  // index of the reverse arc in graph[to]
  };
  std::vector<std::vector<Arc>> graph(vertices);
  auto add_arc = [&](std::size_t u, std::size_t v, std::int64_t cap,
                     std::int64_t cost) {
    graph[u].push_back({v, cap, cost, graph[v].size()});
    graph[v].push_back({u, 0, -cost, graph[u].size() - 1});
  };
  for (std::size_t l = 0; l < num_left; ++l) add_arc(source, l, 1, 0);
  for (std::size_t r = 0; r < num_right; ++r) {
    add_arc(num_left + r, sink, 1, 0);
  }
  for (const auto& e : edges) {
    assert(e.left < num_left && e.right < num_right);
    assert(e.cost >= 0);
    add_arc(e.left, num_left + e.right, 1, e.cost);
  }

  std::vector<std::int64_t> potential(vertices, 0);
  std::int64_t total_cost = 0;
  for (std::size_t unit = 0; unit < num_left; ++unit) {
    // Dijkstra on reduced costs from source.
    std::vector<std::int64_t> dist(vertices, kInf);
    std::vector<std::size_t> prev_vertex(vertices, vertices);
    std::vector<std::size_t> prev_arc(vertices, 0);
    using Item = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[source] = 0;
    heap.emplace(0, source);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (std::size_t i = 0; i < graph[u].size(); ++i) {
        const Arc& arc = graph[u][i];
        if (arc.cap <= 0) continue;
        const std::int64_t nd = d + arc.cost + potential[u] - potential[arc.to];
        if (nd < dist[arc.to]) {
          dist[arc.to] = nd;
          prev_vertex[arc.to] = u;
          prev_arc[arc.to] = i;
          heap.emplace(nd, arc.to);
        }
      }
    }
    if (dist[sink] >= kInf) return std::nullopt;  // no augmenting path
    for (std::size_t v = 0; v < vertices; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Augment one unit along the path.
    for (std::size_t v = sink; v != source; v = prev_vertex[v]) {
      Arc& arc = graph[prev_vertex[v]][prev_arc[v]];
      arc.cap -= 1;
      graph[v][arc.rev].cap += 1;
      total_cost += arc.cost;
    }
  }

  MatchingResult result;
  result.total_cost = total_cost;
  result.match.assign(num_left, num_right);
  for (std::size_t l = 0; l < num_left; ++l) {
    for (const Arc& arc : graph[l]) {
      // A saturated forward arc into a right vertex is the match.
      if (arc.to >= num_left && arc.to < num_left + num_right && arc.cap == 0 &&
          arc.cost >= 0) {
        result.match[l] = arc.to - num_left;
        break;
      }
    }
  }
  return result;
}

}  // namespace lrb
