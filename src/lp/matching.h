// Minimum-cost bipartite perfect matching (successive shortest augmenting
// paths with Johnson potentials). Used by the Shmoys-Tardos rounding to pick
// an integral assignment inside the fractional-matching polytope.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace lrb {

struct MatchingEdge {
  std::size_t left = 0;
  std::size_t right = 0;
  std::int64_t cost = 0;
};

struct MatchingResult {
  std::int64_t total_cost = 0;
  /// match[l] = the right vertex assigned to left vertex l.
  std::vector<std::size_t> match;
};

/// Perfect matching of all `num_left` left vertices into distinct right
/// vertices (num_right >= num_left) minimizing total edge cost. Edge costs
/// must be >= 0. Returns nullopt when no perfect matching exists.
[[nodiscard]] std::optional<MatchingResult> min_cost_matching(
    std::size_t num_left, std::size_t num_right,
    const std::vector<MatchingEdge>& edges);

}  // namespace lrb
