#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lrb {
namespace {

constexpr double kTol = 1e-9;

/// Dense tableau with explicit basis bookkeeping. Columns: structural vars,
/// then slack/surplus vars, then artificial vars, then the RHS.
class Tableau {
 public:
  Tableau(const LinearProgram& lp) {
    const std::size_t n = lp.num_vars();
    const std::size_t m = lp.constraints.size();
    num_structural_ = n;
    // Count slack (one per inequality) and artificial variables (one per
    // >= or = row, plus <= rows with negative rhs handled by flipping).
    rows_ = m;
    std::size_t slacks = 0;
    for (const auto& c : lp.constraints) {
      if (c.relation != Relation::kEq) ++slacks;
    }
    cols_ = n + slacks + m;  // reserve one artificial per row (not all used)
    a_.assign(rows_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(rows_, 0);
    artificial_start_ = n + slacks;

    std::size_t slack_idx = n;
    num_artificials_ = 0;
    for (std::size_t r = 0; r < m; ++r) {
      const auto& c = lp.constraints[r];
      assert(c.coeffs.size() == n);
      double sign = 1.0;
      Relation rel = c.relation;
      if (c.rhs < 0) {
        // Normalize to rhs >= 0 by negating the row.
        sign = -1.0;
        if (rel == Relation::kLe) {
          rel = Relation::kGe;
        } else if (rel == Relation::kGe) {
          rel = Relation::kLe;
        }
      }
      for (std::size_t j = 0; j < n; ++j) a_[r][j] = sign * c.coeffs[j];
      a_[r][cols_] = sign * c.rhs;
      switch (rel) {
        case Relation::kLe:
          a_[r][slack_idx] = 1.0;
          basis_[r] = slack_idx;
          ++slack_idx;
          break;
        case Relation::kGe: {
          a_[r][slack_idx] = -1.0;  // surplus
          ++slack_idx;
          const std::size_t art = artificial_start_ + num_artificials_++;
          a_[r][art] = 1.0;
          basis_[r] = art;
          break;
        }
        case Relation::kEq: {
          const std::size_t art = artificial_start_ + num_artificials_++;
          a_[r][art] = 1.0;
          basis_[r] = art;
          break;
        }
      }
    }
  }

  enum class PivotOutcome { kOptimal, kUnbounded, kStalled };

  /// Runs the simplex with reduced costs computed from `costs` (size cols_).
  /// Bland's rule precludes cycling in exact arithmetic, but floating-point
  /// round-off on badly scaled rows can defeat the tolerance checks and
  /// stall the walk, so the pivot count is capped: past the cap the solve
  /// reports kStalled instead of spinning forever.
  PivotOutcome optimize(const std::vector<double>& costs,
                        std::size_t allowed_cols) {
    const std::size_t max_pivots = 1000 * (rows_ + cols_) + 10'000;
    for (std::size_t pivots = 0; pivots <= max_pivots; ++pivots) {
      // Reduced costs: c_j - c_B^T B^{-1} A_j, computed directly from the
      // tableau (rows are already B^{-1} A).
      std::size_t pivot_col = allowed_cols;
      double best = -kTol;
      for (std::size_t j = 0; j < allowed_cols; ++j) {
        double reduced = costs[j];
        for (std::size_t r = 0; r < rows_; ++r) {
          reduced -= costs[basis_[r]] * a_[r][j];
        }
        // Bland's rule: first negative index (prevents cycling).
        if (reduced < best) {
          pivot_col = j;
          best = reduced;
          break;
        }
      }
      if (pivot_col == allowed_cols) return PivotOutcome::kOptimal;

      // Ratio test (Bland: smallest basis index breaks ties).
      std::size_t pivot_row = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (a_[r][pivot_col] > kTol) {
          const double ratio = a_[r][cols_] / a_[r][pivot_col];
          if (ratio < best_ratio - kTol ||
              (ratio < best_ratio + kTol &&
               (pivot_row == rows_ || basis_[r] < basis_[pivot_row]))) {
            best_ratio = ratio;
            pivot_row = r;
          }
        }
      }
      if (pivot_row == rows_) return PivotOutcome::kUnbounded;
      pivot(pivot_row, pivot_col);
    }
    return PivotOutcome::kStalled;
  }

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = a_[pr][pc];
    for (double& v : a_[pr]) v /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = a_[r][pc];
      if (std::abs(f) < kTol) continue;
      for (std::size_t j = 0; j <= cols_; ++j) a_[r][j] -= f * a_[pr][j];
    }
    basis_[pr] = pc;
  }

  /// Drives any artificial variable out of the basis (post phase 1).
  void expel_artificials() {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < artificial_start_) continue;
      // Pivot on any non-artificial column with a nonzero entry.
      bool done = false;
      for (std::size_t j = 0; j < artificial_start_ && !done; ++j) {
        if (std::abs(a_[r][j]) > kTol) {
          pivot(r, j);
          done = true;
        }
      }
      // If none exists the row is redundant (all-zero): leave it; the
      // artificial stays basic at value 0 and never re-enters because
      // phase 2 restricts pivots to columns < artificial_start_.
    }
  }

  [[nodiscard]] double rhs(std::size_t r) const { return a_[r][cols_]; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t basis(std::size_t r) const { return basis_[r]; }
  [[nodiscard]] std::size_t artificial_start() const { return artificial_start_; }
  [[nodiscard]] std::size_t num_structural() const { return num_structural_; }

 private:
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t artificial_start_ = 0;
  std::size_t num_artificials_ = 0;
};

}  // namespace

void LinearProgram::add_le(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kLe, rhs});
}
void LinearProgram::add_ge(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kGe, rhs});
}
void LinearProgram::add_eq(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kEq, rhs});
}

LpSolution solve_lp(const LinearProgram& lp) {
  LpSolution solution;
  Tableau tableau(lp);

  // Phase 1: minimize the sum of artificial variables.
  {
    std::vector<double> phase1(tableau.cols(), 0.0);
    for (std::size_t j = tableau.artificial_start(); j < tableau.cols(); ++j) {
      phase1[j] = 1.0;
    }
    const auto outcome = tableau.optimize(phase1, tableau.cols());
    assert(outcome != Tableau::PivotOutcome::kUnbounded);  // bounded below by 0
    if (outcome != Tableau::PivotOutcome::kOptimal) {
      solution.status = LpStatus::kStalled;
      return solution;
    }
    double infeasibility = 0.0;
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      if (tableau.basis(r) >= tableau.artificial_start()) {
        infeasibility += tableau.rhs(r);
      }
    }
    if (infeasibility > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    tableau.expel_artificials();
  }

  // Phase 2: original objective over structural + slack columns.
  {
    std::vector<double> costs(tableau.cols(), 0.0);
    for (std::size_t j = 0; j < lp.num_vars(); ++j) costs[j] = lp.objective[j];
    const auto outcome = tableau.optimize(costs, tableau.artificial_start());
    if (outcome != Tableau::PivotOutcome::kOptimal) {
      solution.status = outcome == Tableau::PivotOutcome::kUnbounded
                            ? LpStatus::kUnbounded
                            : LpStatus::kStalled;
      return solution;
    }
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(lp.num_vars(), 0.0);
  for (std::size_t r = 0; r < tableau.rows(); ++r) {
    if (tableau.basis(r) < lp.num_vars()) {
      solution.x[tableau.basis(r)] = tableau.rhs(r);
    }
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < lp.num_vars(); ++j) {
    solution.objective += lp.objective[j] * solution.x[j];
  }
  return solution;
}

}  // namespace lrb
