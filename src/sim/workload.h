// Synthetic website workload: per-site loads evolving as a multiplicative
// random walk with occasional flash crowds. This is the stand-in for the
// production web-farm traces behind the paper's motivating scenario (web
// servers hosting virtual websites whose popularity drifts, Linder & Shah
// [11]); the properties that matter for rebalancing - imbalance that
// accumulates over time and sudden hotspots - are preserved.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace lrb::sim {

struct WorkloadOptions {
  std::size_t num_sites = 200;
  Size min_initial_load = 1;
  Size max_initial_load = 1000;
  double zipf_alpha = 1.1;      ///< initial popularity skew
  double drift_sigma = 0.08;    ///< lognormal per-step drift
  double flash_prob = 0.002;    ///< per site per step
  double flash_magnitude = 12;  ///< load multiplier during a flash crowd
  std::size_t flash_duration = 8;
  Size min_bytes = 50;          ///< migration weight (site content size)
  Size max_bytes = 5000;
  /// Per-step probability of one churn event: a random site is decommissioned
  /// and a fresh site is provisioned in its slot with a newly drawn
  /// popularity and content size. The simulator re-places freshly
  /// provisioned sites on the least-loaded server (a new deployment, not a
  /// migration).
  double churn_prob = 0.0;
};

/// Evolving per-site loads. Deterministic in (options, seed).
class Workload {
 public:
  Workload(const WorkloadOptions& options, std::uint64_t seed);

  /// Advances one time step (drift + flash-crowd arrivals/decays).
  void step();

  [[nodiscard]] const std::vector<Size>& loads() const noexcept {
    return loads_;
  }
  /// Migration cost (content bytes) per site; constant over time.
  [[nodiscard]] const std::vector<Size>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t num_sites() const noexcept { return loads_.size(); }
  /// Sites currently in a flash crowd (for metrics/inspection).
  [[nodiscard]] std::size_t active_flashes() const noexcept;
  /// Sites provisioned during the last step() (already carrying load); the
  /// simulator must re-place these. Cleared at the start of each step.
  [[nodiscard]] const std::vector<std::size_t>& just_provisioned() const noexcept {
    return provisioned_;
  }
  /// Cumulative churn events since construction.
  [[nodiscard]] std::size_t churn_events() const noexcept { return churn_events_; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  std::vector<Size> loads_;
  std::vector<double> base_;             // pre-flash load, real-valued
  std::vector<std::size_t> flash_left_;  // remaining flash steps per site
  std::vector<Size> bytes_;
  std::vector<std::size_t> provisioned_;
  std::size_t churn_events_ = 0;

  void provision(std::size_t site);
};

}  // namespace lrb::sim
