// The paper's second motivating domain: process migration on a
// multiprocessor. Processes arrive over time, run for a lifetime drawn from
// a heavy-tailed (Pareto) or light-tailed (exponential) distribution, and
// complete. Arrivals are placed greedily; an optional rebalancing policy
// migrates up to k processes per round.
//
// The introduction cites a live dispute this simulator reproduces:
// Lazowska et al. [9] argue migration's benefits are limited to unrealistic
// CPU-bound workloads, Harchol-Balter & Downey [6] show trace-driven
// lifetimes (heavy-tailed!) make migration worthwhile. The tail of the
// lifetime distribution is exactly the knob: long-lived processes keep an
// imbalance alive long enough for migration to pay; short-lived ones die
// before the imbalance matters (experiment E17).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/stats.h"

namespace lrb::sim {

enum class LifetimeModel {
  kPareto,       ///< heavy tail: few very long-lived CPU hogs
  kExponential,  ///< light tail: everything short-lived
};

struct ProcessSimOptions {
  ProcId num_procs = 8;
  std::size_t steps = 2000;
  /// Expected arrivals per step (Bernoulli thinning of up to 4 spawns).
  double arrival_rate = 1.0;
  LifetimeModel lifetime_model = LifetimeModel::kPareto;
  double pareto_alpha = 1.3;      ///< heavy tail when close to 1
  double mean_lifetime = 30.0;    ///< matched across models
  Size min_load = 1;
  Size max_load = 100;            ///< per-process CPU demand
  /// Rebalance every R steps with at most k migrations; R = 0 disables.
  std::size_t rebalance_every = 10;
  std::int64_t move_budget = 4;
  std::uint64_t seed = 1;
};

/// A rebalancing policy over the alive-process snapshot (same contract as
/// the web-farm simulator's Policy).
using ProcessPolicy =
    std::function<RebalanceResult(const Instance&, std::int64_t)>;

struct ProcessSimResult {
  Summary imbalance;          ///< per-step makespan / fractional optimum
  std::int64_t migrations = 0;
  std::int64_t completed = 0;  ///< processes that ran to completion
  double mean_alive = 0.0;     ///< average number of alive processes
  /// Mean over completed processes of (observed avg co-load) / (fair
  /// share): > 1 means processes ran on over-loaded processors - the
  /// slowdown proxy the migration debate is about.
  double mean_slowdown = 0.0;
};

/// Runs the process-migration simulation. Deterministic in (options, seed).
[[nodiscard]] ProcessSimResult run_process_sim(const ProcessSimOptions& options,
                                               const ProcessPolicy& policy);

}  // namespace lrb::sim
