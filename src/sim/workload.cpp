#include "sim/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lrb::sim {

Workload::Workload(const WorkloadOptions& options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  assert(options.num_sites > 0);
  assert(options.min_initial_load >= 1);
  loads_.resize(options.num_sites);
  base_.resize(options.num_sites);
  flash_left_.assign(options.num_sites, 0);
  bytes_.resize(options.num_sites);

  // Initial popularity: Zipf-ranked between the load bounds so a few sites
  // dominate, matching observed website popularity distributions.
  const double lo = static_cast<double>(options.min_initial_load);
  const double hi = static_cast<double>(options.max_initial_load);
  for (std::size_t i = 0; i < options.num_sites; ++i) {
    const double rank_weight =
        std::pow(static_cast<double>(i + 1), -options.zipf_alpha);
    const double jitter = 0.5 + rng_.uniform01();
    base_[i] = std::clamp(hi * rank_weight * jitter, lo, hi);
    loads_[i] = std::max<Size>(1, static_cast<Size>(std::llround(base_[i])));
    bytes_[i] = rng_.uniform_int(options.min_bytes, options.max_bytes);
  }
}

void Workload::provision(std::size_t site) {
  // A fresh site: mid-pack popularity with jitter, fresh content size.
  const double lo = static_cast<double>(options_.min_initial_load);
  const double hi = static_cast<double>(options_.max_initial_load);
  base_[site] = std::clamp(hi * 0.1 * (0.5 + rng_.uniform01()), lo, hi);
  loads_[site] = std::max<Size>(1, static_cast<Size>(std::llround(base_[site])));
  bytes_[site] = rng_.uniform_int(options_.min_bytes, options_.max_bytes);
  flash_left_[site] = 0;
  provisioned_.push_back(site);
}

void Workload::step() {
  provisioned_.clear();
  if (options_.churn_prob > 0.0 && rng_.bernoulli(options_.churn_prob)) {
    // Decommission one random site; a replacement takes over its slot.
    const auto victim = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<Size>(loads_.size()) - 1));
    ++churn_events_;
    provision(victim);
  }
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    if (std::find(provisioned_.begin(), provisioned_.end(), i) !=
        provisioned_.end()) {
      continue;  // fresh sites keep their provisioning load this step
    }
    // Lognormal drift on the flash-free baseline.
    base_[i] *= std::exp(options_.drift_sigma * rng_.normal());
    base_[i] = std::clamp(base_[i], 1.0,
                          static_cast<double>(options_.max_initial_load) * 100);
    if (flash_left_[i] > 0) {
      --flash_left_[i];
    } else if (rng_.bernoulli(options_.flash_prob)) {
      flash_left_[i] = options_.flash_duration;
    }
    const double multiplier =
        flash_left_[i] > 0 ? options_.flash_magnitude : 1.0;
    loads_[i] =
        std::max<Size>(1, static_cast<Size>(std::llround(base_[i] * multiplier)));
  }
}

std::size_t Workload::active_flashes() const noexcept {
  std::size_t count = 0;
  for (std::size_t left : flash_left_) count += left > 0 ? 1 : 0;
  return count;
}

}  // namespace lrb::sim
