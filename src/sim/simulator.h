// Time-stepped web-farm rebalancing simulator: sites with drifting loads
// live on servers; every `rebalance_every` steps the configured policy may
// relocate up to `move_budget` sites (the paper's k). Metrics capture how
// bounded-move rebalancing tracks the moving optimum - the experiment the
// paper's introduction motivates.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/plan.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lrb::sim {

/// A rebalancing policy: given the current placement as an Instance (sizes =
/// current site loads, move costs = site bytes, initial = current map) and
/// the per-round move budget, produce a new placement.
using Policy = std::function<RebalanceResult(const Instance&, std::int64_t k)>;

struct SimOptions {
  WorkloadOptions workload;
  ProcId num_servers = 10;
  std::size_t steps = 300;
  std::size_t rebalance_every = 5;
  std::int64_t move_budget = 10;
  /// When true, move costs in the Instance are site bytes (so cost-aware
  /// policies can minimize migrated bytes); otherwise unit.
  bool byte_costs = false;
  /// When > 0, rebalancing decisions drain gradually: the policy's target
  /// is turned into a monotone migration plan and at most this many
  /// migrations execute per step (modeling migration latency). 0 applies
  /// the whole rebalance instantaneously. A new plan is only requested at a
  /// rebalance point when the previous plan has fully drained.
  std::size_t migrations_per_step = 0;
  /// Per-step probability that one random server is drained for maintenance:
  /// all its sites are force-migrated (greedily, to the least-loaded other
  /// servers) outside the policy's budget. Models the perturbations a
  /// production farm must recover from.
  double drain_prob = 0.0;
  std::uint64_t seed = 1;
};

struct StepMetrics {
  std::size_t step = 0;
  Size makespan = 0;
  Size ideal = 0;           ///< max(ceil-average, biggest site): fractional optimum
  double imbalance = 0.0;   ///< makespan / ideal
  std::int64_t moves = 0;   ///< policy migrations triggered at this step
  std::int64_t forced_moves = 0;  ///< maintenance-drain migrations
  Size bytes_moved = 0;
  std::size_t flashes = 0;  ///< active flash crowds
};

struct SimResult {
  std::vector<StepMetrics> series;
  Summary imbalance;        ///< over all steps
  Summary makespan;
  std::int64_t total_moves = 0;
  std::int64_t total_forced_moves = 0;
  Size total_bytes = 0;
  double mean_imbalance = 0.0;
};

class Simulator {
 public:
  Simulator(const SimOptions& options, Policy policy);

  /// Runs the full horizon and returns the metric series.
  [[nodiscard]] SimResult run();

 private:
  void apply(const RebalanceResult& result);

  SimOptions options_;
  Policy policy_;
  Workload workload_;
  Rng events_rng_;        ///< drives drain events, independent of the workload
  Assignment placement_;  ///< site -> server
  std::vector<Migration> pending_;  ///< queued migrations (gradual mode)
  std::size_t pending_next_ = 0;    ///< first unexecuted step in pending_
};

/// Initial placement: sites assigned round-robin by descending initial load
/// (a reasonable deployment-time LPT), so imbalance comes from drift, not a
/// pathological start.
[[nodiscard]] Assignment initial_placement(const Workload& workload,
                                           ProcId num_servers);

}  // namespace lrb::sim
