#include "sim/policies.h"

#include <cassert>
#include <cstdlib>

#include "algo/cost_greedy.h"
#include "algo/cost_partition.h"
#include "algo/rebalancer.h"

namespace lrb::sim {

std::vector<NamedPolicy> unit_policies() {
  std::vector<NamedPolicy> out;
  for (auto& algo : standard_rebalancers()) {
    out.push_back({algo.name, algo.run});
  }
  return out;
}

Policy cost_partition_policy(Cost byte_budget_per_round) {
  return [byte_budget_per_round](const Instance& instance, std::int64_t) {
    CostPartitionOptions options;
    options.budget = byte_budget_per_round;
    return cost_partition_rebalance(instance, options);
  };
}

Policy cost_greedy_policy(Cost byte_budget_per_round) {
  return [byte_budget_per_round](const Instance& instance, std::int64_t) {
    return cost_greedy_rebalance(instance, byte_budget_per_round);
  };
}

Policy unit_policy(const std::string& name) {
  for (auto& policy : unit_policies()) {
    if (policy.name == name) return policy.run;
  }
  assert(false && "unknown policy name");
  std::abort();
}

}  // namespace lrb::sim
