#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/lower_bounds.h"

namespace lrb::sim {

Assignment initial_placement(const Workload& workload, ProcId num_servers) {
  assert(num_servers > 0);
  const auto& loads = workload.loads();
  std::vector<std::size_t> order(loads.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (loads[a] != loads[b]) return loads[a] > loads[b];
    return a < b;
  });
  Assignment placement(loads.size(), 0);
  std::vector<Size> server_load(num_servers, 0);
  for (std::size_t site : order) {
    const auto target = static_cast<ProcId>(
        std::min_element(server_load.begin(), server_load.end()) -
        server_load.begin());
    placement[site] = target;
    server_load[target] += loads[site];
  }
  return placement;
}

Simulator::Simulator(const SimOptions& options, Policy policy)
    : options_(options),
      policy_(std::move(policy)),
      workload_(options.workload, options.seed),
      events_rng_(options.seed ^ 0x9e3779b97f4a7c15ULL),
      placement_(initial_placement(workload_, options.num_servers)) {}

void Simulator::apply(const RebalanceResult& result) {
  assert(result.assignment.size() == placement_.size());
  placement_ = result.assignment;
}

SimResult Simulator::run() {
  SimResult result;
  result.series.reserve(options_.steps);
  std::vector<double> imbalance_samples;
  std::vector<double> makespan_samples;

  for (std::size_t step = 0; step < options_.steps; ++step) {
    workload_.step();

    StepMetrics metrics;
    metrics.step = step;
    metrics.flashes = workload_.active_flashes();

    // Freshly provisioned (churned) sites deploy onto the least-loaded
    // server - a new deployment, not a migration, so not counted as a move.
    for (std::size_t site : workload_.just_provisioned()) {
      std::vector<Size> server_load(options_.num_servers, 0);
      for (std::size_t other = 0; other < placement_.size(); ++other) {
        if (other != site) server_load[placement_[other]] += workload_.loads()[other];
      }
      placement_[site] = static_cast<ProcId>(
          std::min_element(server_load.begin(), server_load.end()) -
          server_load.begin());
    }

    // Maintenance drains: evacuate one random server, outside the policy's
    // budget (the operator forced it; the rebalancer must absorb the hit).
    if (options_.num_servers > 1 && options_.drain_prob > 0.0 &&
        events_rng_.bernoulli(options_.drain_prob)) {
      const auto drained = static_cast<ProcId>(events_rng_.uniform_int(
          0, static_cast<Size>(options_.num_servers) - 1));
      std::vector<Size> server_load(options_.num_servers, 0);
      for (std::size_t site = 0; site < placement_.size(); ++site) {
        server_load[placement_[site]] += workload_.loads()[site];
      }
      for (std::size_t site = 0; site < placement_.size(); ++site) {
        if (placement_[site] != drained) continue;
        // Least-loaded server other than the drained one.
        ProcId target = drained == 0 ? 1 : 0;
        for (ProcId p = 0; p < options_.num_servers; ++p) {
          if (p != drained && server_load[p] < server_load[target]) target = p;
        }
        server_load[target] += workload_.loads()[site];
        placement_[site] = target;
        ++metrics.forced_moves;
        metrics.bytes_moved += workload_.bytes()[site];
      }
    }

    const bool at_rebalance_point =
        options_.rebalance_every > 0 && step % options_.rebalance_every == 0;
    if (at_rebalance_point &&
        (options_.migrations_per_step == 0 || pending_next_ >= pending_.size())) {
      Instance snapshot;
      snapshot.sizes = workload_.loads();
      snapshot.move_costs = options_.byte_costs
                                ? workload_.bytes()
                                : std::vector<Cost>(workload_.num_sites(), 1);
      snapshot.initial = placement_;
      snapshot.num_procs = options_.num_servers;
      const auto rebalanced = policy_(snapshot, options_.move_budget);
      if (options_.migrations_per_step == 0) {
        metrics.moves = rebalanced.moves;
        for (std::size_t site = 0; site < placement_.size(); ++site) {
          if (rebalanced.assignment[site] != placement_[site]) {
            metrics.bytes_moved += workload_.bytes()[site];
          }
        }
        apply(rebalanced);
      } else {
        // Queue a monotone plan; it drains over the next steps.
        const auto plan =
            make_plan(snapshot, rebalanced.assignment, PlanOrder::kMonotone);
        pending_ = plan.steps;
        pending_next_ = 0;
      }
    }
    // Drain the pending plan (gradual mode). Migrations whose source no
    // longer matches (the site churned or was drain-evacuated meanwhile)
    // are stale and skipped.
    for (std::size_t executed = 0;
         options_.migrations_per_step > 0 &&
         executed < options_.migrations_per_step &&
         pending_next_ < pending_.size();
         ++pending_next_) {
      const auto& mig = pending_[pending_next_];
      if (placement_[mig.job] != mig.from) continue;  // stale
      placement_[mig.job] = mig.to;
      ++metrics.moves;
      metrics.bytes_moved += workload_.bytes()[mig.job];
      ++executed;
    }

    // Measure the placement against the current loads.
    Instance measure;
    measure.sizes = workload_.loads();
    measure.move_costs.assign(workload_.num_sites(), 1);
    measure.initial = placement_;
    measure.num_procs = options_.num_servers;
    metrics.makespan = measure.initial_makespan();
    // The fractional optimum: ceil-average, or the biggest single site when
    // one flash crowd dominates (sites are indivisible).
    metrics.ideal = std::max(average_load_bound(measure), max_job_bound(measure));
    metrics.imbalance = metrics.ideal > 0
                            ? static_cast<double>(metrics.makespan) /
                                  static_cast<double>(metrics.ideal)
                            : 1.0;

    result.total_moves += metrics.moves;
    result.total_forced_moves += metrics.forced_moves;
    result.total_bytes += metrics.bytes_moved;
    imbalance_samples.push_back(metrics.imbalance);
    makespan_samples.push_back(static_cast<double>(metrics.makespan));
    result.series.push_back(metrics);
  }

  result.imbalance = summarize(imbalance_samples);
  result.makespan = summarize(makespan_samples);
  result.mean_imbalance = result.imbalance.mean;
  return result;
}

}  // namespace lrb::sim
