#include "sim/process_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace lrb::sim {
namespace {

struct Process {
  Size load = 0;
  double remaining = 0.0;  ///< lifetime left, in steps
  ProcId proc = 0;
  double coload_sum = 0.0;  ///< sum over steps of (proc load / fair share)
  std::int64_t steps_alive = 0;
};

}  // namespace

ProcessSimResult run_process_sim(const ProcessSimOptions& options,
                                 const ProcessPolicy& policy) {
  assert(options.num_procs >= 1);
  Rng rng(options.seed);
  std::vector<Process> alive;
  std::vector<Size> load(options.num_procs, 0);

  // Match the mean lifetime across models so only the TAIL differs.
  const double pareto_xmin =
      options.mean_lifetime * (options.pareto_alpha - 1.0) /
      options.pareto_alpha;
  auto draw_lifetime = [&]() {
    switch (options.lifetime_model) {
      case LifetimeModel::kPareto:
        return rng.pareto(options.pareto_alpha, std::max(1e-3, pareto_xmin));
      case LifetimeModel::kExponential:
        return rng.exponential(1.0 / options.mean_lifetime);
    }
    return options.mean_lifetime;
  };

  ProcessSimResult result;
  std::vector<double> imbalance_samples;
  OnlineStats slowdowns;
  double alive_sum = 0.0;

  for (std::size_t step = 0; step < options.steps; ++step) {
    // Arrivals: integer part guaranteed, fractional part Bernoulli.
    auto spawns = static_cast<int>(std::floor(options.arrival_rate));
    if (rng.bernoulli(options.arrival_rate - std::floor(options.arrival_rate))) {
      ++spawns;
    }
    for (int s = 0; s < spawns; ++s) {
      Process process;
      process.load = rng.uniform_int(options.min_load, options.max_load);
      process.remaining = std::max(1.0, draw_lifetime());
      process.proc = static_cast<ProcId>(
          std::min_element(load.begin(), load.end()) - load.begin());
      load[process.proc] += process.load;
      alive.push_back(process);
    }

    // Periodic rebalancing.
    if (options.rebalance_every > 0 && policy &&
        step % options.rebalance_every == 0 && !alive.empty()) {
      Instance snapshot;
      snapshot.num_procs = options.num_procs;
      snapshot.sizes.reserve(alive.size());
      for (const auto& process : alive) snapshot.sizes.push_back(process.load);
      snapshot.move_costs.assign(alive.size(), 1);
      snapshot.initial.reserve(alive.size());
      for (const auto& process : alive) snapshot.initial.push_back(process.proc);
      const auto rebalanced = policy(snapshot, options.move_budget);
      for (std::size_t i = 0; i < alive.size(); ++i) {
        if (rebalanced.assignment[i] != alive[i].proc) {
          load[alive[i].proc] -= alive[i].load;
          alive[i].proc = rebalanced.assignment[i];
          load[alive[i].proc] += alive[i].load;
          ++result.migrations;
        }
      }
    }

    // Metrics for this step.
    Size total = 0;
    for (Size l : load) total += l;
    if (total > 0) {
      Size biggest = 0;
      for (const auto& process : alive) {
        biggest = std::max(biggest, process.load);
      }
      const auto m = static_cast<Size>(options.num_procs);
      const Size ideal = std::max((total + m - 1) / m, biggest);
      const Size makespan = *std::max_element(load.begin(), load.end());
      imbalance_samples.push_back(static_cast<double>(makespan) /
                                  static_cast<double>(ideal));
      const double fair_share =
          static_cast<double>(total) / static_cast<double>(m);
      for (auto& process : alive) {
        process.coload_sum +=
            static_cast<double>(load[process.proc]) / fair_share;
        ++process.steps_alive;
      }
    }
    alive_sum += static_cast<double>(alive.size());

    // Lifetimes advance; completed processes leave.
    for (std::size_t i = 0; i < alive.size();) {
      alive[i].remaining -= 1.0;
      if (alive[i].remaining <= 0.0) {
        if (alive[i].steps_alive > 0) {
          slowdowns.add(alive[i].coload_sum /
                        static_cast<double>(alive[i].steps_alive));
        }
        load[alive[i].proc] -= alive[i].load;
        ++result.completed;
        alive[i] = alive.back();
        alive.pop_back();
      } else {
        ++i;
      }
    }
  }

  result.imbalance = summarize(imbalance_samples);
  result.mean_alive = alive_sum / static_cast<double>(options.steps);
  result.mean_slowdown = slowdowns.mean();
  return result;
}

}  // namespace lrb::sim
