// Prebuilt simulator policies. The unit-cost roster comes straight from
// algo/rebalancer.h; the byte-budget policies below require
// SimOptions::byte_costs = true so the per-round Instance carries site
// content sizes as move costs - the "minimize migrated bytes" regime of the
// paper's §3.2.

#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "sim/simulator.h"

namespace lrb::sim {

struct NamedPolicy {
  std::string name;
  Policy run;
};

/// The unit-cost roster (none / greedy / m-partition / best-of / lpt-full),
/// adapted to the Policy signature.
[[nodiscard]] std::vector<NamedPolicy> unit_policies();

/// §3.2 cost-PARTITION with a per-round byte budget (ignores the k the
/// simulator passes; the budget is bytes).
[[nodiscard]] Policy cost_partition_policy(Cost byte_budget_per_round);

/// The size-per-cost greedy under the same per-round byte budget.
[[nodiscard]] Policy cost_greedy_policy(Cost byte_budget_per_round);

/// Looks a unit policy up by name; aborts on unknown names.
[[nodiscard]] Policy unit_policy(const std::string& name);

}  // namespace lrb::sim
