// Local balancing on proximity graphs vs the paper's global k-move
// algorithms — the comparison implicit in the paper's related-work section.
//
//   $ ./examples/local_vs_global
//
// A cluster whose processors sit on a ring / torus / complete graph. The
// predecessor schemes (diffusion [7], local exchange [4]) may only move
// load between neighbors and do not budget the number of migrations; the
// paper's formulation bounds migrations globally. This example shows both
// the topology tax and the migration-budget advantage.

#include <algorithm>
#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "core/generators.h"
#include "core/lower_bounds.h"
#include "diffusion/diffusion.h"
#include "diffusion/graph.h"
#include "diffusion/local_exchange.h"
#include "util/table.h"

int main() {
  using namespace lrb;
  using namespace lrb::diffusion;

  // One overloaded processor in a 16-node cluster.
  GeneratorOptions gen;
  gen.num_jobs = 160;
  gen.num_procs = 16;
  gen.min_size = 5;
  gen.max_size = 120;
  gen.placement = PlacementPolicy::kHotspot;
  gen.hotspot_fraction = 0.07;  // a single hot processor
  gen.hotspot_mass = 0.6;
  const Instance instance = random_instance(gen, 99);
  const Size lb =
      std::max(average_load_bound(instance), max_job_bound(instance));

  std::cout << "Cluster: " << instance.num_jobs() << " jobs on "
            << instance.num_procs << " processors, initial makespan "
            << instance.initial_makespan() << " (fractional optimum ~" << lb
            << ")\n\n";

  std::cout << "Continuous diffusion (how topology throttles balancing):\n";
  Table diffusion_table({"topology", "iterations to ~avg"});
  struct Topo {
    const char* name;
    ProcessorGraph graph;
  };
  const Topo topologies[] = {
      {"ring", ring_graph(16)},
      {"torus 4x4", torus_graph(4, 4)},
      {"complete", complete_graph(16)},
  };
  for (const auto& topo : topologies) {
    DiffusionOptions opt;
    opt.tolerance = 0.01 * static_cast<double>(lb);
    const auto r = diffuse(topo.graph, instance.initial_loads(), opt);
    diffusion_table.row().add(topo.name).add(
        static_cast<std::int64_t>(r.iterations));
  }
  diffusion_table.print(std::cout);

  std::cout << "\nJob-granular balancing (makespan vs migrations):\n";
  Table table({"balancer", "makespan", "vs optimum", "migrations"});
  for (const auto& topo : topologies) {
    const auto r = local_exchange_rebalance(instance, topo.graph);
    table.row()
        .add(std::string("local exchange, ") + topo.name)
        .add(r.result.makespan)
        .add(static_cast<double>(r.result.makespan) / static_cast<double>(lb),
             3)
        .add(r.result.moves);
  }
  for (std::int64_t k : {8, 24, 64}) {
    const auto mp = m_partition_rebalance(instance, k);
    table.row()
        .add("M-PARTITION k=" + std::to_string(k))
        .add(mp.makespan)
        .add(static_cast<double>(mp.makespan) / static_cast<double>(lb), 3)
        .add(mp.moves);
  }
  table.print(std::cout);

  std::cout << "\nThe local schemes buy balance with MANY migrations (and "
               "pay a topology tax);\nthe paper's k-move algorithms reach "
               "comparable balance within a hard migration budget.\n";
  return 0;
}
