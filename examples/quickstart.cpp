// Quickstart: build a load-rebalancing instance, run the paper's algorithms,
// and inspect the guarantees.
//
//   $ ./examples/quickstart
//
// A cluster of 8 processors drifts out of balance; we may relocate at most
// k = 6 jobs. GREEDY (§2) gives 2 - 1/m, M-PARTITION (§3) gives 1.5, and the
// certified lower bound brackets the unknown optimum from below.

#include <cstdint>
#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "core/generators.h"
#include "core/lower_bounds.h"
#include "util/table.h"

int main() {
  using namespace lrb;

  // A hotspot workload: 120 jobs, most of the mass on 2 of 8 processors.
  GeneratorOptions gen;
  gen.num_jobs = 120;
  gen.num_procs = 8;
  gen.min_size = 5;
  gen.max_size = 200;
  gen.placement = PlacementPolicy::kHotspot;
  gen.hotspot_fraction = 0.25;
  gen.hotspot_mass = 0.75;
  const Instance instance = random_instance(gen, /*seed=*/2003);

  const std::int64_t k = 6;
  std::cout << "Load rebalancing quickstart\n"
            << "  jobs: " << instance.num_jobs()
            << ", processors: " << instance.num_procs << ", move budget k = "
            << k << "\n"
            << "  initial makespan: " << instance.initial_makespan()
            << "  (certified lower bound for k moves: "
            << combined_lower_bound(instance, k) << ")\n\n";

  Table table({"algorithm", "makespan", "moves", "vs initial", "guarantee"});
  const Size initial = instance.initial_makespan();
  for (const auto& algo : standard_rebalancers()) {
    if (algo.name == "lpt-full") continue;  // ignores the budget; see webfarm
    const auto result = algo.run(instance, k);
    table.row()
        .add(algo.name)
        .add(result.makespan)
        .add(result.moves)
        .add(static_cast<double>(result.makespan) /
                 static_cast<double>(initial),
             3)
        .add(algo.name == "greedy"       ? "2 - 1/m approx"
             : algo.name == "m-partition" ? "1.5 approx (Thm 3)"
             : algo.name == "best-of"     ? "1.5 approx"
                                          : "-");
  }
  table.print(std::cout);

  // Lemma 1 in action: GREEDY's step-1 residual is a valid lower bound.
  GreedyStats stats;
  (void)greedy_rebalance(instance, k, GreedyOrder::kLargestFirst, &stats);
  std::cout << "\nLemma 1 lower bound (max load after the k best removals): "
            << stats.g1 << "\n";
  std::cout << "Any k-move schedule has makespan >= " << stats.g1
            << "; M-PARTITION is guaranteed <= 1.5x the optimum.\n";
  return 0;
}
