// Conflict scheduling (§5, Theorem 7) in an operations guise: database
// replicas with anti-affinity rules (two replicas of the same shard must
// never share a host). The paper proves the general problem admits NO
// polynomial approximation at any ratio; this example shows the exact
// solver, the first-fit heuristic, and the 3DM gadget on which heuristics
// must sometimes fail.

#include <algorithm>
#include <iostream>

#include "ext/conflict.h"
#include "ext/threedm.h"
#include "util/table.h"

int main() {
  using namespace lrb;

  // 4 shards x 3 replicas on 4 hosts; replicas of a shard conflict.
  ConflictInstance cluster;
  cluster.num_machines = 4;
  const int shards = 4, replicas = 3;
  for (int s = 0; s < shards; ++s) {
    for (int r = 0; r < replicas; ++r) {
      cluster.sizes.push_back(10 + 7 * s + r);  // heterogeneous replica load
    }
    for (int r1 = 0; r1 < replicas; ++r1) {
      for (int r2 = r1 + 1; r2 < replicas; ++r2) {
        cluster.conflicts.emplace_back(
            static_cast<JobId>(s * replicas + r1),
            static_cast<JobId>(s * replicas + r2));
      }
    }
  }

  std::cout << "Replica anti-affinity scheduling: " << cluster.num_jobs()
            << " replicas (" << shards << " shards x " << replicas
            << "), " << cluster.num_machines << " hosts\n\n";

  const auto first_fit = conflict_first_fit(cluster);
  const auto exact = conflict_exact(cluster);
  Table table({"solver", "feasible", "makespan"});
  table.row().add("first-fit").add(first_fit.has_value()).add(
      first_fit ? std::to_string([&] {
        std::vector<Size> load(cluster.num_machines, 0);
        for (std::size_t j = 0; j < cluster.num_jobs(); ++j) {
          load[(*first_fit)[j]] += cluster.sizes[j];
        }
        return *std::max_element(load.begin(), load.end());
      }()) : "-");
  table.row().add("exact").add(exact.feasible).add(
      exact.feasible ? std::to_string(exact.makespan) : "-");
  table.print(std::cout);

  // The hardness gadget: feasibility itself encodes 3-dimensional matching.
  std::cout << "\nTheorem 7 gadget (feasibility == 3DM):\n";
  Table gadget_table({"3DM source", "n", "triples", "matchable", "gadget feasible"});
  for (int round = 0; round < 2; ++round) {
    const auto source = round == 0 ? random_matchable_3dm(3, 2, 11)
                                   : unmatchable_3dm(3, 6, 11);
    const auto gadget = conflict_gadget(source);
    const auto solved = conflict_exact(gadget.instance);
    gadget_table.row()
        .add(round == 0 ? "matchable" : "unmatchable")
        .add(source.n)
        .add(static_cast<std::uint64_t>(source.triples.size()))
        .add(solve_3dm(source).has_value())
        .add(solved.feasible);
  }
  gadget_table.print(std::cout);
  std::cout << "\nAn approximation algorithm with ANY finite ratio would have\n"
               "to answer the right column exactly - that is Theorem 7.\n";
  return 0;
}
