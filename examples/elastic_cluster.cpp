// The dynamic setting end to end: an elastic cluster where jobs arrive and
// depart online. Arrivals are placed greedily (Graham); every 40 events the
// operator spends a small move budget on rebalancing. The drain-down phase
// at the end - departures with no arrivals to backfill - is where the
// bounded rebalancing earns its keep.
//
//   $ ./examples/elastic_cluster

#include <algorithm>
#include <iostream>

#include "algo/rebalancer.h"
#include "online/scheduler.h"
#include "online/trace.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace lrb;
  using namespace lrb::online;

  const ProcId servers = 8;
  const std::int64_t k = 6;

  // Phase 1: 400 mixed events; phase 2: drain 200 of the survivors.
  TraceOptions options;
  options.num_events = 400;
  options.departure_fraction = 0.35;
  options.min_size = 5;
  options.max_size = 150;
  auto trace = random_trace(options, 2003);
  {
    std::vector<std::size_t> alive;
    std::vector<char> alive_flag;
    for (const auto& event : trace) {
      if (event.kind == EventKind::kArrive) {
        alive.push_back(event.arrival_index);
        alive_flag.push_back(1);
      } else {
        alive_flag[event.arrival_index] = 0;
      }
    }
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < alive_flag.size(); ++i) {
      if (alive_flag[i] != 0) survivors.push_back(i);
    }
    Rng rng(77);
    shuffle(std::span<std::size_t>(survivors), rng);
    const std::size_t drain = std::min<std::size_t>(200, survivors.size());
    for (std::size_t i = 0; i < drain; ++i) {
      Event event;
      event.kind = EventKind::kDepart;
      event.arrival_index = survivors[i];
      trace.push_back(event);
    }
  }

  OnlineScheduler scheduler(servers);
  std::vector<std::size_t> handles;
  std::size_t events = 0;
  std::int64_t total_moves = 0;

  std::cout << "Elastic cluster: " << servers << " servers, " << trace.size()
            << " events, rebalance every 40 events with k = " << k << "\n\n";
  Table table({"event", "alive", "makespan", "offline bound", "ratio",
               "moves so far"});
  for (const auto& event : trace) {
    if (event.kind == EventKind::kArrive) {
      handles.push_back(scheduler.on_arrive(event.size, event.move_cost));
    } else {
      scheduler.on_depart(handles[event.arrival_index]);
    }
    ++events;
    if (events % 40 == 0 && scheduler.num_alive() > 0) {
      total_moves += scheduler
                         .rebalance(
                             [](const Instance& inst, std::int64_t budget) {
                               return best_of_rebalance(inst, budget);
                             },
                             k)
                         .moves;
    }
    if (events % 60 == 0 && scheduler.num_alive() > 0) {
      table.row()
          .add(static_cast<std::uint64_t>(events))
          .add(static_cast<std::uint64_t>(scheduler.num_alive()))
          .add(scheduler.makespan())
          .add(scheduler.offline_bound())
          .add(static_cast<double>(scheduler.makespan()) /
                   static_cast<double>(scheduler.offline_bound()),
               3)
          .add(total_moves);
    }
  }
  table.print(std::cout);
  std::cout << "\nThe ratio column stays near 1 through the drain-down: a "
               "handful of\nmoves per round absorbs the holes departures "
               "leave behind.\n";
  return 0;
}
