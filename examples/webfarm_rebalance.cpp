// The paper's motivating scenario end to end: a web farm whose sites'
// popularity drifts (with occasional flash crowds) is periodically
// rebalanced under a bounded migration budget.
//
//   $ ./examples/webfarm_rebalance
//
// Compares policies over a 400-step horizon: doing nothing, GREEDY,
// M-PARTITION, best-of, and an (unrealistic) full LPT rebalance that ignores
// the migration budget. The punchline the paper's introduction promises:
// a handful of moves per round keeps the farm near-balanced at a tiny
// fraction of the migration traffic of full rebalancing.

#include <iostream>

#include "algo/rebalancer.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace lrb;
  using namespace lrb::sim;

  SimOptions options;
  options.workload.num_sites = 400;
  options.workload.max_initial_load = 2000;
  options.workload.flash_prob = 0.004;
  options.workload.flash_magnitude = 15.0;
  options.num_servers = 16;
  options.steps = 400;
  options.rebalance_every = 5;
  options.move_budget = 12;
  options.seed = 7;

  std::cout << "Web-farm rebalancing: " << options.workload.num_sites
            << " sites on " << options.num_servers << " servers, "
            << options.steps << " steps, k = " << options.move_budget
            << " migrations every " << options.rebalance_every << " steps\n\n";

  Table table({"policy", "mean imb", "p90 imb", "max imb", "total moves",
               "GB moved"});
  for (const auto& policy : standard_rebalancers()) {
    Simulator simulator(options, policy.run);
    const auto result = simulator.run();
    table.row()
        .add(policy.name)
        .add(result.imbalance.mean, 3)
        .add(result.imbalance.p90, 3)
        .add(result.imbalance.max, 3)
        .add(result.total_moves)
        .add(static_cast<double>(result.total_bytes) / 1e6, 3);
  }
  table.print(std::cout);

  // A short excerpt of the M-PARTITION time series around a flash crowd.
  Simulator simulator(options, standard_rebalancers()[2].run);
  const auto result = simulator.run();
  std::size_t flash_step = 0;
  for (const auto& step : result.series) {
    if (step.flashes > 0) {
      flash_step = step.step;
      break;
    }
  }
  const std::size_t from = flash_step > 3 ? flash_step - 3 : 0;
  std::cout << "\nM-PARTITION series around the first flash crowd (step "
            << flash_step << "):\n";
  Table series({"step", "makespan", "ideal", "imbalance", "moves", "flashes"});
  for (std::size_t s = from; s < std::min(from + 12, result.series.size());
       ++s) {
    const auto& step = result.series[s];
    series.row()
        .add(static_cast<std::uint64_t>(step.step))
        .add(step.makespan)
        .add(step.ideal)
        .add(step.imbalance, 3)
        .add(step.moves)
        .add(static_cast<std::uint64_t>(step.flashes));
  }
  series.print(std::cout);
  return 0;
}
