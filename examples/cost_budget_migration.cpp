// Arbitrary relocation costs (§3.2 / §4): websites have different content
// sizes, so migrations cost bytes, and operations hands us a byte budget B.
//
//   $ ./examples/cost_budget_migration
//
// Compares the cost-aware algorithms under a sweep of budgets:
//   - cost-PARTITION (§3.2): 1.5(1+eps)-approximation, fast
//   - the PTAS (§4): (1+eps)OPT, exponential in 1/eps (small instance here)
//   - Shmoys-Tardos GAP rounding [14]: the prior-art 2-approximation
//   - exact branch-and-bound: ground truth at this size

#include <iostream>

#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/ptas.h"
#include "core/generators.h"
#include "lp/gap.h"
#include "util/table.h"

int main() {
  using namespace lrb;

  // A small farm so the exact solver and the PTAS stay tractable: 12 sites,
  // 3 servers, migration cost proportional to site size (bytes moved).
  GeneratorOptions gen;
  gen.num_jobs = 12;
  gen.num_procs = 3;
  gen.min_size = 10;
  gen.max_size = 120;
  gen.placement = PlacementPolicy::kHotspot;
  gen.hotspot_fraction = 0.34;
  gen.hotspot_mass = 0.85;
  gen.cost_model = CostModel::kProportional;
  const Instance instance = random_instance(gen, /*seed=*/41);

  std::cout << "Budgeted website migration: " << instance.num_jobs()
            << " sites, " << instance.num_procs
            << " servers, cost = bytes moved\n"
            << "initial makespan " << instance.initial_makespan()
            << ", total bytes " << instance.total_size() << "\n\n";

  Table table({"budget B", "exact OPT", "cost-partition", "(cost)", "PTAS e=0.5",
               "(cost)", "Shmoys-Tardos", "(cost)"});
  for (Cost budget : {Cost{0}, Cost{40}, Cost{80}, Cost{160}, Cost{320}}) {
    ExactOptions exact_opt;
    exact_opt.budget = budget;
    const auto exact = exact_rebalance(instance, exact_opt);

    CostPartitionOptions cp;
    cp.budget = budget;
    const auto partition = cost_partition_rebalance(instance, cp);

    PtasOptions ptas_opt;
    ptas_opt.budget = budget;
    ptas_opt.eps = 0.5;
    const auto ptas = ptas_rebalance(instance, ptas_opt);

    const auto st = st_rebalance(instance, budget);

    table.row()
        .add(budget)
        .add(exact.best.makespan)
        .add(partition.makespan)
        .add(partition.cost)
        .add(ptas.success ? std::to_string(ptas.result.makespan) : "-")
        .add(ptas.success ? std::to_string(ptas.result.cost) : "-")
        .add(st.makespan)
        .add(st.cost);
  }
  table.print(std::cout);
  std::cout << "\nEvery algorithm's cost column stays within its budget;\n"
               "cost-PARTITION tracks 1.5x OPT, the PTAS tracks (1+eps)OPT,\n"
               "and Shmoys-Tardos is the prior-art 2x baseline the paper\n"
               "improves on.\n";
  return 0;
}
