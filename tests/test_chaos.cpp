// End-to-end tests for the chaos campaign engine (src/svc/fault/chaos)
// and the resilient retry client (src/svc/retry_client):
//
//   * a seeded campaign completes with every reply byte-identical to the
//     serial solver and zero lost/duplicated requests;
//   * a campaign with a mid-run server restart rides across it on the
//     client's reconnect path;
//   * re-running a seed reproduces the same fault plans (the replay
//     contract lrb_chaos prints on failure);
//   * a ResilientClient survives its server being killed and restarted
//     between requests, and gives up cleanly when no server exists.
//
// These suites also run under TSan in CI (clients, server event loop and
// engine workers all race through the injector).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/fault/chaos.h"
#include "svc/retry_client.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace lrb::svc::fault {
namespace {

TEST(Chaos, CampaignCompletesWithByteIdenticalReplies) {
  CampaignOptions options;
  options.seed = 0x5eed;
  options.clients = 2;
  options.requests_per_client = 4;
  options.check = true;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
  EXPECT_GE(result.server_solves, result.completed);
}

TEST(Chaos, RestartCampaignRidesAcrossServerRestart) {
  CampaignOptions options;
  options.seed = 0xdead;
  options.clients = 2;
  options.requests_per_client = 4;
  options.check = true;
  options.restart_server = true;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
  // Every client held a connection across the restart, so each one must
  // have reconnected at least once.
  EXPECT_GE(result.reconnects, options.clients) << result.summary();
}

TEST(Chaos, CacheEnabledCampaignNeverServesStaleOrMisPermutedReplies) {
  // The full fault battery with the solution cache turned on: every reply
  // — whether solved cold, deduped inside a tick, re-solved after a lost
  // reply, or served straight from the warm cache on a retry — must be
  // byte-identical to engine::cached_serial_reference for ITS OWN request
  // labels. A stale entry, a wrong permutation mapping, or a key mixup
  // between retried requests would fail the byte-compare.
  for (const std::uint64_t seed : {0xcac4eULL, 0xfeedULL, 0x31337ULL}) {
    CampaignOptions options;
    options.seed = seed;
    options.clients = 3;
    options.requests_per_client = 6;
    options.check = true;
    options.cache_bytes = std::size_t{4} << 20;
    const CampaignResult result = run_campaign(options);
    for (const auto& error : result.errors) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << std::dec << ": "
                    << error;
    }
    EXPECT_TRUE(result.ok) << result.summary();
    EXPECT_EQ(result.completed, result.requests);
  }
}

TEST(Chaos, CacheEnabledCampaignRidesAcrossServerRestart) {
  // Restarting mid-campaign swaps a warm cache for a cold one; because a
  // cached reply is a pure function of the request, clients must not be
  // able to tell (identical bytes before and after the restart).
  CampaignOptions options;
  options.seed = 0xbeefca;
  options.clients = 2;
  options.requests_per_client = 6;
  options.check = true;
  options.restart_server = true;
  options.cache_bytes = std::size_t{4} << 20;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
  EXPECT_GE(result.reconnects, options.clients) << result.summary();
}

TEST(Chaos, MultiReactorCampaignCompletesWithByteIdenticalReplies) {
  // The sharded front-end under the full fault battery: four reactors
  // frame/flush concurrently and two engine workers run concurrent ticks,
  // yet every reply must still match the serial reference byte for byte,
  // with the ledger catching any lost or duplicated outcome.
  for (const std::uint64_t seed : {0x4eacULL, 0x70b5ULL}) {
    CampaignOptions options;
    options.seed = seed;
    options.clients = 4;
    options.requests_per_client = 4;
    options.check = true;
    options.reactors = 4;
    options.tick_workers = 2;
    const CampaignResult result = run_campaign(options);
    for (const auto& error : result.errors) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << std::dec << ": "
                    << error;
    }
    EXPECT_TRUE(result.ok) << result.summary();
    EXPECT_EQ(result.completed, result.requests);
    EXPECT_GE(result.server_solves, result.completed);
  }
}

TEST(Chaos, MultiReactorCampaignRidesAcrossServerRestart) {
  // Mid-campaign drain + cold restart of a 4-reactor server: the drain
  // must answer every in-flight request on every reactor before run()
  // returns, and the clients must reconnect into the fresh shards.
  CampaignOptions options;
  options.seed = 0x4eac7dead;
  options.clients = 4;
  options.requests_per_client = 4;
  options.check = true;
  options.restart_server = true;
  options.reactors = 4;
  options.tick_workers = 2;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
  EXPECT_GE(result.reconnects, options.clients) << result.summary();
}

TEST(Chaos, MultiReactorCacheEnabledCampaignStaysByteIdentical) {
  // Reactor sharding + concurrent ticks + the canonicalizing cache: the
  // single-flight and permutation paths now race across engine workers,
  // and the reference is cached_serial_reference for every reply.
  CampaignOptions options;
  options.seed = 0xcac4e4;
  options.clients = 3;
  options.requests_per_client = 6;
  options.check = true;
  options.reactors = 3;
  options.tick_workers = 2;
  options.cache_bytes = std::size_t{4} << 20;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
}

TEST(ChaosStream, SessionCampaignKeepsTheDeltaLedgerIntact) {
  // Faults injected mid-session: every SessionClient rides resets and torn
  // frames on the exactly-once dedup path, every ack is byte-compared
  // against the serial replay mirror, and the campaign's final ledger
  // check proves no delta was lost or double-applied (server-side
  // stream.deltas_* totals equal the mirrors' exactly).
  for (const std::uint64_t seed : {0x57e4a1ULL, 0x57e4a2ULL}) {
    CampaignOptions options;
    options.seed = seed;
    options.check = true;
    options.stream_sessions = 3;
    options.deltas_per_session = 48;
    options.reactors = 2;
    const CampaignResult result = run_campaign(options);
    for (const auto& error : result.errors) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << std::dec << ": "
                    << error;
    }
    EXPECT_TRUE(result.ok) << result.summary();
    EXPECT_EQ(result.completed, result.requests);
  }
}

TEST(ChaosStream, CacheEnabledSessionCampaignStaysByteIdentical) {
  // Session replans flow through the canonicalizing solution cache; with
  // faults on, retried frames and cache hits must still reproduce the
  // cached serial replay byte for byte.
  CampaignOptions options;
  options.seed = 0x57ecac4e;
  options.check = true;
  options.stream_sessions = 2;
  options.deltas_per_session = 40;
  options.cache_bytes = std::size_t{4} << 20;
  const CampaignResult result = run_campaign(options);
  for (const auto& error : result.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.completed, result.requests);
}

TEST(Chaos, SameSeedDerivesSamePlans) {
  CampaignOptions options;
  options.seed = 123;
  options.clients = 1;
  options.requests_per_client = 2;
  const CampaignResult a = run_campaign(options);
  const CampaignResult b = run_campaign(options);
  EXPECT_TRUE(a.ok) << a.summary();
  EXPECT_TRUE(b.ok) << b.summary();
  // The fault plans — everything needed to replay — are pure functions of
  // the seed. (Raw fault counts may drift with thread interleaving; the
  // campaign-level assertions hold under any schedule.)
  EXPECT_EQ(a.server_plan.describe(), b.server_plan.describe());
  EXPECT_EQ(a.client_plan.describe(), b.client_plan.describe());
}

TEST(Chaos, CampaignSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(campaign_seed(1, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

// ---------------------------------------------------------------------------
// ResilientClient against a plain (fault-free) server.
// ---------------------------------------------------------------------------

std::string chaos_socket_path() {
  static int counter = 0;
  return "/tmp/lrb_chaos_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

class PlainServer {
 public:
  explicit PlainServer(const std::string& path) : path_(path) {
    ServerOptions options;
    options.unix_path = path_;
    options.metrics = &registry_;
    options.engine.workers = 2;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~PlainServer() { stop(); }

  void stop() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
  }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

SolveRequest small_request(std::size_t index) {
  SolveRequest request;
  request.spec = solver::BackendId::kBestOf;
  request.instance = mixed_corpus_instance(index, 9);
  request.k = 4;
  return request;
}

TEST(ResilientClient, ReconnectsAcrossServerKillAndRestart) {
  const std::string path = chaos_socket_path();
  obs::Registry metrics;
  RetryPolicy policy;
  policy.connect_timeout_ms = 2000;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 20;
  ResilientClient client(Endpoint::unix_socket(path), policy, &metrics);

  auto server = std::make_unique<PlainServer>(path);
  std::string error;
  auto first = client.solve(small_request(0), 1, &error);
  ASSERT_TRUE(first) << error;
  ASSERT_TRUE(first->result);

  // Kill the server (graceful drain, socket unlinked is NOT done — the
  // path is reused) and bring up a fresh instance on the same path. The
  // client's cached connection is now a dead socket.
  server = nullptr;
  server = std::make_unique<PlainServer>(path);

  auto second = client.solve(small_request(1), 2, &error);
  ASSERT_TRUE(second) << error;
  ASSERT_TRUE(second->result);
  EXPECT_GE(second->attempts, 2u)
      << "the dead connection should have cost at least one attempt";
  EXPECT_GE(metrics.counter("client.reconnects").value(), 1u);
  EXPECT_GE(metrics.counter("client.retries").value(), 1u);

  server = nullptr;
  unlink(path.c_str());
}

TEST(ResilientClient, GivesUpCleanlyWithoutAServer) {
  obs::Registry metrics;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.connect_timeout_ms = 50;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 2;
  ResilientClient client(
      Endpoint::unix_socket("/tmp/lrb_chaos_no_such_socket.sock"), policy,
      &metrics);
  std::string error;
  const auto outcome = client.solve(small_request(0), 1, &error);
  EXPECT_FALSE(outcome);
  EXPECT_NE(error.find("gave up after 3 attempts"), std::string::npos)
      << error;
  EXPECT_EQ(metrics.counter("client.gave_up").value(), 1u);
  EXPECT_EQ(metrics.counter("client.retries").value(), 2u);
}

TEST(ResilientClient, PingRoundTrips) {
  const std::string path = chaos_socket_path();
  PlainServer server(path);
  obs::Registry metrics;
  ResilientClient client(Endpoint::unix_socket(path), {}, &metrics);
  std::string error;
  EXPECT_TRUE(client.ping(5, &error)) << error;
  EXPECT_EQ(metrics.counter("client.connects").value(), 1u);
}

}  // namespace
}  // namespace lrb::svc::fault
