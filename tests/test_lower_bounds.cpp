// Property tests for the certified lower bounds (core/lower_bounds):
// monotonicity in the budget, agreement with brute force where brute force
// is affordable, and soundness against the exact solver. The certifier
// (check/certify) leans on these bounds, so their own proofs get tested
// here independently.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "algo/exact.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

GeneratorOptions small_options(std::uint64_t index) {
  GeneratorOptions opt;
  opt.num_jobs = 1 + index % 10;
  opt.num_procs = static_cast<ProcId>(1 + index % 4);
  opt.min_size = index % 3 == 0 ? 0 : 1;
  opt.max_size = 1 + static_cast<Size>(index % 5) * 9;
  opt.size_dist = static_cast<SizeDistribution>(index % 5);
  opt.placement = static_cast<PlacementPolicy>((index / 5) % 5);
  opt.cost_model = static_cast<CostModel>((index / 25) % 5);
  opt.max_cost = 1 + static_cast<Cost>(index % 6);
  return opt;
}

/// Brute force over every deletion subset of at most k jobs: the makespan
/// left after erasing the subset from the initial configuration, minimized.
/// Lemma 1 says greedy removal attains exactly this minimum.
Size brute_force_removal(const Instance& instance, std::int64_t k) {
  const auto n = instance.num_jobs();
  const auto loads0 = instance.initial_loads();
  Size best = instance.initial_makespan();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::int64_t>(std::popcount(mask)) > k) continue;
    auto load = loads0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) load[instance.initial[j]] -= instance.sizes[j];
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
  }
  return best;
}

TEST(LowerBounds, KRemovalBoundMatchesBruteForceDeletion) {
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    const auto inst = random_instance(small_options(trial), 300 + trial);
    for (std::int64_t k = 0;
         k <= static_cast<std::int64_t>(inst.num_jobs()); ++k) {
      EXPECT_EQ(k_removal_bound(inst, k), brute_force_removal(inst, k))
          << "trial " << trial << " k=" << k;
    }
  }
}

TEST(LowerBounds, KRemovalBoundIsNonIncreasingInK) {
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    auto opt = small_options(trial);
    opt.num_jobs = 5 + trial % 30;  // larger than the brute-force tier
    const auto inst = random_instance(opt, 900 + trial);
    Size previous = k_removal_bound(inst, 0);
    EXPECT_EQ(previous, inst.initial_makespan());
    for (std::int64_t k = 1;
         k <= static_cast<std::int64_t>(inst.num_jobs()) + 2; ++k) {
      const Size current = k_removal_bound(inst, k);
      EXPECT_LE(current, previous) << "trial " << trial << " k=" << k;
      previous = current;
    }
  }
}

TEST(LowerBounds, BudgetRemovalBoundIsNonIncreasingInB) {
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    auto opt = small_options(trial);
    opt.num_jobs = 5 + trial % 30;
    const auto inst = random_instance(opt, 1700 + trial);
    Size previous = budget_removal_bound(inst, 0);
    EXPECT_EQ(previous, inst.initial_makespan());
    Cost total = 0;
    for (const Cost c : inst.move_costs) total += c;
    for (Cost budget = 1; budget <= total + 2; ++budget) {
      const Size current = budget_removal_bound(inst, budget);
      EXPECT_LE(current, previous) << "trial " << trial << " B=" << budget;
      previous = current;
    }
  }
}

TEST(LowerBounds, KRemovalBoundNeverExceedsExactOptimum) {
  // Soundness on brute-forceable instances: the bound must sit at or below
  // the branch-and-bound optimum for the same k.
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const auto inst = random_instance(small_options(trial), 2500 + trial);
    for (std::int64_t k = 0;
         k <= static_cast<std::int64_t>(inst.num_jobs()); ++k) {
      ExactOptions options;
      options.max_moves = k;
      const auto exact = exact_rebalance(inst, options);
      ASSERT_TRUE(exact.proven_optimal) << "trial " << trial << " k=" << k;
      EXPECT_LE(k_removal_bound(inst, k), exact.best.makespan)
          << "trial " << trial << " k=" << k;
      EXPECT_LE(combined_lower_bound(inst, k), exact.best.makespan)
          << "trial " << trial << " k=" << k;
    }
  }
}

TEST(LowerBounds, BudgetRemovalBoundNeverExceedsExactOptimum) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const auto inst = random_instance(small_options(trial), 3300 + trial);
    Cost total = 0;
    for (const Cost c : inst.move_costs) total += c;
    for (Cost budget = 0; budget <= total; budget += 1 + total / 6) {
      ExactOptions options;
      options.budget = budget;
      const auto exact = exact_rebalance(inst, options);
      ASSERT_TRUE(exact.proven_optimal) << "trial " << trial << " B=" << budget;
      EXPECT_LE(budget_removal_bound(inst, budget), exact.best.makespan)
          << "trial " << trial << " B=" << budget;
    }
  }
}

TEST(LowerBounds, CombinedBoundDominatesItsParts) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const auto inst = random_instance(small_options(trial), 4100 + trial);
    const auto k = static_cast<std::int64_t>(trial % (inst.num_jobs() + 1));
    const auto combined = combined_lower_bound(inst, k);
    EXPECT_GE(combined, average_load_bound(inst));
    EXPECT_GE(combined, max_job_bound(inst));
    EXPECT_GE(combined, k_removal_bound(inst, k));
  }
}

}  // namespace
}  // namespace lrb
