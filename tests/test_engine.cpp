// Determinism suite for the parallel batch-solving engine (src/engine).
//
// The contract under test: BatchSolver::solve is byte-identical to running
// the serial entry points one instance at a time, for every worker count,
// across repeated runs, and per generator family; and the intra-instance
// parallel scans (chunked M-PARTITION, wave-parallel PTAS) reproduce their
// serial counterparts exactly, statistics included.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "algo/rebalancer.h"
#include "core/assignment.h"
#include "core/generators.h"
#include "core/instance.h"
#include "engine/batch_solver.h"
#include "solver/registry.h"
#include "util/thread_pool.h"

namespace lrb {
namespace {

using engine::BatchOptions;
using engine::BatchSolver;
using solver::BackendId;

struct Case {
  std::string name;
  Instance instance;
  std::int64_t k = 0;
};

/// Every generator family (size distribution x placement) at a small size,
/// plus the structured and degenerate corners.
std::vector<Case> family_corpus() {
  std::vector<Case> cases;
  const struct {
    const char* name;
    SizeDistribution dist;
  } dists[] = {{"uniform", SizeDistribution::kUniform},
               {"bimodal", SizeDistribution::kBimodal},
               {"zipf", SizeDistribution::kZipf},
               {"exponential", SizeDistribution::kExponential}};
  const struct {
    const char* name;
    PlacementPolicy placement;
  } placements[] = {{"random", PlacementPolicy::kRandom},
                    {"hotspot", PlacementPolicy::kHotspot},
                    {"zipf-procs", PlacementPolicy::kZipfProcs},
                    {"balanced", PlacementPolicy::kBalanced},
                    {"single-proc", PlacementPolicy::kSingleProc}};
  std::uint64_t seed = 100;
  for (const auto& dist : dists) {
    for (const auto& placement : placements) {
      GeneratorOptions gen;
      gen.num_jobs = 40;
      gen.num_procs = 6;
      gen.max_size = 120;
      gen.size_dist = dist.dist;
      gen.placement = placement.placement;
      Case c;
      c.name = std::string(dist.name) + "/" + placement.name;
      c.instance = random_instance(gen, seed++);
      c.k = 5;
      cases.push_back(std::move(c));
    }
  }
  // Structured tight families.
  {
    Case c;
    c.name = "greedy-tight";
    const auto family = greedy_tight_instance(4);
    c.instance = family.instance;
    c.k = family.k;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "partition-tight";
    const auto family = partition_tight_instance();
    c.instance = family.instance;
    c.k = family.k;
    cases.push_back(std::move(c));
  }
  // Degenerate corners.
  {
    Case c;
    c.name = "empty";
    c.instance.num_procs = 3;
    c.k = 2;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "single-job";
    c.instance.num_procs = 2;
    c.instance.sizes = {7};
    c.instance.move_costs = {1};
    c.instance.initial = {0};
    c.k = 1;
    cases.push_back(std::move(c));
  }
  return cases;
}

void expect_same(const RebalanceResult& got, const RebalanceResult& want,
                 const std::string& label) {
  EXPECT_EQ(got.assignment, want.assignment) << label;
  EXPECT_EQ(got.makespan, want.makespan) << label;
  EXPECT_EQ(got.moves, want.moves) << label;
  EXPECT_EQ(got.cost, want.cost) << label;
  EXPECT_EQ(got.threshold, want.threshold) << label;
}

/// Independent per-backend reference: calls the library entry points
/// directly, NOT through the registry dispatch, so these tests would catch
/// a registry table entry wired to the wrong algorithm. (The new lpt /
/// local-search backends get the same treatment in test_solver.cpp.)
RebalanceResult serial_reference(BackendId backend, const Instance& instance,
                                 std::int64_t k) {
  switch (backend) {
    case BackendId::kGreedy:
      return greedy_rebalance(instance, k);
    case BackendId::kMPartition:
      return m_partition_rebalance(instance, k);
    case BackendId::kBestOf:
      return best_of_rebalance(instance, k);
    default:
      break;
  }
  PtasOptions options;
  return ptas_rebalance(instance, options).result;
}

TEST(BatchSolver, MatchesSerialAcrossWorkerCountsAndRuns) {
  const auto corpus = family_corpus();
  std::vector<Instance> instances;
  std::vector<std::int64_t> ks;
  for (const auto& c : corpus) {
    instances.push_back(c.instance);
    ks.push_back(c.k);
  }
  for (BackendId backend : {BackendId::kGreedy, BackendId::kMPartition,
                            BackendId::kBestOf}) {
    std::vector<RebalanceResult> expected;
    for (const auto& c : corpus) {
      expected.push_back(serial_reference(backend, c.instance, c.k));
    }
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      BatchOptions options;
      options.workers = workers;
      options.spec = backend;
      BatchSolver solver(options);
      for (int run = 0; run < 2; ++run) {
        const auto results = solver.solve(instances, ks);
        ASSERT_EQ(results.size(), corpus.size());
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          expect_same(results[i], expected[i],
                      std::string(solver::backend_name(backend)) +
                          " workers=" +
                          std::to_string(workers) + " run=" +
                          std::to_string(run) + " case=" + corpus[i].name);
        }
      }
    }
  }
}

TEST(BatchSolver, ForcedIntraParallelPathStaysIdentical) {
  // Drop the intra-instance threshold to 0 so even tiny instances route
  // through the chunked parallel scan; results must not change.
  const auto corpus = family_corpus();
  std::vector<Instance> instances;
  std::vector<std::int64_t> ks;
  for (const auto& c : corpus) {
    instances.push_back(c.instance);
    ks.push_back(c.k);
  }
  std::vector<RebalanceResult> expected;
  for (const auto& c : corpus) {
    expected.push_back(
        serial_reference(BackendId::kMPartition, c.instance, c.k));
  }
  BatchOptions options;
  options.workers = 4;
  options.spec = BackendId::kMPartition;
  options.intra_parallel_min_jobs = 0;
  BatchSolver solver(options);
  const auto results = solver.solve(instances, ks);
  ASSERT_EQ(results.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    expect_same(results[i], expected[i], "intra-parallel " + corpus[i].name);
  }
}

TEST(BatchSolver, PtasMatchesSerial) {
  GeneratorOptions gen;
  gen.num_jobs = 10;
  gen.num_procs = 3;
  gen.max_size = 25;
  gen.placement = PlacementPolicy::kHotspot;
  gen.cost_model = CostModel::kUniform;
  gen.max_cost = 5;
  std::vector<Instance> instances;
  std::vector<std::int64_t> ks;
  std::vector<RebalanceResult> expected;
  PtasOptions ptas;
  ptas.budget = 8;
  ptas.eps = 0.5;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    instances.push_back(random_instance(gen, seed));
    ks.push_back(3);
    expected.push_back(ptas_rebalance(instances.back(), ptas).result);
  }
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    BatchOptions options;
    options.workers = workers;
    options.spec = solver::SolverSpec(BackendId::kPtas,
                                      {.budget = ptas.budget, .eps = ptas.eps});
    BatchSolver solver(options);
    const auto results = solver.solve(instances, ks);
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      expect_same(results[i], expected[i],
                  "ptas workers=" + std::to_string(workers) + " i=" +
                      std::to_string(i));
    }
  }
}

TEST(BatchSolver, SolveOneMatchesSolveAndFillsLatencies) {
  const auto corpus = family_corpus();
  BatchOptions options;
  options.workers = 2;
  BatchSolver solver(options);
  std::vector<Instance> instances;
  std::vector<std::int64_t> ks;
  for (const auto& c : corpus) {
    instances.push_back(c.instance);
    ks.push_back(c.k);
  }
  std::vector<double> latencies;
  const auto results = solver.solve(instances, ks, &latencies);
  ASSERT_EQ(latencies.size(), corpus.size());
  for (double l : latencies) EXPECT_GE(l, 0.0);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    expect_same(solver.solve_one(instances[i], ks[i]), results[i],
                "solve_one " + corpus[i].name);
  }
}

TEST(BatchSolver, EmptyBatchIsFine) {
  BatchSolver solver;
  const auto results = solver.solve({}, {});
  EXPECT_TRUE(results.empty());
}

TEST(BatchSolver, EmptyBatchFillsEmptyLatencies) {
  BatchSolver solver;
  std::vector<double> latencies{1.0, 2.0, 3.0};  // stale contents must go
  const auto results = solver.solve({}, {}, &latencies);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(latencies.empty());
  const auto item_results = solver.solve_items({}, &latencies);
  EXPECT_TRUE(item_results.empty());
  EXPECT_TRUE(latencies.empty());
}

TEST(BatchSolver, ManyMoreWorkersThanInstances) {
  // Workers far beyond the instance count must neither deadlock nor
  // perturb results (idle workers simply never pick up a task).
  const auto corpus = family_corpus();
  BatchOptions options;
  options.workers = 16;
  BatchSolver solver(options);
  std::vector<Instance> instances{corpus[0].instance, corpus[1].instance};
  std::vector<std::int64_t> ks{corpus[0].k, corpus[1].k};
  const auto results = solver.solve(instances, ks);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_same(results[i],
                serial_reference(BackendId::kBestOf, instances[i], ks[i]),
                "workers>>instances i=" + std::to_string(i));
  }
}

TEST(BatchSolver, SolveItemsMixesAlgosWithinOneTick) {
  // The serving layer's entry point: items of one tick may carry different
  // algorithms yet each must match its own serial reference.
  const auto corpus = family_corpus();
  BatchOptions options;
  options.workers = 4;
  BatchSolver solver(options);
  const BackendId backends[] = {BackendId::kGreedy, BackendId::kMPartition,
                                BackendId::kBestOf};
  std::vector<BatchSolver::TickItem> items;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    BatchSolver::TickItem item;
    item.instance = &corpus[i].instance;
    item.k = corpus[i].k;
    item.spec = backends[i % std::size(backends)];
    items.push_back(item);
  }
  std::vector<double> latencies;
  const auto results = solver.solve_items(items, &latencies);
  ASSERT_EQ(results.size(), items.size());
  ASSERT_EQ(latencies.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_GE(latencies[i], 0.0);
    expect_same(results[i],
                serial_reference(items[i].spec.backend, corpus[i].instance,
                                 corpus[i].k),
                "solve_items mixed i=" + std::to_string(i));
  }
}

TEST(BatchSolver, SerialReferenceMatchesLibraryEntryPoints) {
  // Name / alias / wire-id round-trips live in test_solver.cpp; here we
  // only pin the engine's serial reference to the library entry points.
  const auto corpus = family_corpus();
  for (BackendId backend : {BackendId::kGreedy, BackendId::kMPartition,
                            BackendId::kBestOf}) {
    for (const auto& c : corpus) {
      expect_same(engine::solve_serial_reference(backend, c.instance, c.k),
                  serial_reference(backend, c.instance, c.k),
                  std::string("solve_serial_reference ") +
                      solver::backend_name(backend) + " " + c.name);
    }
  }
}

TEST(ParallelMPartition, BitIdenticalIncludingStatsForAnyChunkCount) {
  ThreadPool pool(4);
  const auto corpus = family_corpus();
  for (const auto& c : corpus) {
    MPartitionStats serial_stats;
    const auto serial = m_partition_rebalance(c.instance, c.k, &serial_stats);
    for (std::size_t chunks : {std::size_t{2}, std::size_t{3},
                               std::size_t{8}}) {
      MPartitionStats par_stats;
      const auto par = m_partition_rebalance_parallel(c.instance, c.k, pool,
                                                      &par_stats, chunks);
      expect_same(par, serial,
                  c.name + " chunks=" + std::to_string(chunks));
      EXPECT_EQ(par_stats.accepted_threshold, serial_stats.accepted_threshold)
          << c.name;
      EXPECT_EQ(par_stats.start_threshold, serial_stats.start_threshold)
          << c.name;
      EXPECT_EQ(par_stats.removals, serial_stats.removals) << c.name;
      EXPECT_EQ(par_stats.guesses_evaluated, serial_stats.guesses_evaluated)
          << c.name;
    }
  }
}

TEST(ParallelMPartition, LargerInstanceAutoChunking) {
  ThreadPool pool(4);
  GeneratorOptions gen;
  gen.num_jobs = 5000;
  gen.num_procs = 32;
  gen.max_size = 2000;
  gen.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto inst = random_instance(gen, seed);
    MPartitionStats serial_stats, par_stats;
    const auto serial = m_partition_rebalance(inst, 50, &serial_stats);
    // chunks = 0: the implementation picks the chunking itself.
    const auto par =
        m_partition_rebalance_parallel(inst, 50, pool, &par_stats, 0);
    expect_same(par, serial, "auto-chunk seed=" + std::to_string(seed));
    EXPECT_EQ(par_stats.guesses_evaluated, serial_stats.guesses_evaluated);
  }
}

TEST(ParallelPtas, BitIdenticalForAnyWaveSize) {
  ThreadPool pool(4);
  GeneratorOptions gen;
  gen.num_jobs = 10;
  gen.num_procs = 3;
  gen.max_size = 25;
  gen.placement = PlacementPolicy::kHotspot;
  gen.cost_model = CostModel::kUniform;
  gen.max_cost = 5;
  PtasOptions options;
  options.budget = 8;
  options.eps = 0.5;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = random_instance(gen, seed);
    const auto serial = ptas_rebalance(inst, options);
    for (std::size_t wave : {std::size_t{1}, std::size_t{3}, std::size_t{0}}) {
      const auto par = ptas_rebalance_parallel(inst, options, pool, wave);
      const std::string label =
          "seed=" + std::to_string(seed) + " wave=" + std::to_string(wave);
      EXPECT_EQ(par.success, serial.success) << label;
      expect_same(par.result, serial.result, label);
      EXPECT_EQ(par.accepted_guess, serial.accepted_guess) << label;
      EXPECT_EQ(par.states, serial.states) << label;
      EXPECT_EQ(par.guesses_evaluated, serial.guesses_evaluated) << label;
    }
  }
}

}  // namespace
}  // namespace lrb
