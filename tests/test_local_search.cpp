// Tests for the local-search post-optimizer and the cost-aware greedy
// baseline.

#include <gtest/gtest.h>

#include "algo/cost_greedy.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/m_partition.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

TEST(LocalSearch, NeverWorsensAndRespectsBudgets) {
  GeneratorOptions opt;
  opt.num_jobs = 40;
  opt.num_procs = 6;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {2, 6, 15}) {
      const auto base = m_partition_rebalance(inst, k);
      LocalSearchOptions options;
      options.max_moves = k;
      LocalSearchStats stats;
      const auto improved = local_search_improve(inst, base, options, &stats);
      EXPECT_LE(improved.makespan, base.makespan);
      EXPECT_LE(improved.moves, k);
      EXPECT_GE(improved.makespan, combined_lower_bound(inst, k));
      EXPECT_FALSE(validate(inst, improved.assignment).has_value());
    }
  }
}

TEST(LocalSearch, FixesTheTightExample) {
  // PARTITION leaves the paper's tight example untouched at ratio 1.5; one
  // local-search relocation recovers the true optimum.
  const auto family = partition_tight_instance();
  const auto base = m_partition_rebalance(family.instance, family.k);
  EXPECT_EQ(base.makespan, 3);
  LocalSearchOptions options;
  options.max_moves = family.k;
  LocalSearchStats stats;
  const auto improved =
      local_search_improve(family.instance, base, options, &stats);
  EXPECT_EQ(improved.makespan, family.opt);
  EXPECT_EQ(improved.moves, 1);
  EXPECT_GE(stats.relocations, 1);
}

TEST(LocalSearch, MoveRefundsAllowReroutingHome) {
  // Job 0 was moved away by the start solution; sending it home must count
  // as a refund, enabling a second move within the same budget.
  const auto inst = make_instance({6, 5, 1}, {0, 1, 1}, 2);
  // Start: job 0 moved to P1 -> loads {0, 12}, 1 move used, k = 1.
  RebalanceResult start = finalize_result(inst, {1, 1, 1});
  ASSERT_EQ(start.moves, 1);
  ASSERT_EQ(start.makespan, 12);
  LocalSearchOptions options;
  options.max_moves = 1;
  const auto improved = local_search_improve(inst, start, options);
  // Best reachable with <= 1 total move (vs initial): e.g. job 0 home and
  // job 1 or 2 moved, or just job 0 home (loads {6,6} with 0 moves).
  EXPECT_LE(improved.makespan, 7);
  EXPECT_LE(improved.moves, 1);
}

TEST(LocalSearch, SwapStepFiresWhenSingleMovesCannotHelp) {
  // P0 = {8, 4}, P1 = {6}; budget-free example: moving 8 or 4 to P1 makes
  // P1 >= 10 or 12; swapping 8 <-> 6 yields {6,4} | {8} = 10... also not
  // better than 12? loads: P0=12, P1=6. Move 4 -> P1: {8, 10} better (10).
  // Force the swap: P0 = {7, 5}, P1 = {6, 4}: loads 12, 10. Move 5 -> P1
  // lands 15 (no); move 7 lands 17 (no). Swap 7<->6: {6,5}|{7,4} = 11 both.
  const auto inst = make_instance({7, 5, 6, 4}, {0, 0, 1, 1}, 2);
  RebalanceResult start = no_move_result(inst);
  LocalSearchOptions options;
  LocalSearchStats stats;
  const auto improved = local_search_improve(inst, start, options, &stats);
  EXPECT_EQ(improved.makespan, 11);
  EXPECT_GE(stats.swaps, 1);
}

TEST(LocalSearch, MPartitionLsAlwaysAtLeastAsGoodAsMPartition) {
  GeneratorOptions opt;
  opt.num_jobs = 30;
  opt.num_procs = 5;
  opt.placement = PlacementPolicy::kSingleProc;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {3, 8}) {
      const auto plain = m_partition_rebalance(inst, k);
      const auto polished = m_partition_ls_rebalance(inst, k);
      EXPECT_LE(polished.makespan, plain.makespan);
      EXPECT_LE(polished.moves, k);
    }
  }
}

TEST(CostGreedy, RespectsBudgetAcrossModels) {
  GeneratorOptions opt;
  opt.num_jobs = 30;
  opt.num_procs = 5;
  opt.placement = PlacementPolicy::kHotspot;
  for (auto model : {CostModel::kUniform, CostModel::kProportional,
                     CostModel::kInverse}) {
    opt.cost_model = model;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (Cost budget : {Cost{0}, Cost{10}, Cost{100}}) {
        const auto result = cost_greedy_rebalance(inst, budget);
        EXPECT_LE(result.cost, budget);
        EXPECT_LE(result.makespan, inst.initial_makespan());
        EXPECT_FALSE(validate(inst, result.assignment).has_value());
      }
    }
  }
}

TEST(CostGreedy, ZeroBudgetMovesNothingUnlessFree) {
  const auto inst = make_instance({9, 3, 2}, {4, 4, 4}, {0, 0, 1}, 3);
  const auto result = cost_greedy_rebalance(inst, 0);
  EXPECT_EQ(result.cost, 0);
  EXPECT_EQ(result.moves, 0);
}

TEST(CostGreedy, SpendsBudgetOnHighLeverageJobs) {
  // Two candidates off P0: size 10 cost 10, size 9 cost 1. Budget 1 forces
  // the high-leverage choice.
  const auto inst =
      make_instance({10, 9, 1}, {10, 1, 1}, {0, 0, 1}, 2);
  const auto result = cost_greedy_rebalance(inst, 1);
  EXPECT_LE(result.cost, 1);
  EXPECT_EQ(result.makespan, 10);  // {10} | {9, 1} -> 10 vs initial 19
}

}  // namespace
}  // namespace lrb
