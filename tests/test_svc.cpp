// Loopback tests for the rebalancing service (src/svc): wire protocol
// round-trips, framing robustness (partial reads/writes, oversized and
// malformed headers), the determinism contract (every SolveOk payload
// byte-identical to the serial solver), deadline/overload shedding,
// graceful drain (Drain request and SIGTERM), and metrics agreement
// between the server's registry and client-observed counts. The
// MultiReactor suite covers the sharded front-end: round-robin connection
// distribution, per-reactor counter reconciliation, and drain/SIGTERM with
// an in-flight request on every reactor.
//
// The concurrency-heavy suites (SvcLoopback, MultiReactor) also run under
// TSan in CI.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace lrb::svc {
namespace {

// ---------------------------------------------------------------------------
// Wire-format unit tests (no sockets).
// ---------------------------------------------------------------------------

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::string raw_header(const char magic[4], std::uint16_t version,
                       std::uint16_t type, std::uint64_t request_id,
                       std::uint32_t payload_len) {
  std::string out(magic, 4);
  append_u16(out, version);
  append_u16(out, type);
  append_u64(out, request_id);
  append_u32(out, payload_len);
  return out;
}

SolveRequest sample_request(std::size_t index = 0) {
  SolveRequest request;
  request.spec = solver::BackendId::kBestOf;
  request.instance = mixed_corpus_instance(index, 42);
  request.k = 5;
  return request;
}

TEST(Wire, HeaderRoundTrip) {
  std::string frame;
  encode_frame(frame, MsgType::kSolve, 0xdeadbeefcafe1234ull, "abc");
  ASSERT_EQ(frame.size(), kHeaderSize + 3);
  FrameHeader header;
  ASSERT_EQ(decode_header(frame, &header), DecodeStatus::kOk);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, MsgType::kSolve);
  EXPECT_EQ(header.request_id, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(header.payload_len, 3u);
  EXPECT_EQ(frame.substr(kHeaderSize), "abc");
}

TEST(Wire, HeaderNeedsAllTwentyBytes) {
  std::string frame;
  encode_frame(frame, MsgType::kPing, 1, "");
  FrameHeader header;
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    EXPECT_EQ(decode_header(std::string_view(frame).substr(0, len), &header),
              DecodeStatus::kNeedMore)
        << len;
  }
  EXPECT_EQ(decode_header(frame, &header), DecodeStatus::kOk);
}

TEST(Wire, HeaderRejectsBadMagicVersionAndOversize) {
  FrameHeader header;
  EXPECT_EQ(decode_header(raw_header("XRBS", kWireVersion, 1, 0, 0), &header),
            DecodeStatus::kBadMagic);
  EXPECT_EQ(decode_header(raw_header("LRBS", 999, 1, 0, 0), &header),
            DecodeStatus::kBadVersion);
  EXPECT_EQ(
      decode_header(raw_header("LRBS", kWireVersion, 1, 0, kMaxPayload + 1),
                    &header),
      DecodeStatus::kTooLarge);
  EXPECT_EQ(
      decode_header(raw_header("LRBS", kWireVersion, 1, 7, kMaxPayload),
                    &header),
      DecodeStatus::kOk);
}

TEST(Wire, SolveRequestRoundTrip) {
  SolveRequest request = sample_request(3);
  request.spec.backend = solver::BackendId::kPtas;
  request.deadline_ms = 250;
  request.spec.params.budget = 77;
  request.spec.params.eps = 0.5;
  std::string error;
  const auto decoded =
      decode_solve_request(encode_solve_request(request), &error);
  ASSERT_TRUE(decoded) << error;
  EXPECT_EQ(decoded->spec.backend, request.spec.backend);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->spec.params.budget, request.spec.params.budget);
  EXPECT_DOUBLE_EQ(decoded->spec.params.eps, request.spec.params.eps);
  EXPECT_EQ(decoded->instance.num_procs, request.instance.num_procs);
  EXPECT_EQ(decoded->instance.sizes, request.instance.sizes);
  EXPECT_EQ(decoded->instance.move_costs, request.instance.move_costs);
  EXPECT_EQ(decoded->instance.initial, request.instance.initial);
}

TEST(Wire, SolveRequestRejectsCorruption) {
  const std::string good = encode_solve_request(sample_request());
  std::string error;
  // Truncations at every boundary must fail cleanly, never crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(
        decode_solve_request(std::string_view(good).substr(0, len), &error))
        << len;
  }
  // Trailing garbage is also rejected (lengths are exact).
  EXPECT_FALSE(decode_solve_request(good + "x", &error));
  // Unknown algo id.
  std::string bad_algo = good;
  bad_algo[0] = 9;
  EXPECT_FALSE(decode_solve_request(bad_algo, &error));
  // Structurally invalid instance: initial placement out of range.
  SolveRequest invalid = sample_request();
  invalid.instance.initial[0] = invalid.instance.num_procs;
  EXPECT_FALSE(decode_solve_request(encode_solve_request(invalid), &error));
  EXPECT_FALSE(error.empty());
}

TEST(Wire, SolveReplyRoundTripIsExact) {
  const SolveRequest request = sample_request(7);
  const RebalanceResult result = engine::solve_serial_reference(
      request.spec, request.instance, request.k);
  const std::string payload = encode_solve_reply_payload(result);
  std::string error;
  const auto decoded = decode_solve_reply_payload(payload, &error);
  ASSERT_TRUE(decoded) << error;
  EXPECT_EQ(decoded->makespan, result.makespan);
  EXPECT_EQ(decoded->moves, result.moves);
  EXPECT_EQ(decoded->cost, result.cost);
  EXPECT_EQ(decoded->threshold, result.threshold);
  EXPECT_EQ(decoded->assignment, result.assignment);
  // Purity: re-encoding the decoded result reproduces the bytes, which is
  // what makes byte-comparing replies against the serial solver meaningful.
  EXPECT_EQ(encode_solve_reply_payload(*decoded), payload);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_solve_reply_payload(
        std::string_view(payload).substr(0, len), &error))
        << len;
  }
}

TEST(Wire, ErrorPayloadRoundTrip) {
  const std::string payload =
      encode_error_payload(ErrorCode::kOverloaded, "queue full");
  const auto decoded = decode_error_payload(payload);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->code, ErrorCode::kOverloaded);
  EXPECT_EQ(decoded->text, "queue full");
  EXPECT_FALSE(decode_error_payload(""));
  EXPECT_FALSE(decode_error_payload(payload.substr(0, 7)));
  EXPECT_STREQ(error_code_name(ErrorCode::kOverloaded), "overloaded");
}

// ---------------------------------------------------------------------------
// Loopback harness.
// ---------------------------------------------------------------------------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/lrb_svc_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A server on a fresh Unix socket with its own metrics registry, run() on
/// a background thread. finish() drains via notify_signal (unless a Drain
/// request already stopped it) and joins.
class TestServer {
 public:
  explicit TestServer(ServerOptions options = {}) {
    path_ = unique_socket_path();
    options.unix_path = path_;
    options.metrics = &registry_;
    if (options.engine.workers == 0) options.engine.workers = 2;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() { finish(); }

  void finish() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
    unlink(path_.c_str());
  }

  /// Joins run() without signalling — for tests where a Drain request or a
  /// signal already triggered the drain. Hangs (and hits the ctest timeout)
  /// if the server never finishes draining, which IS the failure signal.
  void join_drained() {
    if (runner_.joinable()) runner_.join();
  }

  /// Spin-waits until `counter` reaches `want` — used to order test
  /// actions after server-side processing without sleeping blindly.
  void wait_for_counter(const std::string& counter, std::uint64_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (registry_.counter(counter).value() < want) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << counter << " never reached " << want;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Client connect() {
    std::string error;
    auto client = Client::connect_unix(path_, &error);
    EXPECT_TRUE(client) << error;
    return client ? std::move(*client) : Client();
  }

  Server& server() { return *server_; }
  obs::Registry& registry() { return registry_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

std::string expected_reply_payload(const SolveRequest& request) {
  return encode_solve_reply_payload(engine::solve_serial_reference(
      request.spec, request.instance, request.k));
}

// ---------------------------------------------------------------------------
// Loopback tests.
// ---------------------------------------------------------------------------

TEST(SvcLoopback, PingEchoesPayloadAndRequestId) {
  TestServer ts;
  Client client = ts.connect();
  FrameHeader header;
  std::string payload, error;
  ASSERT_TRUE(client.call(MsgType::kPing, 99, "hello svc", &header, &payload,
                          &error))
      << error;
  EXPECT_EQ(header.type, MsgType::kPong);
  EXPECT_EQ(header.request_id, 99u);
  EXPECT_EQ(payload, "hello svc");
}

TEST(SvcLoopback, SolveRepliesAreByteIdenticalToSerialAcrossAlgos) {
  TestServer ts;
  Client client = ts.connect();
  std::uint64_t id = 1;
  for (const solver::BackendId backend :
       {solver::BackendId::kGreedy, solver::BackendId::kMPartition,
        solver::BackendId::kBestOf, solver::BackendId::kLpt,
        solver::BackendId::kLocalSearch}) {
    for (std::size_t i = 0; i < 6; ++i) {
      SolveRequest request = sample_request(i);
      request.spec = backend;
      std::string error;
      const auto outcome = client.solve(request, id++, &error);
      ASSERT_TRUE(outcome) << error;
      ASSERT_TRUE(outcome->result) << "unexpected server error";
      EXPECT_EQ(outcome->raw_payload, expected_reply_payload(request))
          << solver::backend_name(backend) << " i=" << i;
    }
  }
  // The small PTAS case rides the same contract.
  SolveRequest ptas = sample_request(1);
  ptas.spec.backend = solver::BackendId::kPtas;
  ptas.instance = mixed_corpus_instance(0, 7);
  ptas.instance.sizes.resize(12);
  ptas.instance.initial.resize(12);
  ptas.instance.move_costs.resize(12);
  ptas.k = 3;
  ptas.spec.params.budget = 10;
  ptas.spec.params.eps = 0.5;
  std::string error;
  const auto outcome = client.solve(ptas, id++, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->result);
  EXPECT_EQ(outcome->raw_payload, expected_reply_payload(ptas));
}

TEST(SvcLoopback, ConcurrentClientsStayDeterministic) {
  ServerOptions options;
  options.max_batch = 4;  // force multi-request coalescing across ticks
  TestServer ts(std::move(options));
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&ts, &failures, c] {
      Client client = ts.connect();
      for (int i = 0; i < kRequests; ++i) {
        const std::size_t index =
            static_cast<std::size_t>(c) * 100 + static_cast<std::size_t>(i);
        SolveRequest request = sample_request(index);
        request.spec = (index % 2 == 0) ? solver::BackendId::kBestOf
                                        : solver::BackendId::kGreedy;
        std::string error;
        const auto outcome = client.solve(request, index, &error);
        if (!outcome || !outcome->result ||
            outcome->raw_payload != expected_reply_payload(request)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ts.registry().counter("svc.replies_solve_ok").value(),
            static_cast<std::uint64_t>(kClients) * kRequests);
}

TEST(SvcLoopback, PartialReadsReassembleFrames) {
  TestServer ts;
  Client client = ts.connect();
  SolveRequest request = sample_request(2);
  std::string frame;
  encode_frame(frame, MsgType::kSolve, 31337,
               encode_solve_request(request));
  // Dribble the frame in 7-byte chunks (splitting both the header and the
  // payload mid-way); the server must reassemble and answer normally.
  std::string error;
  for (std::size_t pos = 0; pos < frame.size(); pos += 7) {
    ASSERT_TRUE(client.send_bytes(
        std::string_view(frame).substr(pos, 7), &error))
        << error;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kSolveOk);
  EXPECT_EQ(header.request_id, 31337u);
  EXPECT_EQ(payload, expected_reply_payload(request));
}

TEST(SvcLoopback, TwoFramesInOneWriteBothAnswered) {
  TestServer ts;
  Client client = ts.connect();
  const SolveRequest a = sample_request(4);
  const SolveRequest b = sample_request(5);
  std::string bytes;
  encode_frame(bytes, MsgType::kSolve, 1, encode_solve_request(a));
  encode_frame(bytes, MsgType::kSolve, 2, encode_solve_request(b));
  std::string error;
  ASSERT_TRUE(client.send_bytes(bytes, &error)) << error;
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  ASSERT_EQ(header.request_id, 1u);
  EXPECT_EQ(payload, expected_reply_payload(a));
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  ASSERT_EQ(header.request_id, 2u);
  EXPECT_EQ(payload, expected_reply_payload(b));
}

TEST(SvcLoopback, SlowReaderGetsFullReplyViaPartialWrites) {
  TestServer ts;
  Client client = ts.connect();
  // A 4 MiB ping echo cannot fit the socket buffers while the client is
  // not reading, so the server must buffer and finish via POLLOUT.
  const std::string big(4u << 20, 'x');
  std::string error;
  ASSERT_TRUE(client.send_frame(MsgType::kPing, 5, big, &error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kPong);
  EXPECT_EQ(payload.size(), big.size());
  EXPECT_EQ(payload, big);
}

TEST(SvcLoopback, OversizedHeaderIsRejectedAndConnectionCloses) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;
  ASSERT_TRUE(client.send_bytes(
      raw_header("LRBS", kWireVersion, static_cast<std::uint16_t>(
                                           MsgType::kPing),
                 12, kMaxPayload + 1),
      &error))
      << error;
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  ASSERT_EQ(header.type, MsgType::kError);
  const auto reply = decode_error_payload(payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, ErrorCode::kBadRequest);
  // After the error the server closes the connection.
  EXPECT_FALSE(client.recv_frame(&header, &payload, &error));
  EXPECT_EQ(ts.registry().counter("svc.bad_requests").value(), 1u);
}

TEST(SvcLoopback, BadMagicClosesConnection) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;
  ASSERT_TRUE(client.send_bytes(
      raw_header("EVIL", kWireVersion,
                 static_cast<std::uint16_t>(MsgType::kPing), 0, 0),
      &error));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kError);
  EXPECT_FALSE(client.recv_frame(&header, &payload, &error));
}

TEST(SvcLoopback, MalformedSolvePayloadGetsBadRequest) {
  TestServer ts;
  Client client = ts.connect();
  FrameHeader header;
  std::string payload, error;
  ASSERT_TRUE(client.call(MsgType::kSolve, 8, "not a solve payload", &header,
                          &payload, &error))
      << error;
  ASSERT_EQ(header.type, MsgType::kError);
  const auto reply = decode_error_payload(payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, ErrorCode::kBadRequest);
  // The connection survives a bad payload (only framing-level corruption
  // kills it): a follow-up solve still works.
  const SolveRequest request = sample_request(1);
  const auto outcome = client.solve(request, 9, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->result);
  EXPECT_EQ(outcome->raw_payload, expected_reply_payload(request));
}

TEST(SvcLoopback, DeadlineShedsBeforeDispatch) {
  ServerOptions options;
  options.tick_delay_ms = 100;  // every tick dispatches at least 100ms late
  TestServer ts(std::move(options));
  Client client = ts.connect();
  SolveRequest request = sample_request(0);
  request.deadline_ms = 1;
  std::string error;
  const auto outcome = client.solve(request, 1, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->server_error) << "expected a deadline shed";
  EXPECT_EQ(outcome->server_error->code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(ts.registry().counter("svc.shed_deadline").value(), 1u);
  // A deadline-free request on the same connection still succeeds.
  SolveRequest relaxed = sample_request(0);
  const auto ok = client.solve(relaxed, 2, &error);
  ASSERT_TRUE(ok) << error;
  ASSERT_TRUE(ok->result);
  EXPECT_EQ(ok->raw_payload, expected_reply_payload(relaxed));
}

TEST(SvcLoopback, QueueDepthBackpressureShedsWithOverloaded) {
  ServerOptions options;
  options.max_queue = 1;
  options.max_batch = 1;
  options.tick_delay_ms = 300;  // hold the first solve in the queue
  TestServer ts(std::move(options));
  Client client = ts.connect();
  const SolveRequest first = sample_request(0);
  const SolveRequest second = sample_request(1);
  std::string error;
  // Pipeline both without reading: the second arrives while the first is
  // still pending, so admission control must shed it — not hang.
  ASSERT_TRUE(client.send_frame(MsgType::kSolve, 1,
                                encode_solve_request(first), &error));
  ASSERT_TRUE(client.send_frame(MsgType::kSolve, 2,
                                encode_solve_request(second), &error));
  // Reply 1 is the Overloaded shed for request 2 (queued immediately);
  // reply 2 is request 1's result after the delayed tick.
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.request_id, 2u);
  ASSERT_EQ(header.type, MsgType::kError);
  const auto reply = decode_error_payload(payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, ErrorCode::kOverloaded);
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.request_id, 1u);
  EXPECT_EQ(header.type, MsgType::kSolveOk);
  EXPECT_EQ(payload, expected_reply_payload(first));
  EXPECT_EQ(ts.registry().counter("svc.shed_overloaded").value(), 1u);
}

TEST(SvcLoopback, DrainRequestAnswersInFlightThenAcks) {
  ServerOptions options;
  options.tick_delay_ms = 50;  // keep the solve in flight during the drain
  TestServer ts(std::move(options));
  Client client = ts.connect();
  const SolveRequest request = sample_request(3);
  std::string error;
  // Solve, then Drain, then a post-drain Solve — all pipelined.
  ASSERT_TRUE(client.send_frame(MsgType::kSolve, 1,
                                encode_solve_request(request), &error));
  ASSERT_TRUE(client.send_frame(MsgType::kDrain, 2, "", &error));
  ASSERT_TRUE(client.send_frame(MsgType::kSolve, 3,
                                encode_solve_request(request), &error));
  // The post-drain solve is rejected immediately with Draining...
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.request_id, 3u);
  ASSERT_EQ(header.type, MsgType::kError);
  const auto rejected = decode_error_payload(payload);
  ASSERT_TRUE(rejected);
  EXPECT_EQ(rejected->code, ErrorCode::kDraining);
  // ...the admitted solve is still answered in full...
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.request_id, 1u);
  ASSERT_EQ(header.type, MsgType::kSolveOk);
  EXPECT_EQ(payload, expected_reply_payload(request));
  // ...and DrainOk arrives only after it (same FIFO write buffer).
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kDrainOk);
  // run() returns on its own; no signal needed.
  ts.join_drained();
  EXPECT_EQ(ts.registry().counter("svc.replies_solve_ok").value(), 1u);
  EXPECT_EQ(ts.registry().counter("svc.rejected_draining").value(), 1u);
  EXPECT_EQ(ts.registry().counter("svc.dropped_replies").value(), 0u);
}

TEST(SvcLoopback, SigtermDrainsWithZeroDroppedRequests) {
  ServerOptions options;
  options.tick_delay_ms = 50;
  TestServer ts(std::move(options));
  install_signal_drain(&ts.server());
  Client client = ts.connect();
  const SolveRequest request = sample_request(6);
  std::string error;
  ASSERT_TRUE(client.send_frame(MsgType::kSolve, 41,
                                encode_solve_request(request), &error));
  // Wait for the solve to be admitted, then let SIGTERM land while it is
  // still in flight (the 50 ms tick delay keeps it pending): the handler
  // forwards through the self-pipe and the drain must not drop it.
  ts.wait_for_counter("svc.requests_solve", 1);
  raise(SIGTERM);
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.request_id, 41u);
  EXPECT_EQ(header.type, MsgType::kSolveOk);
  EXPECT_EQ(payload, expected_reply_payload(request));
  // EOF after the flush: the server closed the connection on its way out.
  EXPECT_FALSE(client.recv_frame(&header, &payload, &error));
  ts.join_drained();
  install_signal_drain(nullptr);
  EXPECT_EQ(ts.registry().counter("svc.replies_solve_ok").value(), 1u);
  EXPECT_EQ(ts.registry().counter("svc.shed_deadline").value(), 0u);
  EXPECT_EQ(ts.registry().counter("svc.dropped_replies").value(), 0u);
}

TEST(SvcLoopback, StatsSnapshotAgreesWithClientObservedCounts) {
  TestServer ts;
  Client client = ts.connect();
  constexpr std::uint64_t kSolves = 5;
  constexpr std::uint64_t kPings = 3;
  std::string error;
  for (std::uint64_t i = 0; i < kSolves; ++i) {
    const SolveRequest request = sample_request(i);
    const auto outcome = client.solve(request, i, &error);
    ASSERT_TRUE(outcome) << error;
    ASSERT_TRUE(outcome->result);
  }
  FrameHeader header;
  std::string payload;
  for (std::uint64_t i = 0; i < kPings; ++i) {
    ASSERT_TRUE(client.call(MsgType::kPing, 100 + i, "x", &header, &payload,
                            &error))
        << error;
  }
  // The Stats request returns the registry snapshot; every count the
  // client observed must be present exactly.
  ASSERT_TRUE(
      client.call(MsgType::kStats, 999, "", &header, &payload, &error))
      << error;
  ASSERT_EQ(header.type, MsgType::kStatsOk);
  const auto expect_counter = [&](const std::string& name,
                                  std::uint64_t want) {
    const std::string needle =
        "\"" + name + "\": " + std::to_string(want);
    EXPECT_NE(payload.find(needle), std::string::npos)
        << "missing `" << needle << "` in:\n"
        << payload;
  };
  expect_counter("svc.requests_solve", kSolves);
  expect_counter("svc.replies_solve_ok", kSolves);
  expect_counter("svc.requests_ping", kPings);
  expect_counter("engine.instances_solved", kSolves);
  expect_counter("svc.shed_overloaded", 0);
  expect_counter("svc.bad_requests", 0);
  // The same registry backs the in-process snapshot (--metrics-json path).
  EXPECT_EQ(ts.registry().counter("svc.requests_solve").value(), kSolves);
  EXPECT_EQ(ts.registry().counter("svc.requests_stats").value(), 1u);
  // Request latency percentiles cover exactly the solve replies and are
  // sane: positive, ordered, and at least the engine's own solve time.
  const auto snap =
      ts.registry().histogram("svc.request_latency_ms").snapshot();
  EXPECT_EQ(snap.count, kSolves);
  EXPECT_GT(snap.p50, 0.0);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
}

// ---------------------------------------------------------------------------
// Multi-reactor tests (reactors > 1, engine_workers > 1). Also run under
// TSan in CI: reactors, the acceptor and engine workers all race here.
// ---------------------------------------------------------------------------

std::uint64_t reactor_counter_sum(obs::Registry& registry,
                                  std::size_t reactors,
                                  const std::string& suffix) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < reactors; ++i) {
    sum += registry
               .counter("svc.reactor" + std::to_string(i) + "." + suffix)
               .value();
  }
  return sum;
}

TEST(MultiReactor, ConnectionsDistributeRoundRobinAcrossReactors) {
  constexpr std::size_t kReactors = 4;
  constexpr std::size_t kConns = 8;
  ServerOptions options;
  options.reactors = kReactors;
  TestServer ts(std::move(options));
  // Keep every connection open while counting: a closed connection stays
  // counted in connections_accepted, but holding them proves the counts
  // are not an accept/close race.
  std::vector<Client> clients;
  for (std::size_t i = 0; i < kConns; ++i) clients.push_back(ts.connect());
  ts.wait_for_counter("svc.connections_accepted", kConns);
  // The acceptor deals connections round-robin, so 8 connections over 4
  // reactors land exactly 2 on each.
  for (std::size_t i = 0; i < kReactors; ++i) {
    EXPECT_EQ(ts.registry()
                  .counter("svc.reactor" + std::to_string(i) +
                           ".connections_accepted")
                  .value(),
              kConns / kReactors)
        << "reactor " << i;
  }
  EXPECT_EQ(reactor_counter_sum(ts.registry(), kReactors,
                                "connections_accepted"),
            ts.registry().counter("svc.connections_accepted").value());
}

TEST(MultiReactor, PerReactorCountersReconcileWithAggregates) {
  constexpr std::size_t kReactors = 4;
  constexpr int kClients = 4;
  constexpr std::uint64_t kSolvesPerClient = 3;
  ServerOptions options;
  options.reactors = kReactors;
  options.engine_workers = 2;
  TestServer ts(std::move(options));
  // One connection per reactor (round-robin), each solving concurrently;
  // replies must stay byte-identical to the serial solver even with four
  // reactors framing and two engine workers ticking at once.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&ts, &failures, c] {
      Client client = ts.connect();
      for (std::uint64_t i = 0; i < kSolvesPerClient; ++i) {
        const std::size_t index = static_cast<std::size_t>(c) * 10 + i;
        const SolveRequest request = sample_request(index);
        std::string error;
        const auto outcome = client.solve(request, index, &error);
        if (!outcome || !outcome->result ||
            outcome->raw_payload != expected_reply_payload(request)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Quiesced (every reply fully received), the per-reactor rows must sum
  // to the aggregates the single-reactor server reported.
  const std::uint64_t total = kClients * kSolvesPerClient;
  EXPECT_EQ(ts.registry().counter("svc.requests_solve").value(), total);
  EXPECT_EQ(reactor_counter_sum(ts.registry(), kReactors, "requests_solve"),
            total);
  EXPECT_EQ(reactor_counter_sum(ts.registry(), kReactors, "bytes_in"),
            ts.registry().counter("svc.bytes_in").value());
  EXPECT_EQ(reactor_counter_sum(ts.registry(), kReactors, "bytes_out"),
            ts.registry().counter("svc.bytes_out").value());
  EXPECT_GT(ts.registry().counter("svc.bytes_in").value(), 0u);
  // The Stats snapshot carries the per-reactor rows, so operators see the
  // shard balance through the same endpoint as the aggregates.
  Client client = ts.connect();
  FrameHeader header;
  std::string payload, error;
  ASSERT_TRUE(
      client.call(MsgType::kStats, 999, "", &header, &payload, &error))
      << error;
  ASSERT_EQ(header.type, MsgType::kStatsOk);
  for (std::size_t i = 0; i < kReactors; ++i) {
    const std::string row =
        "svc.reactor" + std::to_string(i) + ".requests_solve";
    EXPECT_NE(payload.find(row), std::string::npos)
        << "missing `" << row << "` in stats snapshot";
  }
}

TEST(MultiReactor, DrainAnswersInFlightOnEveryReactorBeforeAck) {
  constexpr std::size_t kReactors = 4;
  ServerOptions options;
  options.reactors = kReactors;
  options.engine_workers = 2;
  options.tick_delay_ms = 50;  // keep all four solves in flight
  TestServer ts(std::move(options));
  // Sequential connects deal one connection to each reactor; pipeline one
  // solve per connection so every reactor holds an in-flight request.
  std::vector<Client> clients;
  std::vector<SolveRequest> requests;
  std::string error;
  for (std::size_t i = 0; i < kReactors; ++i) {
    clients.push_back(ts.connect());
    requests.push_back(sample_request(i));
    ASSERT_TRUE(clients[i].send_frame(MsgType::kSolve, i + 1,
                                      encode_solve_request(requests[i]),
                                      &error))
        << error;
  }
  // All four are admitted (draining has not started), then the drain
  // arrives on the first connection.
  ts.wait_for_counter("svc.requests_solve", kReactors);
  ASSERT_TRUE(clients[0].send_frame(MsgType::kDrain, 99, "", &error));
  // Every reactor flushes its reply before the server exits; the draining
  // connection sees its reply strictly before DrainOk (same FIFO buffer).
  for (std::size_t i = 0; i < kReactors; ++i) {
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(clients[i].recv_frame(&header, &payload, &error))
        << "conn " << i << ": " << error;
    EXPECT_EQ(header.request_id, i + 1);
    ASSERT_EQ(header.type, MsgType::kSolveOk) << "conn " << i;
    EXPECT_EQ(payload, expected_reply_payload(requests[i])) << "conn " << i;
  }
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(clients[0].recv_frame(&header, &payload, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kDrainOk);
  ts.join_drained();
  EXPECT_EQ(ts.registry().counter("svc.replies_solve_ok").value(),
            static_cast<std::uint64_t>(kReactors));
  EXPECT_EQ(ts.registry().counter("svc.dropped_replies").value(), 0u);
}

TEST(MultiReactor, SigtermDrainsInFlightOnEveryReactor) {
  constexpr std::size_t kReactors = 4;
  ServerOptions options;
  options.reactors = kReactors;
  options.engine_workers = 2;
  options.tick_delay_ms = 50;
  TestServer ts(std::move(options));
  install_signal_drain(&ts.server());
  std::vector<Client> clients;
  std::vector<SolveRequest> requests;
  std::string error;
  for (std::size_t i = 0; i < kReactors; ++i) {
    clients.push_back(ts.connect());
    requests.push_back(sample_request(20 + i));
    ASSERT_TRUE(clients[i].send_frame(MsgType::kSolve, 50 + i,
                                      encode_solve_request(requests[i]),
                                      &error))
        << error;
  }
  // SIGTERM lands while a request is pending on every reactor (the 50 ms
  // tick delay keeps them queued); the drain must flush all four replies
  // through all four reactors before run() returns.
  ts.wait_for_counter("svc.requests_solve", kReactors);
  raise(SIGTERM);
  for (std::size_t i = 0; i < kReactors; ++i) {
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(clients[i].recv_frame(&header, &payload, &error))
        << "conn " << i << ": " << error;
    EXPECT_EQ(header.request_id, 50 + i);
    EXPECT_EQ(header.type, MsgType::kSolveOk) << "conn " << i;
    EXPECT_EQ(payload, expected_reply_payload(requests[i])) << "conn " << i;
    // EOF after the flush: the reactor closed the connection on exit.
    EXPECT_FALSE(clients[i].recv_frame(&header, &payload, &error));
  }
  ts.join_drained();
  install_signal_drain(nullptr);
  EXPECT_EQ(ts.registry().counter("svc.replies_solve_ok").value(),
            static_cast<std::uint64_t>(kReactors));
  EXPECT_EQ(ts.registry().counter("svc.dropped_replies").value(), 0u);
}

TEST(SvcLoopback, TcpListenerServesTheSameProtocol) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  TestServer ts(std::move(options));
  ASSERT_GT(ts.server().tcp_port(), 0);
  std::string error;
  auto client =
      Client::connect_tcp("127.0.0.1", ts.server().tcp_port(), &error);
  ASSERT_TRUE(client) << error;
  const SolveRequest request = sample_request(8);
  const auto outcome = client->solve(request, 77, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->result);
  EXPECT_EQ(outcome->raw_payload, expected_reply_payload(request));
}

}  // namespace
}  // namespace lrb::svc
